#!/usr/bin/env python3
"""Repo entry point for the unordered-iteration determinism lint.

Usage (from the repository root)::

    python tools/lint_determinism.py             # lints src/repro
    python tools/lint_determinism.py src tests   # explicit paths

Exit code 1 if any non-allowlisted hash-order-dependent iteration is
found.  See :mod:`repro.determinism.lint` for the rules and the inline
``# det: allow-unordered`` pragma.
"""

from __future__ import annotations

import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.determinism.lint import main  # noqa: E402


if __name__ == "__main__":
    arguments = sys.argv[1:] or [os.path.join(_REPO_ROOT, "src", "repro")]
    sys.exit(main(arguments))
