#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from a fresh benchmark run.

Runs ``pytest benchmarks/ --benchmark-only -s``, captures every printed
result table, and rewrites EXPERIMENTS.md with the per-experiment
expected-vs-measured record.  Run from the repository root::

    python tools/make_experiments_md.py
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

HEADER = '''# EXPERIMENTS — paper-vs-measured record for every experiment

The source paper is a tutorial with **no tables or figures of its own**;
each experiment below reproduces the canonical result shape of the system
family the tutorial surveys (see DESIGN.md for the mapping). "Expected"
states the qualitative claim from the surveyed literature; "Measured" is
the table printed by the corresponding benchmark (`pytest benchmarks/
--benchmark-only -s`), reproduced verbatim from a run with the committed
seeds. Absolute numbers are properties of the synthetic substrate; the
*shape* — who wins, by roughly what factor, where the crossovers fall — is
the reproduction target, and each benchmark asserts it.

'''

#: (surveyed systems, expected shape, measured commentary) per experiment.
NARRATIVE: dict[str, tuple[str, str, str]] = {
    "E1": (
        "Ponzetto & Strube 2007 (WikiTaxonomy); Suchanek et al. 2007 (YAGO)",
        "The plural-head heuristic separates conceptual from topical/administrative categories with high precision; the stoplist removes administrative plurals ('1955 births'); anchoring heads to their most frequent WordNet sense types the vast majority of entities correctly.",
        "Shape holds: heuristic+stoplist is perfect on the synthetic category system while the all-conceptual baseline drops ~0.37 precision; typing accuracy after anchoring is ~0.95.",
    ),
    "E2": (
        "Etzioni et al. 2005 (KnowItAll); Pasca 2014",
        "A handful of seed instances expands to same-class members at high precision via shared contexts; precision decays (at worst holds) with k and does not degrade with more seeds.",
        "Shape holds: city-class expansion from 2-5 seeds stays perfect through P@20 on the fact corpus — the class-discriminative contexts make the synthetic setting easier than the open Web, but the ordering claims are exercised and asserted.",
    ),
    "E3": (
        "Brin 1998 (DIPRE); Agichtein & Gravano 2000 (Snowball); Mintz et al. 2009 (distant supervision)",
        "Hand-written patterns: highest precision, lowest recall. Bootstrapping grows recall within its relations. Dependency paths recover passives/inversions. Distant supervision achieves the best recall/F1.",
        "Shape holds exactly; see the table (patterns P=1.0 with ~0.54 recall, the learned methods above 0.92 recall at ~0.96 precision).",
    ),
    "E4": (
        "Suchanek et al. 2009 (SOFIE)",
        "Weighted MaxSat over soft facts + hard schema constraints removes most injected false statements at a small recall cost; functionality and type constraints each contribute.",
        "Shape holds: a ~0.09 precision lift at <0.01 recall cost; disabling either constraint family reduces rejections.",
    ),
    "E5": (
        "Niu et al. 2012 (DeepDive)",
        "Gibbs marginals converge to the exact marginals; marginal inference improves on the raw candidate set; inference cost is linear in grounded factors.",
        "Shape holds: max marginal error falls ~10x from 50 to 3200 sweeps; inference lifts precision with Brier ~0.13; measured cost is linear.",
    ),
    "E6": (
        "Fader et al. 2011 (ReVerb)",
        "Open IE yields many times more distinct relations than a fixed inventory, at lower argument precision; the lexical constraint prunes overly specific phrases; synonymous phrases cluster by shared argument pairs; frequent-sequence mining recovers canonical relation n-grams.",
        "Shape holds: ~3x the distinct relations and extractions of closed IE at ~0.67 argument precision; a stricter support threshold cuts relations without losing precision; clusters recover the gold paraphrase sets.",
    ),
    "E7": (
        "Hoffart et al. 2013 (YAGO2)",
        "Explicit temporal expressions scope facts with near-perfect accuracy; harvested year attributes are faithful to the text; lifespan knowledge bounds the timespans of facts that text never dates explicitly.",
        "Shape holds: 1.0 scoping accuracy on points and spans; zero wrong-year extractions; inferred lifespan bounds cover >95% of gold scopes.",
    ),
    "E8": (
        "Lehmann et al. 2014 (DBpedia multilingual)",
        "Interlanguage links are precise but incomplete; transliteration similarity covers everything but cannot recover exonyms; links + strings dominates both.",
        "Shape holds across the dropout sweep: links degrade with dropout, strings stay flat below the exonym ceiling, combined stays on top.",
    ),
    "E9": (
        "Hoffart et al. 2011 (AIDA)",
        "Popularity prior < prior+context similarity <= joint graph coherence; the prior degrades fastest as ambiguity grows.",
        "Shape holds: prior falls ~0.21 from low to extreme ambiguity while local/graph hold; graph ties or exceeds local; the local-vs-graph gap is smaller than on real AIDA data because synthetic entity profiles are short and clean.",
    ),
    "E10": (
        "Lacoste-Julien et al. 2013 (SiGMa); Fellegi-Sunter tradition",
        "Graph propagation > learned pairwise matcher > string threshold; blocking prunes the quadratic pair space at small recall cost.",
        "Shape holds: best-F1 ordering graph >= logistic > string; key blocking prunes ~97% of pairs at ~0.9 gold recall.",
    ),
    "E11": (
        "Dean & Ghemawat 2004 (MapReduce), as used by web-scale harvesting",
        "Shuffle volume grows linearly with the corpus; a combiner shrinks it dramatically; hash partitioning balances shards; running extraction through map-reduce changes the execution, not the result.",
        "Shape holds: linear raw shuffle, ~10-30x combiner reduction, skew <= 1.25, identical accepted-fact counts at every shard count.",
    ),
    "E12": (
        "The tutorial's own motivating example (section 4)",
        "Tracking two product families needs entity knowledge: resolving an ambiguous family mention to the right generation requires the KB's release-year facts.",
        "Shape holds: KB-backed assignment beats string matching by ~0.09 accuracy; family-level volume correlation is 1.0 for both (family names are unambiguous).",
    ),
    "E13": (
        "Carlson et al. 2010 (NELL) — tutorial reference [5]",
        "Ontology coupling (types, functionality, exclusion) keeps the promoted KB's precision high across bootstrap iterations; the uncoupled loop drifts downward.",
        "Shape holds: coupled precision *rises* across iterations while uncoupled *falls* — the canonical drift plot.",
    ),
    "E14": (
        "Dong et al. 2014 (Knowledge Vault) — tutorial reference [9]",
        "Fusing multiple extractors with a graph prior yields calibrated probabilities that beat every single extractor; the reliability diagram is near-diagonal.",
        "Shape holds: fusion F1 above the best single extractor on a held-out corpus, Brier ~0.12, monotone reliability bins.",
    ),
    "E15": (
        "Galarraga et al. 2013 (AMIE) — the tutorial authors' research programme",
        "Rule mining rediscovers the KB's generative regularities with correct confidence estimates; confident rules complete held-out facts at high precision; PCA confidence alone overrates inverse rules of quasi-functional relations.",
        "Shape holds: the citizenship chain and capital rules mined at confidence 1.0; gated completion recovers 100% of held-out citizenship facts at precision 1.0, vs ~0.58 precision for the PCA-only ranking.",
    ),
    "E16": (
        "Wu et al. 2012 (Probase) — tutorial reference [32]",
        "Frequency-backed isA evidence yields a probabilistic taxonomy whose P(concept|instance) picks the right sense of ambiguous names and whose set conceptualization names the class behind a group of instances.",
        "Shape holds: >0.9 top-1 accuracy for both per-instance sense ranking and 3-instance set conceptualization over the Hearst-harvested evidence.",
    ),
}


def capture_tables(repo_root: Path) -> str:
    """Run the benchmarks and return their printed result tables."""
    process = subprocess.run(
        [sys.executable, "-m", "pytest", "benchmarks/", "--benchmark-only", "-q", "-s"],
        cwd=repo_root,
        capture_output=True,
        text=True,
    )
    if process.returncode != 0:
        sys.stderr.write(process.stdout[-4000:])
        raise SystemExit("benchmarks failed; EXPERIMENTS.md not regenerated")
    import re

    table_start = re.compile(r"^E\d+[a-z]?:")
    lines = process.stdout.splitlines()
    captured: list[str] = []
    in_table = False
    for line in lines:
        if table_start.match(line):
            if captured:
                captured.append("")  # blank separator between tables
            in_table = True
        elif in_table and line.strip() == "":
            in_table = False
            continue
        if in_table:
            captured.append(line.rstrip())
    return "\n".join(captured)


def build_document(tables_text: str) -> str:
    sections: dict[str, list[str]] = {}
    for block in tables_text.split("\n\n"):
        block = block.strip("\n")
        if not block:
            continue
        first = block.split("\n", 1)[0]
        experiment_id = first.split(":")[0].rstrip("abc")
        sections.setdefault(experiment_id, []).append(block)

    parts = [HEADER]
    for experiment_id in sorted(NARRATIVE, key=lambda e: int(e[1:])):
        surveyed, expected, measured = NARRATIVE[experiment_id]
        parts.append(f"## {experiment_id}\n")
        parts.append(f"**Surveyed systems:** {surveyed}\n")
        parts.append(f"**Expected shape:** {expected}\n")
        parts.append(f"**Measured:** {measured}\n")
        for block in sections.get(experiment_id, []):
            parts.append("```")
            parts.append(block)
            parts.append("```")
        parts.append("")
    return "\n".join(parts)


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent
    tables = capture_tables(repo_root)
    document = build_document(tables)
    (repo_root / "EXPERIMENTS.md").write_text(document)
    print(f"wrote EXPERIMENTS.md ({len(document)} chars)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
