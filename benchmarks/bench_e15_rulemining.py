"""E15 — rule mining and KB completion (extension experiment).

Reproduces the AMIE result shape (Galárraga et al., WWW 2013 — the same
research programme as the tutorial's authors): mining Horn rules from the
KB recovers its generative regularities with correct confidence estimates,
and applying the confident rules completes held-out facts at high
precision — while the PCA-only ranking, without the standard-confidence
gate, overrates inverse rules of quasi-functional relations.
"""

from __future__ import annotations

import random

import pytest

from repro.eval import print_table
from repro.kb import TripleStore
from repro.reasoning import RuleMiner, complete_kb
from repro.world import schema as ws


@pytest.mark.benchmark(group="e15")
def test_e15_mined_rules(benchmark, bench_world):
    miner = RuleMiner(min_support=5, min_confidence=0.3)
    mined = benchmark(miner.mine, bench_world.facts)

    rows = [
        [m.shape, m.describe().split("  [")[0], m.support, m.std_confidence, m.pca_confidence]
        for m in mined[:10]
    ]
    print_table(
        "E15a: top mined rules",
        ["shape", "rule", "support", "std conf", "PCA conf"],
        rows,
    )
    descriptions = [m.describe() for m in mined]
    # The generator's own regularities must be rediscovered at full conf.
    assert any(
        "bornIn(x,z) & locatedIn(z,y) => citizenOf(x,y)" in d for d in descriptions
    )
    assert any(
        "capitalOf(x,y) => locatedIn(x,y)" in d for d in descriptions
    )
    exact = [m for m in mined if m.std_confidence == pytest.approx(1.0)]
    assert len(exact) >= 3


@pytest.mark.benchmark(group="e15")
def test_e15_completion(benchmark, bench_world):
    rng = random.Random(191)
    citizenship = [t for t in bench_world.facts if t.predicate == ws.CITIZEN_OF]
    rng.shuffle(citizenship)
    held_out = {t.spo() for t in citizenship[: len(citizenship) // 3]}
    train = TripleStore(t for t in bench_world.facts if t.spo() not in held_out)
    mined = RuleMiner(min_support=5, min_confidence=0.3).mine(train)

    rows = []
    for label, min_std in (("PCA only (no std gate)", 0.0), ("PCA + std gate", 0.6)):
        predictions = complete_kb(train, mined, min_pca=0.8, min_std=min_std)
        predicted = {t.spo() for t in predictions}
        recovered = len(predicted & held_out) / len(held_out)
        precision = (
            sum(1 for k in predicted if bench_world.facts.contains_fact(*k))
            / len(predicted)
            if predicted
            else 1.0
        )
        rows.append([label, len(predicted), precision, recovered])

    benchmark(complete_kb, train, mined, 0.8)

    print_table(
        "E15b: KB completion of held-out citizenship facts",
        ["configuration", "predicted", "precision", "held-out recall"],
        rows,
    )
    pca_only, gated = rows
    assert gated[3] > 0.9            # near-total recovery of held-out facts
    assert gated[2] > pca_only[2]    # the std gate buys precision
    assert gated[2] > 0.9
