"""E21 — zero-copy corpus transport: payload, startup, end-to-end scaling.

Before this experiment's subsystem, every process worker received the
whole Wiki as a pickled broadcast — hundreds of kilobytes per pool spin-up
for a corpus the workers then read a few pages from.  The segment-backed
corpus transport writes the corpus once as a sorted, sha256-sealed,
mmap-able file and ships workers only its *path*; workers open pages by
title through binary search over the pinned bytes.

* **payload + startup** — the pickled initializer payload
  (``backend.init.payload_bytes``) and broadcast time
  (``backend.init.elapsed_s``) for memory vs file transport, with the
  acceptance floor asserted: the file transport must shrink the payload
  by >= 10x;
* **end-to-end scaling** — full builds at 1/2/4/8 process workers under
  both transports (speedup asserted only when the host has the cores to
  show it);
* **byte identity** — the serial build, thread and process pools, static
  and stealing dispatch, memory and file transport all must produce the
  same canonical KB bytes;
* the repeatable loop times the transport primitive itself: one
  by-title page load through the mmap (binary search + JSON decode).

``REPRO_E21_SMOKE=1`` shrinks the matrix for CI smoke runs.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import obs
from repro.corpus import CorpusReader, write_corpus
from repro.determinism import canonical_kb_lines
from repro.eval import print_table
from repro.pipeline import BuildConfig, KnowledgeBaseBuilder

_SMOKE = bool(os.environ.get("REPRO_E21_SMOKE"))

#: Process-pool sizes for the end-to-end scaling table.
WORKER_COUNTS = (2,) if _SMOKE else (1, 2, 4, 8)

#: The acceptance floor: file transport must cut the broadcast payload
#: by at least this factor.
MIN_PAYLOAD_REDUCTION = 10.0


def _build_once(wiki, aliases, **config_kwargs):
    """One full build with telemetry; returns (lines, wall_s, telemetry)."""
    config = BuildConfig(**config_kwargs)
    builder = KnowledgeBaseBuilder(wiki, aliases=aliases, config=config)
    obs.reset()
    obs.enable()
    try:
        start = time.perf_counter()
        kb, __ = builder.build()
        wall = time.perf_counter() - start
        histograms = obs.core.histograms()
        payload = histograms.get("backend.init.payload_bytes")
        init = histograms.get("backend.init.elapsed_s")
        telemetry = {
            "payload_bytes": int(sum(payload.values)) if payload else 0,
            "init_s": sum(init.values) if init else 0.0,
        }
    finally:
        obs.disable()
        obs.reset()
    return canonical_kb_lines(kb), wall, telemetry


@pytest.mark.benchmark(group="e21")
def test_e21_corpus_transport(benchmark, bench_world, bench_wiki, tmp_path):
    cores = os.cpu_count() or 1
    wiki, aliases = bench_wiki, bench_world.aliases

    # ---------------------------------------------- end-to-end + payload
    reference, serial_s, __ = _build_once(wiki, aliases)
    rows = []
    wall = {}
    telemetry = {}
    for transport in ("memory", "file"):
        for workers in WORKER_COUNTS:
            lines, elapsed, tele = _build_once(
                wiki, aliases,
                workers=workers, backend="process",
                corpus_transport=transport,
            )
            assert lines == reference, (transport, workers)
            wall[(transport, workers)] = elapsed
            telemetry[(transport, workers)] = tele
            rows.append([
                transport, workers,
                tele["payload_bytes"],
                round(tele["init_s"] * 1000.0, 1),
                round(elapsed, 3),
                round(serial_s / elapsed, 2),
            ])

    probe = max(WORKER_COUNTS)
    payload_memory = telemetry[("memory", probe)]["payload_bytes"]
    payload_file = telemetry[("file", probe)]["payload_bytes"]
    reduction = payload_memory / max(1, payload_file)
    if probe > 1:
        # Workers > 1 is what actually broadcasts; the floor is the PR's
        # acceptance criterion, not a machine-dependent timing.
        assert reduction >= MIN_PAYLOAD_REDUCTION, (
            f"file transport payload {payload_file} B is only "
            f"{reduction:.1f}x smaller than memory {payload_memory} B"
        )

    print_table(
        f"E21: corpus transport, end-to-end process builds "
        f"({len(wiki.pages)} pages, serial {serial_s:.3f}s)",
        ["transport", "workers", "payload B", "init ms", "build s",
         "vs serial x"],
        rows,
    )

    if cores >= 4 and 4 in WORKER_COUNTS:
        # Only a multicore host can show the speedup; a 1-core CI box
        # legitimately builds slower under any pool.
        assert wall[("file", 4)] < serial_s, (
            "4 file-transport process workers should beat the serial build"
        )

    # -------------------------------------------- byte-identity matrix
    matrix = [
        ("thread", "static", "memory"), ("thread", "steal", "file"),
        ("process", "static", "file"), ("process", "steal", "memory"),
    ]
    if not _SMOKE:
        matrix += [
            ("thread", "static", "file"), ("thread", "steal", "memory"),
            ("process", "static", "memory"), ("process", "steal", "file"),
        ]
    for backend, schedule, transport in matrix:
        lines, __, ___ = _build_once(
            wiki, aliases,
            workers=2, backend=backend,
            schedule=schedule, corpus_transport=transport,
        )
        assert lines == reference, (backend, schedule, transport)

    # ----------------------------------------------- transport primitive
    corpus_path = str(tmp_path / "corpus.rprocrp")
    write_corpus(wiki, corpus_path, aliases=aliases)
    reader = CorpusReader(corpus_path)
    titles = reader.titles()
    probe_title = titles[len(titles) // 2]

    benchmark(lambda: reader.page(probe_title))

    benchmark.extra_info["pages"] = len(wiki.pages)
    benchmark.extra_info["corpus_file_bytes"] = reader.manifest()["bytes"]
    benchmark.extra_info["serial_build_s"] = round(serial_s, 3)
    benchmark.extra_info["payload_memory_bytes"] = payload_memory
    benchmark.extra_info["payload_file_bytes"] = payload_file
    benchmark.extra_info["payload_reduction_x"] = round(reduction, 1)
    benchmark.extra_info["byte_identical"] = True
    benchmark.extra_info["cores"] = cores
    for (transport, workers), elapsed in wall.items():
        benchmark.extra_info[f"build_{transport}_{workers}w_s"] = round(
            elapsed, 3
        )
        benchmark.extra_info[f"init_{transport}_{workers}w_s"] = round(
            telemetry[(transport, workers)]["init_s"], 4
        )
    reader.close()
