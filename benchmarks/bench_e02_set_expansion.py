"""E2 — Web-based set expansion (tutorial section 2).

Reproduces the SEAL/Paşca result shape: precision@k decays as k grows and
improves with more seeds; a handful of seeds suffices to expand a class
with high precision from raw text contexts.

Rows: precision@k for k in {5, 10, 20} over seed-set sizes 2-5.
"""

from __future__ import annotations

import pytest

from repro.eval import precision_at_k, print_table
from repro.taxonomy import SetExpander


@pytest.fixture(scope="module")
def expander(bench_sentences):
    expander = SetExpander()
    expander.index_corpus(bench_sentences)
    return expander


@pytest.mark.benchmark(group="e02")
def test_e02_set_expansion(benchmark, bench_world, expander):
    city_names = [bench_world.name[c] for c in bench_world.cities]
    gold = set(city_names)
    rows = []
    for n_seeds in (2, 3, 5):
        seeds = city_names[:n_seeds]
        results = expander.expand(seeds, top_k=30)
        ranked = [r.name for r in results]
        rows.append(
            [
                f"{n_seeds} seeds",
                precision_at_k(ranked, gold, 5),
                precision_at_k(ranked, gold, 10),
                precision_at_k(ranked, gold, 20),
                len(ranked),
            ]
        )

    benchmark(expander.expand, city_names[:3], 30)

    print_table(
        "E2: set expansion precision@k (city class)",
        ["seeds", "P@5", "P@10", "P@20", "candidates"],
        rows,
    )
    two, three, five = rows
    assert five[1] >= 0.8            # strong precision at the top
    assert five[1] >= five[3] - 1e-9  # precision decays (or holds) with k
    assert five[2] >= two[2] - 0.2   # more seeds never hurt much
