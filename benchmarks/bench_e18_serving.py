"""E18 — KB serving under zipf-skewed concurrent read workloads.

Benchmarks the serving layer the way a production service is judged:
N reader threads replay a pinned-seed workload of 10k/100k requests
(SPO lookups, top-k, and 2-pattern conjunctive joins) whose target
entities are zipf-distributed — a few hot entities dominate, as web
query logs do — so the version-keyed LRU result cache is load-bearing:
its capacity is set *below* the number of distinct request keys, and only
the skew keeps the hit rate high.  Reported per configuration: throughput,
p50/p99 latency, and cache hit rate, all emitted into
``--benchmark-json`` via ``extra_info``.

Also asserts the serving acceptance invariant: the same request set
returns byte-identical JSON across cold cache, warm cache, and 1-vs-8
reader threads.

``REPRO_E18_SMOKE=1`` shrinks the workload for CI smoke runs.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import os
import random
import threading
import time

import pytest

from repro.eval import print_table
from repro.kb import Entity, Pattern, Relation, TripleStore, Var
from repro.obs.core import Histogram
from repro.serving import QueryEngine

SEED = 181
ZIPF_EXPONENT = 1.1
#: Deliberately smaller than the distinct-key universe (~2x people +
#: relations): an unskewed workload would thrash, only the zipf head fits.
CACHE_CAPACITY = 256

BORN_IN = Relation("rel:bornIn")
LOCATED_IN = Relation("rel:locatedIn")

_SMOKE = bool(os.environ.get("REPRO_E18_SMOKE"))
WORKLOAD_SIZES = (2_000,) if _SMOKE else (10_000, 100_000)
READER_COUNTS = (1, 8)


def _zipf_cumulative(n: int) -> list[float]:
    weights, total = [], 0.0
    for rank in range(1, n + 1):
        total += 1.0 / rank**ZIPF_EXPONENT
        weights.append(total)
    return weights


def _build_workload(store: TripleStore, n_queries: int) -> list[tuple]:
    """A pinned-seed request list: (kind, args) tuples, zipf over entities."""
    people = sorted(
        {t.subject for t in store.match(None, BORN_IN, None)}, key=lambda e: e.id
    )
    relations = sorted(store.predicates(), key=lambda r: r.id)
    rng = random.Random(SEED)
    people_cum = _zipf_cumulative(len(people))
    relations_cum = _zipf_cumulative(len(relations))

    def zipf_pick(items, cumulative):
        return items[bisect.bisect_left(cumulative, rng.random() * cumulative[-1])]

    ops = []
    for _ in range(n_queries):
        roll = rng.random()
        if roll < 0.55:
            ops.append(("lookup", zipf_pick(people, people_cum)))
        elif roll < 0.80:
            ops.append(("topk", zipf_pick(relations, relations_cum)))
        else:
            ops.append(("join", zipf_pick(people, people_cum)))
    return ops


def _execute(engine: QueryEngine, op: tuple) -> dict:
    kind, target = op
    if kind == "lookup":
        return engine.lookup(subject=target)
    if kind == "topk":
        return engine.topk(10, predicate=target)
    return engine.query(
        [
            Pattern(target, BORN_IN, Var("c")),
            Pattern(Var("c"), LOCATED_IN, Var("k")),
        ]
    )


def _run_workload(engine: QueryEngine, ops: list[tuple], readers: int) -> dict:
    """Replay ``ops`` over ``readers`` threads; return latency/digest stats.

    Thread t executes ops[t::readers]; per-request digests land in an
    op-indexed array so the response byte-stream can be compared across
    reader counts regardless of interleaving.
    """
    latencies: list[list[float]] = [[] for _ in range(readers)]
    digests: list[bytes] = [b""] * len(ops)
    before = engine.cache.stats()

    def reader(thread_index: int) -> None:
        times = latencies[thread_index]
        for op_index in range(thread_index, len(ops), readers):
            t0 = time.perf_counter()
            payload = _execute(engine, ops[op_index])
            times.append(time.perf_counter() - t0)
            digests[op_index] = hashlib.blake2b(
                json.dumps(payload, sort_keys=True).encode(), digest_size=16
            ).digest()

    threads = [
        threading.Thread(target=reader, args=(i,), name=f"e18-reader-{i}")
        for i in range(readers)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    after = engine.cache.stats()
    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    histogram = Histogram("e18")
    for series in latencies:
        histogram.values.extend(series)
    return {
        "queries": len(ops),
        "readers": readers,
        "elapsed_s": elapsed,
        "throughput_qps": len(ops) / elapsed if elapsed else 0.0,
        "p50_ms": histogram.p50 * 1000.0,
        "p99_ms": histogram.p99 * 1000.0,
        "hit_rate": hits / (hits + misses) if (hits + misses) else 0.0,
        "digests": digests,
    }


@pytest.mark.benchmark(group="e18")
def test_e18_serving_throughput_zipf(benchmark, bench_world):
    store = TripleStore(bench_world.facts)
    runs = []
    digest_sets: dict[int, list[bytes]] = {}
    warm_digests: dict[int, list[bytes]] = {}
    for n_queries in WORKLOAD_SIZES:
        ops = _build_workload(store, n_queries)
        for readers in READER_COUNTS:
            engine = QueryEngine(store, cache_size=CACHE_CAPACITY)
            cold = _run_workload(engine, ops, readers)
            if readers == max(READER_COUNTS):
                warm = _run_workload(engine, ops, readers)
                warm_digests[n_queries] = warm.pop("digests")
            digests = cold.pop("digests")
            if n_queries in digest_sets:
                # 1-vs-N readers: byte-identical response streams.
                assert digests == digest_sets[n_queries]
            else:
                digest_sets[n_queries] = digests
            runs.append(cold)

    # Cold vs warm cache: byte-identical response streams.
    for n_queries, digests in warm_digests.items():
        assert digests == digest_sets[n_queries]

    # The zipf skew keeps the undersized cache load-bearing.
    for run in runs:
        assert run["hit_rate"] > 0.5, run

    # The timed benchmark: the smallest workload at full reader fan-out.
    bench_ops = _build_workload(store, WORKLOAD_SIZES[0])

    def serve_once():
        engine = QueryEngine(store, cache_size=CACHE_CAPACITY)
        return _run_workload(engine, bench_ops, max(READER_COUNTS))

    benchmark(serve_once)

    print_table(
        "E18: serving throughput under zipf-skewed concurrent readers "
        f"(cache capacity {CACHE_CAPACITY})",
        ["queries", "readers", "qps", "p50 ms", "p99 ms", "hit rate"],
        [
            [
                run["queries"],
                run["readers"],
                round(run["throughput_qps"]),
                round(run["p50_ms"], 4),
                round(run["p99_ms"], 4),
                round(run["hit_rate"], 3),
            ]
            for run in runs
        ],
    )
    benchmark.extra_info["workloads"] = [
        {key: value for key, value in run.items() if key != "digests"}
        for run in runs
    ]
    benchmark.extra_info["cache_capacity"] = CACHE_CAPACITY
    benchmark.extra_info["zipf_exponent"] = ZIPF_EXPONENT
    benchmark.extra_info["byte_identical_across_readers"] = True
    benchmark.extra_info["byte_identical_cold_vs_warm"] = True


@pytest.mark.benchmark(group="e18")
def test_e18_cache_ablation_zipf_vs_uniform(benchmark, bench_world):
    """The skew is what makes the cache work: a uniform workload over the
    same entities on the same undersized cache hits far less often."""
    store = TripleStore(bench_world.facts)
    n_queries = WORKLOAD_SIZES[0]
    zipf_ops = _build_workload(store, n_queries)

    people = sorted(
        {t.subject for t in store.match(None, BORN_IN, None)}, key=lambda e: e.id
    )
    rng = random.Random(SEED + 1)
    uniform_ops = [("lookup", rng.choice(people)) for _ in range(n_queries)]

    def hit_rate(ops):
        engine = QueryEngine(store, cache_size=64)
        return _run_workload(engine, ops, 4)["hit_rate"]

    zipf_rate = hit_rate(zipf_ops)
    uniform_rate = hit_rate(uniform_ops)
    print_table(
        "E18b: hit rate, zipf vs uniform workload (cache capacity 64)",
        ["workload", "hit rate"],
        [["zipf", round(zipf_rate, 3)], ["uniform", round(uniform_rate, 3)]],
    )
    assert zipf_rate > uniform_rate
    benchmark.extra_info["zipf_hit_rate"] = zipf_rate
    benchmark.extra_info["uniform_hit_rate"] = uniform_rate
    benchmark(lambda: hit_rate(zipf_ops))
