"""E10 — entity linkage / record linkage (tutorial section 4).

Reproduces the record-linkage result shape: the graph-propagation matcher
(SiGMa family) beats the learned pairwise classifier, which beats the
string-similarity threshold; blocking prunes >95% of the pair space at a
small recall cost (the blocking ablation).
"""

from __future__ import annotations

import random

import pytest

from repro.eval import print_table
from repro.linkage import (
    GraphMatcher,
    LogisticMatcher,
    StringMatcher,
    blocking_recall,
    key_blocking,
    make_linkage_task,
    minhash_blocking,
    no_blocking,
    pair_prf,
    sorted_neighborhood,
)


@pytest.fixture(scope="module")
def task(bench_world):
    return make_linkage_task(bench_world, seed=141, name_noise=0.4, fact_dropout=0.3)


@pytest.fixture(scope="module")
def trained_logistic(bench_world):
    train_task = make_linkage_task(
        bench_world, seed=142, name_noise=0.4, fact_dropout=0.3
    )
    blocked = key_blocking(train_task.side_a, train_task.side_b)
    rng = random.Random(143)
    positives = [p for p in blocked.pairs if p in train_task.gold]
    negatives = [p for p in blocked.pairs if p not in train_task.gold]
    rng.shuffle(negatives)
    matcher = LogisticMatcher(threshold=0.3)
    matcher.train(
        [(p, True) for p in positives] + [(p, False) for p in negatives[: len(positives) * 3]],
        train_task.side_a,
        train_task.side_b,
    )
    return matcher


@pytest.mark.benchmark(group="e10")
def test_e10_matcher_comparison(benchmark, task, trained_logistic):
    blocked = key_blocking(task.side_a, task.side_b)
    rows = []

    def best_f1(matcher_factory, thresholds):
        best = None
        for threshold in thresholds:
            matcher = matcher_factory(threshold)
            matches = matcher.match(blocked.pairs, task.side_a, task.side_b)
            prf = pair_prf([m.pair for m in matches], task.gold)
            if best is None or prf.f1 > best[1].f1:
                best = (threshold, prf)
        return best

    string_best = best_f1(
        lambda t: StringMatcher(threshold=t), (0.95, 0.9, 0.85, 0.8, 0.75, 0.7)
    )
    rows.append(["string threshold", string_best[0], *_prf(string_best[1])])

    logistic_best = None
    for threshold in (0.7, 0.5, 0.3, 0.2):
        trained_logistic.threshold = threshold
        matches = trained_logistic.match(blocked.pairs, task.side_a, task.side_b)
        prf = pair_prf([m.pair for m in matches], task.gold)
        if logistic_best is None or prf.f1 > logistic_best[1].f1:
            logistic_best = (threshold, prf)
    rows.append(["logistic matcher", logistic_best[0], *_prf(logistic_best[1])])

    graph_best = best_f1(
        lambda t: GraphMatcher(accept_threshold=t), (0.6, 0.5, 0.45, 0.4)
    )
    rows.append(["graph propagation", graph_best[0], *_prf(graph_best[1])])

    benchmark(
        GraphMatcher().match, blocked.pairs, task.side_a, task.side_b
    )

    print_table(
        "E10: entity linkage, best F1 per method (name noise 0.4)",
        ["method", "threshold", "P", "R", "F1"],
        rows,
    )
    string_f1 = string_best[1].f1
    logistic_f1 = logistic_best[1].f1
    graph_f1 = graph_best[1].f1
    # SiGMa shape.
    assert logistic_f1 > string_f1
    assert graph_f1 > string_f1
    assert graph_f1 >= logistic_f1 - 0.01


@pytest.mark.benchmark(group="e10")
def test_e10_blocking_ablation(benchmark, task):
    rows = []
    strategies = [
        ("none (cross product)", no_blocking),
        ("key blocking", key_blocking),
        ("sorted neighborhood", lambda a, b: sorted_neighborhood(a, b, window=8)),
        ("minhash LSH", minhash_blocking),
    ]
    for label, strategy in strategies:
        result = strategy(task.side_a, task.side_b)
        rows.append(
            [
                label,
                len(result.pairs),
                result.reduction_ratio,
                blocking_recall(result, task.gold),
            ]
        )

    benchmark(key_blocking, task.side_a, task.side_b)

    print_table(
        "E10b: blocking ablation (pairs considered vs recall of true matches)",
        ["strategy", "pairs", "reduction", "gold recall"],
        rows,
    )
    assert rows[1][2] > 0.95          # key blocking prunes >95%
    assert rows[1][3] > 0.8           # at modest recall cost
    assert rows[0][3] == 1.0          # no blocking keeps everything


def _prf(prf):
    return [prf.precision, prf.recall, prf.f1]
