"""E22 — scenario matrix: per-scenario build time and KB quality.

Benchmarks the named stress workloads of
:data:`repro.world.scenarios.SCENARIOS` the way a KB deployment is
judged: every profile is built through the real pipeline and scored
against its gold facts at the two quality stages (pre-consistency
extraction, post-reasoning KB), with build time recorded per profile.

* **the matrix** — one row per scenario: pages, sentences, triples,
  build seconds, extraction P/R/F1, KB P/R/F1, and (for burst
  scenarios) whether the delta-ingest leg was byte-identical to the
  one-shot build;
* **floors** — the pinned quality floors of
  :data:`repro.eval.scenarios.QUALITY_FLOORS` are asserted, so a bench
  run doubles as the quality regression gate;
* **repeatable loop** — the benchmark loop rebuilds the ``baseline``
  profile's KB, the reference cost a quality-bearing build pays.

``REPRO_E22_SMOKE=1`` trims the matrix to three profiles for CI smoke
runs (the scenarios themselves are pinned-seed and fixed-size, so the
per-profile workload cannot shrink).
"""

from __future__ import annotations

import os

import pytest

from repro.eval import print_table
from repro.eval.scenarios import check_floors, evaluate_scenario
from repro.pipeline import BuildConfig, KnowledgeBaseBuilder
from repro.world.scenarios import SCENARIOS, build_scenario

_SMOKE = bool(os.environ.get("REPRO_E22_SMOKE"))
_PROFILES = (
    ("baseline", "burst_social", "adversarial_noise")
    if _SMOKE
    else tuple(SCENARIOS)
)


@pytest.mark.benchmark(group="e22")
def test_e22_scenario_matrix(benchmark):
    scores = [evaluate_scenario(name) for name in _PROFILES]
    assert check_floors(scores) == []

    rows = []
    for score in scores:
        burst = (
            "-"
            if score.incremental_identical is None
            else "yes" if score.incremental_identical else "NO"
        )
        rows.append([
            score.name,
            score.pages,
            score.sentences,
            score.triples,
            round(score.build_seconds, 3),
            round(score.extraction.f1, 3),
            round(score.kb.precision, 3),
            round(score.kb.f1, 3),
            burst,
        ])
    print_table(
        f"E22: scenario matrix ({len(scores)} profiles)",
        ["scenario", "pages", "sentences", "triples", "build s",
         "ext F1", "KB P", "KB F1", "delta identical"],
        rows,
    )

    benchmark.extra_info["profiles"] = len(scores)
    for score in scores:
        prefix = score.name
        benchmark.extra_info[f"{prefix}_build_s"] = round(score.build_seconds, 3)
        benchmark.extra_info[f"{prefix}_extraction_f1"] = round(
            score.extraction.f1, 3
        )
        benchmark.extra_info[f"{prefix}_kb_f1"] = round(score.kb.f1, 3)
        benchmark.extra_info[f"{prefix}_pages"] = score.pages
        benchmark.extra_info[f"{prefix}_triples"] = score.triples
        if score.incremental_identical is not None:
            benchmark.extra_info[f"{prefix}_incremental_identical"] = (
                score.incremental_identical
            )

    # The repeatable loop: rebuild the baseline profile's KB — the
    # reference cost that every quality number above is paid in.
    bundle = build_scenario("baseline")
    config = BuildConfig()
    benchmark(
        lambda: KnowledgeBaseBuilder(
            bundle.wiki, aliases=bundle.world.aliases, config=config
        ).build()
    )
