"""Substrate micro-benchmarks: the database-style numbers of the KB core.

Not tied to a tutorial experiment — these measure the store and query
engine the way a storage paper would: bulk-load throughput, indexed point
lookups, pattern scans, and join evaluation, plus the serialization
round-trip.  Useful as a regression guard for the data structures every
experiment sits on.
"""

from __future__ import annotations

import io

import pytest

from repro.kb import Pattern, Query, TripleStore, Var
from repro.kb.rdfio import read_ntriples, write_ntriples
from repro.world import schema as ws


@pytest.fixture(scope="module")
def triples(bench_world):
    return list(bench_world.store)


@pytest.mark.benchmark(group="substrate")
def test_bulk_load(benchmark, triples):
    store = benchmark(TripleStore, triples)
    assert len(store) == len({t.spo() for t in triples})


@pytest.mark.benchmark(group="substrate")
def test_point_lookups(benchmark, bench_world, triples):
    store = bench_world.store
    keys = [t.spo() for t in triples[:1000]]

    def lookup_all():
        hits = 0
        for key in keys:
            if store.contains_fact(*key):
                hits += 1
        return hits

    hits = benchmark(lookup_all)
    assert hits == len(keys)


@pytest.mark.benchmark(group="substrate")
def test_pattern_scan(benchmark, bench_world):
    store = bench_world.store

    def scan():
        return sum(1 for __ in store.match(predicate=ws.BORN_IN))

    count = benchmark(scan)
    assert count == len(bench_world.people)


@pytest.mark.benchmark(group="substrate")
def test_two_hop_join(benchmark, bench_world):
    query = Query(
        [
            Pattern(Var("p"), ws.BORN_IN, Var("c")),
            Pattern(Var("c"), ws.LOCATED_IN, Var("k")),
        ]
    )
    results = benchmark(query.run, bench_world.store)
    assert len(results) == len(bench_world.people)


@pytest.mark.benchmark(group="substrate")
def test_serialization_roundtrip(benchmark, bench_world):
    def roundtrip():
        buffer = io.StringIO()
        write_ntriples(bench_world.store, buffer)
        buffer.seek(0)
        return sum(1 for __ in read_ntriples(buffer))

    count = benchmark(roundtrip)
    assert count == len(bench_world.store)
