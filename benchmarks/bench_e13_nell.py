"""E13 — NELL-style never-ending coupled learning (extension experiment).

Reproduces NELL's headline result (Carlson et al., AAAI 2010 — reference
[5] of the tutorial): running the bootstrap loop *with* ontology coupling
(type signatures, functionality, relation exclusion) keeps the cumulative
precision of the promoted KB high across iterations, while the uncoupled
loop drifts — each iteration promotes more noise, which induces worse
patterns, which promote more noise.
"""

from __future__ import annotations

import pytest

from repro.corpus import CorpusConfig, synthesize
from repro.eval import print_table
from repro.extraction import (
    NeverEndingLearner,
    corpus_occurrences,
    cumulative_precision,
    resolver_from_aliases,
)
from repro.kb import Taxonomy, TripleStore
from repro.world import schema as ws


@pytest.fixture(scope="module")
def nell_workload(bench_world):
    documents = synthesize(
        bench_world,
        CorpusConfig(
            seed=171, mentions_per_fact=1.7, p_false=0.3,
            p_cross_class=0.6, p_short_alias=0.05,
        ),
    )
    resolver = resolver_from_aliases(bench_world.aliases)
    sentences = [s.text for d in documents for s in d.sentences]
    occurrences = corpus_occurrences(sentences, resolver)
    seeds = []
    for spec in ws.RELATION_SPECS:
        seeds.extend(list(bench_world.facts.match(predicate=spec.relation))[:4])
    return occurrences, TripleStore(seeds)


@pytest.mark.benchmark(group="e13")
def test_e13_coupling_prevents_drift(benchmark, bench_world, nell_workload):
    occurrences, seed_kb = nell_workload
    taxonomy = Taxonomy(bench_world.store)
    relations = [s.relation for s in ws.RELATION_SPECS]
    iterations = 6

    def run(coupling: bool):
        learner = NeverEndingLearner(
            relations, seed_kb, taxonomy, use_coupling=coupling
        )
        per_iteration = []
        # Re-run incrementally to record the precision trajectory.
        for i in range(1, iterations + 1):
            fresh = NeverEndingLearner(
                relations, seed_kb, taxonomy, use_coupling=coupling
            )
            promoted = fresh.run(occurrences, iterations=i)
            per_iteration.append(
                (len(promoted), cumulative_precision(promoted, bench_world.facts))
            )
        return per_iteration

    coupled = run(True)
    uncoupled = run(False)

    rows = []
    for i in range(iterations):
        rows.append(
            [
                i + 1,
                coupled[i][0],
                coupled[i][1],
                uncoupled[i][0],
                uncoupled[i][1],
            ]
        )

    benchmark(
        NeverEndingLearner(relations, seed_kb, taxonomy).run,
        occurrences,
        2,
    )

    print_table(
        "E13: never-ending learning — cumulative promoted-KB precision",
        ["iteration", "coupled facts", "coupled P", "uncoupled facts", "uncoupled P"],
        rows,
    )
    # The NELL shape: coupling keeps precision higher at every horizon, and
    # the gap is clear by the final iteration.
    assert coupled[-1][1] > uncoupled[-1][1] + 0.02
    for i in range(iterations):
        assert coupled[i][1] >= uncoupled[i][1] - 0.02
    # Drift: the uncoupled run degrades from its first iteration.
    assert uncoupled[-1][1] < uncoupled[0][1]
