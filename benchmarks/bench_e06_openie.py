"""E6 — Open information extraction vs closed IE (tutorial section 3).

Reproduces the ReVerb result shape: open IE harvests far more distinct
relation phrases (yield) than the fixed relation inventory of closed IE,
at lower argument-level precision; ReVerb's lexical constraint prunes
incoherent phrases; frequent-sequence mining recovers the canonical
relation n-grams; and synonymous phrasings cluster by shared argument
pairs.
"""

from __future__ import annotations

import pytest

from repro.bigdata import frequent_sequences
from repro.eval import print_table
from repro.extraction import (
    PatternExtractor,
    ReVerbExtractor,
    candidates_to_store,
    cluster_relation_phrases,
)


@pytest.mark.benchmark(group="e06")
def test_e06_open_vs_closed(benchmark, bench_world, bench_sentences, bench_occurrences):
    closed_store = candidates_to_store(
        PatternExtractor().extract(bench_occurrences)
    )
    closed_yield = len(closed_store)
    closed_relations = len({t.predicate for t in closed_store})

    constrained = ReVerbExtractor(min_distinct_pairs=2)
    open_triples = constrained.extract_corpus(bench_sentences)
    strict = ReVerbExtractor(min_distinct_pairs=8)
    strict_triples = strict.extract_corpus(bench_sentences)
    unconstrained = ReVerbExtractor(apply_lexical_constraint=False)
    raw_triples = unconstrained.extract_corpus(bench_sentences)

    name_index = bench_world.alias_index()

    def argument_precision(triples):
        """Fraction of extractions whose both arguments are real entities."""
        good = 0
        for triple in triples:
            if triple.arg1 in name_index and triple.arg2 in name_index:
                good += 1
        return good / len(triples) if triples else 0.0

    rows = [
        ["closed IE (patterns)", closed_yield, closed_relations, 1.0],
        [
            "open IE (ReVerb, lexical constraint)",
            len(open_triples),
            len({t.normalized for t in open_triples}),
            argument_precision(open_triples),
        ],
        [
            "open IE (no lexical constraint)",
            len(raw_triples),
            len({t.normalized for t in raw_triples}),
            argument_precision(raw_triples),
        ],
        [
            "open IE (strict: 8 distinct pairs)",
            len(strict_triples),
            len({t.normalized for t in strict_triples}),
            argument_precision(strict_triples),
        ],
    ]

    benchmark(unconstrained.extract_corpus, bench_sentences[:150])

    print_table(
        "E6: open vs closed IE yield and argument precision",
        ["method", "extractions", "distinct relations", "arg precision"],
        rows,
    )

    # Frequent-sequence mining over relation phrases: the canonical n-grams.
    phrases = [tuple(t.normalized.split()) for t in open_triples]
    mined = {
        gram: count
        for gram, count in frequent_sequences(
            phrases, min_support=5, contiguous=True
        ).items()
        if len(gram) >= 2
    }
    top = sorted(mined.items(), key=lambda kv: -kv[1])[:8]
    print_table(
        "E6b: frequent relation-phrase n-grams",
        ["n-gram", "support"],
        [[" ".join(gram), count] for gram, count in top],
    )

    clusters = cluster_relation_phrases(open_triples, min_shared_pairs=2)
    multi = [c for c in clusters if len(c) > 1]
    print_table(
        "E6c: relation synonym clusters (top 5 multi-phrase)",
        ["cluster"],
        [[", ".join(sorted(c))] for c in multi[:5]],
    )

    open_yield, open_relations, open_precision = rows[1][1], rows[1][2], rows[1][3]
    raw_precision = rows[2][3]
    strict_relations, strict_precision = rows[3][2], rows[3][3]
    assert open_relations > closed_relations          # yield: far more relations
    assert open_yield > closed_yield * 0.8
    assert open_precision < 1.0                       # but noisier than closed IE
    assert open_precision >= raw_precision            # the constraint only helps
    assert strict_relations < open_relations          # stricter support cuts yield
    assert strict_precision >= open_precision - 0.02  # without losing precision
    assert mined                                       # canonical n-grams found
