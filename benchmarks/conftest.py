"""Shared workloads for the E1-E12 benchmark harnesses.

Benchmarks use a larger world than the unit tests; everything is seeded so
the printed tables are reproducible run to run.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.corpus import CorpusConfig, build_wiki, synthesize
from repro.extraction import corpus_occurrences, resolver_from_aliases
from repro.kb import Entity, TripleStore
from repro.world import WorldConfig, generate_world

BENCH_WORLD_CONFIG = WorldConfig(
    seed=101,
    n_countries=10,
    n_cities=40,
    n_universities=14,
    n_companies=28,
    n_people=200,
    ambiguity=0.5,
)


@pytest.fixture(scope="session")
def bench_world():
    return generate_world(BENCH_WORLD_CONFIG)


@pytest.fixture(scope="session")
def bench_wiki(bench_world):
    return build_wiki(bench_world)


@pytest.fixture(scope="session")
def bench_documents(bench_world):
    return synthesize(
        bench_world,
        CorpusConfig(seed=102, mentions_per_fact=1.5, p_short_alias=0.1),
    )


@pytest.fixture(scope="session")
def bench_sentences(bench_documents):
    return [s.text for d in bench_documents for s in d.sentences]


@pytest.fixture(scope="session")
def bench_resolver(bench_world):
    return resolver_from_aliases(bench_world.aliases)


@pytest.fixture(scope="session")
def bench_occurrences(bench_sentences, bench_resolver):
    return corpus_occurrences(bench_sentences, bench_resolver)


@pytest.fixture(scope="session")
def bench_seed_kb(bench_world):
    import random

    rng = random.Random(103)
    facts = [t for t in bench_world.facts if isinstance(t.object, Entity)]
    rng.shuffle(facts)
    return TripleStore(facts[: len(facts) // 2])


def _instrumented_pipeline_report() -> dict:
    """One traced pipeline build on a small world, as report_json() data.

    Observability stays *off* during the timed benchmarks (so the numbers
    measure the uninstrumented hot paths); the stage breakdown attached to
    the bench JSON comes from this separate, fully traced run.
    """
    from repro.pipeline import KnowledgeBaseBuilder

    world = generate_world(WorldConfig(seed=BENCH_WORLD_CONFIG.seed, n_people=60))
    wiki = build_wiki(world)
    obs.reset()
    obs.enable()
    try:
        KnowledgeBaseBuilder(wiki, aliases=world.aliases).build()
        return obs.report_json()
    finally:
        obs.disable()
        obs.reset()


def pytest_benchmark_update_json(config, benchmarks, output_json):
    """Attach a stage-level observability breakdown to saved bench JSON.

    Every ``--benchmark-json=BENCH_*.json`` run gains a top-level
    ``stages`` key (span path, call count, total seconds, stage counters)
    plus the full ``observability`` export, so regressions can be localized
    to a pipeline stage without rerunning anything.
    """
    report = _instrumented_pipeline_report()
    output_json["stages"] = report["stages"]
    output_json["observability"] = report
