"""Shared workloads for the E1-E12 benchmark harnesses.

Benchmarks use a larger world than the unit tests; everything is seeded so
the printed tables are reproducible run to run.
"""

from __future__ import annotations

import pytest

from repro.corpus import CorpusConfig, build_wiki, synthesize
from repro.extraction import corpus_occurrences, resolver_from_aliases
from repro.kb import Entity, TripleStore
from repro.world import WorldConfig, generate_world

BENCH_WORLD_CONFIG = WorldConfig(
    seed=101,
    n_countries=10,
    n_cities=40,
    n_universities=14,
    n_companies=28,
    n_people=200,
    ambiguity=0.5,
)


@pytest.fixture(scope="session")
def bench_world():
    return generate_world(BENCH_WORLD_CONFIG)


@pytest.fixture(scope="session")
def bench_wiki(bench_world):
    return build_wiki(bench_world)


@pytest.fixture(scope="session")
def bench_documents(bench_world):
    return synthesize(
        bench_world,
        CorpusConfig(seed=102, mentions_per_fact=1.5, p_short_alias=0.1),
    )


@pytest.fixture(scope="session")
def bench_sentences(bench_documents):
    return [s.text for d in bench_documents for s in d.sentences]


@pytest.fixture(scope="session")
def bench_resolver(bench_world):
    return resolver_from_aliases(bench_world.aliases)


@pytest.fixture(scope="session")
def bench_occurrences(bench_sentences, bench_resolver):
    return corpus_occurrences(bench_sentences, bench_resolver)


@pytest.fixture(scope="session")
def bench_seed_kb(bench_world):
    import random

    rng = random.Random(103)
    facts = [t for t in bench_world.facts if isinstance(t.object, Entity)]
    rng.shuffle(facts)
    return TripleStore(facts[: len(facts) // 2])
