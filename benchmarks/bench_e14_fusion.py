"""E14 — Knowledge-Vault-style fusion (extension experiment).

Reproduces the Knowledge Vault result shape (Dong et al., KDD 2014 —
reference [9] of the tutorial): fusing multiple extractors with a
graph-based prior yields *calibrated* fact probabilities that beat every
single extractor on F1; the graph prior contributes (ablation); and the
reliability diagram is close to the diagonal.
"""

from __future__ import annotations

import pytest

from repro.corpus import CorpusConfig, synthesize
from repro.corpus.document import corpus_gold_facts
from repro.eval import brier_score, calibration_bins, precision_recall, print_table
from repro.extraction import (
    DependencyPathExtractor,
    DistantSupervisionExtractor,
    KnowledgeFusion,
    PatternExtractor,
    corpus_occurrences,
    resolver_from_aliases,
)
from repro.kb import Entity
from repro.world import schema as ws

RELATIONS = [s.relation for s in ws.RELATION_SPECS]
EXTRACTORS = {"surface-patterns", "dependency-paths", "distant-supervision"}


@pytest.fixture(scope="module")
def fusion_workload(bench_world, bench_seed_kb):
    """Two disjoint corpora: one to train the fusion layer, one to test."""

    def corpus(seed):
        documents = synthesize(
            bench_world,
            CorpusConfig(
                seed=seed, mentions_per_fact=1.5, p_false=0.25, p_short_alias=0.1
            ),
        )
        resolver = resolver_from_aliases(bench_world.aliases)
        sentences = [s.text for d in documents for s in d.sentences]
        occurrences = corpus_occurrences(sentences, resolver)
        candidates = list(PatternExtractor().extract(occurrences))
        paths = DependencyPathExtractor(bench_seed_kb, RELATIONS)
        paths.learn(occurrences)
        candidates += paths.extract(occurrences)
        distant = DistantSupervisionExtractor(bench_seed_kb, RELATIONS)
        distant.train(occurrences)
        candidates += distant.extract(occurrences)
        gold = {
            key for key in corpus_gold_facts(documents)
            if isinstance(key[2], Entity)
        }
        return candidates, gold

    return corpus(181), corpus(182)


@pytest.mark.benchmark(group="e14")
def test_e14_fusion_beats_single_extractors(
    benchmark, bench_world, bench_seed_kb, fusion_workload
):
    (train_candidates, __), (test_candidates, test_gold) = fusion_workload

    rows = []
    best_single_f1 = 0.0
    for extractor in sorted(EXTRACTORS):
        keys = {c.key() for c in test_candidates if c.extractor == extractor}
        prf = precision_recall(keys, test_gold)
        best_single_f1 = max(best_single_f1, prf.f1)
        rows.append([extractor, prf.precision, prf.recall, prf.f1])

    fusion = KnowledgeFusion(EXTRACTORS, bench_seed_kb)
    fusion.train(train_candidates, truth=bench_world.facts)
    fused = fusion.fuse(test_candidates)
    accepted = fusion.to_store(fused, threshold=0.5)
    fused_prf = precision_recall({t.spo() for t in accepted}, test_gold)
    rows.append(["fusion (graph prior)", fused_prf.precision, fused_prf.recall, fused_prf.f1])

    no_prior = KnowledgeFusion(EXTRACTORS, bench_seed_kb, use_graph_prior=False)
    no_prior.train(train_candidates, truth=bench_world.facts)
    plain = no_prior.to_store(no_prior.fuse(test_candidates), threshold=0.5)
    plain_prf = precision_recall({t.spo() for t in plain}, test_gold)
    rows.append(["fusion (no prior)", plain_prf.precision, plain_prf.recall, plain_prf.f1])

    benchmark(fusion.fuse, test_candidates[:500])

    print_table(
        "E14: extractor fusion on a held-out corpus",
        ["signal", "P", "R", "F1"],
        rows,
    )

    outcomes = [(f.subject, f.relation, f.object) in test_gold for f in fused]
    probabilities = [f.probability for f in fused]
    brier = brier_score(probabilities, outcomes)
    bins = calibration_bins(probabilities, outcomes, bins=5)
    print_table(
        "E14b: calibration (reliability diagram)",
        ["mean predicted", "observed rate", "n"],
        [[p, o, n] for p, o, n in bins],
    )
    print_table("E14c: summary", ["metric", "value"], [["brier", brier]])

    # Knowledge Vault shape.
    assert fused_prf.f1 > best_single_f1
    assert fused_prf.f1 >= plain_prf.f1 - 0.01   # the prior never hurts
    assert brier < 0.2
    # Calibration: higher predicted bins see higher observed rates.
    observed = [o for __, o, __ in bins]
    assert observed[-1] > observed[0]
