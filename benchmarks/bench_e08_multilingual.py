"""E8 — multilingual knowledge harvesting (tutorial section 3).

Reproduces the cross-lingual alignment result shape: interlanguage links
are perfectly precise but incomplete (dropout); transliteration-similarity
matching covers everything but fails on exonyms ("Germany"/"Deutschland"-
style divergent names); links-plus-strings combines the best of both.
Swept over the link dropout rate.
"""

from __future__ import annotations

import pytest

from repro.corpus import WikiConfig, build_wiki
from repro.eval import print_table
from repro.extraction import align_by_links, align_by_strings, align_combined


@pytest.mark.benchmark(group="e08")
def test_e08_label_alignment(benchmark, bench_world):
    lang = "de"
    rows = []
    final_wiki = None
    for dropout in (0.1, 0.3, 0.5):
        wiki = build_wiki(
            bench_world, WikiConfig(seed=121, interlanguage_dropout=dropout)
        )
        final_wiki = wiki
        english = sorted(wiki.pages)
        foreign = [
            bench_world.label_in(wiki.pages[t].entity, lang) for t in english
        ]
        gold = dict(zip(english, foreign))

        def coverage_accuracy(alignments):
            correct = sum(
                1 for a in alignments if gold.get(a.english) == a.foreign
            )
            return correct / len(english)

        links = align_by_links(wiki, lang)
        strings = align_by_strings(english, foreign)
        combined = align_combined(wiki, lang, foreign)
        rows.append(
            [
                f"dropout={dropout}",
                coverage_accuracy(links),
                coverage_accuracy(strings),
                coverage_accuracy(combined),
            ]
        )

    english = sorted(final_wiki.pages)
    foreign = [
        bench_world.label_in(final_wiki.pages[t].entity, lang) for t in english
    ]
    benchmark(align_by_strings, english[:80], foreign[:80])

    print_table(
        "E8: cross-lingual label alignment accuracy (German)",
        ["setting", "links only", "strings only", "combined"],
        rows,
    )
    for row in rows:
        __, links_acc, strings_acc, combined_acc = row
        assert combined_acc >= links_acc          # combined never loses links
        assert combined_acc > strings_acc         # exonyms need links
    # Links degrade with dropout; strings are dropout-invariant.
    assert rows[0][1] > rows[-1][1]
    assert abs(rows[0][2] - rows[-1][2]) < 0.05
