"""E7 — temporal knowledge harvesting (tutorial section 3).

Reproduces the temporal-scoping result shape: explicit point expressions
("in 1981") scope facts with near-perfect accuracy, full spans ("from 1990
to 2001") recover both endpoints, and year *attributes* (birth/founding/
release years) are harvested at high precision; recall is bounded by how
often the corpus verbalizes the year at all.
"""

from __future__ import annotations

import random

import pytest

from repro.corpus import TEMPLATES, render_fact_sentence
from repro.eval import print_table
from repro.extraction import attach_scopes, extract_year_attributes, Candidate
from repro.world import schema as ws


@pytest.fixture(scope="module")
def scoped_workload(bench_world):
    """Render every scoped fact through a year-bearing template."""
    rng = random.Random(117)
    examples = []
    for relation in (ws.WON_PRIZE, ws.MARRIED_TO, ws.CEO_OF, ws.WORKS_AT):
        year_templates = [
            t for t in TEMPLATES[relation] if t.needs_year or t.needs_span
        ]
        if not year_templates:
            continue
        for fact in bench_world.facts.match(predicate=relation):
            if fact.scope is None:
                continue
            template = rng.choice(year_templates)
            sentence = render_fact_sentence(bench_world, fact, template, rng)
            examples.append((fact, template, sentence.text))
    return examples


@pytest.mark.benchmark(group="e07")
def test_e07_fact_scoping(benchmark, scoped_workload):
    point_correct = point_total = 0
    span_correct = span_total = 0
    for fact, template, text in scoped_workload:
        candidate = Candidate(
            fact.subject, fact.predicate, fact.object, 0.9, "bench", text
        )
        scoped = attach_scopes([candidate])[0]
        if template.needs_span:
            span_total += 1
            if scoped.scope == fact.scope:
                span_correct += 1
        else:
            point_total += 1
            if (
                scoped.scope is not None
                and scoped.scope.begin == fact.scope.begin
            ):
                span = scoped.scope
                point_correct += 1

    benchmark(
        attach_scopes,
        [
            Candidate(f.subject, f.predicate, f.object, 0.9, "bench", text)
            for f, __, text in scoped_workload[:100]
        ],
    )

    rows = [
        ["point expressions (begin year)", point_correct / max(point_total, 1), point_total],
        ["full spans (both endpoints)", span_correct / max(span_total, 1), span_total],
    ]
    print_table("E7a: temporal scoping accuracy", ["expression", "accuracy", "n"], rows)
    assert rows[0][1] > 0.9
    assert rows[1][1] > 0.9


@pytest.mark.benchmark(group="e07")
def test_e07_year_attributes(benchmark, bench_world):
    rng = random.Random(118)
    correct = wrong = missed = 0
    attribute_specs = [
        (ws.BIRTH_YEAR, ws.BORN_IN, ws.PERSON),
        (ws.FOUNDING_YEAR, ws.FOUNDED, ws.COMPANY),
    ]
    for year_relation, textual_relation, subject_class in attribute_specs:
        for fact in bench_world.facts.match(predicate=year_relation):
            gold_year = fact.object.value
            # Render a sentence that (maybe) verbalizes the year.
            if year_relation == ws.BIRTH_YEAR:
                text_fact = None
                for t in bench_world.facts.match(subject=fact.subject, predicate=ws.BORN_IN):
                    text_fact = t
                subject = fact.subject
                template = next(
                    t for t in TEMPLATES[ws.BORN_IN] if t.needs_year
                )
            else:
                text_fact = None
                for t in bench_world.facts.match(predicate=ws.FOUNDED, obj=fact.subject):
                    text_fact = t
                subject = fact.subject
                template = next(
                    t for t in TEMPLATES[ws.FOUNDED] if t.needs_year
                )
                if text_fact is None:
                    continue
            if text_fact is None:
                continue
            sentence = render_fact_sentence(bench_world, text_fact, template, rng)
            # The template draws a random year when the fact is unscoped; we
            # extract and compare against what the sentence actually says.
            extracted = extract_year_attributes(
                subject, sentence.text, subject_class
            )
            matching = [t for t in extracted if t.predicate == year_relation]
            if not matching:
                missed += 1
            else:
                said_year = matching[0].object.value
                if said_year in sentence.text:
                    correct += 1
                else:
                    wrong += 1

    benchmark(
        extract_year_attributes,
        bench_world.people[0],
        "Alan Weber was born in Lorvik in 1950.",
        ws.PERSON,
    )

    total = correct + wrong + missed
    rows = [
        ["extracted, faithful to text", correct / total, correct],
        ["extracted, wrong year", wrong / total, wrong],
        ["missed", missed / total, missed],
    ]
    print_table("E7b: year-attribute harvesting", ["outcome", "rate", "n"], rows)
    assert correct / total > 0.85
    assert wrong == 0


@pytest.mark.benchmark(group="e07")
def test_e07_scope_inference(benchmark, bench_world):
    """Lifespan-bound inference for facts with no explicit temporal statement."""
    import dataclasses

    from repro.extraction import infer_scope_bounds, lifespan_violations
    from repro.kb import TripleStore

    stripped = TripleStore(
        dataclasses.replace(t, scope=None) for t in bench_world.store
    )
    inferred = benchmark(infer_scope_bounds, stripped)

    contained = checked = 0
    widths = []
    for gold in bench_world.facts:
        if gold.scope is None:
            continue
        witness = inferred.get(*gold.spo())
        if witness is None or witness.scope is None:
            continue
        checked += 1
        lower_ok = witness.scope.begin <= gold.scope.begin
        upper_ok = witness.scope.end is None or (
            gold.scope.end is not None and gold.scope.end <= witness.scope.end
        )
        if lower_ok and upper_ok:
            contained += 1
        if witness.scope.end is not None:
            widths.append(witness.scope.end - witness.scope.begin)

    rows = [
        ["gold scopes covered by inferred bounds", contained / checked, checked],
        [
            "mean inferred width (years, closed spans)",
            sum(widths) / len(widths) if widths else 0.0,
            len(widths),
        ],
        [
            "lifespan violations in the gold world",
            len(lifespan_violations(bench_world.store)),
            "",
        ],
    ]
    print_table("E7c: lifespan-bound scope inference", ["measure", "value", "n"], rows)
    assert contained / checked > 0.95
    assert lifespan_violations(bench_world.store) == []
