"""E12 — the motivating analytics application (tutorial section 4).

"Track and compare two entities in social media over an extended timespan
(e.g., the Apple iPhone vs Samsung Galaxy families)."  Reproduces the
knowledge-is-an-asset shape: the KB-backed resolver (release-year aware)
assigns ambiguous family mentions to the right product generation far more
accurately than string matching; both recover the per-family volume trend;
the sentiment series separate the two families.
"""

from __future__ import annotations

import pytest

from repro.analytics import ProductTracker, volume_correlation
from repro.corpus import SocialConfig, generate_stream
from repro.eval import print_table


@pytest.fixture(scope="module")
def stream(bench_world):
    return generate_stream(
        bench_world, SocialConfig(seed=161, months=36, p_family_alias=0.5)
    )


@pytest.fixture(scope="module")
def tracker(bench_world):
    return ProductTracker(bench_world.store, bench_world.product_family)


@pytest.mark.benchmark(group="e12")
def test_e12_tracking_comparison(benchmark, bench_world, stream, tracker):
    results = {
        method: tracker.track(stream, method, start_year=stream.start_year)
        for method in ("string", "kb")
    }

    rows = []
    for method, result in results.items():
        correlations = [
            volume_correlation(result.volume[f], stream.gold_volume[f])
            for f in stream.families
        ]
        rows.append(
            [
                method,
                result.assignment_accuracy,
                result.sentiment_accuracy,
                min(correlations),
            ]
        )

    benchmark(tracker.track, stream, "kb", stream.start_year)

    print_table(
        "E12: product tracking, string vs KB-backed assignment",
        ["method", "product-assign acc", "sentiment acc", "volume corr (min)"],
        rows,
    )

    kb_result = results["kb"]
    string_result = results["string"]
    # Knowledge as an asset: release-year facts resolve family aliases.
    assert kb_result.assignment_accuracy > string_result.assignment_accuracy + 0.05
    # Both recover the family-level volume trend exactly (family is
    # unambiguous), so the correlation row is ~1.0 for both.
    for row in rows:
        assert row[3] > 0.95
    assert kb_result.sentiment_accuracy > 0.9

    # The comparison series the application exists for: monthly volume and
    # sentiment per family, printed as the final "dashboard" table.
    family_rows = []
    months = kb_result.months
    step = max(months // 6, 1)
    for month in range(0, months, step):
        row = [month]
        for family in stream.families:
            row.append(kb_result.volume[family][month])
            row.append(round(kb_result.sentiment[family][month], 2))
        family_rows.append(row)
    headers = ["month"]
    for family in stream.families:
        headers += [f"{family} vol", f"{family} sent"]
    print_table("E12b: recovered tracking series (KB method)", headers, family_rows)
