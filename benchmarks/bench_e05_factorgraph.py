"""E5 — DeepDive-style statistical inference (tutorial section 3).

Reproduces the factor-graph result shape: (a) Gibbs marginals converge to
the exact marginals as sweeps grow; (b) probabilistic inference over the
candidate ensemble beats the raw candidate set on F1; (c) inference cost
grows roughly linearly in the number of grounded factors.
"""

from __future__ import annotations

import time

import pytest

from repro.corpus import CorpusConfig, synthesize
from repro.corpus.document import corpus_gold_facts
from repro.eval import brier_score, precision_recall, print_table
from repro.extraction import (
    DeepDivePipeline,
    PatternExtractor,
    corpus_occurrences,
    resolver_from_aliases,
)
from repro.kb import Entity, Taxonomy
from repro.reasoning import FactorGraph, implies, not_both


@pytest.mark.benchmark(group="e05")
def test_e05_gibbs_convergence(benchmark):
    graph = FactorGraph()
    for i in range(8):
        graph.prior(f"x{i}", 0.5 * (i % 3 - 1))
    for i in range(7):
        graph.add_factor((f"x{i}", f"x{i+1}"), implies, 0.8)
    graph.add_factor(("x0", "x7"), not_both, 1.5)
    exact = graph.exact_marginals()

    rows = []
    for sweeps in (50, 200, 800, 3200):
        sampled = graph.gibbs_marginals(
            iterations=sweeps + 50, burn_in=50, seed=3
        )
        error = max(abs(sampled[v] - exact[v]) for v in exact)
        rows.append([sweeps, error])

    benchmark(graph.gibbs_marginals, 250, 50, 3)

    print_table(
        "E5a: Gibbs convergence to exact marginals (8-variable chain)",
        ["sweeps", "max |error|"],
        rows,
    )
    assert rows[-1][1] < 0.05
    assert rows[-1][1] <= rows[0][1] + 1e-9


@pytest.mark.benchmark(group="e05")
def test_e05_inference_quality(benchmark, bench_world):
    documents = synthesize(
        bench_world,
        CorpusConfig(seed=115, mentions_per_fact=1.6, p_false=0.25, p_short_alias=0.05),
    )
    resolver = resolver_from_aliases(bench_world.aliases)
    sentences = [s.text for d in documents for s in d.sentences]
    occurrences = corpus_occurrences(sentences, resolver)
    candidates = PatternExtractor().extract(occurrences)
    gold = {
        key for key in corpus_gold_facts(documents)
        if isinstance(key[2], Entity)
    }
    taxonomy = Taxonomy(bench_world.store)
    pipeline = DeepDivePipeline(taxonomy)

    accepted, marginals, stats = pipeline.infer(
        candidates, iterations=400, burn_in=80, seed=4
    )
    raw_keys = {c.key() for c in candidates}
    raw_prf = precision_recall(raw_keys, gold)
    inferred_prf = precision_recall({t.spo() for t in accepted}, gold)

    outcomes = [key in gold for key in marginals]
    probabilities = [marginals[key] for key in marginals]
    brier = brier_score(probabilities, outcomes)

    benchmark(
        pipeline.infer, candidates[:200], 100, 20, 4
    )

    print_table(
        "E5b: factor-graph inference vs raw candidates",
        ["method", "P", "R", "F1", "facts"],
        [
            ["raw candidates", raw_prf.precision, raw_prf.recall, raw_prf.f1, len(raw_keys)],
            [
                "deepdive marginals>=0.5",
                inferred_prf.precision,
                inferred_prf.recall,
                inferred_prf.f1,
                len(accepted),
            ],
            ["brier score", brier, "", "", stats.variables],
        ],
    )
    assert inferred_prf.precision > raw_prf.precision
    assert inferred_prf.f1 >= raw_prf.f1 - 0.02
    assert brier < 0.25


@pytest.mark.benchmark(group="e05")
def test_e05_scaling_linear_in_factors(benchmark):
    rows = []
    timings = []
    for n in (100, 200, 400, 800):
        graph = FactorGraph()
        for i in range(n):
            graph.prior(f"v{i}", 0.3)
        for i in range(n - 1):
            graph.add_factor((f"v{i}", f"v{i+1}"), implies, 0.5)
        start = time.perf_counter()
        graph.gibbs_marginals(iterations=60, burn_in=10, seed=0)
        elapsed = time.perf_counter() - start
        rows.append([n, 2 * n - 1, round(elapsed * 1000, 1)])
        timings.append(elapsed)

    small_graph = FactorGraph()
    for i in range(100):
        small_graph.prior(f"v{i}", 0.3)
    benchmark(small_graph.gibbs_marginals, 60, 10, 0)

    print_table(
        "E5c: Gibbs cost vs graph size (60 sweeps)",
        ["variables", "factors", "ms"],
        rows,
    )
    # Roughly linear: 8x the variables should cost far less than 32x.
    assert timings[-1] < timings[0] * 32
