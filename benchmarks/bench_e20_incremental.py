"""E20 — incremental builds: delta ingestion vs full rebuild.

Benchmarks :class:`repro.pipeline.IncrementalBuilder` the way an
always-on KB deployment is judged: a corpus is ingested once, then small
batches of changed pages arrive and the question is how much cheaper a
delta ingest is than rebuilding the world from scratch.

* **delta vs full** — for 1% and 10% changed-page batches, time the
  delta ingest (re-extract only stale pages, replay untouched reasoning
  components from the cache, flush one tombstoned delta generation,
  compact) against a one-shot rebuild of the same final corpus, with the
  acceptance invariant asserted per row: the compacted incremental
  directory is byte-identical to the one-shot directory
  (``diff_segment_dirs == []``);
* **no-op floor** — the benchmark loop re-ingests one unchanged page,
  measuring the fixed cost of the incremental machinery itself
  (re-extraction of the batch page, cache replay, empty-delta detection).

``REPRO_E20_SMOKE=1`` shrinks the workload for CI smoke runs.
"""

from __future__ import annotations

import os
import shutil
import time

import pytest

from repro.corpus import build_wiki
from repro.corpus.document import Document
from repro.corpus.wiki import WikiPage
from repro.eval import print_table
from repro.kb import diff_segment_dirs
from repro.pipeline import IncrementalBuilder
from repro.world import WorldConfig, generate_world

SEED = 201
_SMOKE = bool(os.environ.get("REPRO_E20_SMOKE"))
#: Fractions of the corpus changed per delta batch.
FRACTIONS = (0.01, 0.10)


def _e20_world():
    if _SMOKE:
        return generate_world(WorldConfig(seed=SEED, n_people=30))
    return generate_world(
        WorldConfig(
            seed=SEED,
            n_people=400,
            n_cities=60,
            n_companies=40,
            n_universities=20,
        )
    )


def _drop_last_sentence(page: WikiPage) -> WikiPage:
    """A changed page: same registrations, one sentence shorter."""
    sentences = list(page.document.sentences)
    if len(sentences) > 1:
        sentences = sentences[:-1]
    return WikiPage(
        title=page.title,
        entity=page.entity,
        document=Document(doc_id=page.document.doc_id, sentences=sentences),
        infobox=dict(page.infobox),
        categories=list(page.categories),
        interlanguage=dict(page.interlanguage),
    )


@pytest.mark.benchmark(group="e20")
def test_e20_delta_ingest_vs_full_rebuild(benchmark, tmp_path):
    world = _e20_world()
    wiki = build_wiki(world)
    titles = sorted(wiki.pages)
    pages = [wiki.pages[t] for t in titles]

    base = str(tmp_path / "base")
    t0 = time.perf_counter()
    with IncrementalBuilder(base) as builder:
        seeded = builder.ingest(
            pages=pages, aliases=world.aliases, compact=True
        )
    seed_s = time.perf_counter() - t0

    rows = []
    for fraction in FRACTIONS:
        n_changed = max(1, round(len(titles) * fraction))
        changed = [
            _drop_last_sentence(wiki.pages[t]) for t in titles[:n_changed]
        ]

        work = str(tmp_path / f"delta-{n_changed}")
        shutil.copytree(base, work)
        t0 = time.perf_counter()
        with IncrementalBuilder(work) as builder:
            report = builder.ingest(pages=changed, compact=True)
        delta_s = time.perf_counter() - t0

        # The honest comparator: rebuild the *modified* corpus one-shot.
        final = {t: wiki.pages[t] for t in titles}
        for page in changed:
            final[page.title] = page
        oneshot = str(tmp_path / f"oneshot-{n_changed}")
        t0 = time.perf_counter()
        with IncrementalBuilder(oneshot) as builder:
            builder.ingest(
                pages=[final[t] for t in titles],
                aliases=world.aliases,
                compact=True,
            )
        full_s = time.perf_counter() - t0
        assert diff_segment_dirs(work, oneshot) == []

        rows.append([
            f"{fraction:.0%}",
            n_changed,
            round(delta_s, 3),
            round(full_s, 3),
            round(full_s / delta_s, 1),
            report.reextracted_pages,
            report.cached_components,
            "yes",
        ])

    print_table(
        f"E20: delta ingest vs full rebuild ({len(titles)} pages, "
        f"{seeded.triples} triples)",
        ["delta", "pages", "delta s", "full s", "speedup x",
         "re-extracted", "cached comps", "byte-identical"],
        rows,
    )
    benchmark.extra_info["pages"] = len(titles)
    benchmark.extra_info["triples"] = seeded.triples
    benchmark.extra_info["seed_build_s"] = seed_s
    for row in rows:
        tag = row[0].rstrip("%")
        benchmark.extra_info[f"delta_{tag}pct_s"] = row[2]
        benchmark.extra_info[f"full_{tag}pct_s"] = row[3]
        benchmark.extra_info[f"speedup_{tag}pct"] = row[4]
    benchmark.extra_info["byte_identical_all_deltas"] = True

    # The repeatable loop: re-ingest one unchanged page — the fixed cost
    # of a delta pass whose diff comes out empty (no flush, no new epoch).
    floor_builder = IncrementalBuilder(base)
    try:
        benchmark(lambda: floor_builder.ingest(pages=[pages[0]]))
    finally:
        floor_builder.close()
