"""E17 — class-attribute discovery from the query stream (extension).

Reproduces the Biperpedia result shape (Gupta et al., PVLDB 2014 —
reference [13] of the tutorial): aggregating attribute-shaped queries over
a class's entities recovers the class's attribute vocabulary with high
precision at the top ranks; support and entity-diversity filters suppress
misspellings and single-entity noise; precision degrades gracefully as k
grows past the gold vocabulary size.
"""

from __future__ import annotations

import pytest

from repro.corpus import GOLD_ATTRIBUTES, QueryLogConfig, generate_query_log
from repro.eval import precision_at_k, print_table
from repro.taxonomy import AttributeDiscoverer, resolver_for_attributes
from repro.world import schema as ws


@pytest.mark.benchmark(group="e17")
def test_e17_attribute_discovery(benchmark, bench_world):
    log = generate_query_log(bench_world, QueryLogConfig(seed=211))

    def classes_of(entity):
        classes = []
        cls = bench_world.primary_class.get(entity)
        if cls is not None:
            classes.append(cls)
        if entity in bench_world.people:
            classes.append(ws.PERSON)
        return classes

    def build():
        discoverer = AttributeDiscoverer(
            resolver_for_attributes(bench_world), classes_of
        )
        for record in log.records:
            discoverer.observe(record.text, count=record.frequency)
        return discoverer

    discoverer = build()
    benchmark(build)

    rows = []
    for cls in (ws.PERSON, ws.COMPANY, ws.CITY, ws.COUNTRY, ws.SMARTPHONE):
        gold = [a for a, __ in GOLD_ATTRIBUTES[cls]]
        ranked = [a.attribute for a in discoverer.attributes_of(cls, top_k=12)]
        rows.append(
            [
                cls.local_name,
                len(ranked),
                precision_at_k(ranked, gold, 3),
                precision_at_k(ranked, gold, min(len(gold), len(ranked))),
                ", ".join(ranked[:4]),
            ]
        )

    print_table(
        "E17: discovered class attributes vs gold query vocabulary",
        ["class", "found", "P@3", "P@|gold|", "top attributes"],
        rows,
    )
    for row in rows:
        assert row[2] == 1.0          # top-3 are all real attributes
        assert row[3] >= 0.75         # most of the gold vocabulary recovered
