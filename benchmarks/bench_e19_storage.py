"""E19 — persistent segment storage: build at scale, reopen cold, serve.

Benchmarks the on-disk storage engine the way a KB deployment is judged:

* **build** — emit the sorted-segment files for a store ~10x the unit-test
  world, under a tracemalloc watch, reporting write time, bytes/triple,
  and peak build memory;
* **reopen** — open a cold snapshot (header validation + mmap + bloom
  load, no record scan) and time it;
* **serve cold vs warm** — per-request latency of a snapshot-backed
  engine answering straight off disk (cold file cache for the first
  touch of each page) against an in-memory ``TripleStore`` twin, with
  the acceptance invariant asserted: both engines return byte-identical
  JSON for the same request stream.

Also asserts byte-pinning end to end: two independent segment builds of
the same store produce byte-identical directories
(``diff_segment_dirs == []``).

``REPRO_E19_SMOKE=1`` shrinks the workload for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc

import pytest

from repro.eval import print_table
from repro.kb import TripleStore, diff_segment_dirs, open_snapshot, write_segments
from repro.obs.core import Histogram
from repro.serving import QueryEngine

SEED = 191
_SMOKE = bool(os.environ.get("REPRO_E19_SMOKE"))
#: Requests replayed against each engine in the latency comparison.
N_REQUESTS = 500 if _SMOKE else 5_000


def _segment_bytes(directory: str) -> int:
    return sum(
        os.path.getsize(os.path.join(directory, name))
        for name in os.listdir(directory)
    )


def _build_requests(store: TripleStore, n: int) -> list[tuple]:
    """A pinned request stream: subject lookups, predicate top-k."""
    import random

    subjects = sorted({t.subject for t in store}, key=lambda e: repr(e))
    predicates = sorted(store.predicates(), key=lambda r: repr(r))
    rng = random.Random(SEED)
    ops = []
    for _ in range(n):
        if rng.random() < 0.7:
            ops.append(("lookup", rng.choice(subjects)))
        else:
            ops.append(("topk", rng.choice(predicates)))
    return ops


def _replay(engine: QueryEngine, ops: list[tuple]) -> tuple[Histogram, list[str]]:
    histogram = Histogram("e19")
    digests = []
    for kind, target in ops:
        t0 = time.perf_counter()
        if kind == "lookup":
            payload = engine.lookup(subject=target)
        else:
            payload = engine.topk(10, predicate=target)
        histogram.values.append(time.perf_counter() - t0)
        digests.append(json.dumps(payload, sort_keys=True))
    return histogram, digests


def _build_store(bench_world) -> TripleStore:
    """The build workload: ~10x the unit-test KB (smoke keeps it small)."""
    if _SMOKE:
        return TripleStore(bench_world.facts)
    from repro.world import WorldConfig, generate_world

    world = generate_world(
        WorldConfig(
            seed=SEED,
            n_people=1_500,
            n_cities=100,
            n_countries=12,
            n_companies=60,
            n_universities=30,
        )
    )
    return TripleStore(world.facts)


@pytest.mark.benchmark(group="e19")
def test_e19_segment_build_and_reopen(benchmark, bench_world, tmp_path):
    store = _build_store(bench_world)
    left, right = str(tmp_path / "left"), str(tmp_path / "right")

    tracemalloc.start()
    t0 = time.perf_counter()
    write_segments(store, left)
    write_s = time.perf_counter() - t0
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    write_segments(store, right)
    assert diff_segment_dirs(left, right) == []

    t0 = time.perf_counter()
    snap = open_snapshot(left)
    open_s = time.perf_counter() - t0
    assert len(snap) == len(store)
    assert snap.epoch == store.epoch
    snap.close()

    total_bytes = _segment_bytes(left)
    print_table(
        "E19: segment build and cold reopen",
        ["triples", "write s", "open ms", "MiB on disk", "bytes/triple",
         "peak build MiB"],
        [[
            len(store),
            round(write_s, 3),
            round(open_s * 1000.0, 3),
            round(total_bytes / 2**20, 2),
            round(total_bytes / len(store)),
            round(peak / 2**20, 2),
        ]],
    )
    benchmark.extra_info["triples"] = len(store)
    benchmark.extra_info["write_s"] = write_s
    benchmark.extra_info["open_s"] = open_s
    benchmark.extra_info["disk_bytes"] = total_bytes
    benchmark.extra_info["bytes_per_triple"] = total_bytes / len(store)
    benchmark.extra_info["peak_build_bytes"] = peak
    benchmark.extra_info["byte_identical_builds"] = True

    def build_once():
        write_segments(store, str(tmp_path / "bench"))

    benchmark(build_once)


@pytest.mark.benchmark(group="e19")
def test_e19_cold_vs_warm_serving(benchmark, bench_world, tmp_path):
    store = TripleStore(bench_world.facts)
    directory = str(tmp_path / "seg")
    write_segments(store, directory)
    ops = _build_requests(store, N_REQUESTS)

    snap = open_snapshot(directory)
    # The in-memory twin is loaded from the snapshot so both engines
    # share content, epoch, and version — responses must be byte-equal.
    warm_store = TripleStore(snap)

    cold_engine = QueryEngine(snap, cache_size=1)  # effectively uncached
    warm_engine = QueryEngine(warm_store, cache_size=1)
    cold_hist, cold_digests = _replay(cold_engine, ops)
    warm_hist, warm_digests = _replay(warm_engine, ops)
    assert cold_digests == warm_digests  # byte-identical serving

    # A second snapshot pass shows the mmap page cache warming up.
    second_hist, _ = _replay(QueryEngine(snap, cache_size=1), ops)

    rows = [
        ["snapshot (cold)", round(cold_hist.p50 * 1e6, 1), round(cold_hist.p99 * 1e6, 1)],
        ["snapshot (2nd pass)", round(second_hist.p50 * 1e6, 1), round(second_hist.p99 * 1e6, 1)],
        ["in-memory", round(warm_hist.p50 * 1e6, 1), round(warm_hist.p99 * 1e6, 1)],
    ]
    print_table(
        f"E19: per-request latency, snapshot vs in-memory ({N_REQUESTS} requests)",
        ["engine", "p50 µs", "p99 µs"],
        rows,
    )
    benchmark.extra_info["requests"] = N_REQUESTS
    benchmark.extra_info["cold_p50_us"] = cold_hist.p50 * 1e6
    benchmark.extra_info["cold_p99_us"] = cold_hist.p99 * 1e6
    benchmark.extra_info["second_pass_p50_us"] = second_hist.p50 * 1e6
    benchmark.extra_info["second_pass_p99_us"] = second_hist.p99 * 1e6
    benchmark.extra_info["warm_p50_us"] = warm_hist.p50 * 1e6
    benchmark.extra_info["warm_p99_us"] = warm_hist.p99 * 1e6
    benchmark.extra_info["bloom_stats"] = dict(snap.stats)
    benchmark.extra_info["byte_identical_cold_vs_warm"] = True

    benchmark(lambda: _replay(QueryEngine(snap, cache_size=1), ops[:200]))
    snap.close()
