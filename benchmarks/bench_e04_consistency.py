"""E4 — consistency reasoning over noisy extractions (tutorial section 3).

Reproduces the SOFIE result shape: encoding candidate facts as soft unit
clauses and schema constraints as hard clauses, weighted MaxSat removes
most injected false statements at a small recall cost — and the ablation
shows each constraint family (functionality, types, relation disjointness)
contributing rejections.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.bigdata.backends import get_backend
from repro.corpus import CorpusConfig, synthesize
from repro.corpus.document import corpus_gold_facts
from repro.eval import precision_recall, print_table
from repro.extraction import (
    ConsistencyReasoner,
    PatternExtractor,
    candidates_to_store,
    corpus_occurrences,
    resolver_from_aliases,
)
from repro.kb import Entity, Taxonomy
from repro.reasoning import decompose, solve_decomposed


@pytest.fixture(scope="module")
def noisy_store(bench_world):
    documents = synthesize(
        bench_world,
        CorpusConfig(seed=113, mentions_per_fact=1.6, p_false=0.35,
                     p_cross_class=0.55, p_short_alias=0.05),
    )
    resolver = resolver_from_aliases(bench_world.aliases)
    sentences = [s.text for d in documents for s in d.sentences]
    occurrences = corpus_occurrences(sentences, resolver)
    store = candidates_to_store(PatternExtractor().extract(occurrences))
    gold = {
        key for key in corpus_gold_facts(documents)
        if isinstance(key[2], Entity)
    }
    return store, gold


@pytest.mark.benchmark(group="e04")
def test_e04_consistency_cleaning(benchmark, bench_world, noisy_store):
    store, gold = noisy_store
    taxonomy = Taxonomy(bench_world.store)

    def world_precision(s):
        triples = list(s)
        correct = sum(
            1 for t in triples
            if bench_world.facts.contains_fact(t.subject, t.predicate, t.object)
        )
        return correct / len(triples)

    rows = [
        [
            "raw extraction",
            world_precision(store),
            precision_recall({t.spo() for t in store}, gold).recall,
            len(store),
            0,
        ]
    ]
    configurations = [
        ("full MaxSat", dict()),
        ("no functionality", dict(use_functionality=False)),
        ("no types", dict(use_types=False)),
        ("no disjointness", dict(use_disjointness=False)),
    ]
    results = {}
    for label, flags in configurations:
        reasoner = ConsistencyReasoner(taxonomy, **flags)
        cleaned, report = reasoner.clean(store)
        results[label] = (cleaned, report)
        rows.append(
            [
                label,
                world_precision(cleaned),
                precision_recall({t.spo() for t in cleaned}, gold).recall,
                len(cleaned),
                report.rejected,
            ]
        )

    benchmark(ConsistencyReasoner(taxonomy).clean, store)

    print_table(
        "E4: MaxSat consistency cleaning (corpus with 30% false statements)",
        ["configuration", "world-P", "corpus-R", "facts", "rejected"],
        rows,
    )
    raw_precision = rows[0][1]
    full_precision = rows[1][1]
    full_recall = rows[1][2]
    raw_recall = rows[0][2]
    # SOFIE shape: a large precision lift at a small recall cost.
    assert full_precision > raw_precision + 0.04
    assert full_recall > raw_recall * 0.85
    # Each constraint family contributes: removing one weakens cleaning.
    __, full_report = results["full MaxSat"]
    __, nf_report = results["no functionality"]
    assert nf_report.rejected < full_report.rejected


@pytest.mark.benchmark(group="e04")
def test_e04_decomposed_parallel_maxsat(benchmark, bench_world, noisy_store):
    """Component decomposition ablation: monolithic vs decomposed MaxSat.

    The consistency instance shatters into many small components
    (functionality groups by (s, relation), disjointness by (s, o)), so
    the decomposed solver reaches the same (hard, soft) key while doing
    far less search — and the components parallelize across backends.
    Records the component-count distribution and parallel speedups into
    ``--benchmark-json`` via ``extra_info``.
    """
    store, __ = noisy_store
    taxonomy = Taxonomy(bench_world.store)
    reasoner = ConsistencyReasoner(taxonomy)
    problem, ___, ____ = reasoner.ground(store)
    decomposition = decompose(problem)
    sizes = decomposition.component_sizes()

    start = time.perf_counter()
    monolithic = problem.solve(seed=0)
    monolithic_s = time.perf_counter() - start

    def decomposed_with(backend: str, workers: int) -> tuple[float, object]:
        fresh_problem, ___, ____ = reasoner.ground(store)
        begin = time.perf_counter()
        result = solve_decomposed(
            fresh_problem, seed=0, backend=backend, workers=workers
        )
        return time.perf_counter() - begin, result

    serial_s, serial_result = decomposed_with("serial", 0)
    timings = {"monolithic": monolithic_s, "decomposed-serial": serial_s}
    rows = [
        ["monolithic", 1, round(monolithic_s, 4), "-"],
        [
            "decomposed serial", 1, round(serial_s, 4),
            round(monolithic_s / serial_s, 2) if serial_s else float("inf"),
        ],
    ]
    # Persistent pools: each backend is resolved once and reused across
    # repeated solves — one spinup per build, not one per clean().
    pools = {name: get_backend(name, 2) for name in ("thread", "process")}
    try:
        for name, pool in pools.items():
            elapsed, result = decomposed_with(pool, 2)
            assert result.assignment == serial_result.assignment, name
            assert result.soft_cost == serial_result.soft_cost, name
            # A second solve over the already-warm pool.
            warm_s, warm_result = decomposed_with(pool, 2)
            assert warm_result.assignment == serial_result.assignment, name
            timings[f"decomposed-{name}2"] = elapsed
            timings[f"decomposed-{name}2-warm"] = warm_s
            rows.append(
                [
                    f"decomposed {name} x2", 2,
                    round(elapsed, 4),
                    round(monolithic_s / elapsed, 2) if elapsed else float("inf"),
                ]
            )
            rows.append(
                [
                    f"decomposed {name} x2 (warm pool)", 2,
                    round(warm_s, 4),
                    round(monolithic_s / warm_s, 2) if warm_s else float("inf"),
                ]
            )
        pool_counters = {
            name: {"spinups": pool.spinups, "reuses": pool.reuses}
            for name, pool in pools.items()
        }
    finally:
        for pool in pools.values():
            pool.close()

    print_table(
        "E4b: component-decomposed MaxSat "
        f"({len(sizes)} components, largest {max(sizes, default=0)} vars, "
        f"{len(decomposition.trivial)} closed-form vars)",
        ["solver", "workers", "seconds", "speedup vs monolithic"],
        rows,
    )

    benchmark.extra_info["components"] = len(sizes)
    benchmark.extra_info["largest_component"] = max(sizes, default=0)
    benchmark.extra_info["trivial_vars"] = len(decomposition.trivial)
    benchmark.extra_info["component_size_distribution"] = {
        str(size): sizes.count(size) for size in sorted(set(sizes))
    }
    benchmark.extra_info["timings_s"] = {
        label: round(value, 6) for label, value in timings.items()
    }
    benchmark.extra_info["speedup_vs_monolithic"] = {
        label: round(monolithic_s / value, 3) if value else None
        for label, value in timings.items()
        if label != "monolithic"
    }
    benchmark.extra_info["pool_spinups"] = pool_counters["process"]["spinups"]
    benchmark.extra_info["pool_reuses"] = pool_counters["process"]["reuses"]
    benchmark.extra_info["pool_counters"] = pool_counters

    benchmark(lambda: decomposed_with("serial", 0))

    # Same solution quality as the monolithic solver ...
    assert serial_result.hard_violations == monolithic.hard_violations
    assert serial_result.soft_cost == pytest.approx(
        monolithic.soft_cost, abs=1e-6
    )
    # Persistent pools: the second solve reused the first solve's pool
    # (>= 1 fewer spinup per build than spin-per-call dispatch).
    for name, counter in pool_counters.items():
        assert counter["spinups"] == 1, name
        assert counter["reuses"] >= 1, name
    # ... while never slower serially, and faster with >= 2 real cores.
    assert serial_s <= monolithic_s * 1.10
    if (os.cpu_count() or 1) >= 2:
        assert timings["decomposed-process2"] < monolithic_s
