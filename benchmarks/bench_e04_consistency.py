"""E4 — consistency reasoning over noisy extractions (tutorial section 3).

Reproduces the SOFIE result shape: encoding candidate facts as soft unit
clauses and schema constraints as hard clauses, weighted MaxSat removes
most injected false statements at a small recall cost — and the ablation
shows each constraint family (functionality, types, relation disjointness)
contributing rejections.
"""

from __future__ import annotations

import pytest

from repro.corpus import CorpusConfig, synthesize
from repro.corpus.document import corpus_gold_facts
from repro.eval import precision_recall, print_table
from repro.extraction import (
    ConsistencyReasoner,
    PatternExtractor,
    candidates_to_store,
    corpus_occurrences,
    resolver_from_aliases,
)
from repro.kb import Entity, Taxonomy


@pytest.fixture(scope="module")
def noisy_store(bench_world):
    documents = synthesize(
        bench_world,
        CorpusConfig(seed=113, mentions_per_fact=1.6, p_false=0.35,
                     p_cross_class=0.55, p_short_alias=0.05),
    )
    resolver = resolver_from_aliases(bench_world.aliases)
    sentences = [s.text for d in documents for s in d.sentences]
    occurrences = corpus_occurrences(sentences, resolver)
    store = candidates_to_store(PatternExtractor().extract(occurrences))
    gold = {
        key for key in corpus_gold_facts(documents)
        if isinstance(key[2], Entity)
    }
    return store, gold


@pytest.mark.benchmark(group="e04")
def test_e04_consistency_cleaning(benchmark, bench_world, noisy_store):
    store, gold = noisy_store
    taxonomy = Taxonomy(bench_world.store)

    def world_precision(s):
        triples = list(s)
        correct = sum(
            1 for t in triples
            if bench_world.facts.contains_fact(t.subject, t.predicate, t.object)
        )
        return correct / len(triples)

    rows = [
        [
            "raw extraction",
            world_precision(store),
            precision_recall({t.spo() for t in store}, gold).recall,
            len(store),
            0,
        ]
    ]
    configurations = [
        ("full MaxSat", dict()),
        ("no functionality", dict(use_functionality=False)),
        ("no types", dict(use_types=False)),
        ("no disjointness", dict(use_disjointness=False)),
    ]
    results = {}
    for label, flags in configurations:
        reasoner = ConsistencyReasoner(taxonomy, **flags)
        cleaned, report = reasoner.clean(store)
        results[label] = (cleaned, report)
        rows.append(
            [
                label,
                world_precision(cleaned),
                precision_recall({t.spo() for t in cleaned}, gold).recall,
                len(cleaned),
                report.rejected,
            ]
        )

    benchmark(ConsistencyReasoner(taxonomy).clean, store)

    print_table(
        "E4: MaxSat consistency cleaning (corpus with 30% false statements)",
        ["configuration", "world-P", "corpus-R", "facts", "rejected"],
        rows,
    )
    raw_precision = rows[0][1]
    full_precision = rows[1][1]
    full_recall = rows[1][2]
    raw_recall = rows[0][2]
    # SOFIE shape: a large precision lift at a small recall cost.
    assert full_precision > raw_precision + 0.04
    assert full_recall > raw_recall * 0.85
    # Each constraint family contributes: removing one weakens cleaning.
    __, full_report = results["full MaxSat"]
    __, nf_report = results["no functionality"]
    assert nf_report.rejected < full_report.rejected
