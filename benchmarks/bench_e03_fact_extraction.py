"""E3 — the relational fact-harvesting spectrum (tutorial section 3).

Reproduces the canonical precision/recall trade-off across the four
extraction families the tutorial enumerates:

* hand-written surface patterns: highest precision, lowest recall;
* Snowball bootstrapping: grows recall within its relation at little
  precision cost;
* dependency paths: recover passives/inversions surface patterns miss;
* distant supervision: best recall and F1 of the spectrum.
"""

from __future__ import annotations

import pytest

from repro.corpus.document import corpus_gold_facts
from repro.eval import precision_recall, print_table
from repro.extraction import (
    DependencyPathExtractor,
    DistantSupervisionExtractor,
    PatternExtractor,
    SnowballExtractor,
    candidates_to_store,
)
from repro.kb import Entity
from repro.world import schema as ws

RELATIONS = [s.relation for s in ws.RELATION_SPECS]


@pytest.fixture(scope="module")
def gold(bench_documents):
    return {
        key for key in corpus_gold_facts(bench_documents)
        if isinstance(key[2], Entity)
    }


@pytest.mark.benchmark(group="e03")
def test_e03_extraction_spectrum(
    benchmark, bench_world, bench_occurrences, bench_seed_kb, gold
):
    rows = []

    patterns = PatternExtractor()
    pattern_pred = {
        t.spo() for t in candidates_to_store(patterns.extract(bench_occurrences))
    }
    pattern_prf = precision_recall(pattern_pred, gold)
    rows.append(["surface patterns", *_prf_row(pattern_prf), len(pattern_pred)])

    snowball_pred = set()
    for relation in (ws.FOUNDED, ws.BORN_IN, ws.HEADQUARTERED_IN):
        seeds = [
            (t.subject, t.object)
            for t in list(bench_world.facts.match(predicate=relation))[:8]
        ]
        extractor = SnowballExtractor(relation, seeds)
        snowball_pred |= {
            (c.subject, c.relation, c.object)
            for c in extractor.run(bench_occurrences)
        }
    snowball_gold = {k for k in gold if k[1] in (ws.FOUNDED, ws.BORN_IN, ws.HEADQUARTERED_IN)}
    snowball_prf = precision_recall(snowball_pred, snowball_gold)
    rows.append(["snowball (3 relations)", *_prf_row(snowball_prf), len(snowball_pred)])

    paths = DependencyPathExtractor(bench_seed_kb, RELATIONS)
    paths.learn(bench_occurrences)
    path_pred = {c.key() for c in paths.extract(bench_occurrences)}
    path_prf = precision_recall(path_pred, gold)
    rows.append(["dependency paths", *_prf_row(path_prf), len(path_pred)])

    distant = DistantSupervisionExtractor(bench_seed_kb, RELATIONS)
    distant.train(bench_occurrences)
    distant_pred = {c.key() for c in distant.extract(bench_occurrences)}
    distant_prf = precision_recall(distant_pred, gold)
    rows.append(["distant supervision", *_prf_row(distant_prf), len(distant_pred)])

    benchmark(patterns.extract, bench_occurrences)

    print_table(
        "E3: extraction spectrum (gold = facts expressed in the corpus)",
        ["method", "P", "R", "F1", "facts"],
        rows,
    )
    # The canonical shape.
    assert pattern_prf.precision >= max(path_prf.precision, distant_prf.precision) - 0.02
    assert path_prf.recall > pattern_prf.recall
    assert distant_prf.recall > pattern_prf.recall
    assert distant_prf.f1 >= pattern_prf.f1
    assert snowball_prf.recall > precision_recall(
        {k for k in pattern_pred if k[1] in (ws.FOUNDED, ws.BORN_IN, ws.HEADQUARTERED_IN)},
        snowball_gold,
    ).recall - 0.02


def _prf_row(prf):
    return [prf.precision, prf.recall, prf.f1]
