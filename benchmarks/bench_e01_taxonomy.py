"""E1 — Wikipedia category taxonomy (tutorial section 2).

Reproduces the WikiTaxonomy/YAGO result shape: the plural-head heuristic
(plus the administrative stoplist) classifies conceptual vs topical
categories far more precisely than the naive "every category is a class"
baseline, and YAGO-style WordNet anchoring types most entities correctly.

Rows: category-classification P/R/F1 per heuristic configuration, plus
entity-typing accuracy after integration.
"""

from __future__ import annotations

import pytest

from repro.eval import PRF, f1_score, print_table
from repro.kb import Taxonomy
from repro.taxonomy import EXPECTED_SYNSET, classify_category, integrate, wordnet_class


def _category_prf(wiki, use_plural_heuristic, use_stoplist) -> PRF:
    tp = fp = fn = 0
    for page in wiki.pages.values():
        for category in page.categories:
            decision = classify_category(
                category.name,
                use_plural_heuristic=use_plural_heuristic,
                use_stoplist=use_stoplist,
            )
            if decision.conceptual and category.conceptual:
                tp += 1
            elif decision.conceptual and not category.conceptual:
                fp += 1
            elif not decision.conceptual and category.conceptual:
                fn += 1
    precision = tp / (tp + fp) if tp + fp else 1.0
    recall = tp / (tp + fn) if tp + fn else 1.0
    return PRF(precision, recall, f1_score(precision, recall))


def _typing_accuracy(bench_world, wiki, **flags) -> float:
    store, __ = integrate(wiki, **flags)
    taxonomy = Taxonomy(store)
    correct = total = 0
    for entity, cls in bench_world.primary_class.items():
        expected = EXPECTED_SYNSET.get(cls)
        if expected is None:
            continue
        total += 1
        if taxonomy.is_instance_of(entity, wordnet_class(expected)):
            correct += 1
    return correct / total if total else 0.0


@pytest.mark.benchmark(group="e01")
def test_e01_category_classification(benchmark, bench_world, bench_wiki):
    rows = []
    configurations = [
        ("plural+stoplist", True, True),
        ("plural only", True, False),
        ("baseline: all-conceptual", False, False),
    ]
    for label, plural, stop in configurations:
        prf = _category_prf(bench_wiki, plural, stop)
        typing = _typing_accuracy(
            bench_world, bench_wiki,
            use_plural_heuristic=plural, use_stoplist=stop,
        )
        rows.append([label, prf.precision, prf.recall, prf.f1, typing])

    benchmark(_category_prf, bench_wiki, True, True)

    print_table(
        "E1: category classification and WordNet typing",
        ["configuration", "cat-P", "cat-R", "cat-F1", "typing-acc"],
        rows,
    )
    full, plural_only, baseline = rows
    # WikiTaxonomy shape: the heuristic beats the naive baseline decisively.
    assert full[1] > baseline[1] + 0.1      # precision gap
    assert full[3] >= plural_only[3]        # stoplist only helps
    assert full[4] > 0.8                    # typing accuracy after anchoring
