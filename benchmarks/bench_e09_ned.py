"""E9 — named entity disambiguation (tutorial section 4).

Reproduces the AIDA result shape: popularity prior < prior+context
similarity <= joint graph coherence, with the gaps widening as surface
ambiguity rises; the coherence ablation (lambda sweep) shows the joint
term's contribution on ambiguous mentions.
"""

from __future__ import annotations

import pytest

from repro.corpus import CorpusConfig, build_wiki, synthesize
from repro.eval import print_table
from repro.ned import NEDConfig, NEDSystem, evaluate_document
from repro.world import WorldConfig, generate_world


@pytest.fixture(scope="module")
def ned_world():
    return generate_world(
        WorldConfig(seed=131, ambiguity=0.8, n_people=220, n_cities=40)
    )


@pytest.fixture(scope="module")
def ned_system(ned_world):
    wiki = build_wiki(ned_world)
    return NEDSystem(wiki, aliases=ned_world.aliases)


def _documents(ned_world, p_short_alias, document_size):
    documents = synthesize(
        ned_world,
        CorpusConfig(
            seed=132,
            p_short_alias=p_short_alias,
            mentions_per_fact=1.2,
            document_size=document_size,
        ),
    )
    return [d for d in documents if d.topic is not None][:250]


def _accuracy(system, documents, method):
    correct = total = 0
    for document in documents:
        c, t = evaluate_document(system, document, method)
        correct += c
        total += t
    return correct / total


@pytest.mark.benchmark(group="e09")
def test_e09_ned_methods(benchmark, ned_world, ned_system):
    rows = []
    scores_by_setting = {}
    for label, p_short, size in (
        ("low ambiguity (docs)", 0.3, 6),
        ("high ambiguity (docs)", 0.6, 3),
        ("extreme (single sentences)", 0.85, 1),
    ):
        documents = _documents(ned_world, p_short, size)
        scores = {
            method: _accuracy(ned_system, documents, method)
            for method in ("prior", "local", "graph")
        }
        scores_by_setting[label] = scores
        rows.append([label, scores["prior"], scores["local"], scores["graph"]])

    sample = _documents(ned_world, 0.6, 3)[:40]
    benchmark(lambda: [ned_system.disambiguate_document(d, "graph") for d in sample])

    print_table(
        "E9: NED accuracy by method (AIDA-style comparison)",
        ["setting", "prior", "local", "graph"],
        rows,
    )
    for label, scores in scores_by_setting.items():
        assert scores["local"] > scores["prior"]
        assert scores["graph"] >= scores["local"] - 0.015
        assert scores["graph"] > scores["prior"]
    # The prior degrades fastest as ambiguity rises.
    assert (
        scores_by_setting["extreme (single sentences)"]["prior"]
        < scores_by_setting["low ambiguity (docs)"]["prior"]
    )


@pytest.mark.benchmark(group="e09")
def test_e09_coherence_weight_ablation(benchmark, ned_world):
    wiki = build_wiki(ned_world)
    documents = _documents(ned_world, 0.85, 1)
    rows = []
    best_with_coherence = 0.0
    zero_coherence = 0.0
    for weight in (0.0, 0.6, 1.2, 2.4):
        system = NEDSystem(
            wiki,
            aliases=ned_world.aliases,
            config=NEDConfig(coherence_weight=weight),
        )
        accuracy = _accuracy(system, documents, "graph")
        rows.append([weight, accuracy])
        if weight == 0.0:
            zero_coherence = accuracy
        else:
            best_with_coherence = max(best_with_coherence, accuracy)

    system = NEDSystem(wiki, aliases=ned_world.aliases)
    benchmark(lambda: _accuracy(system, documents[:30], "graph"))

    print_table(
        "E9b: coherence weight ablation (graph method, extreme ambiguity)",
        ["lambda", "accuracy"],
        rows,
    )
    assert best_with_coherence >= zero_coherence
