"""E11 — big-data scaling of knowledge harvesting (tutorial section 3).

Reproduces the map-reduce scaling shape on the in-process engine: shuffle
volume grows linearly with corpus size, per-shard load stays balanced
(small skew), a combiner cuts shuffled records, and end-to-end KB
construction through map-reduce matches the serial build while reporting
cluster-style counters.  The parallel-extraction benchmark measures real
wall-clock speedup and per-worker utilization of the process backend
(speedup asserts only run on machines with enough cores).
"""

from __future__ import annotations

import os
import time

import pytest

from repro import obs
from repro.bigdata import MapReduce
from repro.bigdata.backends import get_backend
from repro.corpus import CorpusConfig, build_wiki, synthesize
from repro.determinism import canonical_kb_text
from repro.eval import print_table
from repro.pipeline import BuildConfig, KnowledgeBaseBuilder
from repro.world import WorldConfig, generate_world


@pytest.mark.benchmark(group="e11")
def test_e11_shuffle_scales_linearly(benchmark):
    def tokenize_job(sentences, shards=4, combine=True):
        engine: MapReduce = MapReduce(shards=shards)

        def mapper(sentence):
            for word in sentence.split():
                yield word.lower(), 1

        def combiner(word, counts):
            yield sum(counts)

        def reducer(word, counts):
            yield word, sum(counts)

        return engine.run(
            sentences, mapper, reducer, combiner=combiner if combine else None
        )

    rows = []
    sizes = (60, 120, 240)
    shuffled = []
    for n_people in sizes:
        world = generate_world(WorldConfig(seed=151, n_people=n_people))
        documents = synthesize(world, CorpusConfig(seed=152, mentions_per_fact=1.5))
        sentences = [s.text for d in documents for s in d.sentences]
        __, stats = tokenize_job(sentences)
        __, stats_nc = tokenize_job(sentences, combine=False)
        rows.append(
            [
                n_people,
                len(sentences),
                stats.shuffled_records,
                stats_nc.shuffled_records,
                round(stats.skew, 2),
            ]
        )
        shuffled.append(stats_nc.shuffled_records)

    world = generate_world(WorldConfig(seed=151, n_people=60))
    documents = synthesize(world, CorpusConfig(seed=152))
    sentences = [s.text for d in documents for s in d.sentences]
    benchmark(tokenize_job, sentences)

    print_table(
        "E11a: shuffle volume vs corpus size (word-count job, 4 shards)",
        ["people", "sentences", "shuffled (combiner)", "shuffled (raw)", "skew"],
        rows,
    )
    # Linear-ish growth: 4x the corpus should shuffle ~4x the records.
    ratio = shuffled[-1] / shuffled[0]
    size_ratio = rows[-1][1] / rows[0][1]
    assert 0.5 * size_ratio < ratio < 2.0 * size_ratio
    # The combiner always reduces shuffle volume.
    for row in rows:
        assert row[2] < row[3]
    # Hash partitioning keeps shards balanced.
    assert all(row[4] < 1.5 for row in rows)


@pytest.mark.benchmark(group="e11")
def test_e11_extraction_through_mapreduce(benchmark, bench_world, bench_wiki):
    rows = []
    serial_builder = KnowledgeBaseBuilder(bench_wiki, aliases=bench_world.aliases)
    start = time.perf_counter()
    serial_kb, serial_report = serial_builder.build()
    serial_time = time.perf_counter() - start
    rows.append(["serial", serial_report.accepted_facts, "-", "-", round(serial_time, 2)])

    for shards in (2, 4, 8):
        builder = KnowledgeBaseBuilder(
            bench_wiki,
            aliases=bench_world.aliases,
            config=BuildConfig(mapreduce_shards=shards),
        )
        start = time.perf_counter()
        kb, report = builder.build()
        elapsed = time.perf_counter() - start
        stats = report.mapreduce
        rows.append(
            [
                f"map-reduce x{shards}",
                report.accepted_facts,
                stats.shuffled_records,
                round(stats.skew, 2),
                round(elapsed, 2),
            ]
        )

    benchmark(
        KnowledgeBaseBuilder(
            bench_wiki,
            aliases=bench_world.aliases,
            config=BuildConfig(mapreduce_shards=4, use_consistency=False),
        ).build
    )

    print_table(
        "E11b: end-to-end KB build, serial vs map-reduce",
        ["execution", "accepted facts", "shuffled", "skew", "seconds"],
        rows,
    )
    serial_facts = rows[0][1]
    for row in rows[1:]:
        assert abs(row[1] - serial_facts) / serial_facts < 0.05


@pytest.mark.benchmark(group="e11")
def test_e11_parallel_extraction_speedup(benchmark, bench_world, bench_wiki):
    """Wall-clock speedup and per-worker utilization of parallel extraction.

    Times the extraction stage alone (the part the backends parallelize;
    consistency reasoning stays in the parent) for 1, 2, and 4 process
    workers, then reads per-worker busy time out of the merged telemetry.
    Utilization = total worker busy time / (workers x stage wall time).
    """
    cores = os.cpu_count() or 1
    builder = KnowledgeBaseBuilder(bench_wiki, aliases=bench_world.aliases)

    def extract_with(workers: int) -> tuple[float, list, float]:
        backend = get_backend("auto", workers)
        obs.reset()
        obs.enable()
        try:
            start = time.perf_counter()
            candidates = builder._extract_pages(backend)
            elapsed = time.perf_counter() - start
            stages = obs.stage_breakdown()
        finally:
            obs.disable()
            obs.reset()
        busy = sum(
            stage["total_s"]
            for stage in stages
            if stage["stage"].split("/")[-1].startswith("worker[")
        )
        return elapsed, candidates, busy

    serial_time, serial_candidates, __ = extract_with(1)
    rows = [["serial", 1, round(serial_time, 3), "-", "-", "-"]]
    speedups = {}
    for workers in (2, 4):
        elapsed, candidates, busy = extract_with(workers)
        assert [c.key() for c in candidates] == [
            c.key() for c in serial_candidates
        ]
        speedup = serial_time / elapsed if elapsed else float("inf")
        utilization = busy / (workers * elapsed) if elapsed else 0.0
        speedups[workers] = speedup
        rows.append(
            [
                f"process x{workers}",
                workers,
                round(elapsed, 3),
                round(speedup, 2),
                round(busy, 3),
                f"{utilization:.0%}",
            ]
        )

    benchmark(extract_with, 2)

    print_table(
        "E11c: parallel extraction (process backend), "
        f"{len(bench_wiki.pages)} pages on {cores} cores",
        ["execution", "workers", "seconds", "speedup", "busy s", "util"],
        rows,
    )
    # Real parallelism needs real cores; on smaller machines the table is
    # still informative but the speedup floor would only measure oversubscription.
    if cores >= 4:
        assert speedups[4] > 1.3


# Module-level so the process backend can pickle it by reference.
def _spin(units: int) -> int:
    """Deterministic CPU burn whose cost is proportional to ``units``."""
    with obs.span("bench.spin"):
        total = 0
        for i in range(units * 100_000):
            total += i * i
    return total % 1_000_003


@pytest.mark.benchmark(group="e11")
def test_e11_work_stealing_skew(benchmark):
    """Work-stealing vs static dispatch on a skewed task set.

    The task set hides one straggler (6x the unit cost) at the *end* of
    the index order, the worst case for static dispatch: the straggler
    starts last and runs alone while the other worker idles.  Stealing
    sorts the shared queue largest-estimated-cost-first, so the straggler
    starts immediately and the small tasks pack around it.  One persistent
    two-process pool serves every run — the pool-reuse counters and the
    per-worker utilization histograms land in ``--benchmark-json``.
    """
    from repro.bigdata.backends import ProcessBackend

    cores = os.cpu_count() or 1
    costs = [6] * 6 + [36]  # the straggler is last in index order
    expected = [_spin(c) for c in costs]

    def run(backend, schedule: str) -> dict:
        obs.reset()
        obs.enable()
        try:
            start = time.perf_counter()
            results = backend.map(
                _spin, costs, schedule=schedule, cost_key=lambda cost: cost
            )
            elapsed = time.perf_counter() - start
            histograms = obs.core.histograms()
            counters = obs.core.counters()
        finally:
            obs.disable()
            obs.reset()
        assert results == expected, schedule
        tasks_per_worker = sorted(
            histograms["backend.worker.tasks"].values, reverse=True
        )
        busy = sum(histograms["backend.worker.busy_s"].values)
        return {
            "seconds": elapsed,
            "tasks_per_worker": tasks_per_worker,
            "busy_s": busy,
            "utilization": (
                busy / (backend.workers * elapsed) if elapsed else 0.0
            ),
            "tasks_dispatched": counters.get("backend.tasks_dispatched", 0),
        }

    with ProcessBackend(2) as backend:
        run(backend, "static")  # warm the pool so timing excludes spinup
        # Best-of-3 per schedule: the gap under test is tens of ms.
        static = min(
            (run(backend, "static") for __ in range(3)),
            key=lambda mode: mode["seconds"],
        )
        steal = min(
            (run(backend, "steal") for __ in range(3)),
            key=lambda mode: mode["seconds"],
        )
        spinups, reuses = backend.spinups, backend.reuses

    rows = [
        [
            label,
            round(mode["seconds"], 3),
            "/".join(str(n) for n in mode["tasks_per_worker"]),
            round(mode["busy_s"], 3),
            f"{mode['utilization']:.0%}",
        ]
        for label, mode in (("static", static), ("steal", steal))
    ]
    print_table(
        "E11e: work-stealing vs static dispatch "
        f"(6 unit tasks + 1 six-fold straggler, 2 process workers, {cores} cores)",
        ["schedule", "seconds", "tasks/worker", "busy s", "util"],
        rows,
    )

    benchmark.extra_info["pool_spinups"] = spinups
    benchmark.extra_info["pool_reuses"] = reuses
    benchmark.extra_info["tasks_dispatched"] = steal["tasks_dispatched"]
    benchmark.extra_info["worker_utilization"] = {
        label: {
            "tasks_per_worker": mode["tasks_per_worker"],
            "busy_s": round(mode["busy_s"], 6),
            "utilization": round(mode["utilization"], 4),
        }
        for label, mode in (("static", static), ("steal", steal))
    }
    benchmark.extra_info["timings_s"] = {
        "static": round(static["seconds"], 6),
        "steal": round(steal["seconds"], 6),
    }

    with ProcessBackend(2) as bench_backend:
        bench_backend.map(_spin, [1])  # spin up outside the timed region
        benchmark(
            bench_backend.map, _spin, costs,
            schedule="steal", cost_key=lambda cost: cost,
        )

    # One persistent pool served the warmup and all measured runs.
    assert spinups == 1
    assert reuses >= 2
    # Every run dispatched every task, and both workers reported in.
    assert static["tasks_dispatched"] == len(costs)
    assert steal["tasks_dispatched"] == len(costs)
    assert len(steal["tasks_per_worker"]) == 2
    assert sum(steal["tasks_per_worker"]) == len(costs)
    # With real cores, stealing never loses badly to static on this skew
    # (usually it wins — the straggler overlaps the small tasks).
    if cores >= 2:
        assert steal["seconds"] <= static["seconds"] * 1.25


@pytest.mark.benchmark(group="e11")
def test_e11_extractor_hoisting_and_cross_mode(benchmark, bench_world, bench_wiki):
    """The per-page extractor construction cost is gone from the stage
    breakdown (extractors are hoisted to the worker initializer), and all
    execution modes produce byte-identical KBs on the bench world."""
    config = BuildConfig(use_consistency=False)
    builder = KnowledgeBaseBuilder(
        bench_wiki, aliases=bench_world.aliases, config=config
    )
    obs.reset()
    obs.enable()
    try:
        kb, report = builder.build()
        stages = obs.stage_breakdown()
    finally:
        obs.disable()
        obs.reset()
    extract = next(
        s for s in stages if s["stage"].endswith("/pipeline.extract")
    )
    rows = [
        [s["stage"].split("/")[-1], s["calls"], round(s["total_s"], 3)]
        for s in stages
        if "pipeline.extract" in s["stage"]
    ]
    print_table(
        "E11d: extraction stage breakdown (hoisted extractors)",
        ["stage", "calls", "seconds"],
        rows,
    )
    reference = canonical_kb_text(kb)
    for label, overrides in (
        ("shards4", {"mapreduce_shards": 4}),
        ("thread2", {"workers": 2, "backend": "thread"}),
        ("process2", {"workers": 2, "backend": "process"}),
    ):
        other_kb, __ = KnowledgeBaseBuilder(
            bench_wiki,
            aliases=bench_world.aliases,
            config=BuildConfig(use_consistency=False, **overrides),
        ).build()
        assert canonical_kb_text(other_kb) == reference, label
    assert extract["total_s"] > 0

    benchmark(
        KnowledgeBaseBuilder(
            bench_wiki, aliases=bench_world.aliases, config=config
        ).build
    )
