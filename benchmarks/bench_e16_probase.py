"""E16 — probabilistic taxonomy and conceptualization (extension experiment).

Reproduces the Probase result shape (Wu et al., SIGMOD 2012 — reference
[32] of the tutorial): harvesting isA evidence with frequencies yields a
*probabilistic* taxonomy whose P(concept | instance) picks the right sense
of ambiguous names, and whose set conceptualization names the class behind
a group of instances — the "text understanding" capability Probase sells.
"""

from __future__ import annotations

import random

import pytest

from repro.corpus import CLASS_NOUNS, class_sentences
from repro.eval import print_table
from repro.taxonomy import ProbabilisticTaxonomy
from repro.taxonomy.hearst import harvest


@pytest.fixture(scope="module")
def harvested(bench_world):
    rng = random.Random(201)
    sentences = [
        s.text for s in class_sentences(bench_world, rng, per_class=10)
    ]
    taxonomy = ProbabilisticTaxonomy()
    taxonomy.add_pairs(harvest(sentences))
    return taxonomy


@pytest.mark.benchmark(group="e16")
def test_e16_sense_ranking_and_conceptualization(
    benchmark, bench_world, harvested
):
    lemma_of_class = {cls: noun for cls, (noun, __) in CLASS_NOUNS.items()}

    # Per-instance sense ranking accuracy: does the top concept match the
    # entity's gold class?
    correct = total = 0
    for entity, cls in bench_world.primary_class.items():
        expected = lemma_of_class.get(cls)
        if expected is None:
            continue
        ranked = harvested.concept_given_instance(bench_world.name[entity])
        if not ranked:
            continue
        total += 1
        if ranked[0].concept == expected:
            correct += 1
    sense_accuracy = correct / total if total else 0.0

    # Set conceptualization: sample instance triples per class.
    rng = random.Random(202)
    hits = trials = 0
    for cls, (noun, __) in CLASS_NOUNS.items():
        members = [
            bench_world.name[e] for e in bench_world.entities_of_class(cls)
            if harvested.concept_given_instance(bench_world.name[e])
        ]
        if len(members) < 3:
            continue
        for __unused in range(5):
            sample = rng.sample(members, 3)
            concepts = harvested.conceptualize(sample)
            trials += 1
            if concepts and concepts[0].concept == noun:
                hits += 1
    conceptualization_accuracy = hits / trials if trials else 0.0

    benchmark(
        harvested.conceptualize,
        [bench_world.name[c] for c in bench_world.cities[:3]],
    )

    print_table(
        "E16: probabilistic taxonomy quality",
        ["measure", "value", "n"],
        [
            ["isA pairs harvested", harvested.size(), ""],
            ["P(concept|instance) top-1 accuracy", sense_accuracy, total],
            ["set conceptualization top-1 accuracy", conceptualization_accuracy, trials],
        ],
    )
    assert harvested.size() > 100
    assert sense_accuracy > 0.85
    assert conceptualization_accuracy > 0.85
