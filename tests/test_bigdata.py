"""Tests for repro.bigdata (map-reduce, PrefixSpan, MinHash/LSH)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bigdata import (
    MapReduce,
    MinHasher,
    closed_sequences,
    frequent_sequences,
    jaccard,
    lsh_candidate_pairs,
    shingles,
    word_count,
)


class TestMapReduce:
    def test_word_count(self):
        counts, stats = word_count(["a b a", "b c"], shards=2)
        assert counts == {"a": 2, "b": 2, "c": 1}
        assert stats.map_input_records == 2
        assert stats.map_output_records == 5
        assert stats.reduce_groups == 3

    def test_combiner_reduces_shuffle(self):
        documents = ["a a a a a a"] * 10
        __, with_combiner = word_count(documents, shards=2)
        engine: MapReduce = MapReduce(shards=2)

        def mapper(doc):
            for word in doc.split():
                yield word, 1

        def reducer(word, counts):
            yield word, sum(counts)

        __, without_combiner = engine.run(documents, mapper, reducer)
        assert with_combiner.shuffled_records < without_combiner.shuffled_records

    def test_deterministic_output_order(self):
        first, __ = word_count(["z y x w v"], shards=4)
        second, __ = word_count(["z y x w v"], shards=4)
        assert list(first.items()) == list(second.items())

    def test_shard_assignment_is_pinned(self):
        # Shard routing must be identical in every process (stable_hash,
        # never builtin hash), so the key->shard mapping is a contract.
        # These values were computed once and must never drift.
        from repro.determinism.stable import stable_hash

        expected_mod4 = {
            "alpha": 2, "beta": 3, "gamma": 2, "delta": 1, "epsilon": 2,
        }
        expected_mod7 = {
            "alpha": 4, "beta": 3, "gamma": 0, "delta": 0, "epsilon": 1,
        }
        for key, shard in expected_mod4.items():
            assert stable_hash(repr(key)) % 4 == shard
        for key, shard in expected_mod7.items():
            assert stable_hash(repr(key)) % 7 == shard

    def test_shard_routing_matches_stable_hash(self):
        # The engine must route a key to stable_hash(repr(key)) % shards —
        # the exact rule the pinned mapping above freezes.
        from repro.determinism.stable import stable_hash

        engine: MapReduce = MapReduce(shards=4)

        def mapper(word):
            yield word, 1

        def reducer(word, counts):
            yield word, sum(counts)

        keys = ["alpha", "beta", "gamma", "delta", "epsilon"]
        __, stats = engine.run(keys, mapper, reducer)
        expected_per_shard = [0, 0, 0, 0]
        for key in keys:
            expected_per_shard[stable_hash(repr(key)) % 4] += 1
        assert stats.records_per_shard == expected_per_shard

    def test_records_per_shard_accounting(self):
        __, stats = word_count(["a b c d e f g h"], shards=4)
        assert len(stats.records_per_shard) == 4
        assert sum(stats.records_per_shard) == stats.shuffled_records
        assert stats.skew >= 1.0

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            MapReduce(shards=0)

    def test_empty_input(self):
        counts, stats = word_count([], shards=2)
        assert counts == {}
        assert stats.map_input_records == 0

    def test_empty_input_stats_are_well_defined(self):
        """Regression: a 0-record job must yield complete, finite JobStats."""
        engine: MapReduce = MapReduce(shards=3)

        def mapper(record):
            yield record, 1

        def reducer(key, values):
            yield key, sum(values)

        results, stats = engine.run([], mapper, reducer)
        assert results == []
        assert stats.shards == 3
        assert stats.records_per_shard == [0, 0, 0]
        assert stats.map_output_records == 0
        assert stats.shuffled_records == 0
        assert stats.shuffled_bytes == 0
        assert stats.reduce_groups == 0
        assert stats.skew == 1.0  # no division by zero on an empty job

    def test_default_constructed_jobstats_skew(self):
        from repro.bigdata.mapreduce import JobStats

        assert JobStats().skew == 1.0
        assert JobStats(records_per_shard=[0, 0]).skew == 1.0
        assert JobStats(records_per_shard=[2, 6]).skew == 1.5


# ------------------------------------------------------- execution backends

# Module-level so the process backend can resolve them by reference.
def _square(x):
    return x * x


def _wc_mapper(doc):
    for word in doc.split():
        yield word, 1


def _wc_reducer(word, counts):
    yield word, sum(counts)


def _traced_mapper(doc):
    from repro import obs

    with obs.span("test.map") as tracing:
        pairs = [(word, 1) for word in doc.split()]
        tracing.add("pairs", len(pairs))
    return pairs


def _boom_initializer():
    raise AssertionError("initializer must not run for an empty task list")


def _append_marker(bucket, marker):
    bucket.append(marker)


class TestExecutionBackends:
    DOCS = ["a b a c", "b c d", "d d a", "e", "a b c d e f"]

    def _backends(self):
        from repro.bigdata.backends import (
            ProcessBackend,
            SerialBackend,
            ThreadBackend,
        )

        return [SerialBackend(), ThreadBackend(2), ProcessBackend(2)]

    def test_chunked_partitions_in_order(self):
        from repro.bigdata.backends import chunked

        assert chunked([], 4) == []
        assert chunked([1, 2], 5) == [[1], [2]]
        batches = chunked(list(range(10)), 3)
        assert batches == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]
        assert [x for batch in batches for x in batch] == list(range(10))

    def test_map_returns_results_in_task_order(self):
        tasks = list(range(20))
        expected = [x * x for x in tasks]
        for backend in self._backends():
            assert backend.map(_square, tasks) == expected

    def test_get_backend_resolution(self):
        from repro.bigdata.backends import (
            ProcessBackend,
            SerialBackend,
            ThreadBackend,
            get_backend,
        )

        assert isinstance(get_backend("auto", workers=0), SerialBackend)
        assert isinstance(get_backend("auto", workers=1), SerialBackend)
        auto4 = get_backend("auto", workers=4)
        assert isinstance(auto4, ProcessBackend)
        assert auto4.workers == 4
        assert isinstance(get_backend("thread", workers=3), ThreadBackend)
        passthrough = ThreadBackend(2)
        assert get_backend(passthrough) is passthrough
        with pytest.raises(ValueError):
            get_backend("cluster")
        with pytest.raises(ValueError):
            ThreadBackend(0)

    def test_mapreduce_identical_across_backends(self):
        serial_engine: MapReduce = MapReduce(shards=3)
        reference, ref_stats = serial_engine.run(
            self.DOCS, _wc_mapper, _wc_reducer
        )
        for backend in self._backends():
            engine: MapReduce = MapReduce(shards=3, backend=backend)
            results, stats = engine.run(self.DOCS, _wc_mapper, _wc_reducer)
            assert results == reference
            assert stats == ref_stats

    @pytest.mark.parametrize("backend_name", ["thread", "process"])
    def test_worker_telemetry_merged_into_parent(self, backend_name):
        from repro import obs
        from repro.bigdata.backends import get_backend

        obs.reset()
        obs.enable()
        try:
            engine: MapReduce = MapReduce(
                shards=2, backend=get_backend(backend_name, workers=2)
            )
            engine.run(self.DOCS, _traced_mapper, _wc_reducer)
            stages = obs.stage_breakdown()
        finally:
            obs.disable()
            obs.reset()
        worker_stages = [s for s in stages if "worker[" in s["stage"]]
        assert worker_stages, "worker spans did not reach the parent trace"
        total_pairs = sum(
            s["counters"].get("pairs", 0)
            for s in stages
            if s["stage"].endswith("test.map")
        )
        assert total_pairs == sum(len(doc.split()) for doc in self.DOCS)


class TestBackendWorkerCounts:
    """Regression: explicit worker counts must be honored exactly.

    ``get_backend("thread", workers=1)`` used to hand back a 2-thread
    pool and ``get_backend("process", workers=1)`` a cpu_count pool; an
    explicit N >= 1 now always wins, with backend defaults reserved for
    ``workers == 0``.
    """

    def test_explicit_one_worker_is_one_worker(self):
        from repro.bigdata.backends import get_backend

        assert get_backend("serial", workers=1).workers == 1
        assert get_backend("thread", workers=1).workers == 1
        assert get_backend("process", workers=1).workers == 1

    def test_explicit_counts_honored_for_every_backend(self):
        from repro.bigdata.backends import get_backend

        for name in ("thread", "process"):
            for n in (1, 2, 3, 5):
                assert get_backend(name, workers=n).workers == n

    def test_zero_workers_means_backend_default(self):
        import os

        from repro.bigdata.backends import get_backend

        assert get_backend("thread", workers=0).workers == 2
        assert get_backend("process", workers=0).workers == (os.cpu_count() or 1)

    def test_negative_workers_rejected(self):
        from repro.bigdata.backends import get_backend

        for name in ("serial", "thread", "process", "auto"):
            with pytest.raises(ValueError):
                get_backend(name, workers=-1)


class TestEmptyInputParity:
    """All backends agree on empty input: [] back, no initializer run."""

    def test_empty_map_returns_empty_without_initializer(self):
        from repro.bigdata.backends import (
            ProcessBackend,
            SerialBackend,
            ThreadBackend,
        )

        for backend in (SerialBackend(), ThreadBackend(2), ProcessBackend(2)):
            with backend:
                assert backend.map(
                    _square, [], initializer=_boom_initializer
                ) == []
            # Pooled backends must not even spin a pool up for no work.
            assert backend.spinups == 0


class TestSchedules:
    def test_dispatch_order_cost_sorted_with_index_tiebreak(self):
        from repro.bigdata.backends import _dispatch_order

        tasks = ["bb", "a", "ccc", "dd"]
        assert _dispatch_order(tasks, "steal", len) == [
            (2, "ccc"), (0, "bb"), (3, "dd"), (1, "a")
        ]
        assert _dispatch_order(tasks, "static", len) == list(enumerate(tasks))
        # Without a cost estimate, stealing degrades to index order.
        assert _dispatch_order(tasks, "steal", None) == list(enumerate(tasks))

    def test_steal_results_equal_static_on_every_backend(self):
        from repro.bigdata.backends import (
            ProcessBackend,
            SerialBackend,
            ThreadBackend,
        )

        tasks = list(range(17))
        expected = [x * x for x in tasks]
        for backend in (SerialBackend(), ThreadBackend(2), ProcessBackend(2)):
            with backend:
                assert backend.map(
                    _square, tasks, schedule="steal", cost_key=lambda t: t % 5
                ) == expected

    def test_unknown_schedule_rejected(self):
        from repro.bigdata.backends import SerialBackend, ThreadBackend

        with pytest.raises(ValueError):
            SerialBackend().map(_square, [1], schedule="lifo")
        with ThreadBackend(2) as backend:
            with pytest.raises(ValueError):
                backend.map(_square, [1], schedule="")


class TestPoolPersistence:
    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_pool_reused_across_maps(self, kind):
        from repro.bigdata.backends import get_backend

        backend = get_backend(kind, workers=2)
        try:
            assert (backend.spinups, backend.reuses) == (0, 0)
            assert backend.map(_square, [1, 2, 3]) == [1, 4, 9]
            assert (backend.spinups, backend.reuses) == (1, 0)
            assert backend.map(_square, [4, 5]) == [16, 25]
            assert (backend.spinups, backend.reuses) == (1, 1)
        finally:
            backend.close()

    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_close_then_map_respins(self, kind):
        from repro.bigdata.backends import get_backend

        backend = get_backend(kind, workers=2)
        try:
            backend.map(_square, [1])
            backend.close()
            assert backend.map(_square, [2, 3]) == [4, 9]
            assert backend.spinups == 2
        finally:
            backend.close()

    def test_context_manager_closes_pool(self):
        from repro.bigdata.backends import ThreadBackend

        with ThreadBackend(2) as backend:
            backend.map(_square, [1, 2])
            assert backend._pool is not None
        assert backend._pool is None

    def test_initializer_delivered_per_call_on_persistent_thread_pool(self):
        from repro.bigdata.backends import ThreadBackend

        bucket: list = []
        with ThreadBackend(2) as backend:
            backend.map(_square, [1, 2, 3], initializer=_append_marker,
                        initargs=(bucket, "first"))
            backend.map(_square, [4, 5, 6], initializer=_append_marker,
                        initargs=(bucket, "second"))
        # The pool persisted across calls, yet each call's initializer
        # reached the workers that executed it (once per thread per call).
        assert {"first", "second"} <= set(bucket)
        assert len(bucket) <= 4  # never more than workers x calls


class TestWorkerTelemetryGrouping:
    DOCS = ["a b a c", "b c d", "d d a", "e", "a b c d e f",
            "f g", "g h i", "i", "j k", "k l m n"]

    def test_one_wrapper_span_per_worker(self):
        from repro import obs
        from repro.bigdata.backends import ThreadBackend
        from repro.obs import core as obs_core

        obs.reset()
        obs.enable()
        try:
            with ThreadBackend(1) as backend:
                with obs_core.span("test.call"):
                    backend.map(_traced_mapper, self.DOCS)
            roots = obs_core.take_roots()
        finally:
            obs.disable()
            obs.reset()
        (call_span,) = roots
        wrappers = [
            child for child in call_span.children
            if child.name.startswith("worker[")
        ]
        # One worker ran all ten tasks: exactly one wrapper span holding
        # all ten per-task spans — not ten sibling wrappers.
        assert len(wrappers) == 1
        assert len(call_span.children) == 1
        assert len(wrappers[0].children) == len(self.DOCS)
        assert all(
            span.name == "test.map" for span in wrappers[0].children
        )

    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_workers_one_uses_exactly_one_worker(self, kind):
        from repro import obs
        from repro.bigdata.backends import get_backend
        from repro.obs import core as obs_core

        obs.reset()
        obs.enable()
        try:
            with get_backend(kind, workers=1) as backend:
                assert backend.workers == 1
                backend.map(_traced_mapper, self.DOCS)
            counters = obs_core.counters()
            tasks_hist = obs_core.histograms()["backend.worker.tasks"]
            busy_hist = obs_core.histograms()["backend.worker.busy_s"]
        finally:
            obs.disable()
            obs.reset()
        assert counters["backend.tasks_dispatched"] == len(self.DOCS)
        # One histogram sample per reporting worker: exactly one worker
        # executed, and it executed every task.
        assert tasks_hist.values == [len(self.DOCS)]
        assert busy_hist.count == 1

    def test_utilization_histogram_covers_all_tasks(self):
        from repro import obs
        from repro.bigdata.backends import ThreadBackend
        from repro.obs import core as obs_core

        obs.reset()
        obs.enable()
        try:
            with ThreadBackend(2) as backend:
                backend.map(
                    _traced_mapper, self.DOCS,
                    schedule="steal", cost_key=len,
                )
            tasks_hist = obs_core.histograms()["backend.worker.tasks"]
        finally:
            obs.disable()
            obs.reset()
        assert sum(tasks_hist.values) == len(self.DOCS)
        assert 1 <= tasks_hist.count <= 2  # one sample per worker


class TestPrefixSpan:
    def test_gappy_sequences(self):
        database = [("a", "b", "c"), ("a", "c"), ("a", "b")]
        frequent = frequent_sequences(database, min_support=2)
        assert frequent[("a",)] == 3
        assert frequent[("a", "b")] == 2
        assert frequent[("a", "c")] == 2
        assert ("b", "a") not in frequent

    def test_contiguous_ngrams(self):
        database = [("was", "born", "in"), ("was", "born", "in"), ("born", "in", "x")]
        frequent = frequent_sequences(database, min_support=2, contiguous=True)
        assert frequent[("was", "born", "in")] == 2
        assert frequent[("born", "in")] == 3

    def test_max_length_respected(self):
        database = [("a", "b", "c", "d")] * 3
        frequent = frequent_sequences(database, min_support=2, max_length=2)
        assert all(len(seq) <= 2 for seq in frequent)

    def test_support_counted_once_per_sequence(self):
        database = [("a", "a", "a")]
        frequent = frequent_sequences(database, min_support=1, max_length=1)
        assert frequent[("a",)] == 1

    def test_closed_sequences(self):
        database = [("was", "born", "in")] * 3
        frequent = frequent_sequences(database, min_support=2, contiguous=True)
        closed = closed_sequences(frequent)
        assert ("was", "born", "in") in closed
        # "was born" is dominated by "was born in" at equal support.
        assert ("was", "born") not in closed

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            frequent_sequences([], min_support=0)
        with pytest.raises(ValueError):
            frequent_sequences([], max_length=0)


class TestMinHash:
    def test_identical_sets_agree(self):
        hasher = MinHasher(num_hashes=32)
        items = {"a", "b", "c"}
        assert hasher.signature(items) == hasher.signature(items)
        assert MinHasher.estimate_jaccard(
            hasher.signature(items), hasher.signature(items)
        ) == 1.0

    def test_jaccard_exact(self):
        assert jaccard({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)
        assert jaccard(set(), set()) == 1.0

    @settings(max_examples=20, deadline=None)
    @given(
        st.sets(st.integers(0, 40), min_size=5, max_size=30),
        st.sets(st.integers(0, 40), min_size=5, max_size=30),
    )
    def test_estimate_tracks_jaccard(self, set_a, set_b):
        hasher = MinHasher(num_hashes=256)
        estimate = MinHasher.estimate_jaccard(
            hasher.signature(set_a), hasher.signature(set_b)
        )
        assert abs(estimate - jaccard(set_a, set_b)) < 0.25

    def test_lsh_finds_near_duplicates(self):
        hasher = MinHasher(num_hashes=64)
        signatures = {
            "x": hasher.signature(shingles("Nimbus Systems")),
            "y": hasher.signature(shingles("Nimbus Systemz")),
            "z": hasher.signature(shingles("completely different name")),
        }
        pairs = lsh_candidate_pairs(signatures, bands=16)
        assert ("x", "y") in pairs
        assert ("x", "z") not in pairs

    def test_lsh_band_validation(self):
        hasher = MinHasher(num_hashes=64)
        signatures = {"x": hasher.signature({"a"})}
        with pytest.raises(ValueError):
            lsh_candidate_pairs(signatures, bands=7)

    def test_shingles(self):
        assert shingles("ab", 3) == {"ab"}
        assert "abc" in shingles("abcd", 3)


class TestChunkedEdgeCases:
    def test_empty_input(self):
        from repro.bigdata import chunked

        assert chunked([], 1) == []
        assert chunked([], 100) == []

    def test_more_chunks_than_items(self):
        from repro.bigdata import chunked

        assert chunked([1, 2, 3], 10) == [[1], [2], [3]]

    def test_single_item(self):
        from repro.bigdata import chunked

        assert chunked(["only"], 1) == [["only"]]
        assert chunked(["only"], 8) == [["only"]]

    def test_nonpositive_chunk_count_clamps_to_one(self):
        from repro.bigdata import chunked

        assert chunked([1, 2, 3], 0) == [[1, 2, 3]]
        assert chunked([1, 2, 3], -5) == [[1, 2, 3]]

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(), max_size=40),
        st.integers(min_value=-3, max_value=50),
    )
    def test_partition_invariants(self, items, chunks):
        from repro.bigdata import chunked

        batches = chunked(items, chunks)
        assert [x for batch in batches for x in batch] == items
        assert all(batch for batch in batches)
        if items:
            assert len(batches) == max(1, min(chunks, len(items)))
            sizes = [len(batch) for batch in batches]
            assert max(sizes) - min(sizes) <= 1


class TestCostModel:
    def test_first_record_is_estimate(self):
        from repro.bigdata import CostModel

        model = CostModel()
        model.record("k", 2.0)
        assert model.estimate("k") == 2.0

    def test_ewma_folding(self):
        from repro.bigdata import CostModel

        model = CostModel(alpha=0.5)
        model.record("k", 1.0)
        model.record("k", 3.0)
        assert model.estimate("k") == pytest.approx(2.0)

    def test_estimates_for_is_all_or_nothing(self):
        from repro.bigdata import CostModel

        model = CostModel()
        model.record("a", 1.0)
        assert model.estimates_for(["a", "b"]) is None
        model.record("b", 2.0)
        estimates = model.estimates_for(["a", "b"])
        assert estimates == {"a": 1.0, "b": 2.0}

    def test_save_load_roundtrip_is_deterministic(self, tmp_path):
        from repro.bigdata import CostModel

        path = str(tmp_path / "costs.json")
        model = CostModel(path=path, alpha=0.5)
        model.record("x", 0.25)
        model.record("y", 4.0)
        model.save()
        first = open(path, "rb").read()
        reloaded = CostModel(path=path)
        assert reloaded.estimate("x") == pytest.approx(0.25)
        assert reloaded.estimate("y") == pytest.approx(4.0)
        reloaded.save()
        assert open(path, "rb").read() == first

    def test_batch_key_shape(self):
        from repro.bigdata import batch_key

        assert batch_key([]) .endswith("#0")
        key = batch_key(["Ada", "Zeno"])
        assert "Ada" in key and "Zeno" in key and key.endswith("#2")
        assert batch_key(["Ada", "Zeno"]) != batch_key(["Ada", "Zeno", "Bob"])

    def test_replay_reorders_but_preserves_results(self):
        from repro.bigdata import CostModel, batch_key
        from repro.bigdata.backends import ThreadBackend

        tasks = [["a"], ["b", "b"], ["c"] * 5, ["d"]]
        expected = [len(t) for t in tasks]
        model = CostModel()
        with ThreadBackend(2) as backend:
            first = backend.map(
                _measured_len, tasks,
                schedule="steal", cost_key=len,
                cost_model=model, task_key=batch_key,
            )
            assert first == expected
            assert model.recorded == len(tasks)
            # Second call replays measured costs for the steal order.
            second = backend.map(
                _measured_len, tasks,
                schedule="steal", cost_key=len,
                cost_model=model, task_key=batch_key,
            )
            assert second == expected
            assert model.replayed >= 1

    def test_recording_is_deterministic_across_backends(self):
        from repro.bigdata import CostModel, batch_key
        from repro.bigdata.backends import SerialBackend, ThreadBackend

        tasks = [["a"], ["b", "b"], ["c"] * 3]
        keys = [batch_key(t) for t in tasks]
        for backend in (SerialBackend(), ThreadBackend(2)):
            model = CostModel()
            with backend:
                backend.map(
                    _measured_len, tasks,
                    cost_key=len, cost_model=model, task_key=batch_key,
                )
            assert model.stats()["keys"] == len(keys)
            assert all(model.estimate(key) is not None for key in keys)


class TestSplitDominant:
    def test_splits_dominant_batch(self):
        from repro.bigdata import split_dominant

        batches = [list(range(8)), [100], [200]]
        result = split_dominant(batches, estimate=len, factor=2.0)
        assert [x for b in result for x in b] == list(range(8)) + [100, 200]
        assert max(len(b) for b in result) < 8

    def test_balanced_batches_untouched(self):
        from repro.bigdata import split_dominant

        batches = [[1, 2], [3, 4], [5, 6]]
        assert split_dominant(batches, estimate=len) == batches

    def test_singleton_batch_cannot_split(self):
        from repro.bigdata import split_dominant

        batches = [["huge"], ["a"], ["b"]]
        estimate = lambda b: 100.0 if b == ["huge"] else 1.0
        assert split_dominant(batches, estimate=estimate) == batches

    def test_factor_validation(self):
        from repro.bigdata import split_dominant

        with pytest.raises(ValueError):
            split_dominant([[1]], estimate=len, factor=1.0)

    def test_make_batch_estimator_scales_static_costs(self):
        from repro.bigdata import CostModel, batch_key
        from repro.bigdata.costs import make_batch_estimator

        batches = [["a", "a"], ["b"] * 4]
        model = CostModel()
        # 2 units measured at 1.0s => 0.5 s/unit.
        model.record(batch_key(batches[0]), 1.0)
        estimate = make_batch_estimator(model, batches, static_cost=len)
        assert estimate(batches[0]) == pytest.approx(1.0)   # measured
        assert estimate(batches[1]) == pytest.approx(2.0)   # 4 * 0.5 scaled

    def test_make_batch_estimator_without_model_uses_static(self):
        from repro.bigdata.costs import make_batch_estimator

        estimate = make_batch_estimator(None, [["a"]], static_cost=len)
        assert estimate(["x", "y"]) == 2.0


def _measured_len(batch):
    return len(batch)
