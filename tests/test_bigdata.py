"""Tests for repro.bigdata (map-reduce, PrefixSpan, MinHash/LSH)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bigdata import (
    MapReduce,
    MinHasher,
    closed_sequences,
    frequent_sequences,
    jaccard,
    lsh_candidate_pairs,
    shingles,
    word_count,
)


class TestMapReduce:
    def test_word_count(self):
        counts, stats = word_count(["a b a", "b c"], shards=2)
        assert counts == {"a": 2, "b": 2, "c": 1}
        assert stats.map_input_records == 2
        assert stats.map_output_records == 5
        assert stats.reduce_groups == 3

    def test_combiner_reduces_shuffle(self):
        documents = ["a a a a a a"] * 10
        __, with_combiner = word_count(documents, shards=2)
        engine: MapReduce = MapReduce(shards=2)

        def mapper(doc):
            for word in doc.split():
                yield word, 1

        def reducer(word, counts):
            yield word, sum(counts)

        __, without_combiner = engine.run(documents, mapper, reducer)
        assert with_combiner.shuffled_records < without_combiner.shuffled_records

    def test_deterministic_output_order(self):
        first, __ = word_count(["z y x w v"], shards=4)
        second, __ = word_count(["z y x w v"], shards=4)
        assert list(first.items()) == list(second.items())

    def test_shard_assignment_is_pinned(self):
        # Shard routing must be identical in every process (stable_hash,
        # never builtin hash), so the key->shard mapping is a contract.
        # These values were computed once and must never drift.
        from repro.determinism.stable import stable_hash

        expected_mod4 = {
            "alpha": 2, "beta": 3, "gamma": 2, "delta": 1, "epsilon": 2,
        }
        expected_mod7 = {
            "alpha": 4, "beta": 3, "gamma": 0, "delta": 0, "epsilon": 1,
        }
        for key, shard in expected_mod4.items():
            assert stable_hash(repr(key)) % 4 == shard
        for key, shard in expected_mod7.items():
            assert stable_hash(repr(key)) % 7 == shard

    def test_shard_routing_matches_stable_hash(self):
        # The engine must route a key to stable_hash(repr(key)) % shards —
        # the exact rule the pinned mapping above freezes.
        from repro.determinism.stable import stable_hash

        engine: MapReduce = MapReduce(shards=4)

        def mapper(word):
            yield word, 1

        def reducer(word, counts):
            yield word, sum(counts)

        keys = ["alpha", "beta", "gamma", "delta", "epsilon"]
        __, stats = engine.run(keys, mapper, reducer)
        expected_per_shard = [0, 0, 0, 0]
        for key in keys:
            expected_per_shard[stable_hash(repr(key)) % 4] += 1
        assert stats.records_per_shard == expected_per_shard

    def test_records_per_shard_accounting(self):
        __, stats = word_count(["a b c d e f g h"], shards=4)
        assert len(stats.records_per_shard) == 4
        assert sum(stats.records_per_shard) == stats.shuffled_records
        assert stats.skew >= 1.0

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            MapReduce(shards=0)

    def test_empty_input(self):
        counts, stats = word_count([], shards=2)
        assert counts == {}
        assert stats.map_input_records == 0

    def test_empty_input_stats_are_well_defined(self):
        """Regression: a 0-record job must yield complete, finite JobStats."""
        engine: MapReduce = MapReduce(shards=3)

        def mapper(record):
            yield record, 1

        def reducer(key, values):
            yield key, sum(values)

        results, stats = engine.run([], mapper, reducer)
        assert results == []
        assert stats.shards == 3
        assert stats.records_per_shard == [0, 0, 0]
        assert stats.map_output_records == 0
        assert stats.shuffled_records == 0
        assert stats.shuffled_bytes == 0
        assert stats.reduce_groups == 0
        assert stats.skew == 1.0  # no division by zero on an empty job

    def test_default_constructed_jobstats_skew(self):
        from repro.bigdata.mapreduce import JobStats

        assert JobStats().skew == 1.0
        assert JobStats(records_per_shard=[0, 0]).skew == 1.0
        assert JobStats(records_per_shard=[2, 6]).skew == 1.5


# ------------------------------------------------------- execution backends

# Module-level so the process backend can resolve them by reference.
def _square(x):
    return x * x


def _wc_mapper(doc):
    for word in doc.split():
        yield word, 1


def _wc_reducer(word, counts):
    yield word, sum(counts)


def _traced_mapper(doc):
    from repro import obs

    with obs.span("test.map") as tracing:
        pairs = [(word, 1) for word in doc.split()]
        tracing.add("pairs", len(pairs))
    return pairs


def _boom_initializer():
    raise AssertionError("initializer must not run for an empty task list")


def _append_marker(bucket, marker):
    bucket.append(marker)


class TestExecutionBackends:
    DOCS = ["a b a c", "b c d", "d d a", "e", "a b c d e f"]

    def _backends(self):
        from repro.bigdata.backends import (
            ProcessBackend,
            SerialBackend,
            ThreadBackend,
        )

        return [SerialBackend(), ThreadBackend(2), ProcessBackend(2)]

    def test_chunked_partitions_in_order(self):
        from repro.bigdata.backends import chunked

        assert chunked([], 4) == []
        assert chunked([1, 2], 5) == [[1], [2]]
        batches = chunked(list(range(10)), 3)
        assert batches == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]
        assert [x for batch in batches for x in batch] == list(range(10))

    def test_map_returns_results_in_task_order(self):
        tasks = list(range(20))
        expected = [x * x for x in tasks]
        for backend in self._backends():
            assert backend.map(_square, tasks) == expected

    def test_get_backend_resolution(self):
        from repro.bigdata.backends import (
            ProcessBackend,
            SerialBackend,
            ThreadBackend,
            get_backend,
        )

        assert isinstance(get_backend("auto", workers=0), SerialBackend)
        assert isinstance(get_backend("auto", workers=1), SerialBackend)
        auto4 = get_backend("auto", workers=4)
        assert isinstance(auto4, ProcessBackend)
        assert auto4.workers == 4
        assert isinstance(get_backend("thread", workers=3), ThreadBackend)
        passthrough = ThreadBackend(2)
        assert get_backend(passthrough) is passthrough
        with pytest.raises(ValueError):
            get_backend("cluster")
        with pytest.raises(ValueError):
            ThreadBackend(0)

    def test_mapreduce_identical_across_backends(self):
        serial_engine: MapReduce = MapReduce(shards=3)
        reference, ref_stats = serial_engine.run(
            self.DOCS, _wc_mapper, _wc_reducer
        )
        for backend in self._backends():
            engine: MapReduce = MapReduce(shards=3, backend=backend)
            results, stats = engine.run(self.DOCS, _wc_mapper, _wc_reducer)
            assert results == reference
            assert stats == ref_stats

    @pytest.mark.parametrize("backend_name", ["thread", "process"])
    def test_worker_telemetry_merged_into_parent(self, backend_name):
        from repro import obs
        from repro.bigdata.backends import get_backend

        obs.reset()
        obs.enable()
        try:
            engine: MapReduce = MapReduce(
                shards=2, backend=get_backend(backend_name, workers=2)
            )
            engine.run(self.DOCS, _traced_mapper, _wc_reducer)
            stages = obs.stage_breakdown()
        finally:
            obs.disable()
            obs.reset()
        worker_stages = [s for s in stages if "worker[" in s["stage"]]
        assert worker_stages, "worker spans did not reach the parent trace"
        total_pairs = sum(
            s["counters"].get("pairs", 0)
            for s in stages
            if s["stage"].endswith("test.map")
        )
        assert total_pairs == sum(len(doc.split()) for doc in self.DOCS)


class TestBackendWorkerCounts:
    """Regression: explicit worker counts must be honored exactly.

    ``get_backend("thread", workers=1)`` used to hand back a 2-thread
    pool and ``get_backend("process", workers=1)`` a cpu_count pool; an
    explicit N >= 1 now always wins, with backend defaults reserved for
    ``workers == 0``.
    """

    def test_explicit_one_worker_is_one_worker(self):
        from repro.bigdata.backends import get_backend

        assert get_backend("serial", workers=1).workers == 1
        assert get_backend("thread", workers=1).workers == 1
        assert get_backend("process", workers=1).workers == 1

    def test_explicit_counts_honored_for_every_backend(self):
        from repro.bigdata.backends import get_backend

        for name in ("thread", "process"):
            for n in (1, 2, 3, 5):
                assert get_backend(name, workers=n).workers == n

    def test_zero_workers_means_backend_default(self):
        import os

        from repro.bigdata.backends import get_backend

        assert get_backend("thread", workers=0).workers == 2
        assert get_backend("process", workers=0).workers == (os.cpu_count() or 1)

    def test_negative_workers_rejected(self):
        from repro.bigdata.backends import get_backend

        for name in ("serial", "thread", "process", "auto"):
            with pytest.raises(ValueError):
                get_backend(name, workers=-1)


class TestEmptyInputParity:
    """All backends agree on empty input: [] back, no initializer run."""

    def test_empty_map_returns_empty_without_initializer(self):
        from repro.bigdata.backends import (
            ProcessBackend,
            SerialBackend,
            ThreadBackend,
        )

        for backend in (SerialBackend(), ThreadBackend(2), ProcessBackend(2)):
            with backend:
                assert backend.map(
                    _square, [], initializer=_boom_initializer
                ) == []
            # Pooled backends must not even spin a pool up for no work.
            assert backend.spinups == 0


class TestSchedules:
    def test_dispatch_order_cost_sorted_with_index_tiebreak(self):
        from repro.bigdata.backends import _dispatch_order

        tasks = ["bb", "a", "ccc", "dd"]
        assert _dispatch_order(tasks, "steal", len) == [
            (2, "ccc"), (0, "bb"), (3, "dd"), (1, "a")
        ]
        assert _dispatch_order(tasks, "static", len) == list(enumerate(tasks))
        # Without a cost estimate, stealing degrades to index order.
        assert _dispatch_order(tasks, "steal", None) == list(enumerate(tasks))

    def test_steal_results_equal_static_on_every_backend(self):
        from repro.bigdata.backends import (
            ProcessBackend,
            SerialBackend,
            ThreadBackend,
        )

        tasks = list(range(17))
        expected = [x * x for x in tasks]
        for backend in (SerialBackend(), ThreadBackend(2), ProcessBackend(2)):
            with backend:
                assert backend.map(
                    _square, tasks, schedule="steal", cost_key=lambda t: t % 5
                ) == expected

    def test_unknown_schedule_rejected(self):
        from repro.bigdata.backends import SerialBackend, ThreadBackend

        with pytest.raises(ValueError):
            SerialBackend().map(_square, [1], schedule="lifo")
        with ThreadBackend(2) as backend:
            with pytest.raises(ValueError):
                backend.map(_square, [1], schedule="")


class TestPoolPersistence:
    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_pool_reused_across_maps(self, kind):
        from repro.bigdata.backends import get_backend

        backend = get_backend(kind, workers=2)
        try:
            assert (backend.spinups, backend.reuses) == (0, 0)
            assert backend.map(_square, [1, 2, 3]) == [1, 4, 9]
            assert (backend.spinups, backend.reuses) == (1, 0)
            assert backend.map(_square, [4, 5]) == [16, 25]
            assert (backend.spinups, backend.reuses) == (1, 1)
        finally:
            backend.close()

    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_close_then_map_respins(self, kind):
        from repro.bigdata.backends import get_backend

        backend = get_backend(kind, workers=2)
        try:
            backend.map(_square, [1])
            backend.close()
            assert backend.map(_square, [2, 3]) == [4, 9]
            assert backend.spinups == 2
        finally:
            backend.close()

    def test_context_manager_closes_pool(self):
        from repro.bigdata.backends import ThreadBackend

        with ThreadBackend(2) as backend:
            backend.map(_square, [1, 2])
            assert backend._pool is not None
        assert backend._pool is None

    def test_initializer_delivered_per_call_on_persistent_thread_pool(self):
        from repro.bigdata.backends import ThreadBackend

        bucket: list = []
        with ThreadBackend(2) as backend:
            backend.map(_square, [1, 2, 3], initializer=_append_marker,
                        initargs=(bucket, "first"))
            backend.map(_square, [4, 5, 6], initializer=_append_marker,
                        initargs=(bucket, "second"))
        # The pool persisted across calls, yet each call's initializer
        # reached the workers that executed it (once per thread per call).
        assert {"first", "second"} <= set(bucket)
        assert len(bucket) <= 4  # never more than workers x calls


class TestWorkerTelemetryGrouping:
    DOCS = ["a b a c", "b c d", "d d a", "e", "a b c d e f",
            "f g", "g h i", "i", "j k", "k l m n"]

    def test_one_wrapper_span_per_worker(self):
        from repro import obs
        from repro.bigdata.backends import ThreadBackend
        from repro.obs import core as obs_core

        obs.reset()
        obs.enable()
        try:
            with ThreadBackend(1) as backend:
                with obs_core.span("test.call"):
                    backend.map(_traced_mapper, self.DOCS)
            roots = obs_core.take_roots()
        finally:
            obs.disable()
            obs.reset()
        (call_span,) = roots
        wrappers = [
            child for child in call_span.children
            if child.name.startswith("worker[")
        ]
        # One worker ran all ten tasks: exactly one wrapper span holding
        # all ten per-task spans — not ten sibling wrappers.
        assert len(wrappers) == 1
        assert len(call_span.children) == 1
        assert len(wrappers[0].children) == len(self.DOCS)
        assert all(
            span.name == "test.map" for span in wrappers[0].children
        )

    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_workers_one_uses_exactly_one_worker(self, kind):
        from repro import obs
        from repro.bigdata.backends import get_backend
        from repro.obs import core as obs_core

        obs.reset()
        obs.enable()
        try:
            with get_backend(kind, workers=1) as backend:
                assert backend.workers == 1
                backend.map(_traced_mapper, self.DOCS)
            counters = obs_core.counters()
            tasks_hist = obs_core.histograms()["backend.worker.tasks"]
            busy_hist = obs_core.histograms()["backend.worker.busy_s"]
        finally:
            obs.disable()
            obs.reset()
        assert counters["backend.tasks_dispatched"] == len(self.DOCS)
        # One histogram sample per reporting worker: exactly one worker
        # executed, and it executed every task.
        assert tasks_hist.values == [len(self.DOCS)]
        assert busy_hist.count == 1

    def test_utilization_histogram_covers_all_tasks(self):
        from repro import obs
        from repro.bigdata.backends import ThreadBackend
        from repro.obs import core as obs_core

        obs.reset()
        obs.enable()
        try:
            with ThreadBackend(2) as backend:
                backend.map(
                    _traced_mapper, self.DOCS,
                    schedule="steal", cost_key=len,
                )
            tasks_hist = obs_core.histograms()["backend.worker.tasks"]
        finally:
            obs.disable()
            obs.reset()
        assert sum(tasks_hist.values) == len(self.DOCS)
        assert 1 <= tasks_hist.count <= 2  # one sample per worker


class TestPrefixSpan:
    def test_gappy_sequences(self):
        database = [("a", "b", "c"), ("a", "c"), ("a", "b")]
        frequent = frequent_sequences(database, min_support=2)
        assert frequent[("a",)] == 3
        assert frequent[("a", "b")] == 2
        assert frequent[("a", "c")] == 2
        assert ("b", "a") not in frequent

    def test_contiguous_ngrams(self):
        database = [("was", "born", "in"), ("was", "born", "in"), ("born", "in", "x")]
        frequent = frequent_sequences(database, min_support=2, contiguous=True)
        assert frequent[("was", "born", "in")] == 2
        assert frequent[("born", "in")] == 3

    def test_max_length_respected(self):
        database = [("a", "b", "c", "d")] * 3
        frequent = frequent_sequences(database, min_support=2, max_length=2)
        assert all(len(seq) <= 2 for seq in frequent)

    def test_support_counted_once_per_sequence(self):
        database = [("a", "a", "a")]
        frequent = frequent_sequences(database, min_support=1, max_length=1)
        assert frequent[("a",)] == 1

    def test_closed_sequences(self):
        database = [("was", "born", "in")] * 3
        frequent = frequent_sequences(database, min_support=2, contiguous=True)
        closed = closed_sequences(frequent)
        assert ("was", "born", "in") in closed
        # "was born" is dominated by "was born in" at equal support.
        assert ("was", "born") not in closed

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            frequent_sequences([], min_support=0)
        with pytest.raises(ValueError):
            frequent_sequences([], max_length=0)


class TestMinHash:
    def test_identical_sets_agree(self):
        hasher = MinHasher(num_hashes=32)
        items = {"a", "b", "c"}
        assert hasher.signature(items) == hasher.signature(items)
        assert MinHasher.estimate_jaccard(
            hasher.signature(items), hasher.signature(items)
        ) == 1.0

    def test_jaccard_exact(self):
        assert jaccard({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)
        assert jaccard(set(), set()) == 1.0

    @settings(max_examples=20, deadline=None)
    @given(
        st.sets(st.integers(0, 40), min_size=5, max_size=30),
        st.sets(st.integers(0, 40), min_size=5, max_size=30),
    )
    def test_estimate_tracks_jaccard(self, set_a, set_b):
        hasher = MinHasher(num_hashes=256)
        estimate = MinHasher.estimate_jaccard(
            hasher.signature(set_a), hasher.signature(set_b)
        )
        assert abs(estimate - jaccard(set_a, set_b)) < 0.25

    def test_lsh_finds_near_duplicates(self):
        hasher = MinHasher(num_hashes=64)
        signatures = {
            "x": hasher.signature(shingles("Nimbus Systems")),
            "y": hasher.signature(shingles("Nimbus Systemz")),
            "z": hasher.signature(shingles("completely different name")),
        }
        pairs = lsh_candidate_pairs(signatures, bands=16)
        assert ("x", "y") in pairs
        assert ("x", "z") not in pairs

    def test_lsh_band_validation(self):
        hasher = MinHasher(num_hashes=64)
        signatures = {"x": hasher.signature({"a"})}
        with pytest.raises(ValueError):
            lsh_candidate_pairs(signatures, bands=7)

    def test_shingles(self):
        assert shingles("ab", 3) == {"ab"}
        assert "abc" in shingles("abcd", 3)
