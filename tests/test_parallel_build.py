"""Cross-backend build equivalence: every execution mode, one KB.

The pipeline's contract after the order-dependence fixes is that serial,
sharded map-reduce, thread-pool, and process-pool builds of the same wiki
produce *byte-identical* canonical KBs and the same report counters.
These tests run the full matrix in-process (the subprocess variant is
``repro check-determinism --cross-mode``), plus the supporting
regressions: order-independent candidate merging, picklable payloads,
single-element alias lists, and worker telemetry completeness.
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro import obs
from repro.corpus import build_wiki
from repro.determinism import canonical_kb_text
from repro.extraction import Candidate, candidates_to_store, merge_candidates
from repro.kb import Entity, Relation, TimeSpan, Triple
from repro.pipeline import BuildConfig, KnowledgeBaseBuilder
from repro.world import WorldConfig, generate_world

#: The execution-mode matrix: label -> BuildConfig overrides.  The
#: reasoner modes exercise the component-decomposed parallel MaxSat path.
MODES = {
    "serial": {},
    "shards4": {"mapreduce_shards": 4},
    "thread2": {"workers": 2, "backend": "thread"},
    "process2": {"workers": 2, "backend": "process"},
    "reasoner-thread2": {"reasoner_workers": 2, "reasoner_backend": "thread"},
    "reasoner-process2": {"reasoner_workers": 2, "reasoner_backend": "process"},
    "steal-thread2": {
        "workers": 2, "backend": "thread",
        "reasoner_workers": 2, "reasoner_backend": "thread",
        "schedule": "steal",
    },
    "steal-process2": {
        "workers": 2, "backend": "process",
        "reasoner_workers": 2, "reasoner_backend": "process",
        "schedule": "steal",
    },
}


@pytest.fixture(scope="module")
def small_world():
    return generate_world(WorldConfig(seed=9, n_people=25))


@pytest.fixture(scope="module")
def small_wiki(small_world):
    return build_wiki(small_world)


def _build(world, wiki, **overrides):
    config = BuildConfig(**overrides)
    builder = KnowledgeBaseBuilder(wiki, aliases=world.aliases, config=config)
    return builder.build()


def _comparable_report(report) -> dict:
    """The report fields every mode must agree on (drop execution detail)."""
    comparable = {
        field.name: getattr(report, field.name)
        for field in dataclasses.fields(report)
        if field.name not in {"mapreduce", "backend", "workers", "schedule"}
    }
    return comparable


@pytest.fixture(scope="module")
def mode_results(small_world, small_wiki):
    return {
        label: _build(small_world, small_wiki, **overrides)
        for label, overrides in MODES.items()
    }


class TestCrossBackendEquivalence:
    @pytest.mark.parametrize("label", [m for m in MODES if m != "serial"])
    def test_kb_byte_identical_to_serial(self, mode_results, label):
        serial_kb, __ = mode_results["serial"]
        other_kb, __ = mode_results[label]
        assert canonical_kb_text(other_kb) == canonical_kb_text(serial_kb)

    @pytest.mark.parametrize("label", [m for m in MODES if m != "serial"])
    def test_report_counters_identical_to_serial(self, mode_results, label):
        __, serial_report = mode_results["serial"]
        __, other_report = mode_results[label]
        assert _comparable_report(other_report) == _comparable_report(
            serial_report
        )

    def test_backend_recorded_in_report(self, mode_results):
        __, thread_report = mode_results["thread2"]
        assert thread_report.backend == "thread"
        assert thread_report.workers == 2
        __, process_report = mode_results["process2"]
        assert process_report.backend == "process"
        assert process_report.workers == 2

    def test_schedule_recorded_in_report(self, mode_results):
        __, steal_report = mode_results["steal-process2"]
        assert steal_report.schedule == "steal"
        __, static_report = mode_results["process2"]
        assert static_report.schedule == "static"

    def test_mapreduce_stats_still_reported(self, mode_results):
        __, report = mode_results["shards4"]
        assert report.mapreduce is not None
        assert report.mapreduce.shards == 4


class TestMergeOrderIndependence:
    """The headline regression: provenance election and noisy-or folding
    must not depend on candidate arrival order."""

    @staticmethod
    def _candidates():
        s = Entity("world:A")
        r = Relation("rel:bornIn")
        o = Entity("world:B")
        return [
            Candidate(s, r, o, 0.7, "infobox", "row 1"),
            Candidate(s, r, o, 0.7, "surface-patterns", "sentence 2"),
            Candidate(s, r, o, 0.55, "surface-patterns", "sentence 1",
                      scope=TimeSpan(1990, 1995)),
            Candidate(s, r, o, 0.55, "infobox", "row 2",
                      scope=TimeSpan(1990, 1999)),
        ]

    def test_merged_confidence_identical_under_permutation(self):
        candidates = self._candidates()
        reference = merge_candidates(candidates)
        reversed_merge = merge_candidates(list(reversed(candidates)))
        rotated = merge_candidates(candidates[2:] + candidates[:2])
        assert reversed_merge == reference
        assert rotated == reference

    def test_store_identical_under_permutation(self):
        candidates = self._candidates()
        reference = canonical_kb_text(candidates_to_store(candidates, 0.5))
        for permuted in (
            list(reversed(candidates)),
            candidates[1:] + candidates[:1],
            candidates[3:] + candidates[:3],
        ):
            assert (
                canonical_kb_text(candidates_to_store(permuted, 0.5))
                == reference
            )

    def test_witness_is_highest_confidence_then_lexicographic(self):
        candidates = self._candidates()
        store = candidates_to_store(candidates, 0.5)
        (triple,) = list(store)
        # Both 0.7 witnesses tie on confidence; "infobox" < "surface-patterns".
        assert triple.source == "infobox"
        # Scope election among scoped candidates: equal confidence, equal
        # extractor order ("infobox" < "surface-patterns") -> row 2's scope.
        assert triple.scope == TimeSpan(1990, 1999)


class TestPicklablePayloads:
    """Process-backend task payloads and results must round-trip pickle."""

    def test_candidate_round_trip(self):
        candidate = Candidate(
            Entity("world:A"), Relation("rel:bornIn"), Entity("world:B"),
            0.8, "infobox", "evidence", scope=TimeSpan(1990, None),
        )
        assert pickle.loads(pickle.dumps(candidate)) == candidate

    def test_triple_round_trip(self):
        triple = Triple(
            Entity("world:A"), Relation("rel:bornIn"), Entity("world:B"),
            confidence=0.9, source="infobox", scope=TimeSpan(1914, 1918),
        )
        assert pickle.loads(pickle.dumps(triple)) == triple

    def test_timespan_round_trip(self):
        span = TimeSpan(2001, 2008)
        assert pickle.loads(pickle.dumps(span)) == span

    def test_wiki_page_round_trip(self, small_wiki):
        title = sorted(small_wiki.pages)[0]
        page = small_wiki.pages[title]
        clone = pickle.loads(pickle.dumps(page))
        assert clone.title == page.title
        assert clone.entity == page.entity
        assert len(clone.document.sentences) == len(page.document.sentences)


class TestAliasRegistration:
    def test_single_element_alias_list_resolves(self, small_world, small_wiki):
        entity = small_world.people[0]
        title = small_wiki.by_entity[entity]
        alias = "The " + title
        builder = KnowledgeBaseBuilder(
            small_wiki, aliases={entity: [alias]}, config=BuildConfig()
        )
        assert builder.resolver.resolve(alias) == entity

    def test_title_equal_form_not_double_registered(
        self, small_world, small_wiki
    ):
        entity = small_world.people[0]
        title = small_wiki.by_entity[entity]
        baseline = KnowledgeBaseBuilder(small_wiki, config=BuildConfig())
        builder = KnowledgeBaseBuilder(
            small_wiki, aliases={entity: [title]}, config=BuildConfig()
        )
        assert (
            builder.resolver.entry(title).candidates
            == baseline.resolver.entry(title).candidates
        )


class TestWorkerTelemetry:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_worker_spans_cover_all_extraction(
        self, small_world, small_wiki, backend
    ):
        obs.reset()
        obs.enable()
        try:
            __, report = _build(
                small_world, small_wiki, workers=2, backend=backend
            )
            stages = obs.stage_breakdown()
        finally:
            obs.disable()
            obs.reset()
        worker_stages = [s for s in stages if "worker[" in s["stage"]]
        assert worker_stages, "no per-worker spans were merged into the trace"
        infobox_total = sum(
            s["counters"].get("candidates", 0)
            for s in stages
            if "worker[" in s["stage"]
            and s["stage"].endswith("pipeline.extract.infobox")
        )
        assert infobox_total == report.infobox_candidates
        sentence_counters = [
            s["counters"]
            for s in stages
            if "worker[" in s["stage"]
            and s["stage"].endswith("pipeline.extract.sentences")
        ]
        assert sum(
            c.get("patterns", 0) for c in sentence_counters
        ) == report.pattern_candidates
        assert sum(
            c.get("year_attributes", 0) for c in sentence_counters
        ) == report.year_candidates
