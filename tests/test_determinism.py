"""Tests of the determinism subsystem: stable helpers, lint, harness."""

from __future__ import annotations

import textwrap

import pytest

from repro.determinism import (
    canonical_kb_lines,
    canonical_kb_text,
    first_divergence,
    sorted_items,
    sorted_set,
    stable_hash,
    stable_str_key,
    stage_of_line,
)
from repro.determinism.lint import PRAGMA, lint_file
from repro.kb import Entity, Relation, Triple, TripleStore


class TestStableHash:
    def test_pinned_value(self):
        # A contract, not an implementation detail: shard assignment and
        # feature hashing depend on this exact mapping.
        assert stable_hash("alpha") == stable_hash("alpha")
        assert stable_hash("alpha") == 11099342189553124947

    def test_strings_hash_their_bytes(self):
        assert stable_hash("x") != stable_hash("'x'")

    def test_non_strings_hash_their_repr(self):
        assert stable_hash(("a", 1)) == stable_hash(repr(("a", 1)))

    def test_spread(self):
        values = {stable_hash(f"key-{i}") % 16 for i in range(200)}
        assert len(values) == 16  # every bucket reachable


class TestCanonicalIteration:
    def test_stable_str_key(self):
        assert stable_str_key("abc") == "abc"
        assert stable_str_key(Entity("world:X")) == repr(Entity("world:X"))

    def test_sorted_items_is_key_sorted(self):
        mapping = {"b": 2, "a": 1, "c": 3}
        assert sorted_items(mapping) == [("a", 1), ("b", 2), ("c", 3)]

    def test_sorted_items_with_entity_keys(self):
        a, b = Entity("world:A"), Entity("world:B")
        assert sorted_items({b: 1, a: 2}) == [(a, 2), (b, 1)]

    def test_sorted_set(self):
        assert sorted_set({"c", "a", "b"}) == ["a", "b", "c"]
        assert sorted_set(frozenset({3, 1, 2}), key=lambda x: x) == [1, 2, 3]


class TestCanonicalSerialization:
    @staticmethod
    def _store() -> TripleStore:
        store = TripleStore()
        store.add(Triple(Entity("world:B"), Relation("rel:r"), Entity("world:C"),
                         confidence=0.8, source="infobox"))
        store.add(Triple(Entity("world:A"), Relation("rel:r"), Entity("world:C")))
        return store

    def test_lines_are_sorted_and_carry_provenance(self):
        lines = canonical_kb_lines(self._store())
        assert lines == sorted(lines)
        assert any("conf=0.8" in line and "src=infobox" in line for line in lines)

    def test_insertion_order_does_not_matter(self):
        forward = self._store()
        backward = TripleStore(reversed(list(forward)))
        assert canonical_kb_text(forward) == canonical_kb_text(backward)

    def test_empty_store(self):
        assert canonical_kb_lines(TripleStore()) == []
        assert canonical_kb_text(TripleStore()) == ""


class TestLint:
    @staticmethod
    def _lint(source: str, tmp_path) -> list:
        path = tmp_path / "snippet.py"
        path.write_text(textwrap.dedent(source))
        return lint_file(str(path))

    # ----------------------------------------------------- true positives

    def test_for_loop_over_set_literal(self, tmp_path):
        findings = self._lint(
            """
            items = {"a", "b"}
            for item in items:
                print(item)
            """,
            tmp_path,
        )
        assert [f.code for f in findings] == ["DET001"]

    def test_for_loop_over_set_call(self, tmp_path):
        findings = self._lint(
            """
            def f(rows):
                seen = set(rows)
                for row in seen:
                    yield row
            """,
            tmp_path,
        )
        assert [f.code for f in findings] == ["DET001"]

    def test_comprehension_over_set_annotation(self, tmp_path):
        findings = self._lint(
            """
            def f(names: set[str]) -> list[str]:
                return [n.upper() for n in names]
            """,
            tmp_path,
        )
        assert [f.code for f in findings] == ["DET002"]

    def test_list_materializes_set(self, tmp_path):
        findings = self._lint(
            """
            def f():
                return list(frozenset(["a"]))
            """,
            tmp_path,
        )
        assert [f.code for f in findings] == ["DET003"]

    def test_set_operator_expression(self, tmp_path):
        findings = self._lint(
            """
            def f(a: set, b: set):
                for x in a & b:
                    print(x)
            """,
            tmp_path,
        )
        assert [f.code for f in findings] == ["DET001"]

    def test_self_attribute_set(self, tmp_path):
        findings = self._lint(
            """
            class C:
                def __init__(self):
                    self.members = set()

                def walk(self):
                    return [m for m in self.members]
            """,
            tmp_path,
        )
        assert [f.code for f in findings] == ["DET002"]

    def test_builtin_hash_flagged(self, tmp_path):
        findings = self._lint(
            """
            def shard(key, n):
                return hash(key) % n
            """,
            tmp_path,
        )
        assert [f.code for f in findings] == ["DET004"]

    def test_known_set_returning_method(self, tmp_path):
        findings = self._lint(
            """
            def f(store):
                for entity in store.entities():
                    print(entity)
            """,
            tmp_path,
        )
        assert [f.code for f in findings] == ["DET001"]

    def test_def_time_constructed_default_flagged(self, tmp_path):
        findings = self._lint(
            """
            def build(world, config: BuildConfig = BuildConfig()):
                return config
            """,
            tmp_path,
        )
        assert [f.code for f in findings] == ["DET005"]

    def test_def_time_default_in_kwonly_args_flagged(self, tmp_path):
        findings = self._lint(
            """
            def build(world, *, config=WikiConfig(), verbose=False):
                return config
            """,
            tmp_path,
        )
        assert [f.code for f in findings] == ["DET005"]

    # ---------------------------------------------------- false positives

    def test_sorted_set_is_clean(self, tmp_path):
        assert self._lint(
            """
            items = {"a", "b"}
            for item in sorted(items):
                print(item)
            """,
            tmp_path,
        ) == []

    def test_order_insensitive_reducers_are_clean(self, tmp_path):
        assert self._lint(
            """
            def f(values: set[int]) -> int:
                total = sum(v for v in values)
                lowest = min(v for v in values)
                return total + lowest + len(values)
            """,
            tmp_path,
        ) == []

    def test_set_comprehension_is_clean(self, tmp_path):
        assert self._lint(
            """
            def f(values: set[str]):
                return {v.lower() for v in values}
            """,
            tmp_path,
        ) == []

    def test_dict_iteration_is_clean(self, tmp_path):
        assert self._lint(
            """
            def f(mapping: dict) -> list:
                return [k for k in mapping]
            """,
            tmp_path,
        ) == []

    def test_list_iteration_is_clean(self, tmp_path):
        assert self._lint(
            """
            def f(rows):
                ordered = list(rows)
                for row in ordered:
                    print(row)
            """,
            tmp_path,
        ) == []

    def test_pragma_allowlists_a_site(self, tmp_path):
        assert self._lint(
            f"""
            counts = {{}}
            for item in {{"a", "b"}}:  # {PRAGMA} -- membership only
                counts[item] = 1
            """,
            tmp_path,
        ) == []

    def test_none_sentinel_default_is_clean(self, tmp_path):
        assert self._lint(
            """
            def build(world, config=None):
                if config is None:
                    config = BuildConfig()
                return config
            """,
            tmp_path,
        ) == []

    def test_plain_immutable_defaults_are_clean(self, tmp_path):
        assert self._lint(
            """
            def f(x=0, label="kb", flags=(), scale=1.5, mode=None):
                return x
            """,
            tmp_path,
        ) == []

    def test_lowercase_call_default_not_flagged(self, tmp_path):
        # Factory-function defaults (tuple(), frozenset()) return fresh or
        # immutable values; DET005 targets CamelCase constructor calls.
        assert self._lint(
            """
            def f(items=tuple(), names=frozenset()):
                return items, names
            """,
            tmp_path,
        ) == []

    def test_rebound_name_is_not_set_like(self, tmp_path):
        assert self._lint(
            """
            def f(rows):
                items = set(rows)
                items = sorted(items)
                for item in items:
                    print(item)
            """,
            tmp_path,
        ) == []

    def test_repo_tree_is_clean(self):
        from repro.determinism.lint import lint_paths
        import os

        package_root = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src", "repro",
        )
        assert lint_paths([package_root]) == []


class TestCrossModeReporting:
    def test_default_mode_matrix_covers_every_strategy(self):
        from repro.determinism import CROSS_MODES

        labels = [mode.label for mode in CROSS_MODES]
        assert labels == [
            "serial", "shards4", "thread2", "process2",
            "reasoner-thread2", "reasoner-process2",
            "steal-thread2", "steal-process2",
            "corpus-thread2", "corpus-process2", "steal-corpus-process2",
        ]
        by_label = {mode.label: mode for mode in CROSS_MODES}
        assert by_label["shards4"].shards == 4
        assert by_label["thread2"].backend == "thread"
        assert by_label["process2"].workers == 2
        assert by_label["reasoner-thread2"].reasoner_backend == "thread"
        assert by_label["reasoner-thread2"].reasoner_workers == 2
        assert by_label["reasoner-process2"].reasoner_backend == "process"
        assert by_label["reasoner-process2"].reasoner_workers == 2
        # The steal modes run work-stealing dispatch through *both* the
        # extraction and reasoner stages, over one shared worker pool.
        for label in ("steal-thread2", "steal-process2"):
            mode = by_label[label]
            assert mode.schedule == "steal"
            assert mode.workers == 2 and mode.reasoner_workers == 2
            assert mode.backend == mode.reasoner_backend
        # Static modes leave the schedule at the CLI default.
        assert by_label["serial"].schedule is None
        # The corpus modes push page payloads through the segment-backed
        # file transport instead of the pickled broadcast.
        for label in (
            "corpus-thread2", "corpus-process2", "steal-corpus-process2"
        ):
            mode = by_label[label]
            assert mode.corpus_transport == "file"
            assert mode.workers == 2
        assert by_label["steal-corpus-process2"].schedule == "steal"
        # Everything else leaves the transport at the CLI default (auto).
        assert by_label["serial"].corpus_transport is None

    def test_report_describe_ok_and_divergent(self):
        from repro.determinism import CrossModeReport, Divergence

        ok = CrossModeReport(ok=True, modes=["serial", "shards4"], triples=10)
        assert "cross-mode deterministic" in ok.describe()
        assert "serial, shards4" in ok.describe()
        bad = CrossModeReport(
            ok=False,
            modes=["serial", "thread2"],
            diverging_mode="thread2",
            divergence=Divergence(0, 1, "line a", "line b", "stage"),
        )
        text = bad.describe()
        assert "NOT cross-mode deterministic" in text
        assert "thread2" in text

    def test_too_few_modes_rejected(self):
        from repro.determinism import BuildMode, check_cross_mode

        with pytest.raises(ValueError):
            check_cross_mode(modes=[BuildMode("serial")])


class TestHarnessReporting:
    def test_first_divergence_differing_line(self):
        a = ["<world:A> <<rel:r>> <world:B> .", "x"]
        b = ["<world:A> <<rel:r>> <world:C> .", "x"]
        divergence = first_divergence(a, b, 0, 1)
        assert divergence.run_a == 0 and divergence.run_b == 1
        assert divergence.line_a == a[0]
        assert divergence.line_b == b[0]

    def test_first_divergence_prefix(self):
        a = ["line-1"]
        b = ["line-1", "line-2"]
        divergence = first_divergence(a, b, 0, 3)
        assert divergence.line_a is None
        assert divergence.line_b == "line-2"

    def test_stage_attribution(self):
        assert stage_of_line(
            "<world:A> <<rel:bornIn>> <world:B> . # conf=0.95 src=infobox"
        ) == "pipeline.extract.infobox"
        assert stage_of_line(
            "<world:A> <<rel:bornIn>> <world:B> . # src=surface-patterns"
        ) == "pipeline.extract.sentences"
        assert stage_of_line(
            "<world:A> <<rdf:type>> <cls:person> ."
        ) == "pipeline.taxonomy"
        assert stage_of_line(
            '<world:A> <<rdfs:label>> "Ada"@de . # conf=0.95 src=Ada'
        ) == "pipeline.multilingual"
        assert stage_of_line(None) == "unknown"

    def test_check_determinism_validates_arguments(self):
        from repro.determinism import check_determinism

        with pytest.raises(ValueError):
            check_determinism(runs=1)
        with pytest.raises(ValueError):
            check_determinism(runs=2, hash_seeds=[1])
        with pytest.raises(ValueError):
            check_determinism(runs=2, hash_seeds=[1, 1])
