"""Tests for repro.kb.segments: the on-disk sorted-segment storage engine.

Covers the byte-pinned file format, the snapshot read path against the
in-memory store as an oracle, bloom-filter behavior, LSM newest-wins
semantics, compaction, and the directory differ that
``repro check-determinism`` uses to compare KBs as files.
"""

import json
import os
import threading

import pytest

from repro.kb import (
    Entity,
    Relation,
    TimeSpan,
    SegmentStore,
    Triple,
    TripleStore,
    ReadOnlyStoreError,
    diff_segment_dirs,
    open_snapshot,
    string_literal,
    write_segments,
)
from repro.kb.segments import (
    BLOOM_MAGIC,
    SEGMENT_MAGIC,
    BloomFilter,
    ORDERS,
    _parts_from_record,
    _record_bytes,
    record_fields,
    spo_key_bytes,
    spo_texts,
)

A, B, C, D = (Entity(f"w:{x}") for x in "abcd")
KNOWS, LIKES = Relation("w:knows"), Relation("w:likes")


def tiny_triples():
    return [
        Triple(A, KNOWS, B, confidence=0.75, source="wiki:a"),
        Triple(A, KNOWS, C),
        Triple(B, KNOWS, C, source="a book with spaces"),
        Triple(A, LIKES, string_literal("pie", "en"), confidence=0.5),
        Triple(B, LIKES, D, scope=TimeSpan(1990, 1995)),
    ]


@pytest.fixture
def store():
    return TripleStore(tiny_triples())


@pytest.fixture
def segdir(tmp_path, store):
    directory = str(tmp_path / "seg")
    write_segments(store, directory)
    return directory


class TestRecordFormat:
    def test_record_roundtrip_every_order(self, store):
        for triple in store:
            fields = record_fields(triple)
            for order in ORDERS:
                assert _parts_from_record(_record_bytes(fields, order), order) == fields

    def test_nul_in_term_rejected(self, tmp_path):
        bad = TripleStore([Triple(Entity("w:x\x00y"), KNOWS, B)])
        with pytest.raises(ValueError, match="NUL"):
            write_segments(bad, str(tmp_path / "bad"))

    def test_file_magics(self, segdir):
        names = sorted(os.listdir(segdir))
        assert names == [
            "MANIFEST.json",
            "seg-000000.blooms",
            "seg-000000.osp",
            "seg-000000.pos",
            "seg-000000.spo",
        ]
        for name in names:
            with open(os.path.join(segdir, name), "rb") as fh:
                head = fh.read(8)
            if name.endswith(".blooms"):
                assert head == BLOOM_MAGIC
            elif name != "MANIFEST.json":
                assert head == SEGMENT_MAGIC

    def test_manifest_checksums_and_epoch(self, segdir, store):
        with open(os.path.join(segdir, "MANIFEST.json")) as fh:
            manifest = json.load(fh)
        assert manifest["triples"] == len(store)
        assert manifest["epoch"] == store.epoch
        entry = manifest["segments"][0]
        import hashlib

        for order in ORDERS:
            meta = entry["files"][order]
            with open(os.path.join(segdir, f"{entry['name']}.{order}"), "rb") as fh:
                blob = fh.read()
            assert meta["bytes"] == len(blob)
            assert meta["sha256"] == hashlib.sha256(blob).hexdigest()


class TestBytePinning:
    def test_independent_writes_byte_identical(self, tmp_path, store):
        left, right = str(tmp_path / "l"), str(tmp_path / "r")
        write_segments(store, left)
        # Insertion order must not matter: reversed store, same bytes.
        write_segments(TripleStore(list(reversed(tiny_triples()))), right)
        assert diff_segment_dirs(left, right) == []

    def test_diff_reports_content_divergence(self, tmp_path, store):
        left, right = str(tmp_path / "l"), str(tmp_path / "r")
        write_segments(store, left)
        other = store.copy()
        other.add(Triple(D, KNOWS, A))
        write_segments(other, right)
        differences = diff_segment_dirs(left, right)
        assert differences  # every file embeds the content
        assert any("MANIFEST.json" in line for line in differences)

    def test_diff_reports_missing_file(self, tmp_path, store):
        left, right = str(tmp_path / "l"), str(tmp_path / "r")
        write_segments(store, left)
        write_segments(store, right)
        os.unlink(os.path.join(right, "seg-000000.osp"))
        assert any("only in" in line for line in diff_segment_dirs(left, right))


class TestSnapshotReads:
    def test_matches_in_memory_oracle_every_shape(self, segdir, store):
        snap = open_snapshot(segdir)
        # Ordered equivalence holds against a store loaded *from the
        # snapshot* (SPO record order); against the original insertion-
        # ordered store only the triple sets must agree.
        oracle = TripleStore(snap)
        subjects = [A, B, C, D, None]
        predicates = [KNOWS, LIKES, None]
        objects = [B, C, D, string_literal("pie", "en"), None]
        patterns = 0
        for s in subjects:
            for p in predicates:
                for o in objects:
                    got = list(snap.match(s, p, o))
                    expected = list(oracle.match(s, p, o))
                    assert [repr(t) for t in got] == [repr(t) for t in expected], (s, p, o)
                    assert sorted(map(repr, got)) == sorted(
                        map(repr, store.match(s, p, o))
                    ), (s, p, o)
                    assert snap.count(s, p, o) == store.count(s, p, o)
                    patterns += 1
        assert patterns == 5 * 3 * 5
        snap.close()

    def test_annotations_survive(self, segdir, store):
        snap = open_snapshot(segdir)
        by_key = {t.spo(): t for t in snap}
        for original in store:
            loaded = by_key[original.spo()]
            assert loaded.confidence == original.confidence
            assert loaded.source == original.source
            assert str(loaded.scope) == str(original.scope)
        snap.close()

    def test_get_contains_len_iter(self, segdir, store):
        snap = open_snapshot(segdir)
        assert len(snap) == len(store)
        assert snap.version == len(store)
        assert snap.epoch == store.epoch
        assert snap.get(A, KNOWS, B).confidence == 0.75
        assert snap.get(D, KNOWS, A) is None
        assert snap.contains_fact(B, KNOWS, C)
        assert not snap.contains_fact(C, KNOWS, B)
        assert snap.predicates() == store.predicates()
        assert sorted(map(repr, snap)) == sorted(map(repr, store))
        snap.close()

    def test_reloaded_store_agrees_on_epoch(self, segdir, store):
        with open_snapshot(segdir) as snap:
            reloaded = TripleStore(snap)
        assert reloaded.epoch == store.epoch
        assert len(reloaded) == len(store)

    def test_snapshot_is_read_only(self, segdir):
        snap = open_snapshot(segdir)
        assert snap.mutable is False
        with pytest.raises(ReadOnlyStoreError):
            snap.add(Triple(D, KNOWS, A))
        with pytest.raises(ReadOnlyStoreError):
            snap.add_all([Triple(D, KNOWS, A)])
        with pytest.raises(ReadOnlyStoreError):
            snap.remove(Triple(A, KNOWS, B))
        snap.close()


class TestBlooms:
    def test_no_false_negatives(self, store):
        keys = [spo_key_bytes(record_fields(t)) for t in store]
        bloom = BloomFilter.build(keys)
        for key in keys:
            assert bloom.might_contain(key)

    def test_absent_keys_mostly_skipped(self):
        keys = [f"k{i}".encode() for i in range(200)]
        bloom = BloomFilter.build(keys)
        false_positives = sum(
            bloom.might_contain(f"absent{i}".encode()) for i in range(1000)
        )
        assert false_positives < 100  # ~1% expected at 10 bits/key

    def test_snapshot_counts_bloom_skips(self, segdir):
        snap = open_snapshot(segdir)
        assert snap.get(Entity("w:nobody"), KNOWS, B) is None
        assert list(snap.match(subject=Entity("w:nobody"))) == []
        assert snap.stats["bloom_skips"] >= 2
        snap.close()


class TestLSMStack:
    def test_newest_generation_wins(self, tmp_path):
        seg = SegmentStore(str(tmp_path / "lsm"), compact_threshold=100)
        seg.flush([Triple(A, KNOWS, B, confidence=0.3), Triple(A, KNOWS, C)])
        seg.flush([Triple(A, KNOWS, B, confidence=0.9)])
        snap = seg.snapshot()
        assert len(snap) == 2
        assert snap.get(A, KNOWS, B).confidence == 0.9
        expected = TripleStore(
            [Triple(A, KNOWS, B, confidence=0.9), Triple(A, KNOWS, C)]
        )
        assert snap.epoch == expected.epoch
        snap.close()
        seg.close()

    def test_compaction_preserves_content_and_epoch(self, tmp_path, store):
        seg = SegmentStore(str(tmp_path / "lsm"), compact_threshold=100)
        triples = sorted(store, key=repr)
        seg.flush(triples[:2])
        seg.flush(triples[2:])
        before = seg.snapshot()
        seg.compact()
        after = seg.snapshot()
        assert after.epoch == before.epoch == store.epoch
        assert sorted(map(repr, after)) == sorted(map(repr, store))
        # Only one generation remains on disk.
        segments = {n.split(".")[0] for n in os.listdir(seg.directory) if n.startswith("seg-")}
        assert len(segments) == 1
        before.close()
        after.close()
        seg.close()

    def test_snapshot_survives_compaction(self, tmp_path, store):
        seg = SegmentStore(str(tmp_path / "lsm"), compact_threshold=100)
        triples = sorted(store, key=repr)
        seg.flush(triples[:2])
        pinned = seg.snapshot()
        seg.flush(triples[2:])
        seg.compact()  # unlinks the generation `pinned` mmap-ed
        assert len(pinned) == 2
        assert sorted(map(repr, pinned)) == sorted(map(repr, triples[:2]))
        pinned.close()
        seg.close()

    def test_auto_compaction_over_threshold(self, tmp_path, store):
        seg = SegmentStore(str(tmp_path / "lsm"), compact_threshold=2)
        for triple in sorted(store, key=repr):
            seg.flush([triple])
        seg.close()  # joins the background compactor
        segments = {n.split(".")[0] for n in os.listdir(seg.directory) if n.startswith("seg-")}
        assert len(segments) == 1
        with open_snapshot(seg.directory) as snap:
            assert snap.epoch == store.epoch

    def test_write_segments_replaces_stale_files(self, tmp_path, store):
        directory = str(tmp_path / "seg")
        write_segments(store, directory)
        smaller = TripleStore([Triple(A, KNOWS, B)])
        write_segments(smaller, directory)
        with open_snapshot(directory) as snap:
            assert len(snap) == 1
            assert snap.epoch == smaller.epoch


class TestTombstones:
    def test_tombstone_shadows_and_compaction_erases(self, tmp_path, store):
        seg = SegmentStore(str(tmp_path / "lsm"), compact_threshold=100)
        triples = sorted(store, key=repr)
        seg.flush(triples)
        victim = triples[0]
        seg.flush([], tombstones=[spo_texts(victim)])
        with open_snapshot(seg.directory) as snap:
            assert len(snap) == len(triples) - 1
            assert snap.get(victim.subject, victim.predicate, victim.object) is None
            survivors = TripleStore(triples[1:])
            assert snap.epoch == survivors.epoch
        manifest = json.load(open(os.path.join(seg.directory, "MANIFEST.json")))
        assert sum(e.get("tombstones", 0) for e in manifest["segments"]) == 1
        seg.compact()
        manifest = json.load(open(os.path.join(seg.directory, "MANIFEST.json")))
        assert [e["name"] for e in manifest["segments"]] == ["seg-000000"]
        assert all(not e.get("tombstones") for e in manifest["segments"])
        with open_snapshot(seg.directory) as snap:
            assert len(snap) == len(triples) - 1
            assert snap.get(victim.subject, victim.predicate, victim.object) is None
        seg.close()

    def test_tombstone_beats_resurrection_in_older_generation(self, tmp_path):
        seg = SegmentStore(str(tmp_path / "lsm"), compact_threshold=100)
        seg.flush([Triple(A, KNOWS, B), Triple(A, KNOWS, C)])
        seg.flush([], tombstones=[spo_texts(Triple(A, KNOWS, B))])
        # The single-segment fast path must also drop tombstoned keys.
        with open_snapshot(seg.directory) as snap:
            assert [t.object for t in snap.match(subject=A)] == [C]
        seg.close()

    def test_compacted_equals_write_segments(self, tmp_path, store):
        triples = sorted(store, key=repr)
        grown = str(tmp_path / "grown")
        seg = SegmentStore(grown, compact_threshold=100)
        seg.flush(triples)
        seg.flush(
            [Triple(A, KNOWS, B, confidence=0.9)],
            tombstones=[spo_texts(triples[-1])],
        )
        seg.compact()
        seg.close()
        expected = TripleStore(
            [t for t in triples[:-1] if t.spo() != (A, KNOWS, B)]
            + [Triple(A, KNOWS, B, confidence=0.9)]
        )
        oneshot = str(tmp_path / "oneshot")
        write_segments(expected, oneshot)
        assert diff_segment_dirs(grown, oneshot) == []

    def test_same_key_add_and_tombstone_rejected(self, tmp_path):
        seg = SegmentStore(str(tmp_path / "lsm"))
        victim = Triple(A, KNOWS, B)
        with pytest.raises(ValueError, match="both added and tombstoned"):
            seg.flush([victim], tombstones=[spo_texts(victim)])
        seg.close()

    def test_snapshot_survives_tombstone_dropping_compaction(
        self, tmp_path, store
    ):
        seg = SegmentStore(str(tmp_path / "lsm"), compact_threshold=100)
        triples = sorted(store, key=repr)
        seg.flush(triples)
        pinned = seg.snapshot()
        seg.flush([], tombstones=[spo_texts(triples[0])])
        seg.compact()  # rewrites seg-000000 under the pinned mmaps
        # The pinned snapshot still reads its own generation's bytes:
        # full pre-retraction content, unchanged epoch.
        assert len(pinned) == len(triples)
        assert sorted(map(repr, pinned)) == sorted(map(repr, triples))
        assert pinned.epoch == store.epoch
        with open_snapshot(seg.directory) as fresh:
            assert len(fresh) == len(triples) - 1
        pinned.close()
        seg.close()


class TestWriterRaces:
    def test_concurrent_flushes_spawn_one_compactor(self, tmp_path):
        # The regression: two flushes racing past the threshold both saw
        # a dead compactor and spawned two threads compacting at once.
        # Instrument compact() entry to measure the worst-case overlap.
        seg = SegmentStore(str(tmp_path / "lsm"), compact_threshold=2)
        gauge = {"now": 0, "max": 0}
        gauge_lock = threading.Lock()
        original_compact = seg.compact

        def tracked_compact():
            with gauge_lock:
                gauge["now"] += 1
                gauge["max"] = max(gauge["max"], gauge["now"])
            try:
                return original_compact()
            finally:
                with gauge_lock:
                    gauge["now"] -= 1

        seg.compact = tracked_compact
        errors = []

        def writer(index):
            try:
                for j in range(6):
                    seg.flush([Triple(A, KNOWS, Entity(f"w:t{index}-{j}"))])
            except Exception as error:  # pragma: no cover
                errors.append(error)

        workers = [
            threading.Thread(target=writer, args=(i,)) for i in range(4)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        seg.close()
        assert not errors
        assert gauge["max"] <= 1
        with open_snapshot(seg.directory) as snap:
            assert len(snap) == 24

    def test_close_is_final(self, tmp_path, store):
        seg = SegmentStore(str(tmp_path / "lsm"))
        seg.flush(sorted(store, key=repr))
        seg.close()
        with pytest.raises(ValueError, match="closed"):
            seg.flush([Triple(A, KNOWS, D)])
        assert seg.compact_async() is None
        # Idempotent close; content unchanged.
        seg.close()
        with open_snapshot(seg.directory) as snap:
            assert snap.epoch == store.epoch

    def test_close_joins_pending_recompaction(self, tmp_path, store):
        # A flush racing with close may have asked for one more
        # compaction pass; close must drain it, leaving one canonical
        # segment and no live compactor thread.
        for attempt in range(5):
            directory = str(tmp_path / f"lsm{attempt}")
            seg = SegmentStore(directory, compact_threshold=1)
            for triple in sorted(store, key=repr):
                seg.flush([triple])
            compactor = seg._compactor
            seg.close()
            assert compactor is None or not compactor.is_alive()
            names = {
                n.split(".")[0]
                for n in os.listdir(directory)
                if n.startswith("seg-")
            }
            assert names == {"seg-000000"}
            with open_snapshot(directory) as snap:
                assert snap.epoch == store.epoch
