"""Tests for the networkx graph views of a triple store."""

import networkx as nx
import pytest

from repro.kb import (
    Entity,
    Relation,
    Triple,
    TripleStore,
    degree_statistics,
    relation_path,
    to_networkx,
)

A, B, C = Entity("w:a"), Entity("w:b"), Entity("w:c")
R1, R2 = Relation("r:one"), Relation("r:two")


@pytest.fixture
def store():
    return TripleStore(
        [
            Triple(A, R1, B, confidence=0.8),
            Triple(B, R2, C),
            Triple(A, R2, C),
        ]
    )


class TestExport:
    def test_nodes_and_edges(self, store):
        graph = to_networkx(store)
        assert set(graph.nodes) == {A, B, C}
        assert graph.number_of_edges() == 3

    def test_edge_attributes(self, store):
        graph = to_networkx(store)
        data = next(iter(graph.get_edge_data(A, B).values()))
        assert data["relation"] == "r:one"
        assert data["confidence"] == 0.8

    def test_relation_filter(self, store):
        graph = to_networkx(store, relations={R1})
        assert graph.number_of_edges() == 1

    def test_literals_skipped(self):
        from repro.kb import string_literal

        store = TripleStore([Triple(A, R1, string_literal("x"))])
        assert to_networkx(store).number_of_edges() == 0

    def test_world_graph_connected_enough(self, world):
        stats = degree_statistics(world.facts)
        assert stats["nodes"] > 100
        assert stats["mean_degree"] > 2
        assert stats["components"] < stats["nodes"] / 10


class TestRelationPath:
    def test_direct_edge(self, store):
        assert relation_path(store, A, B) == ["r:one"]

    def test_reversed_edge_annotated(self, store):
        assert relation_path(store, B, A) == ["^r:one"]

    def test_two_hop(self):
        store = TripleStore([Triple(A, R1, B), Triple(B, R2, C)])
        assert relation_path(store, A, C) == ["r:one", "r:two"]

    def test_no_path(self):
        store = TripleStore([Triple(A, R1, B)])
        assert relation_path(store, A, C) is None

    def test_world_citizenship_path(self, world):
        from repro.world import schema as ws

        person = world.people[0]
        country = world.facts.one_object(person, ws.CITIZEN_OF)
        path = relation_path(world.facts, person, country)
        assert path is not None
        assert len(path) >= 1


class TestStats:
    def test_empty_store(self):
        stats = degree_statistics(TripleStore())
        assert stats["nodes"] == 0
        assert stats["components"] == 0
