"""Tests for repro.taxonomy.hearst and repro.taxonomy.set_expansion."""

import random

import pytest

from repro.corpus import class_sentences
from repro.nlp import analyze
from repro.taxonomy import IsAPair, SetExpander, extract_pairs, harvest


class TestHearst:
    def test_such_as(self):
        pairs = extract_pairs(
            analyze("They honored scientists such as Alan Weber and Mara Santos.")
        )
        assert IsAPair("Alan Weber", "scientist") in pairs
        assert IsAPair("Mara Santos", "scientist") in pairs

    def test_including(self):
        pairs = extract_pairs(
            analyze("Many companies, including Nimbus Systems, were active then.")
        )
        assert IsAPair("Nimbus Systems", "company") in pairs

    def test_and_other(self):
        pairs = extract_pairs(
            analyze("Lorvik, Corvain, and other cities attended the meeting.")
        )
        classes = {p.class_lemma for p in pairs}
        assert classes == {"city"}
        assert {p.instance for p in pairs} == {"Lorvik", "Corvain"}

    def test_is_a(self):
        pairs = extract_pairs(analyze("Alan Weber is a famous scientist."))
        assert IsAPair("Alan Weber", "scientist") in pairs

    def test_no_false_positive_on_plain_sentence(self):
        pairs = extract_pairs(analyze("Alan Weber founded Nimbus Systems."))
        assert pairs == []

    def test_harvest_counts_support(self):
        sentences = [
            "Alan Weber is a scientist.",
            "Scientists such as Alan Weber shaped the era.",
        ]
        counts = harvest(sentences)
        assert counts[IsAPair("Alan Weber", "scientist")] == 2

    def test_on_generated_class_sentences(self, world):
        rng = random.Random(6)
        sentences = class_sentences(world, rng, per_class=2)
        counts = harvest([s.text for s in sentences])
        assert counts
        # Every harvested pair must be correct against the world gold.
        index = world.alias_index()
        from repro.corpus import CLASS_NOUNS

        lemma_to_class = {noun: cls for cls, (noun, __) in CLASS_NOUNS.items()}
        correct = total = 0
        for pair, count in counts.items():
            cls = lemma_to_class.get(pair.class_lemma)
            entities = index.get(pair.instance, set())
            if cls is None or not entities:
                continue
            total += count
            if any(world.primary_class.get(e) == cls
                   or cls in (world.primary_class.get(e),)
                   for e in entities):
                correct += count
        assert total > 0
        assert correct / total > 0.75


class TestSetExpansion:
    @pytest.fixture(scope="class")
    def expander(self, sentences):
        # Contexts are class-discriminative in the fact corpus ("born in X.",
        # "founded Y"), which is what set expansion actually exploits.
        expander = SetExpander()
        expander.index_corpus(sentences)
        return expander

    def test_expansion_finds_same_class(self, world, expander):
        cities = [world.name[c] for c in world.cities]
        seeds = cities[:3]
        results = expander.expand(seeds, top_k=10)
        assert results
        gold = set(cities)
        precision = sum(1 for r in results[:5] if r.name in gold) / min(
            5, len(results)
        )
        assert precision >= 0.6

    def test_seeds_excluded_from_results(self, world, expander):
        cities = [world.name[c] for c in world.cities]
        results = expander.expand(cities[:3])
        assert not set(cities[:3]) & {r.name for r in results}

    def test_empty_seed_rejected(self, expander):
        with pytest.raises(ValueError):
            expander.expand([])

    def test_unknown_seed_returns_empty(self, expander):
        assert expander.expand(["Completely Unknown Entity"]) == []

    def test_scores_sorted(self, world, expander):
        cities = [world.name[c] for c in world.cities]
        results = expander.expand(cities[:4], top_k=20)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)
