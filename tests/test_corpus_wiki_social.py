"""Tests for repro.corpus.wiki and repro.corpus.social."""

import pytest

from repro.corpus import SocialConfig, WikiConfig, build_wiki, generate_stream
from repro.world import schema as ws


class TestWiki:
    def test_every_entity_has_page(self, world, wiki):
        for entity in world.all_entities():
            assert wiki.page_of(entity) is not None

    def test_titles_are_names(self, world, wiki):
        for entity in world.people[:10]:
            assert wiki.page_of(entity).title == world.name[entity]

    def test_infobox_gold_facts_true(self, world, wiki):
        for page in wiki.pages.values():
            for attribute, (relation, obj) in page.infobox_gold.items():
                assert world.facts.contains_fact(page.entity, relation, obj)
                assert attribute in page.infobox

    def test_person_categories(self, world, wiki):
        page = wiki.page_of(world.people[0])
        names = [c.name for c in page.categories]
        assert any("births" in n for n in names)
        assert any(n.startswith("People from") for n in names)

    def test_birth_category_not_conceptual(self, world, wiki):
        page = wiki.page_of(world.people[0])
        for category in page.categories:
            if category.name.endswith("births"):
                assert not category.conceptual

    def test_country_categories_topical(self, world, wiki):
        page = wiki.page_of(world.countries[0])
        assert page.categories
        assert all(not c.conceptual for c in page.categories)

    def test_links_are_fact_neighbors(self, world, wiki):
        person = world.people[0]
        page = wiki.page_of(person)
        birth_city = world.facts.one_object(person, ws.BORN_IN)
        assert world.name[birth_city] in page.links

    def test_interlanguage_dropout(self, world):
        full = build_wiki(world, WikiConfig(seed=3, interlanguage_dropout=0.0))
        sparse = build_wiki(world, WikiConfig(seed=3, interlanguage_dropout=0.8))
        full_links = sum(len(p.interlanguage) for p in full.pages.values())
        sparse_links = sum(len(p.interlanguage) for p in sparse.pages.values())
        assert sparse_links < full_links * 0.5

    def test_interlanguage_matches_world_labels(self, world, wiki):
        for page in list(wiki.pages.values())[:20]:
            for lang, title in page.interlanguage.items():
                assert title == world.label_in(page.entity, lang)

    def test_link_graph_closed(self, wiki):
        graph = wiki.link_graph()
        for targets in graph.values():
            for target in targets:
                assert target in wiki.pages

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WikiConfig(interlanguage_dropout=2.0)


class TestSocialStream:
    @pytest.fixture(scope="class")
    def stream(self, world):
        return generate_stream(world, SocialConfig(seed=5, months=18))

    def test_two_families(self, stream):
        assert len(stream.families) == 2

    def test_gold_volume_matches_posts(self, stream):
        for family in stream.families:
            assert sum(stream.gold_volume[family]) == sum(
                1 for p in stream.posts if p.family == family
            )

    def test_post_months_in_range(self, stream):
        assert all(0 <= p.month < 18 for p in stream.posts)

    def test_surface_is_product_or_family(self, world, stream):
        for post in stream.posts[:200]:
            assert post.surface in (world.name[post.product], post.family)

    def test_surface_in_text(self, stream):
        for post in stream.posts[:200]:
            assert post.surface in post.text

    def test_sentiment_labels_valid(self, stream):
        assert {p.sentiment for p in stream.posts} <= {"pos", "neg", "neu"}

    def test_deterministic(self, world):
        first = generate_stream(world, SocialConfig(seed=5, months=6))
        second = generate_stream(world, SocialConfig(seed=5, months=6))
        assert [p.text for p in first.posts] == [p.text for p in second.posts]

    def test_release_boost_visible(self, world):
        stream = generate_stream(world, SocialConfig(seed=5, months=24))
        for family in stream.families:
            volumes = stream.gold_volume[family]
            assert max(volumes) > min(v for v in volumes if v > 0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SocialConfig(months=0)
