"""Tests for repro.corpus (documents, templates, synthesis)."""

import random
import re

import pytest

from repro.corpus import (
    CorpusConfig,
    FactTemplate,
    TEMPLATES,
    class_sentences,
    corpus_gold_facts,
    corrupt_fact,
    distractor_sentence,
    render_fact_sentence,
    synthesize,
    templates_for,
)
from repro.corpus.document import Document, GoldFact, GoldMention, Sentence
from repro.kb import Entity
from repro.world import WorldConfig
from repro.world import schema as ws


class TestDocumentModel:
    def test_mention_span_validation(self):
        with pytest.raises(ValueError):
            GoldMention(5, 5, Entity("w:x"), "x")

    def test_document_text_joins(self):
        doc = Document("d", sentences=[Sentence("A b."), Sentence("C d.")])
        assert doc.text == "A b. C d."

    def test_entities_aggregates(self):
        mention = GoldMention(0, 1, Entity("w:x"), "X")
        doc = Document("d", sentences=[Sentence("X", mentions=[mention])])
        assert doc.entities() == {Entity("w:x")}

    def test_gold_fact_spo(self):
        fact = GoldFact(Entity("w:a"), ws.BORN_IN, Entity("w:b"))
        assert fact.spo() == (Entity("w:a"), ws.BORN_IN, Entity("w:b"))


class TestTemplates:
    def test_every_template_has_slots(self):
        for relation, templates in TEMPLATES.items():
            for template in templates:
                assert "{s}" in template.pattern and "{o}" in template.pattern

    def test_difficulty_filter(self):
        easy = templates_for(ws.BORN_IN, "easy")
        hard = templates_for(ws.BORN_IN, "hard")
        assert len(easy) < len(hard)
        assert all(t.difficulty == "easy" for t in easy)

    def test_invalid_difficulty(self):
        with pytest.raises(ValueError):
            templates_for(ws.BORN_IN, "extreme")
        with pytest.raises(ValueError):
            FactTemplate("{s} x {o}", difficulty="impossible")

    def test_template_requires_slots(self):
        with pytest.raises(ValueError):
            FactTemplate("no slots here")


class TestRendering:
    def test_mention_offsets_exact(self, world):
        rng = random.Random(0)
        fact = next(iter(world.facts.match(predicate=ws.BORN_IN)))
        template = templates_for(ws.BORN_IN, "easy")[0]
        sentence = render_fact_sentence(world, fact, template, rng)
        for mention in sentence.mentions:
            assert sentence.text[mention.start:mention.end] == mention.surface

    def test_expressed_fact_recorded(self, world):
        rng = random.Random(0)
        fact = next(iter(world.facts.match(predicate=ws.FOUNDED)))
        template = templates_for(ws.FOUNDED, "easy")[0]
        sentence = render_fact_sentence(world, fact, template, rng)
        assert sentence.facts[0].spo() == fact.spo()
        assert sentence.facts[0].truthful

    def test_year_slot_uses_scope(self, world):
        rng = random.Random(0)
        scoped = next(
            t for t in world.facts.match(predicate=ws.WON_PRIZE) if t.scope
        )
        template = next(
            t for t in TEMPLATES[ws.WON_PRIZE] if t.needs_year
        )
        sentence = render_fact_sentence(world, scoped, template, rng)
        assert str(scoped.scope.begin) in sentence.text

    def test_year_zero_scope_not_replaced_by_random_year(self, world):
        # Regression: the year slot used truthiness, so a gold ``begin`` of
        # 0 was silently swapped for a random 1950-2014 year.
        from repro.kb import TimeSpan

        rng = random.Random(0)
        scoped = next(
            t for t in world.facts.match(predicate=ws.WON_PRIZE) if t.scope
        )
        year_zero = scoped.with_scope(TimeSpan(0, 3))
        template = next(
            t for t in TEMPLATES[ws.WON_PRIZE] if t.needs_year
        )
        sentence = render_fact_sentence(world, year_zero, template, rng)
        assert re.search(r"\b0\b", sentence.text), sentence.text


class TestCorruption:
    def test_corrupt_same_class_mode(self, world):
        rng = random.Random(1)
        fact = next(iter(world.facts.match(predicate=ws.BORN_IN)))
        corrupted = corrupt_fact(world, fact, rng, p_cross_class=0.0)
        assert corrupted is not None
        assert corrupted.object != fact.object
        assert (
            world.primary_class[corrupted.object]
            == world.primary_class[fact.object]
        )
        assert not world.fact_exists(
            corrupted.subject, corrupted.predicate, corrupted.object
        )

    def test_corrupt_cross_class_mode(self, world):
        rng = random.Random(1)
        fact = next(iter(world.facts.match(predicate=ws.BORN_IN)))
        corrupted = corrupt_fact(world, fact, rng, p_cross_class=1.0)
        assert corrupted is not None
        assert (
            world.primary_class[corrupted.object]
            != world.primary_class[fact.object]
        )

    def test_literal_object_not_corruptible(self, world):
        rng = random.Random(1)
        fact = next(iter(world.facts.match(predicate=ws.BIRTH_YEAR)))
        assert corrupt_fact(world, fact, rng) is None


class TestSynthesis:
    def test_deterministic(self, world):
        config = CorpusConfig(seed=4)
        first = synthesize(world, config)
        second = synthesize(world, config)
        assert [s.text for d in first for s in d.sentences] == [
            s.text for d in second for s in d.sentences
        ]

    def test_gold_facts_are_true_world_facts(self, world, documents):
        for key in corpus_gold_facts(documents, truthful_only=True):
            assert world.facts.contains_fact(*key)

    def test_false_statements_marked(self, world):
        noisy = synthesize(world, CorpusConfig(seed=4, p_false=0.3))
        false_facts = [
            f for d in noisy for f in d.all_facts() if not f.truthful
        ]
        assert false_facts
        for fact in false_facts:
            assert not world.facts.contains_fact(*fact.spo())

    def test_distractors_express_nothing(self, world):
        rng = random.Random(2)
        sentence = distractor_sentence(world, rng, 0.0)
        assert sentence.facts == []
        assert len(sentence.mentions) == 2

    def test_difficulty_cap_respected(self, world):
        easy_only = synthesize(
            world, CorpusConfig(seed=4, max_difficulty="easy")
        )
        # Every sentence must match an easy template's fixed parts; spot-check
        # that no "birthplace of" (hard) phrasing appears.
        all_text = " ".join(s.text for d in easy_only for s in d.sentences)
        assert "birthplace" not in all_text

    def test_class_sentences_carry_type_facts(self, world):
        rng = random.Random(3)
        sentences = class_sentences(world, rng, per_class=1)
        assert sentences
        for sentence in sentences:
            assert sentence.facts
            for fact in sentence.facts:
                assert fact.relation.id == "rdf:type"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CorpusConfig(p_false=1.5)
        with pytest.raises(ValueError):
            CorpusConfig(document_size=0)
        with pytest.raises(ValueError):
            CorpusConfig(mentions_per_fact=-1)

    def test_distractor_rejects_single_entity_world(self):
        # Regression: with fewer than two entities the sampling loop
        # (``while b == a``) could never terminate; it now raises instead.
        tiny = self._single_entity_world()
        with pytest.raises(ValueError, match="at least two entities"):
            distractor_sentence(tiny, random.Random(0), 0.0)

    def test_synthesize_skips_distractors_on_tiny_world(self):
        # Regression companion: the synthesizer itself must not hang when
        # the world is too small for entity-pair distractors but still has
        # renderable facts (so the distractor quota would be non-zero).
        tiny = self._single_entity_world()
        docs = synthesize(
            tiny, CorpusConfig(seed=4, distractor_fraction=1.0)
        )
        sentences = [s for d in docs for s in d.sentences]
        assert sentences
        assert all(s.facts for s in sentences)

    @staticmethod
    def _single_entity_world():
        """A world whose distractor pool has one entity but still renders.

        The prize is named (so WON_PRIZE sentences render) yet kept out of
        the class lists, so ``all_entities()`` — the distractor sampling
        pool — holds only the person.
        """
        from repro.world.generator import World, _add_fact

        lone = Entity("ex:lone")
        prize = Entity("ex:prize")
        tiny = World(config=WorldConfig(), people=[lone])
        tiny.name[lone] = "Lone Soul"
        tiny.aliases[lone] = ["Lone Soul"]
        tiny.primary_class[lone] = ws.PERSON
        tiny.name[prize] = "Hermit Medal"
        tiny.aliases[prize] = ["Hermit Medal"]
        _add_fact(tiny, lone, ws.WON_PRIZE, prize)
        return tiny

    def test_entity_centric_documents_have_topic(self, documents):
        topical = [d for d in documents if d.topic is not None]
        assert topical
        for doc in topical[:20]:
            for sentence in doc.sentences:
                subjects = {f.subject for f in sentence.facts}
                if subjects:
                    assert doc.topic in subjects
