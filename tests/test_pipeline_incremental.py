"""Tests for repro.pipeline.incremental: delta ingestion over segments.

The crown invariant under test: ingesting a corpus batch by batch — with
changed pages, new aliases, social posts, and retractions along the way —
produces byte-for-byte the same segment directory and canonical KB as a
single full rebuild of the final corpus state.
"""

import json
import os

import pytest

from repro.corpus import build_wiki
from repro.corpus.document import Document, Sentence
from repro.corpus.social import SocialConfig, generate_stream
from repro.corpus.wiki import WikiPage
from repro.determinism.stable import canonical_kb_text
from repro.kb import ns
from repro.kb.segments import (
    diff_segment_dirs,
    open_snapshot,
    spo_texts,
    write_segments,
)
from repro.pipeline import (
    BuildConfig,
    IncrementalBuilder,
    KnowledgeBaseBuilder,
    attach_posts,
)
from repro.pipeline.incremental import STATE_NAME
from repro.serving import QueryEngine
from repro.world import WorldConfig, generate_world


@pytest.fixture(scope="module")
def small_world():
    return generate_world(WorldConfig(seed=7, n_people=30))


@pytest.fixture(scope="module")
def small_wiki(small_world):
    return build_wiki(small_world)


def full_build(wiki, aliases):
    kb, __ = KnowledgeBaseBuilder(wiki, aliases=aliases).build()
    return kb


def ingest_all_in_batches(directory, wiki, aliases, cut):
    titles = sorted(wiki.pages)
    with IncrementalBuilder(directory) as builder:
        first = builder.ingest(
            pages=[wiki.pages[t] for t in titles[:cut]], aliases=aliases
        )
        second = builder.ingest(
            pages=[wiki.pages[t] for t in titles[cut:]], compact=True
        )
    return first, second


class TestIncrementalEqualsFull:
    def test_two_batches_equal_full_build(
        self, tmp_path, small_world, small_wiki
    ):
        directory = str(tmp_path / "inc")
        first, second = ingest_all_in_batches(
            directory, small_wiki, small_world.aliases,
            cut=int(len(small_wiki.pages) * 0.8),
        )
        # The delta actually exercised the caches, not a silent rebuild.
        assert second.cached_pages > 0
        assert second.reextracted_pages < second.total_pages
        assert second.cached_components > 0
        assert first.epoch_after != first.epoch_before
        assert second.epoch_after != first.epoch_after

        kb = full_build(small_wiki, small_world.aliases)
        with open_snapshot(directory) as snapshot:
            assert canonical_kb_text(snapshot) == canonical_kb_text(kb)
        oneshot = str(tmp_path / "oneshot")
        write_segments(kb, oneshot)
        assert diff_segment_dirs(directory, oneshot) == []

    def test_changed_page_reingest(self, tmp_path, small_world, small_wiki):
        directory = str(tmp_path / "inc")
        titles = sorted(small_wiki.pages)
        with IncrementalBuilder(directory) as builder:
            builder.ingest(
                pages=[small_wiki.pages[t] for t in titles],
                aliases=small_world.aliases,
            )
            # Change one page: drop its last two sentences.
            title = titles[3]
            old = small_wiki.pages[title]
            changed = WikiPage(
                title=old.title,
                entity=old.entity,
                document=Document(
                    doc_id=old.document.doc_id,
                    sentences=list(old.document.sentences[:-2]),
                ),
                infobox=dict(old.infobox),
                categories=list(old.categories),
                interlanguage=dict(old.interlanguage),
            )
            report = builder.ingest(pages=[changed], compact=True)
        assert report.batch_pages == 1
        # A same-name re-ingest changes no registrations, so only the
        # changed page is re-extracted.
        assert report.affected_names == 0
        assert report.reextracted_pages == 1

        modified = build_wiki(small_world)
        modified.pages[title] = changed
        kb = full_build(modified, small_world.aliases)
        with open_snapshot(directory) as snapshot:
            assert canonical_kb_text(snapshot) == canonical_kb_text(kb)
        oneshot = str(tmp_path / "oneshot")
        write_segments(kb, oneshot)
        assert diff_segment_dirs(directory, oneshot) == []

    def test_new_alias_invalidates_affected_pages_only(
        self, tmp_path, small_world, small_wiki
    ):
        directory = str(tmp_path / "inc")
        titles = sorted(small_wiki.pages)
        with IncrementalBuilder(directory) as builder:
            builder.ingest(
                pages=[small_wiki.pages[t] for t in titles],
                aliases=small_world.aliases,
            )
            # Register a new ambiguous alias — a name that provably occurs
            # in other pages' text: every page where its token sequence
            # occurs must be re-extracted, nothing else.
            mentioned = next(
                t for t in titles
                if t != titles[0]
                and any(
                    t in sentence.text
                    for other in titles
                    if other != t
                    for sentence in small_wiki.pages[other].document.sentences
                )
            )
            entity = small_wiki.pages[titles[0]].entity
            forms = list(small_world.aliases.get(entity, [])) + [mentioned]
            report = builder.ingest(aliases={entity: forms}, compact=True)
        assert report.batch_pages == 0
        assert report.affected_names >= 1
        assert 0 < report.reextracted_pages < len(titles)

        aliases = dict(small_world.aliases)
        aliases[entity] = forms
        kb = full_build(small_wiki, aliases)
        with open_snapshot(directory) as snapshot:
            assert canonical_kb_text(snapshot) == canonical_kb_text(kb)

    def test_social_posts_fold_into_product_pages(
        self, tmp_path, small_world, small_wiki
    ):
        posts = generate_stream(
            small_world, SocialConfig(seed=5, months=3)
        ).posts
        changed = attach_posts(small_wiki, posts)
        assert changed, "the social stream produced no attachable posts"

        directory = str(tmp_path / "inc")
        with IncrementalBuilder(directory) as builder:
            builder.ingest(
                pages=list(small_wiki.pages.values()),
                aliases=small_world.aliases,
            )
            report = builder.ingest(pages=changed, compact=True)
        assert report.batch_pages == len(changed)

        modified = build_wiki(small_world)
        for page in changed:
            modified.pages[page.title] = page
        kb = full_build(modified, small_world.aliases)
        with open_snapshot(directory) as snapshot:
            assert canonical_kb_text(snapshot) == canonical_kb_text(kb)


class TestRetraction:
    def test_retraction_tombstones_then_compacts(
        self, tmp_path, small_world, small_wiki
    ):
        directory = str(tmp_path / "inc")
        titles = sorted(small_wiki.pages)
        cut = len(titles) - 5
        with IncrementalBuilder(directory) as builder:
            builder.ingest(
                pages=[small_wiki.pages[t] for t in titles[:cut]],
                aliases=small_world.aliases,
            )
            with open_snapshot(directory) as snapshot:
                victim = sorted(snapshot, key=repr)[7]
            key = spo_texts(victim)
            report = builder.ingest(
                pages=[small_wiki.pages[t] for t in titles[cut:]],
                retract=[key],
            )
            assert report.retracted == 1
            assert report.tombstones >= 1
            manifest = json.load(
                open(os.path.join(directory, "MANIFEST.json"))
            )
            assert sum(
                e.get("tombstones", 0) for e in manifest["segments"]
            ) >= 1
            # Shadowed before compaction, erased after.
            with open_snapshot(directory) as snapshot:
                assert all(spo_texts(t) != key for t in snapshot)
            builder.store.compact()
            manifest = json.load(
                open(os.path.join(directory, "MANIFEST.json"))
            )
            assert [e["name"] for e in manifest["segments"]] == ["seg-000000"]
            assert all(
                not e.get("tombstones") for e in manifest["segments"]
            )
            with open_snapshot(directory) as snapshot:
                assert all(spo_texts(t) != key for t in snapshot)

        # Equal to the one-shot ingest carrying the same retraction.
        oneshot = str(tmp_path / "oneshot")
        with IncrementalBuilder(oneshot) as builder:
            builder.ingest(
                pages=[small_wiki.pages[t] for t in titles],
                aliases=small_world.aliases,
                retract=[key],
                compact=True,
            )
        assert diff_segment_dirs(directory, oneshot) == []

    def test_retractions_persist_across_ingests(
        self, tmp_path, small_world, small_wiki
    ):
        directory = str(tmp_path / "inc")
        titles = sorted(small_wiki.pages)
        with IncrementalBuilder(directory) as builder:
            builder.ingest(
                pages=[small_wiki.pages[t] for t in titles],
                aliases=small_world.aliases,
            )
            with open_snapshot(directory) as snapshot:
                victim = sorted(snapshot, key=repr)[3]
            key = spo_texts(victim)
            builder.ingest(retract=[key])
        # A fresh builder on the same directory re-applies the curated
        # removal on its next ingest (the set is persisted state).
        with IncrementalBuilder(directory) as builder:
            report = builder.ingest(
                pages=[small_wiki.pages[titles[0]]], compact=True
            )
            assert report.retracted == 1
        with open_snapshot(directory) as snapshot:
            assert all(spo_texts(t) != key for t in snapshot)


class TestBuilderStateAndServing:
    def test_config_mismatch_rejected(self, tmp_path, small_wiki):
        directory = str(tmp_path / "inc")
        page = small_wiki.pages[sorted(small_wiki.pages)[0]]
        with IncrementalBuilder(directory) as builder:
            builder.ingest(pages=[page])
        with pytest.raises(ValueError, match="config mismatch"):
            IncrementalBuilder(
                directory, BuildConfig(use_consistency=False)
            )

    def test_state_survives_and_is_excluded_from_diffs(
        self, tmp_path, small_world, small_wiki
    ):
        directory = str(tmp_path / "inc")
        ingest_all_in_batches(
            directory, small_wiki, small_world.aliases, cut=10
        )
        assert os.path.exists(os.path.join(directory, STATE_NAME))
        kb = full_build(small_wiki, small_world.aliases)
        oneshot = str(tmp_path / "oneshot")
        write_segments(kb, oneshot)
        # oneshot has no state file, yet the directories compare equal.
        assert diff_segment_dirs(directory, oneshot) == []

    def test_query_engine_rebinds_with_cache_invalidation(
        self, tmp_path, small_world, small_wiki
    ):
        directory = str(tmp_path / "inc")
        titles = sorted(small_wiki.pages)
        builder = IncrementalBuilder(directory)
        try:
            builder.ingest(
                pages=[small_wiki.pages[t] for t in titles[:-4]],
                aliases=small_world.aliases,
            )
            snapshot = open_snapshot(directory)
            engine = QueryEngine(snapshot)
            first = engine.lookup(predicate=ns.PREF_LABEL)
            assert engine.lookup(predicate=ns.PREF_LABEL) == first  # warm
            cache = engine.cache
            assert cache.hits == 1 and cache.misses == 1

            report = builder.ingest(
                pages=[small_wiki.pages[t] for t in titles[-4:]]
            )
            rolled = open_snapshot(directory)
            assert rolled.epoch == report.epoch_after != snapshot.epoch
            engine.rebind(rolled)
            after = engine.lookup(predicate=ns.PREF_LABEL)
            # The epoch rolled forward: the cached answer is dropped as
            # stale, never served for the new snapshot.
            assert cache.stale_drops == 1
            assert after["kb_epoch"] == rolled.epoch
            assert after["count"] > first["count"]
            snapshot.close()
            rolled.close()
        finally:
            builder.close()
