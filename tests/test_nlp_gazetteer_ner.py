"""Tests for repro.nlp.gazetteer, repro.nlp.ner, repro.nlp.pipeline."""

import pytest

from repro.nlp import Gazetteer, analyze, analyze_document, detect_mentions, tag, tokenize


@pytest.fixture
def gazetteer():
    g = Gazetteer()
    g.add("Viktor Adler", "person")
    g.add("Adler", "surname")
    g.add("Nimbus Systems", "company")
    g.add("University of Corvain", "university")
    return g


class TestGazetteer:
    def test_size(self, gazetteer):
        assert len(gazetteer) == 4

    def test_exact_lookup(self, gazetteer):
        assert gazetteer.lookup("Viktor Adler") == "person"
        assert gazetteer.lookup("Viktor") is None

    def test_longest_match_wins(self, gazetteer):
        tokens = tokenize("Viktor Adler arrived.")
        matches = gazetteer.match(tokens)
        assert len(matches) == 1
        assert matches[0].text == "Viktor Adler"
        assert matches[0].payload == "person"

    def test_shorter_match_elsewhere(self, gazetteer):
        tokens = tokenize("Then Adler left.")
        matches = gazetteer.match(tokens)
        assert [m.text for m in matches] == ["Adler"]

    def test_multiword_with_lowercase_inside(self, gazetteer):
        tokens = tokenize("She studied at University of Corvain in 1990.")
        matches = gazetteer.match(tokens)
        assert [m.text for m in matches] == ["University of Corvain"]

    def test_non_overlapping(self, gazetteer):
        tokens = tokenize("Viktor Adler met Nimbus Systems staff.")
        matches = gazetteer.match(tokens)
        assert [m.text for m in matches] == ["Viktor Adler", "Nimbus Systems"]

    def test_empty_name_rejected(self, gazetteer):
        with pytest.raises(ValueError):
            gazetteer.add("", "x")

    def test_duplicate_add_overwrites(self, gazetteer):
        gazetteer.add("Adler", "city")
        assert gazetteer.lookup("Adler") == "city"
        assert len(gazetteer) == 4


class TestNER:
    def test_propn_runs(self):
        tokens = tokenize("Yesterday Mara Santos visited Jelgrad Falls.")
        mentions = detect_mentions(tokens, tag(tokens))
        assert [m.text for m in mentions] == ["Mara Santos", "Jelgrad Falls"]

    def test_product_with_number(self):
        tokens = tokenize("He bought the Nova 3 yesterday.")
        mentions = detect_mentions(tokens, tag(tokens))
        assert "Nova 3" in [m.text for m in mentions]

    def test_gazetteer_priority(self, gazetteer):
        tokens = tokenize("She studied at University of Corvain.")
        mentions = detect_mentions(tokens, tag(tokens), gazetteer)
        assert "University of Corvain" in [m.text for m in mentions]

    def test_char_spans(self):
        text = "Mara Santos lives in Lorvik."
        tokens = tokenize(text)
        for mention in detect_mentions(tokens, tag(tokens)):
            assert text[mention.char_start:mention.char_end] == mention.text


class TestPipeline:
    def test_analysis_fields(self):
        analysis = analyze("Viktor Adler founded Nimbus Systems in 1976.")
        assert len(analysis.tokens) == len(analysis.tags) == len(analysis.lemmas)
        assert analysis.nps and analysis.verb_groups
        assert analysis.parse.root() >= 0

    def test_mention_at_char(self):
        analysis = analyze("Viktor Adler founded Nimbus Systems.")
        mention = analysis.mention_at_char(0)
        assert mention is not None and mention.text == "Viktor Adler"

    def test_token_index_at_char(self):
        analysis = analyze("Hello world")
        assert analysis.token_index_at_char(6) == 1
        assert analysis.token_index_at_char(5) is None

    def test_analyze_document_splits(self):
        analyses = analyze_document("First one. Second one here.")
        assert len(analyses) == 2
