"""Tests for repro.nlp.pos and repro.nlp.lemmatize."""

from repro.nlp import lemma, tag, tokenize
from repro.nlp import lexicon as lx


def tags_of(text: str) -> list[tuple[str, str]]:
    tokens = tokenize(text)
    return list(zip([t.text for t in tokens], tag(tokens)))


class TestTagger:
    def test_simple_svo(self):
        tagged = dict(tags_of("Viktor Adler founded Nimbus Systems."))
        assert tagged["Viktor"] == lx.PROPN
        assert tagged["founded"] == lx.VERB
        assert tagged["Nimbus"] == lx.PROPN
        assert tagged["."] == lx.PUNCT

    def test_auxiliary_and_passive(self):
        tagged = dict(tags_of("The company was founded by him."))
        assert tagged["was"] == lx.AUX
        assert tagged["founded"] == lx.VERB
        assert tagged["by"] == lx.ADP

    def test_determiners_and_nouns(self):
        tagged = dict(tags_of("The capital of the country"))
        assert tagged["The"] == lx.DET
        assert tagged["capital"] == lx.NOUN
        assert tagged["of"] == lx.ADP

    def test_verb_after_determiner_is_noun(self):
        tagged = dict(tags_of("He read the works of Adler."))
        assert tagged["works"] == lx.NOUN

    def test_numbers(self):
        tagged = dict(tags_of("born in 1955"))
        assert tagged["1955"] == lx.NUM

    def test_sentence_initial_name(self):
        tagged = tags_of("Mara Weber lives here.")
        assert tagged[0][1] == lx.PROPN

    def test_suffix_guesses(self):
        tagged = dict(tags_of("they were qurbling vorpally"))
        assert tagged["qurbling"] == lx.VERB
        assert tagged["vorpally"] == lx.ADV

    def test_unknown_defaults_to_noun(self):
        tagged = dict(tags_of("a florb"))
        assert tagged["florb"] == lx.NOUN


class TestLemmatizer:
    def test_irregular_verbs(self):
        assert lemma("was") == "be"
        assert lemma("won") == "win"
        assert lemma("wrote") == "write"
        assert lemma("led") == "lead"

    def test_regular_past(self):
        assert lemma("visited") == "visit"
        assert lemma("praised") == "praise"

    def test_doubled_consonant(self):
        assert lemma("regretting") == "regret"

    def test_ied_to_y(self):
        assert lemma("studied") == "study"

    def test_plural_nouns(self):
        assert lemma("cities") == "city"
        assert lemma("companies") == "company"
        assert lemma("prizes") == "prize"
        assert lemma("people") == "person"

    def test_s_noise_protected(self):
        assert lemma("this") == "this"
        assert lemma("less") == "less"

    def test_names_pass_through_lowercased(self):
        assert lemma("Adler") == "adler"
