"""Tests for the ``repro serve`` HTTP front end: endpoint schemas, error
codes, the worker-count contract, byte-identity across server-thread
counts, and graceful shutdown."""

import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.kb import Entity, Relation, Triple, TripleStore
from repro.serving import (
    DEFAULT_SERVER_WORKERS,
    KBServer,
    QueryEngine,
    resolve_server_workers,
    serve_kb,
)

BORN_IN = Relation("rel:bornIn")
LOCATED_IN = Relation("rel:locatedIn")


def make_store() -> TripleStore:
    triples = []
    for i in range(5):
        triples.append(
            Triple(
                Entity(f"world:P{i}"),
                BORN_IN,
                Entity(f"world:C{i % 2}"),
                confidence=0.6 + 0.05 * i,
            )
        )
    for c in range(2):
        triples.append(
            Triple(Entity(f"world:C{c}"), LOCATED_IN, Entity("world:K"), 0.9)
        )
    return TripleStore(triples)


def http_get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read()


def http_post(url: str, payload) -> tuple[int, bytes]:
    data = payload if isinstance(payload, bytes) else json.dumps(payload).encode()
    request = urllib.request.Request(url, data=data, method="POST")
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, response.read()


@pytest.fixture(scope="module")
def server():
    with serve_kb(make_store(), port=0, workers=2) as running:
        yield running


@pytest.fixture(scope="module")
def url(server):
    return server.url


class TestWorkersContract:
    """serve --workers mirrors the get_backend contract (PR 5 fixes):
    negative raises, 0 means the default, an explicit 1 means exactly one
    server thread."""

    def test_zero_means_default(self):
        assert resolve_server_workers(0) == DEFAULT_SERVER_WORKERS

    def test_explicit_counts_honored_exactly(self):
        assert resolve_server_workers(1) == 1
        assert resolve_server_workers(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_server_workers(-1)

    def test_server_spawns_exactly_requested_threads(self):
        engine = QueryEngine(make_store())
        server = KBServer(engine, port=0, workers=1)
        try:
            server.start()
            workers = [
                t for t in threading.enumerate()
                if t.name.startswith("kb-serve-worker")
            ]
            assert len(workers) == 1
            # And it actually serves.
            status, body = http_get(server.url + "/healthz")
            assert status == 200 and json.loads(body)["status"] == "ok"
        finally:
            server.stop()

    def test_cli_rejects_negative_workers(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["serve", "--kb", str(tmp_path / "none.nt"), "--workers", "-2"], out=out
        )
        assert code == 2
        assert "--workers" in out.getvalue()

    def test_cli_rejects_bad_cache_size(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["serve", "--kb", str(tmp_path / "none.nt"), "--cache-size", "0"], out=out
        )
        assert code == 2
        assert "--cache-size" in out.getvalue()

    def test_cli_rejects_missing_kb(self, tmp_path):
        out = io.StringIO()
        code = main(["serve", "--kb", str(tmp_path / "none.nt")], out=out)
        assert code == 2
        assert "cannot load KB" in out.getvalue()


class TestEndpointSchemas:
    def test_healthz(self, url):
        status, body = http_get(url + "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["kb_version"] == 7
        assert payload["triples"] == 7
        # the identity epoch is a 32-hex-digit content digest
        assert len(payload["kb_epoch"]) == 32

    def test_lookup_schema(self, url):
        status, body = http_get(url + "/lookup?p=rel:bornIn")
        payload = json.loads(body)
        assert status == 200
        assert set(payload) == {"kb_epoch", "kb_version", "count", "triples"}
        assert payload["count"] == 5
        for triple in payload["triples"]:
            assert set(triple) == {"s", "p", "o", "confidence", "source", "scope"}
            assert triple["p"] == "<<rel:bornIn>>"

    def test_lookup_wildcards_and_point(self, url):
        status, body = http_get(url + "/lookup")
        assert status == 200 and json.loads(body)["count"] == 7
        status, body = http_get(url + "/lookup?s=world:P0&p=rel:bornIn&o=world:C0")
        assert status == 200 and json.loads(body)["count"] == 1

    def test_query_schema(self, url):
        status, body = http_post(
            url + "/query",
            {
                "patterns": [
                    ["?x", "rel:bornIn", "?c"],
                    ["?c", "rel:locatedIn", "world:K"],
                ],
                "limit": 3,
            },
        )
        payload = json.loads(body)
        assert status == 200
        assert set(payload) == {
            "kb_epoch",
            "kb_version",
            "count",
            "vars",
            "bindings",
        }
        assert payload["vars"] == ["c", "x"]
        assert payload["count"] == 3
        for binding in payload["bindings"]:
            assert set(binding) == {"c", "x"}

    def test_topk_schema(self, url):
        status, body = http_get(url + "/topk?p=rel:bornIn&k=2")
        payload = json.loads(body)
        assert status == 200
        assert set(payload) == {"kb_epoch", "kb_version", "k", "count", "results"}
        assert payload["k"] == 2 and payload["count"] == 2
        confidences = [t["confidence"] for t in payload["results"]]
        assert confidences == sorted(confidences, reverse=True)

    def test_metrics_smoke(self, url):
        http_get(url + "/lookup?p=rel:locatedIn")
        http_get(url + "/lookup?p=rel:locatedIn")
        status, body = http_get(url + "/metrics")
        payload = json.loads(body)
        assert status == 200
        assert payload["cache"]["hits"] >= 1
        assert payload["triples"] == 7
        lookup = payload["endpoints"]["lookup"]
        assert lookup["requests"] >= 2
        for field in ("count", "mean", "p50", "p95", "p99", "max"):
            assert field in lookup["latency_ms"]


class TestErrorHandling:
    def expect_error(self, fn, *args):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fn(*args)
        return excinfo.value.code, json.loads(excinfo.value.read())

    def test_unknown_path_is_404(self, url):
        code, payload = self.expect_error(http_get, url + "/nope")
        assert code == 404
        assert sorted(payload["paths"]) == [
            "/healthz", "/lookup", "/metrics", "/query", "/topk"
        ]

    def test_wrong_method_is_405(self, url):
        code, __ = self.expect_error(http_get, url + "/query")
        assert code == 405
        code, __ = self.expect_error(http_post, url + "/lookup", {})
        assert code == 405

    def test_malformed_json_body_is_400(self, url):
        code, payload = self.expect_error(
            http_post, url + "/query", b"{not json"
        )
        assert code == 400 and "malformed JSON" in payload["error"]

    def test_malformed_patterns_are_400(self, url):
        for body in (
            {"patterns": []},
            {"patterns": [["?x", "rel:bornIn"]]},
            {"patterns": "nope"},
            {"patterns": [["?x", "rel:bornIn", "?c"]], "select": ["zz"]},
            {"patterns": [["?x", "rel:bornIn", "?c"]], "limit": "five"},
            {"patterns": [["?x", "rel:bornIn", "?c"]], "unknown_field": 1},
            {"patterns": [["?", "rel:bornIn", "?c"]]},
        ):
            code, payload = self.expect_error(http_post, url + "/query", body)
            assert code == 400 and "error" in payload, body

    def test_bad_topk_k_is_400(self, url):
        for query in ("k=zero", "k=0", "k=-3"):
            code, __ = self.expect_error(http_get, url + f"/topk?{query}")
            assert code == 400, query

    def test_bad_lookup_term_is_400(self, url):
        code, __ = self.expect_error(http_get, url + "/lookup?o=%22broken")
        assert code == 400


class TestByteIdentity:
    """Identical query sets return byte-identical JSON across cold cache,
    warm cache, and 1-vs-8 server threads."""

    REQUESTS = (
        ("GET", "/lookup?p=rel:bornIn"),
        ("GET", "/lookup?s=world:P1"),
        ("GET", "/topk?p=rel:bornIn&k=3"),
        ("POST", "/query"),
        ("GET", "/lookup?p=rel:bornIn"),  # warm repeat of the first
    )
    QUERY_BODY = {
        "patterns": [
            ["?x", "rel:bornIn", "?c"],
            ["?c", "rel:locatedIn", "?k"],
        ],
        "order_by": "x",
    }

    def run_requests(self, base: str) -> list[bytes]:
        out = []
        for method, path in self.REQUESTS:
            if method == "GET":
                out.append(http_get(base + path)[1])
            else:
                out.append(http_post(base + path, self.QUERY_BODY)[1])
        return out

    def test_cold_warm_and_thread_counts_agree(self):
        store_a, store_b = make_store(), make_store()
        with serve_kb(store_a, port=0, workers=1) as one:
            cold = self.run_requests(one.url)
            warm = self.run_requests(one.url)
        with serve_kb(store_b, port=0, workers=8) as eight:
            wide = self.run_requests(eight.url)
        assert cold == warm == wide
        assert cold[0] == cold[-1]


class TestGracefulShutdown:
    @staticmethod
    def serve_threads():
        """Live kb-serve threads, by identity (other fixtures' servers may
        be running concurrently — only the delta matters)."""
        return {
            t for t in threading.enumerate() if t.name.startswith("kb-serve")
        }

    def test_no_dangling_threads(self):
        baseline = self.serve_threads()
        server = serve_kb(make_store(), port=0, workers=4).start()
        # Acceptor + 4 workers while running.
        assert len(self.serve_threads() - baseline) == 5
        status, __ = http_get(server.url + "/healthz")
        assert status == 200
        server.stop()
        assert self.serve_threads() - baseline == set()
        # The socket is released: a new server can bind and serve again.
        replacement = serve_kb(make_store(), port=0, workers=1).start()
        try:
            assert http_get(replacement.url + "/healthz")[0] == 200
        finally:
            replacement.stop()
        assert self.serve_threads() - baseline == set()

    def test_stop_is_idempotent_and_start_guarded(self):
        baseline = self.serve_threads()
        server = serve_kb(make_store(), port=0, workers=1)
        server.start()
        server.stop()
        server.stop()
        assert self.serve_threads() - baseline == set()
