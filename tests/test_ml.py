"""Tests for repro.ml (feature hashing, logistic regression, Naive Bayes)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml import (
    FeatureHasher,
    LogisticRegression,
    MultinomialNaiveBayes,
    sigmoid,
    stable_hash,
)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("abc") == stable_hash("abc")

    def test_different_inputs_differ(self):
        assert stable_hash("abc") != stable_hash("abd")

    @given(st.text(max_size=30))
    def test_in_64_bit_range(self, text):
        assert 0 <= stable_hash(text) < 2 ** 64


class TestFeatureHasher:
    def test_dimension(self):
        hasher = FeatureHasher(dimensions=128)
        vector = hasher.transform_one(["a", "b"])
        assert vector.shape == (128,)

    def test_deterministic(self):
        hasher = FeatureHasher(dimensions=64)
        assert np.array_equal(
            hasher.transform_one(["x", "y"]), hasher.transform_one(["x", "y"])
        )

    def test_weighted_mapping(self):
        hasher = FeatureHasher(dimensions=64, signed=False)
        vector = hasher.transform_one({"a": 2.0})
        assert vector.sum() == 2.0

    def test_matrix_shape(self):
        hasher = FeatureHasher(dimensions=32)
        matrix = hasher.transform([["a"], ["b", "c"]])
        assert matrix.shape == (2, 32)

    def test_empty_input(self):
        hasher = FeatureHasher(dimensions=32)
        assert hasher.transform([]).shape == (0, 32)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            FeatureHasher(dimensions=0)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == 0.5

    def test_extremes_stable(self):
        values = sigmoid(np.array([-1000.0, 1000.0]))
        assert values[0] == pytest.approx(0.0)
        assert values[1] == pytest.approx(1.0)

    @given(st.floats(-50, 50))
    def test_monotone_and_bounded(self, z):
        value = sigmoid(np.array([z]))[0]
        assert 0.0 <= value <= 1.0
        assert sigmoid(np.array([z + 1.0]))[0] >= value


class TestLogisticRegression:
    def test_separable_problem(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(-2, 0.5, (50, 2)), rng.normal(2, 0.5, (50, 2))])
        y = np.array([0.0] * 50 + [1.0] * 50)
        model = LogisticRegression(l2=1e-4).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.97

    def test_probabilities_calibrated_direction(self):
        X = np.array([[-1.0], [1.0]] * 30)
        y = np.array([0.0, 1.0] * 30)
        model = LogisticRegression().fit(X, y)
        probabilities = model.predict_proba(np.array([[-3.0], [3.0]]))
        assert probabilities[0] < 0.2 and probabilities[1] > 0.8

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict(np.zeros((1, 2)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((3, 2)), np.zeros(4))

    def test_decision_function_sign(self):
        X = np.array([[-1.0], [1.0]] * 20)
        y = np.array([0.0, 1.0] * 20)
        model = LogisticRegression().fit(X, y)
        scores = model.decision_function(np.array([[-2.0], [2.0]]))
        assert scores[0] < 0 < scores[1]


class TestNaiveBayes:
    @pytest.fixture
    def model(self):
        examples = [
            ["red", "sweet"], ["green", "sour"], ["red", "juicy"],
            ["fast", "loud"], ["loud", "expensive"], ["fast", "expensive"],
        ]
        labels = ["fruit", "fruit", "fruit", "car", "car", "car"]
        return MultinomialNaiveBayes().fit(examples, labels)

    def test_predict(self, model):
        assert model.predict(["red", "sour"]) == "fruit"
        assert model.predict(["fast"]) == "car"

    def test_posterior_sums_to_one(self, model):
        posterior = model.predict_proba(["red"])
        assert sum(posterior.values()) == pytest.approx(1.0)

    def test_unseen_feature_smoothed(self, model):
        posterior = model.predict_proba(["zorp"])
        assert all(0 < p < 1 for p in posterior.values())

    def test_classes(self, model):
        assert set(model.classes) == {"fruit", "car"}

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MultinomialNaiveBayes().predict(["x"])

    def test_misaligned_inputs(self):
        with pytest.raises(ValueError):
            MultinomialNaiveBayes().fit([["a"]], ["x", "y"])

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            MultinomialNaiveBayes(alpha=0.0)
