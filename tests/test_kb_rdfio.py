"""Tests for repro.kb.rdfio (line-format serialization)."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.kb import (
    Entity,
    Literal,
    Relation,
    TimeSpan,
    Triple,
    TripleStore,
    string_literal,
    triple_from_line,
    triple_to_line,
)
from repro.kb.rdfio import read_ntriples, term_from_text, term_to_text, write_ntriples


class TestTermRoundtrip:
    def test_entity(self):
        assert term_from_text(term_to_text(Entity("w:X"))) == Entity("w:X")

    def test_relation_position(self):
        text = term_to_text(Relation("w:p"))
        assert term_from_text(text, relation_position=True) == Relation("w:p")

    def test_plain_literal(self):
        literal = string_literal("hello world")
        assert term_from_text(term_to_text(literal)) == literal

    def test_language_literal(self):
        literal = string_literal("München", "de")
        assert term_from_text(term_to_text(literal)) == literal

    def test_typed_literal(self):
        literal = Literal("1955", "year")
        assert term_from_text(term_to_text(literal)) == literal

    def test_escaping(self):
        literal = string_literal('say "hi"\nplease\t!')
        assert term_from_text(term_to_text(literal)) == literal


class TestTripleRoundtrip:
    def test_plain(self):
        triple = Triple(Entity("w:a"), Relation("w:p"), Entity("w:b"))
        assert triple_from_line(triple_to_line(triple)) == triple

    def test_with_annotations(self):
        triple = Triple(
            Entity("w:a"),
            Relation("w:p"),
            string_literal("v"),
            confidence=0.75,
            source="doc_7",
            scope=TimeSpan(1990, None),
        )
        parsed = triple_from_line(triple_to_line(triple))
        assert parsed == triple

    def test_blank_and_comment_lines(self):
        assert triple_from_line("") is None
        assert triple_from_line("# a comment") is None

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            triple_from_line("<a> <b> .")

    def test_literal_subject_rejected(self):
        with pytest.raises(ValueError):
            triple_from_line('"lit" <w:p> <w:o> .')


class TestStreamRoundtrip:
    def test_write_read(self, world):
        buffer = io.StringIO()
        count = write_ntriples(world.store, buffer)
        assert count == len(world.store)
        buffer.seek(0)
        loaded = TripleStore(read_ntriples(buffer))
        assert len(loaded) == len(world.store)
        assert {t.spo() for t in loaded} == {t.spo() for t in world.store}

    def test_save_load_file(self, tmp_path, world):
        from repro.kb import load, save

        path = tmp_path / "kb.nt"
        save(world.facts, str(path))
        loaded = load(str(path))
        assert {t.spo() for t in loaded} == {t.spo() for t in world.facts}
        # Confidence and scopes survive.
        for triple in world.facts:
            witness = loaded.get(*triple.spo())
            assert witness is not None
            assert witness.scope == triple.scope


_safe_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), min_codepoint=32),
    min_size=0,
    max_size=30,
)


class TestPropertyRoundtrip:
    @settings(max_examples=80, deadline=None)
    @given(_safe_text)
    def test_literal_roundtrip(self, value):
        literal = string_literal(value)
        rendered = term_to_text(literal)
        assert term_from_text(rendered) == literal

    @settings(max_examples=80, deadline=None)
    @given(_safe_text, st.floats(0.01, 1.0))
    def test_triple_roundtrip(self, value, confidence):
        triple = Triple(
            Entity("w:s"), Relation("w:p"), string_literal(value),
            confidence=round(confidence, 4),
        )
        assert triple_from_line(triple_to_line(triple)) == triple
