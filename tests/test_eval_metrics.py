"""Tests for repro.eval.metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.eval import (
    PRF,
    accuracy,
    average_precision,
    brier_score,
    calibration_bins,
    f1_score,
    macro_prf,
    mean_average_precision,
    micro_prf,
    precision_at_k,
    precision_recall,
)


class TestPRF:
    def test_perfect(self):
        assert precision_recall({1, 2}, {1, 2}) == PRF(1.0, 1.0, 1.0)

    def test_half_precision(self):
        prf = precision_recall({1, 2, 3, 4}, {1, 2})
        assert prf.precision == 0.5
        assert prf.recall == 1.0

    def test_empty_predictions(self):
        prf = precision_recall([], {1})
        assert prf.precision == 1.0
        assert prf.recall == 0.0
        assert prf.f1 == 0.0

    def test_empty_gold(self):
        assert precision_recall({1}, []).recall == 1.0

    @given(st.sets(st.integers(0, 20)), st.sets(st.integers(0, 20)))
    def test_bounds(self, predicted, gold):
        prf = precision_recall(predicted, gold)
        for value in (prf.precision, prf.recall, prf.f1):
            assert 0.0 <= value <= 1.0

    @given(st.sets(st.integers(0, 20), min_size=1))
    def test_identity_is_perfect(self, items):
        assert precision_recall(items, items).f1 == 1.0


class TestF1:
    def test_zero(self):
        assert f1_score(0.0, 0.0) == 0.0

    def test_harmonic(self):
        assert f1_score(1.0, 0.5) == pytest.approx(2 / 3)

    @given(st.floats(0, 1), st.floats(0, 1))
    def test_f1_between_min_and_max(self, p, r):
        f1 = f1_score(p, r)
        assert min(p, r) - 1e-12 <= f1 <= max(p, r) + 1e-12


class TestAccuracy:
    def test_basic(self):
        assert accuracy([1, 2, 3], [1, 0, 3]) == pytest.approx(2 / 3)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            accuracy([1], [1, 2])

    def test_empty(self):
        assert accuracy([], []) == 1.0


class TestRanked:
    def test_precision_at_k(self):
        assert precision_at_k(["a", "b", "c"], {"a", "c"}, 2) == 0.5
        assert precision_at_k(["a", "b", "c"], {"a", "c"}, 3) == pytest.approx(2 / 3)

    def test_precision_at_k_invalid(self):
        with pytest.raises(ValueError):
            precision_at_k(["a"], {"a"}, 0)

    def test_average_precision_perfect(self):
        assert average_precision(["a", "b"], {"a", "b"}) == 1.0

    def test_average_precision_order_sensitive(self):
        good = average_precision(["a", "x", "b"], {"a", "b"})
        bad = average_precision(["x", "a", "b"], {"a", "b"})
        assert good > bad

    def test_map(self):
        runs = [(["a"], {"a"}), (["x", "a"], {"a"})]
        assert mean_average_precision(runs) == pytest.approx(0.75)


class TestAveraging:
    def test_micro(self):
        prf = micro_prf([(1, 2, 2), (1, 1, 2)])
        assert prf.precision == pytest.approx(2 / 3)
        assert prf.recall == pytest.approx(0.5)

    def test_macro(self):
        prf = macro_prf([PRF(1.0, 0.0, 0.0), PRF(0.0, 1.0, 0.0)])
        assert prf.precision == 0.5
        assert prf.recall == 0.5


class TestProbabilistic:
    def test_brier_perfect(self):
        assert brier_score([1.0, 0.0], [True, False]) == 0.0

    def test_brier_worst(self):
        assert brier_score([0.0, 1.0], [True, False]) == 1.0

    def test_calibration_bins(self):
        bins = calibration_bins([0.1, 0.9, 0.95], [False, True, True], bins=2)
        assert len(bins) == 2
        low, high = bins
        assert low[1] == 0.0
        assert high[1] == 1.0
        assert high[2] == 2

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            brier_score([0.5], [True, False])


class TestTables:
    def test_render_alignment(self):
        from repro.eval import render_table

        table = render_table("T", ["col", "x"], [["a", 1.5], ["bbbb", 2]])
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "1.500" in table
        assert all(len(line) <= max(len(l) for l in lines) for line in lines)

    def test_row_width_mismatch(self):
        from repro.eval import render_table

        with pytest.raises(ValueError):
            render_table("T", ["a"], [["x", "y"]])
