"""Tests for repro.reasoning.factorgraph (Gibbs vs exact inference)."""

import math

import pytest

from repro.reasoning import (
    FactorGraph,
    conjunction_implies,
    equivalent,
    implies,
    is_true,
    not_both,
)


class TestFactorSemantics:
    def test_is_true(self):
        assert is_true((True,))
        assert not is_true((False,))

    def test_implies(self):
        assert implies((False, False))
        assert implies((True, True))
        assert not implies((True, False))

    def test_equivalent(self):
        assert equivalent((True, True))
        assert not equivalent((True, False))

    def test_not_both(self):
        assert not_both((True, False))
        assert not not_both((True, True))

    def test_conjunction_implies(self):
        assert conjunction_implies((True, True, True))
        assert not conjunction_implies((True, True, False))
        assert conjunction_implies((True, False, False))


class TestExactInference:
    def test_single_prior(self):
        graph = FactorGraph()
        graph.prior("x", 1.0)
        marginal = graph.exact_marginals()["x"]
        assert marginal == pytest.approx(1 / (1 + math.exp(-1.0)))

    def test_negative_prior(self):
        graph = FactorGraph()
        graph.prior("x", -2.0)
        assert graph.exact_marginals()["x"] < 0.2

    def test_implication_pulls_consequent(self):
        graph = FactorGraph()
        graph.prior("a", 3.0)
        graph.add_factor(("a", "b"), implies, 2.0)
        marginals = graph.exact_marginals()
        assert marginals["b"] > 0.5

    def test_exclusion_pushes_apart(self):
        graph = FactorGraph()
        graph.prior("a", 1.0)
        graph.prior("b", 1.0)
        graph.add_factor(("a", "b"), not_both, 5.0)
        marginals = graph.exact_marginals()
        both_high = marginals["a"] > 0.5 and marginals["b"] > 0.5
        assert not both_high or abs(marginals["a"] - marginals["b"]) < 1e-9

    def test_evidence_pins_variable(self):
        graph = FactorGraph()
        graph.add_variable("e", evidence=True)
        graph.add_factor(("e", "x"), implies, 3.0)
        marginals = graph.exact_marginals()
        assert marginals["e"] == 1.0
        assert marginals["x"] > 0.5

    def test_too_many_variables_rejected(self):
        graph = FactorGraph()
        for i in range(25):
            graph.prior(f"v{i}", 0.1)
        with pytest.raises(ValueError):
            graph.exact_marginals()


class TestGibbs:
    def test_matches_exact_on_small_graph(self):
        graph = FactorGraph()
        graph.prior("a", 1.5)
        graph.prior("b", -0.5)
        graph.add_factor(("a", "b"), implies, 1.0)
        graph.add_factor(("b", "c"), equivalent, 2.0)
        exact = graph.exact_marginals()
        sampled = graph.gibbs_marginals(iterations=4000, burn_in=500, seed=1)
        for variable in exact:
            assert sampled[variable] == pytest.approx(exact[variable], abs=0.06)

    def test_seed_reproducibility(self):
        graph = FactorGraph()
        graph.prior("a", 0.5)
        graph.add_factor(("a", "b"), implies, 1.0)
        first = graph.gibbs_marginals(iterations=300, burn_in=50, seed=7)
        second = graph.gibbs_marginals(iterations=300, burn_in=50, seed=7)
        assert first == second

    def test_invalid_iterations(self):
        graph = FactorGraph()
        graph.prior("a", 1.0)
        with pytest.raises(ValueError):
            graph.gibbs_marginals(iterations=10, burn_in=10)

    def test_evidence_respected(self):
        graph = FactorGraph()
        graph.add_variable("e", evidence=False)
        graph.prior("e", 10.0)  # the prior must lose against evidence
        marginals = graph.gibbs_marginals(iterations=200, burn_in=50)
        assert marginals["e"] == 0.0


class TestMapAssignment:
    def test_finds_obvious_optimum(self):
        graph = FactorGraph()
        graph.prior("a", 2.0)
        graph.prior("b", -2.0)
        assignment, score = graph.map_assignment(seed=0)
        assert assignment["a"] is True
        assert assignment["b"] is False
        assert score == pytest.approx(2.0)

    def test_respects_exclusion(self):
        graph = FactorGraph()
        graph.prior("a", 1.0)
        graph.prior("b", 0.5)
        graph.add_factor(("a", "b"), not_both, 10.0)
        assignment, __ = graph.map_assignment(seed=0)
        assert not (assignment["a"] and assignment["b"])
        assert assignment["a"]  # the stronger prior wins
