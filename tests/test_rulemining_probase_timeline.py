"""Tests for AMIE-style rule mining, Probase taxonomy, and timelines."""

import random

import pytest

from repro.analytics import concurrent_events, events_in_year, timeline_of
from repro.kb import TimeSpan, TripleStore
from repro.reasoning import MinedRule, RuleMiner, complete_kb
from repro.taxonomy import ProbabilisticTaxonomy
from repro.taxonomy.hearst import IsAPair
from repro.world import schema as ws


class TestRuleMining:
    @pytest.fixture(scope="class")
    def mined(self, world):
        return RuleMiner(min_support=5, min_confidence=0.5).mine(world.facts)

    def test_finds_citizenship_chain(self, mined):
        descriptions = [m.describe() for m in mined]
        assert any(
            "bornIn(x,z) & locatedIn(z,y) => citizenOf(x,y)" in d
            for d in descriptions
        )

    def test_finds_marriage_symmetry(self, mined):
        symmetric = [
            m for m in mined
            if m.shape == "inverse"
            and m.rule.head.relation == ws.MARRIED_TO
            and m.rule.body[0].relation == ws.MARRIED_TO
        ]
        assert symmetric
        assert symmetric[0].std_confidence == pytest.approx(1.0)

    def test_finds_capital_implies_located(self, mined):
        hits = [
            m for m in mined
            if m.shape == "same-pair"
            and m.rule.body[0].relation == ws.CAPITAL_OF
            and m.rule.head.relation == ws.LOCATED_IN
        ]
        assert hits and hits[0].std_confidence == pytest.approx(1.0)

    def test_quality_measures_in_bounds(self, mined):
        for m in mined:
            assert m.support >= 5
            assert 0.0 <= m.std_confidence <= 1.0
            assert 0.0 <= m.pca_confidence <= 1.0
            assert m.pca_confidence >= m.std_confidence - 1e-9

    def test_sorted_by_pca(self, mined):
        scores = [m.pca_confidence for m in mined]
        assert scores == sorted(scores, reverse=True)

    def test_min_support_respected(self, world):
        strict = RuleMiner(min_support=10_000).mine(world.facts)
        assert strict == []


class TestKBCompletion:
    def test_recovers_held_out_citizenship(self, world):
        rng = random.Random(5)
        citizenship = [
            t for t in world.facts if t.predicate == ws.CITIZEN_OF
        ]
        rng.shuffle(citizenship)
        held_out = {t.spo() for t in citizenship[: len(citizenship) // 3]}
        train = TripleStore(
            t for t in world.facts if t.spo() not in held_out
        )
        mined = RuleMiner(min_support=5, min_confidence=0.5).mine(train)
        predictions = complete_kb(train, mined, min_pca=0.8, min_std=0.6)
        predicted = {t.spo() for t in predictions}
        recovered = len(predicted & held_out)
        assert recovered / len(held_out) > 0.9
        # Precision against the full world.
        correct = sum(
            1 for key in predicted if world.facts.contains_fact(*key)
        )
        assert correct / len(predicted) > 0.9

    def test_std_gate_filters_inverse_overreach(self, world):
        mined = RuleMiner(min_support=5, min_confidence=0.2).mine(world.facts)
        # "locatedIn => capitalOf" scores high PCA but low std confidence;
        # completion with the std gate must not apply it.
        predictions = complete_kb(world.facts, mined, min_pca=0.8, min_std=0.6)
        for triple in predictions:
            assert triple.predicate != ws.CAPITAL_OF

    def test_predictions_are_new_facts_only(self, world):
        mined = RuleMiner(min_support=5).mine(world.facts)
        predictions = complete_kb(world.facts, mined)
        for triple in predictions:
            assert not world.facts.contains_fact(*triple.spo()) or True
            # (predictions exclude facts already in the *train* store)
            assert triple.source == "rule-mining"


class TestProbase:
    @pytest.fixture
    def taxonomy(self):
        taxonomy = ProbabilisticTaxonomy()
        taxonomy.add_pairs(
            {
                IsAPair("Corvain", "city"): 8,
                IsAPair("Corvain", "company"): 2,
                IsAPair("Lorvik", "city"): 5,
                IsAPair("Nimbus", "company"): 6,
            }
        )
        return taxonomy

    def test_concept_given_instance(self, taxonomy):
        ranked = taxonomy.concept_given_instance("Corvain")
        assert ranked[0].concept == "city"
        assert ranked[0].probability == pytest.approx(0.8)
        assert sum(s.probability for s in ranked) == pytest.approx(1.0)

    def test_instance_given_concept(self, taxonomy):
        ranked = taxonomy.instance_given_concept("city")
        assert ranked[0][0] == "Corvain"
        assert sum(p for __, p in ranked) == pytest.approx(1.0)

    def test_typicality(self, taxonomy):
        assert taxonomy.typicality("Corvain", "city") > taxonomy.typicality(
            "Lorvik", "city"
        )
        assert taxonomy.typicality("Ghost", "city") == 0.0

    def test_conceptualize_set(self, taxonomy):
        concepts = taxonomy.conceptualize(["Corvain", "Lorvik"])
        assert concepts[0].concept == "city"
        assert concepts[0].probability == pytest.approx(1.0)

    def test_conceptualize_mixed_set(self, taxonomy):
        concepts = taxonomy.conceptualize(["Corvain", "Nimbus"])
        # No concept covers both with nonzero likelihood except none ->
        # company covers only Nimbus, city only Corvain (Corvain also has
        # company evidence, so company explains both).
        assert concepts
        assert concepts[0].concept == "company"

    def test_unknown_instances(self, taxonomy):
        assert taxonomy.concept_given_instance("Ghost") == []
        assert taxonomy.conceptualize(["Ghost"]) == []

    def test_from_real_harvest(self, world):
        import random as _random

        from repro.corpus import class_sentences
        from repro.taxonomy.hearst import harvest

        rng = _random.Random(6)
        sentences = [s.text for s in class_sentences(world, rng, per_class=6)]
        taxonomy = ProbabilisticTaxonomy()
        taxonomy.add_pairs(harvest(sentences))
        assert taxonomy.size() > 20
        city_names = [world.name[c] for c in world.cities]
        present = [n for n in city_names if taxonomy.concept_given_instance(n)]
        if present:
            top = taxonomy.concept_given_instance(present[0])[0]
            assert top.concept == "city"

    def test_invalid_count(self, taxonomy):
        with pytest.raises(ValueError):
            taxonomy.add_evidence("x", "y", count=0)


class TestTimeline:
    def test_chronological_order(self, world):
        person = max(
            world.people, key=lambda p: len(timeline_of(world.store, p))
        )
        events = timeline_of(world.store, person)
        assert len(events) >= 3
        begins = [e.span.begin for e in events if e.span.begin is not None]
        assert begins == sorted(begins)

    def test_birth_first_death_last(self, world):
        for person in world.people:
            events = timeline_of(world.store, person)
            labels = [e.label for e in events]
            if "born" in labels and "died" in labels:
                assert labels[0] == "born"
                assert labels[-1] == "died"
                return
        pytest.skip("no person with both birth and death in this world")

    def test_events_in_year(self, world):
        person = next(
            p for p in world.people
            if any(e.label == "worked at" for e in timeline_of(world.store, p))
        )
        work = next(
            e for e in timeline_of(world.store, person) if e.label == "worked at"
        )
        year = work.span.begin
        active = events_in_year(world.store, person, year)
        assert work in active
        before = events_in_year(world.store, person, work.span.begin - 1)
        assert work not in before

    def test_concurrent_events_overlap(self, world):
        person = world.people[0]
        everything = concurrent_events(
            world.store, person, TimeSpan(None, None)
        )
        assert everything == timeline_of(world.store, person)

    def test_render(self, world):
        person = max(
            world.people, key=lambda p: len(timeline_of(world.store, p))
        )
        for event in timeline_of(world.store, person):
            rendered = event.render()
            assert ":" in rendered
