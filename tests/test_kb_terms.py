"""Tests for repro.kb.terms."""

import pytest

from repro.kb import (
    Entity,
    Literal,
    Relation,
    decimal_literal,
    integer_literal,
    string_literal,
    year_literal,
)


class TestEntity:
    def test_identity_equality(self):
        assert Entity("world:Jobs") == Entity("world:Jobs")
        assert Entity("world:Jobs") != Entity("world:Woz")

    def test_hashable(self):
        assert len({Entity("a:x"), Entity("a:x"), Entity("a:y")}) == 2

    def test_local_name_strips_namespace(self):
        assert Entity("world:Steve_Jobs").local_name == "Steve_Jobs"

    def test_local_name_without_namespace(self):
        assert Entity("Steve").local_name == "Steve"

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            Entity("")

    def test_str_is_id(self):
        assert str(Entity("world:X")) == "world:X"


class TestRelation:
    def test_distinct_from_entity_with_same_id(self):
        assert Relation("x:a") != Entity("x:a")

    def test_local_name(self):
        assert Relation("rel:bornIn").local_name == "bornIn"

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            Relation("")


class TestLiteral:
    def test_default_is_string(self):
        literal = Literal("hello")
        assert literal.datatype == "string"
        assert literal.to_python() == "hello"

    def test_integer_conversion(self):
        assert integer_literal(42).to_python() == 42

    def test_year_conversion(self):
        assert year_literal(1955).to_python() == 1955

    def test_decimal_conversion(self):
        assert decimal_literal(2.5).to_python() == 2.5

    def test_language_tag(self):
        literal = string_literal("München", "de")
        assert literal.lang == "de"
        assert str(literal) == '"München"@de'

    def test_language_tag_only_on_strings(self):
        with pytest.raises(ValueError):
            Literal("5", "integer", lang="en")

    def test_unknown_datatype_rejected(self):
        with pytest.raises(ValueError):
            Literal("x", "floatish")

    def test_typed_str_rendering(self):
        assert str(Literal("5", "integer")) == '"5"^^integer'

    def test_equality_includes_lang(self):
        assert string_literal("a", "en") != string_literal("a", "de")
        assert string_literal("a") == string_literal("a")
