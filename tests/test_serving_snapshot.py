"""Serving over segment snapshots: byte-identity with the in-memory
engine, the lock-free cache-miss path, and the cross-store staleness
regression the epoch-keyed cache exists to prevent."""

import json
import threading

import pytest

from repro.kb import (
    Entity,
    ReadOnlyStoreError,
    Relation,
    Triple,
    TripleStore,
    open_snapshot,
    write_segments,
)
from repro.serving import QueryEngine

BORN_IN = Relation("rel:bornIn")
LOCATED_IN = Relation("rel:locatedIn")
GERMANY = Entity("world:Germany")


def make_store() -> TripleStore:
    triples = []
    for i in range(6):
        triples.append(
            Triple(
                Entity(f"world:P{i}"),
                BORN_IN,
                Entity(f"world:C{i % 3}"),
                confidence=0.5 + 0.08 * i,
            )
        )
    for c in range(3):
        triples.append(
            Triple(Entity(f"world:C{c}"), LOCATED_IN, GERMANY, confidence=0.9)
        )
    return TripleStore(triples)


def dumps(payload):
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@pytest.fixture
def snapshot(tmp_path):
    directory = str(tmp_path / "seg")
    write_segments(make_store(), directory)
    snap = open_snapshot(directory)
    yield snap
    snap.close()


class TestByteIdentity:
    def test_every_endpoint_matches_in_memory_engine(self, snapshot):
        # The in-memory twin is loaded *from the snapshot* so both sides
        # share content, epoch, version — responses must be byte-equal.
        memory = QueryEngine(TripleStore(snapshot))
        snapped = QueryEngine(snapshot)
        calls = [
            lambda e: e.lookup(predicate=BORN_IN),
            lambda e: e.lookup(subject=Entity("world:P1")),
            lambda e: e.lookup(obj=GERMANY),
            lambda e: e.lookup(subject=Entity("world:C1"), obj=GERMANY),
            lambda e: e.lookup(),
            lambda e: e.topk(3, predicate=BORN_IN),
            lambda e: e.query_json(
                {"patterns": [["?x", "<<rel:bornIn>>", "?c"],
                              ["?c", "<<rel:locatedIn>>", "?r"]]}
            ),
            lambda e: e.healthz(),
        ]
        for call in calls:
            assert dumps(call(memory)) == dumps(call(snapped))

    def test_cold_vs_warm_snapshot_byte_identical(self, snapshot):
        engine = QueryEngine(snapshot)
        cold = dumps(engine.lookup(predicate=BORN_IN))
        warm = dumps(engine.lookup(predicate=BORN_IN))
        assert cold == warm
        assert engine.cache.stats()["hits"] == 1


class TestImmutableServing:
    def test_writes_rejected(self, snapshot):
        engine = QueryEngine(snapshot)
        with pytest.raises(ReadOnlyStoreError):
            engine.add(Triple(Entity("world:X"), BORN_IN, Entity("world:C0")))
        with pytest.raises(ReadOnlyStoreError):
            engine.add_all([Triple(Entity("world:X"), BORN_IN, Entity("world:C0"))])
        with pytest.raises(ReadOnlyStoreError):
            engine.remove(Triple(Entity("world:P0"), BORN_IN, Entity("world:C0")))
        with pytest.raises(ReadOnlyStoreError):
            engine.mutate(lambda s: None)

    def test_cache_miss_does_not_take_engine_lock(self, snapshot):
        """A miss against an immutable snapshot must complete while some
        other thread holds the engine lock — the lock-free read path."""
        engine = QueryEngine(snapshot)
        acquired = threading.Event()
        release = threading.Event()

        def hog():
            with engine._lock:
                acquired.set()
                release.wait(timeout=10)

        hogger = threading.Thread(target=hog)
        hogger.start()
        assert acquired.wait(timeout=5)
        done = threading.Event()
        result = {}

        def read():
            result["payload"] = engine.lookup(predicate=BORN_IN)
            done.set()

        reader = threading.Thread(target=read)
        reader.start()
        # The reader must finish while the lock is still hogged.
        assert done.wait(timeout=5), "cache miss blocked on the engine lock"
        release.set()
        hogger.join()
        reader.join()
        assert result["payload"]["count"] == 6

    def test_mutable_store_miss_still_takes_lock(self):
        """The same probe against a mutable store must block — lock
        discipline for live writers is unchanged."""
        engine = QueryEngine(make_store())
        acquired = threading.Event()
        release = threading.Event()

        def hog():
            with engine._lock:
                acquired.set()
                release.wait(timeout=10)

        hogger = threading.Thread(target=hog)
        hogger.start()
        assert acquired.wait(timeout=5)
        done = threading.Event()
        reader = threading.Thread(
            target=lambda: (engine.lookup(predicate=BORN_IN), done.set())
        )
        reader.start()
        assert not done.wait(timeout=0.3), "mutable miss bypassed the lock"
        release.set()
        hogger.join()
        reader.join()
        assert done.is_set()


class TestRebindStaleness:
    """Satellite regression: rebinding to a different store whose version
    counter happens to collide must never serve the old store's answers."""

    A, B, C = Entity("w:a"), Entity("w:b"), Entity("w:c")
    KNOWS = Relation("w:knows")

    def _stores_with_colliding_versions(self):
        t1 = Triple(self.A, self.KNOWS, self.B)
        t2 = Triple(self.B, self.KNOWS, self.C)
        t3 = Triple(self.A, self.KNOWS, self.C)
        t4 = Triple(self.C, self.KNOWS, self.A)
        first = TripleStore([t1, t2, t3])
        second = TripleStore([t1, t2, t4])
        return first, second

    def test_version_alone_cannot_tell_the_stores_apart(self):
        first, second = self._stores_with_colliding_versions()
        assert first.version == second.version == 3
        assert first.epoch != second.epoch

    def test_rebind_does_not_serve_stale_payloads(self):
        first, second = self._stores_with_colliding_versions()
        engine = QueryEngine(first)
        before = engine.lookup(subject=self.A)
        assert before["count"] == 2  # t1, t3 cached against `first`

        engine.rebind(second)
        after = engine.lookup(subject=self.A)
        assert after["count"] == 1  # only t1 — t3 is not in `second`
        assert after["kb_epoch"] == second.epoch
        assert dumps(after) != dumps(before)
        # The collision was real (a stale entry existed and was dropped),
        # not dodged by an empty cache.
        assert engine.cache.stats()["stale_drops"] >= 1

    def test_rebind_to_same_content_stays_warm(self):
        first, _ = self._stores_with_colliding_versions()
        engine = QueryEngine(first)
        engine.lookup(subject=self.A)
        engine.rebind(first.copy())
        engine.lookup(subject=self.A)
        stats = engine.cache.stats()
        assert stats["hits"] == 1 and stats["stale_drops"] == 0

    def test_rebind_to_snapshot_of_same_content_stays_warm(self, tmp_path):
        store = make_store()
        directory = str(tmp_path / "seg")
        write_segments(store, directory)
        with open_snapshot(directory) as snap:
            # Load the mutable twin from the snapshot so version (and
            # epoch, by content) agree across the rebind.
            engine = QueryEngine(TripleStore(snap))
            first = engine.lookup(predicate=BORN_IN)
            engine.rebind(snap)
            second = engine.lookup(predicate=BORN_IN)
            assert dumps(first) == dumps(second)
            assert engine.cache.stats()["hits"] == 1
