"""Integration tests: the end-to-end KB builder and cross-module flows."""

import pytest

from repro.analytics import TemplateQA
from repro.extraction import NameResolver
from repro.kb import Taxonomy, ns
from repro.pipeline import BuildConfig, KnowledgeBaseBuilder
from repro.world import schema as ws

FACT_RELATIONS = {s.relation for s in ws.RELATION_SPECS} | set(ws.LITERAL_RELATIONS)


@pytest.fixture(scope="module")
def built(world, wiki):
    builder = KnowledgeBaseBuilder(wiki, aliases=world.aliases)
    return builder.build()


class TestEndToEndBuild:
    def test_kb_nonempty(self, built):
        kb, report = built
        assert len(kb) > 1000
        assert report.accepted_facts > 300

    def test_fact_precision_high(self, world, built):
        kb, __ = built
        facts = [t for t in kb if t.predicate in FACT_RELATIONS]
        correct = sum(
            1 for t in facts
            if world.facts.contains_fact(t.subject, t.predicate, t.object)
        )
        assert correct / len(facts) > 0.95

    def test_fact_recall_reasonable(self, world, built):
        kb, __ = built
        gold = [t for t in world.facts if t.predicate in FACT_RELATIONS]
        recalled = sum(
            1 for t in gold
            if kb.contains_fact(t.subject, t.predicate, t.object)
        )
        assert recalled / len(gold) > 0.6

    def test_types_harvested(self, world, built):
        kb, __ = built
        taxonomy = Taxonomy(kb)
        from repro.taxonomy import wordnet_class

        person_class = wordnet_class("person.n.01")
        typed_people = sum(
            1 for p in world.people if taxonomy.is_instance_of(p, person_class)
        )
        assert typed_people / len(world.people) > 0.8

    def test_multilingual_labels_present(self, built):
        kb, report = built
        assert report.label_triples > 0
        langs = {
            t.object.lang
            for t in kb.match(predicate=ns.LABEL)
            if t.object.lang
        }
        assert {"en", "de", "fr", "es"} <= langs

    def test_temporal_scopes_attached(self, built):
        kb, __ = built
        scoped = [t for t in kb if t.scope is not None]
        assert scoped

    def test_consistency_stage_ran(self, built):
        __, report = built
        assert report.consistency is not None
        assert report.consistency.rejected >= 0
        assert report.consistency.hard_violations == 0

    def test_mapreduce_build_matches_serial(self, world, wiki, built):
        serial_kb, __ = built
        mr_builder = KnowledgeBaseBuilder(
            wiki,
            aliases=world.aliases,
            config=BuildConfig(mapreduce_shards=4),
        )
        mr_kb, mr_report = mr_builder.build()
        assert mr_report.mapreduce is not None
        assert mr_report.mapreduce.shards == 4
        # Since the merge/provenance order-dependence fix, sharded and
        # serial builds agree byte for byte — not just on fact overlap.
        from repro.determinism import canonical_kb_text

        assert canonical_kb_text(mr_kb) == canonical_kb_text(serial_kb)

    def test_qa_over_built_kb(self, world, wiki, built):
        kb, __ = built
        resolver = NameResolver()
        for title, page in wiki.pages.items():
            resolver.add(title, page.entity)
        qa = TemplateQA(kb, resolver)
        answered = 0
        asked = 0
        for person in world.people[:30]:
            asked += 1
            question = f"Where was {world.name[person]} born?"
            answers = qa.answer(question)
            city = world.facts.one_object(person, ws.BORN_IN)
            if answers and answers[0].text == world.name[city]:
                answered += 1
        assert answered / asked > 0.7


class TestAblations:
    def test_no_consistency_lowers_precision(self, world, wiki):
        noisy_config = BuildConfig(use_consistency=False)
        kb, __ = KnowledgeBaseBuilder(
            wiki, aliases=world.aliases, config=noisy_config
        ).build()
        facts = [t for t in kb if t.predicate in FACT_RELATIONS]
        correct = sum(
            1 for t in facts
            if world.facts.contains_fact(t.subject, t.predicate, t.object)
        )
        raw_precision = correct / len(facts)
        assert raw_precision <= 1.0  # sanity; detailed comparison in E4

    def test_infobox_only_build(self, world, wiki):
        config = BuildConfig(use_patterns=False, use_year_attributes=False)
        kb, report = KnowledgeBaseBuilder(
            wiki, aliases=world.aliases, config=config
        ).build()
        assert report.pattern_candidates == 0
        assert report.infobox_candidates > 0


class TestBuildDeterminismUnderTracing:
    """Instrumentation must not change behavior, and traces must be stable.

    Two builds over the same synthetic Wiki seed produce identical triple
    sets and identical span *structure* (names, nesting, counters — not
    timings).  This guards against observability code paths perturbing the
    pipeline.
    """

    @staticmethod
    def _traced_build():
        from repro import obs
        from repro.corpus import build_wiki
        from repro.world import WorldConfig, generate_world

        world = generate_world(WorldConfig(seed=55, n_people=30))
        wiki = build_wiki(world)
        obs.reset()
        obs.enable()
        try:
            kb, __ = KnowledgeBaseBuilder(wiki, aliases=world.aliases).build()
            structure = tuple(s.structure() for s in obs.take_roots())
        finally:
            obs.disable()
            obs.reset()
        return kb, structure

    def test_identical_triples_and_span_structure(self):
        kb_first, structure_first = self._traced_build()
        kb_second, structure_second = self._traced_build()
        assert {t.spo() for t in kb_first} == {t.spo() for t in kb_second}
        assert structure_first == structure_second

    def test_tracing_does_not_change_the_kb(self):
        from repro import obs
        from repro.corpus import build_wiki
        from repro.world import WorldConfig, generate_world

        world = generate_world(WorldConfig(seed=55, n_people=30))
        wiki = build_wiki(world)
        obs.disable()
        obs.reset()
        kb_untraced, __ = KnowledgeBaseBuilder(
            wiki, aliases=world.aliases
        ).build()
        kb_traced, structure = self._traced_build()
        assert {t.spo() for t in kb_untraced} == {t.spo() for t in kb_traced}
        # The traced run covered every enabled pipeline stage.
        names = set()

        def collect(node):
            names.add(node[0])
            for child in node[2]:
                collect(child)

        for root in structure:
            collect(root)
        assert {
            "pipeline.build",
            "pipeline.taxonomy",
            "pipeline.extract",
            "pipeline.temporal",
            "pipeline.merge",
            "pipeline.consistency",
            "pipeline.multilingual",
            "pipeline.labels",
        } <= names


class TestCrossProcessDeterminism:
    """Two fresh-subprocess builds under different ``PYTHONHASHSEED`` values
    must produce byte-identical canonical KB serializations.

    This is the one determinism property an in-process test cannot check
    (the hash salt is fixed per process); it guards the contract behind
    ``repro check-determinism`` and the sharded-vs-serial comparisons the
    ROADMAP's parallel-build work depends on.
    """

    def test_distinct_hash_seeds_build_identical_kbs(self):
        from repro.determinism import check_determinism

        report = check_determinism(
            runs=2, seed=7, people=25, hash_seeds=[0, 1]
        )
        assert report.ok, report.describe()
        assert report.triples > 500

    def test_sharded_build_is_deterministic_too(self):
        from repro.determinism import check_determinism

        report = check_determinism(
            runs=2, seed=7, people=25, shards=3, hash_seeds=[2, 3]
        )
        assert report.ok, report.describe()
