"""Tests for repro.world (names, schema, generator)."""

import pytest

from repro.kb import Entity, ns
from repro.world import (
    NamePool,
    WorldConfig,
    generate_world,
    identifier_from_name,
    nationality_adjective,
    person_aliases,
    pseudo_translate,
)
from repro.world import schema as ws


class TestNames:
    def test_person_names_unique(self):
        pool = NamePool(seed=1)
        names = {" ".join(pool.person_name()) for __ in range(100)}
        assert len(names) == 100

    def test_ambiguity_shrinks_surname_pool(self):
        low = NamePool(seed=1, ambiguity=0.0)
        high = NamePool(seed=1, ambiguity=1.0)
        low_surnames = {low.person_name()[1] for __ in range(80)}
        high_surnames = {high.person_name()[1] for __ in range(80)}
        assert len(high_surnames) < len(low_surnames)

    def test_invalid_ambiguity(self):
        with pytest.raises(ValueError):
            NamePool(seed=1, ambiguity=1.5)

    def test_pseudo_translate_deterministic(self):
        assert pseudo_translate("Corvain", "fr") == pseudo_translate("Corvain", "fr")

    def test_pseudo_translate_changes_name(self):
        for lang in ("de", "fr", "es"):
            assert pseudo_translate("Corvain", lang) != "Corvain"

    def test_pseudo_translate_english_identity(self):
        assert pseudo_translate("Corvain", "en") == "Corvain"

    def test_pseudo_translate_unknown_language(self):
        with pytest.raises(ValueError):
            pseudo_translate("x", "xx")

    def test_nationality_adjective(self):
        assert nationality_adjective("Arvandia") == "Arvandian"
        assert nationality_adjective("Frentis") == "Frentian"

    def test_person_aliases_order(self):
        aliases = person_aliases("Viktor", "Adler")
        assert aliases[0] == "Viktor Adler"
        assert "Adler" in aliases and "V. Adler" in aliases

    def test_identifier_from_name(self):
        assert identifier_from_name("Viktor Adler") == "Viktor_Adler"
        assert identifier_from_name("A  B") == "A_B"
        assert identifier_from_name("X. Y's") == "X_Y_s"


class TestSchema:
    def test_schema_store_has_class_tree(self):
        store = ws.schema_store()
        assert store.contains_fact(ws.SCIENTIST, ns.SUBCLASS_OF, ws.PERSON)
        assert store.contains_fact(ws.CITY, ns.SUBCLASS_OF, ws.LOCATION)

    def test_relation_signatures_present(self):
        store = ws.schema_store()
        assert store.contains_fact(ws.BORN_IN, ns.DOMAIN, ws.PERSON)
        assert store.contains_fact(ws.BORN_IN, ns.RANGE, ws.CITY)

    def test_functional_marked(self):
        from repro.kb import Taxonomy

        taxonomy = Taxonomy(ws.schema_store())
        assert taxonomy.is_functional(ws.BORN_IN)
        assert not taxonomy.is_functional(ws.WORKS_AT)


class TestGenerator:
    def test_deterministic(self):
        first = generate_world(WorldConfig(seed=9))
        second = generate_world(WorldConfig(seed=9))
        assert {t.spo() for t in first.facts} == {t.spo() for t in second.facts}

    def test_seed_changes_world(self):
        first = generate_world(WorldConfig(seed=9))
        second = generate_world(WorldConfig(seed=10))
        assert {t.spo() for t in first.facts} != {t.spo() for t in second.facts}

    def test_sizes_respected(self, world):
        config = world.config
        assert len(world.countries) == config.n_countries
        assert len(world.cities) == config.n_cities
        assert len(world.people) == config.n_people
        assert len(world.companies) == config.n_companies

    def test_every_city_located(self, world):
        for city in world.cities:
            assert world.facts.one_object(city, ws.LOCATED_IN) is not None

    def test_every_country_has_capital(self, world):
        capitals = {t.object for t in world.facts.match(predicate=ws.CAPITAL_OF)}
        assert capitals == set(world.countries)

    def test_functional_relations_respected(self, world):
        for person in world.people:
            assert len(world.facts.objects(person, ws.BORN_IN)) <= 1
            assert len(world.facts.objects(person, ws.BIRTH_YEAR)) == 1

    def test_death_city_differs_from_birth_city(self, world):
        for person in world.people:
            died = world.facts.one_object(person, ws.DIED_IN)
            if died is not None:
                assert died != world.facts.one_object(person, ws.BORN_IN)

    def test_marriages_symmetric(self, world):
        for triple in world.facts.match(predicate=ws.MARRIED_TO):
            assert world.facts.contains_fact(
                triple.object, ws.MARRIED_TO, triple.subject
            )
            assert triple.scope is not None

    def test_products_form_families(self, world):
        assert world.products
        families = {world.product_family[p] for p in world.products}
        assert len(families) == world.config.n_product_families

    def test_successor_chains(self, world):
        for triple in world.facts.match(predicate=ws.SUCCESSOR_OF):
            assert world.product_family[triple.subject] == world.product_family[
                triple.object
            ]

    def test_labels_multilingual(self, world):
        entity = world.people[0]
        for lang in ("en", "de", "fr", "es"):
            assert world.label_in(entity, lang) is not None

    def test_alias_index_has_ambiguity(self):
        ambiguous_world = generate_world(WorldConfig(seed=2, ambiguity=0.8))
        index = ambiguous_world.alias_index()
        shared = [name for name, entities in index.items() if len(entities) > 1]
        assert shared, "high-ambiguity worlds must produce shared surface forms"

    def test_entities_of_class(self, world):
        scientists = world.entities_of_class(ws.SCIENTIST)
        assert scientists
        assert all(world.primary_class[e] == ws.SCIENTIST for e in scientists)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorldConfig(n_countries=0)
        with pytest.raises(ValueError):
            WorldConfig(n_cities=2, n_countries=5)
        with pytest.raises(ValueError):
            WorldConfig(n_prizes=10)

    @pytest.mark.parametrize(
        "field",
        ["n_cities", "n_people", "n_companies", "n_books", "n_albums"],
    )
    def test_config_rejects_negative_counts(self, field):
        # Regression: negative counts used to slip through and blow up (or
        # silently truncate) deep inside generation.
        with pytest.raises(ValueError, match="non-negative"):
            WorldConfig(**{field: -1})

    def test_config_rejects_out_of_range_ambiguity(self):
        with pytest.raises(ValueError, match="ambiguity"):
            WorldConfig(ambiguity=1.2)
        with pytest.raises(ValueError, match="ambiguity"):
            WorldConfig(ambiguity=-0.1)

    def test_config_rejects_more_families_than_companies(self):
        # Regression: zip() silently dropped the extra families, producing
        # fewer product families than configured.
        with pytest.raises(ValueError, match="company per product family"):
            WorldConfig(n_companies=2, n_product_families=3)

    def test_entities_of_class_subclass_closure(self, world):
        # Regression: superclass queries used to return only entities whose
        # *primary* class matched, so ORGANIZATION came back empty.
        organizations = world.entities_of_class(ws.ORGANIZATION)
        assert set(organizations) == set(world.companies) | set(
            world.universities
        )
        locations = world.entities_of_class(ws.LOCATION)
        assert set(locations) == set(world.cities) | set(world.countries)
        people = world.entities_of_class(ws.PERSON)
        assert set(people) == set(world.people)

    def test_entities_of_class_leaf_order_preserved(self, world):
        # The closure rewrite must not disturb leaf-class ordering (seeded
        # rng.choice over this list pins corpus corruption bytes).
        scientists = world.entities_of_class(ws.SCIENTIST)
        assert scientists == [
            e
            for e in world.people
            if world.primary_class[e] == ws.SCIENTIST
        ]

    def test_subclasses_of_closure(self):
        closure = ws.subclasses_of(ws.ORGANIZATION)
        assert ws.ORGANIZATION in closure
        assert ws.COMPANY in closure and ws.UNIVERSITY in closure
        assert ws.CITY not in closure
        # Leaves close over themselves only.
        assert ws.subclasses_of(ws.CITY) == frozenset((ws.CITY,))
