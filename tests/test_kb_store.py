"""Tests for repro.kb.store (the indexed triple store)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kb import Entity, Relation, Triple, TripleStore, ns, string_literal

A, B, C = Entity("w:a"), Entity("w:b"), Entity("w:c")
KNOWS, LIKES = Relation("w:knows"), Relation("w:likes")


@pytest.fixture
def store():
    return TripleStore(
        [
            Triple(A, KNOWS, B),
            Triple(A, KNOWS, C),
            Triple(B, KNOWS, C),
            Triple(A, LIKES, B),
        ]
    )


class TestAddRemove:
    def test_len(self, store):
        assert len(store) == 4

    def test_add_duplicate_returns_false(self, store):
        assert not store.add(Triple(A, KNOWS, B))
        assert len(store) == 4

    def test_duplicate_keeps_higher_confidence(self):
        store = TripleStore()
        store.add(Triple(A, KNOWS, B, confidence=0.4))
        store.add(Triple(A, KNOWS, B, confidence=0.9))
        assert store.get(A, KNOWS, B).confidence == 0.9
        store.add(Triple(A, KNOWS, B, confidence=0.2))
        assert store.get(A, KNOWS, B).confidence == 0.9

    def test_remove(self, store):
        assert store.remove(Triple(A, KNOWS, B))
        assert len(store) == 3
        assert not store.contains_fact(A, KNOWS, B)
        assert not store.remove(Triple(A, KNOWS, B))

    def test_remove_clears_indexes(self, store):
        store.remove(Triple(A, LIKES, B))
        assert list(store.match(predicate=LIKES)) == []

    def test_merge(self, store):
        other = TripleStore([Triple(C, LIKES, A), Triple(A, KNOWS, B)])
        added = store.merge(other)
        assert added == 1
        assert len(store) == 5

    def test_merge_is_insertion_order_independent(self):
        # Regression: merge() used to walk the source store in insertion
        # order, so two stores holding the same triples could merge into
        # different iteration orders downstream.
        triples = [
            Triple(A, KNOWS, B, confidence=0.4),
            Triple(C, LIKES, A),
            Triple(B, KNOWS, C, source="wiki:b"),
            Triple(A, LIKES, C),
            Triple(B, LIKES, A),
        ]
        forward, backward = TripleStore(), TripleStore()
        for t in triples:
            forward.add(t)
        for t in reversed(triples):
            backward.add(t)

        merged_f, merged_b = TripleStore(), TripleStore()
        merged_f.merge(forward)
        merged_b.merge(backward)
        assert [repr(t) for t in merged_f] == [repr(t) for t in merged_b]


class TestVersionCounter:
    def test_starts_at_zero_and_counts_seed_triples(self, store):
        assert TripleStore().version == 0
        assert store.version == 4

    def test_add_bumps(self, store):
        before = store.version
        assert store.add(Triple(C, LIKES, A))
        assert store.version == before + 1

    def test_duplicate_noop_does_not_bump(self, store):
        before = store.version
        assert not store.add(Triple(A, KNOWS, B))
        assert store.version == before

    def test_witness_replacement_bumps(self):
        store = TripleStore([Triple(A, KNOWS, B, confidence=0.4)])
        before = store.version
        store.add(Triple(A, KNOWS, B, confidence=0.9))
        assert store.version == before + 1
        # A lower-confidence duplicate changes nothing and must not bump.
        store.add(Triple(A, KNOWS, B, confidence=0.2))
        assert store.version == before + 1

    def test_remove_bumps_only_on_success(self, store):
        before = store.version
        assert store.remove(Triple(A, KNOWS, B))
        assert store.version == before + 1
        assert not store.remove(Triple(A, KNOWS, B))
        assert store.version == before + 1

    def test_monotonic_across_mixed_mutations(self, store):
        seen = [store.version]
        store.add(Triple(C, LIKES, B))
        seen.append(store.version)
        store.remove(Triple(C, LIKES, B))
        seen.append(store.version)
        store.add_all([Triple(B, LIKES, C), Triple(C, KNOWS, A)])
        seen.append(store.version)
        assert seen == sorted(seen) and len(set(seen)) == len(seen)

    def test_reads_do_not_bump(self, store):
        before = store.version
        list(store.match(predicate=KNOWS))
        store.count(subject=A)
        store.entities()
        len(store)
        assert store.version == before


class TestMatch:
    def test_full_scan(self, store):
        assert len(list(store.match())) == 4

    def test_by_subject(self, store):
        assert len(list(store.match(subject=A))) == 3

    def test_by_predicate(self, store):
        assert len(list(store.match(predicate=KNOWS))) == 3

    def test_by_object(self, store):
        assert len(list(store.match(obj=C))) == 2

    def test_by_subject_predicate(self, store):
        assert {t.object for t in store.match(A, KNOWS)} == {B, C}

    def test_by_predicate_object(self, store):
        assert {t.subject for t in store.match(predicate=KNOWS, obj=C)} == {A, B}

    def test_by_subject_object(self, store):
        matched = list(store.match(subject=A, obj=B))
        assert {t.predicate for t in matched} == {KNOWS, LIKES}

    def test_exact(self, store):
        assert len(list(store.match(A, KNOWS, B))) == 1
        assert list(store.match(A, LIKES, C)) == []

    def test_count_matches_match(self, store):
        for pattern in [
            {}, {"subject": A}, {"predicate": KNOWS}, {"obj": C},
            {"subject": A, "predicate": KNOWS},
            {"predicate": KNOWS, "obj": C},
        ]:
            assert store.count(**pattern) == len(list(store.match(**pattern)))


class TestConveniences:
    def test_objects_subjects(self, store):
        assert set(store.objects(A, KNOWS)) == {B, C}
        assert set(store.subjects(KNOWS, C)) == {A, B}

    def test_one_object(self, store):
        assert store.one_object(B, KNOWS) == C
        assert store.one_object(C, KNOWS) is None

    def test_entities(self, store):
        assert store.entities() == {A, B, C}

    def test_predicates(self, store):
        assert store.predicates() == {KNOWS, LIKES}

    def test_labels_of(self):
        store = TripleStore(
            [
                Triple(A, ns.LABEL, string_literal("Anna", "en")),
                Triple(A, ns.LABEL, string_literal("Anne", "fr")),
            ]
        )
        assert set(store.labels_of(A)) == {"Anna", "Anne"}
        assert store.labels_of(A, lang="fr") == ["Anne"]

    def test_with_min_confidence(self):
        store = TripleStore(
            [Triple(A, KNOWS, B, confidence=0.3), Triple(A, KNOWS, C, confidence=0.8)]
        )
        kept = store.with_min_confidence(0.5)
        assert len(kept) == 1
        assert kept.contains_fact(A, KNOWS, C)

    def test_copy_is_independent(self, store):
        clone = store.copy()
        clone.add(Triple(C, LIKES, B))
        assert len(store) == 4
        assert len(clone) == 5


_entities = st.integers(0, 8).map(lambda i: Entity(f"e:{i}"))
_relations = st.integers(0, 2).map(lambda i: Relation(f"r:{i}"))
_triples = st.builds(Triple, _entities, _relations, _entities)


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(_triples, max_size=40))
    def test_every_added_triple_matchable(self, triples):
        store = TripleStore(triples)
        for triple in triples:
            assert store.contains_fact(*triple.spo())
            assert triple.spo() in {t.spo() for t in store.match(subject=triple.subject)}

    @settings(max_examples=50, deadline=None)
    @given(st.lists(_triples, max_size=40))
    def test_len_equals_distinct_spo(self, triples):
        store = TripleStore(triples)
        assert len(store) == len({t.spo() for t in triples})

    @settings(max_examples=30, deadline=None)
    @given(st.lists(_triples, min_size=1, max_size=30), st.data())
    def test_remove_then_absent_everywhere(self, triples, data):
        store = TripleStore(triples)
        victim = data.draw(st.sampled_from(triples))
        store.remove(victim)
        assert not store.contains_fact(*victim.spo())
        assert victim.spo() not in {t.spo() for t in store.match(obj=victim.object)}
        assert store.count(victim.subject, victim.predicate, victim.object) == 0


class TestEpoch:
    """The content epoch: an order-independent multiset digest of the
    live triples, used by the serving cache as the store identity."""

    def test_empty_store_epoch_is_stable(self):
        assert TripleStore().epoch == TripleStore().epoch
        assert len(TripleStore().epoch) == 32
        assert all(c in "0123456789abcdef" for c in TripleStore().epoch)

    def test_equal_content_equal_epoch_any_order(self):
        triples = [Triple(A, KNOWS, B), Triple(B, KNOWS, C), Triple(A, LIKES, B)]
        forward = TripleStore(triples)
        backward = TripleStore(list(reversed(triples)))
        assert forward.epoch == backward.epoch

    def test_add_changes_remove_restores(self, store):
        before = store.epoch
        extra = Triple(C, LIKES, A)
        store.add(extra)
        assert store.epoch != before
        store.remove(extra)
        assert store.epoch == before

    def test_duplicate_noop_keeps_epoch(self, store):
        before = store.epoch
        store.add(Triple(A, KNOWS, B))
        assert store.epoch == before

    def test_witness_replacement_changes_epoch(self):
        store = TripleStore([Triple(A, KNOWS, B, confidence=0.4)])
        before = store.epoch
        store.add(Triple(A, KNOWS, B, confidence=0.9))
        assert store.epoch != before

    def test_same_content_different_history_share_epoch(self):
        grown = TripleStore([Triple(A, KNOWS, B)])
        grown.add(Triple(B, KNOWS, C))
        grown.remove(Triple(A, KNOWS, B))
        fresh = TripleStore([Triple(B, KNOWS, C)])
        assert grown.epoch == fresh.epoch
        assert grown.version != fresh.version  # epoch ≠ version

    def test_copy_shares_epoch(self, store):
        assert store.copy().epoch == store.epoch


class TestMutationCounts:
    """add_all()/merge() report new vs replaced triples separately; the
    return value still compares as the *new* count for old callers."""

    def test_add_all_counts_only_new(self, store):
        counts = store.add_all([Triple(C, LIKES, A), Triple(A, KNOWS, B)])
        assert counts == 1  # int compatibility: new triples only
        assert counts.new == 1
        assert counts.replaced == 0
        assert len(store) == 5

    def test_replacement_is_not_new(self):
        store = TripleStore([Triple(A, KNOWS, B, confidence=0.4)])
        counts = store.add_all(
            [Triple(A, KNOWS, B, confidence=0.9), Triple(B, KNOWS, C)]
        )
        assert counts == 1
        assert counts.new == 1
        assert counts.replaced == 1
        assert counts.changed == 2
        assert store.get(A, KNOWS, B).confidence == 0.9

    def test_merge_reports_both(self):
        store = TripleStore([Triple(A, KNOWS, B, confidence=0.5)])
        other = TripleStore(
            [Triple(C, LIKES, A), Triple(A, KNOWS, B, confidence=0.99)]
        )
        counts = store.merge(other)
        assert counts == 1 and counts.new == 1 and counts.replaced == 1

    def test_pure_duplicates_are_neither(self, store):
        counts = store.add_all([Triple(A, KNOWS, B), Triple(A, LIKES, B)])
        assert counts == 0 and counts.new == 0 and counts.replaced == 0
        assert counts.changed == 0


class TestIndexHygiene:
    """Missed matches must not materialize empty index buckets (the old
    defaultdict indexes leaked one per probed key, forever)."""

    def _assert_no_empty_buckets(self, store):
        stats = store.index_stats()
        for name, info in stats.items():
            assert info["empty"] == 0, f"{name} holds empty buckets"

    def test_missed_match_leaves_no_bucket(self, store):
        ghost = Entity("w:ghost")
        assert list(store.match(subject=ghost)) == []
        assert list(store.match(predicate=Relation("w:none"))) == []
        assert list(store.match(obj=ghost)) == []
        assert list(store.match(subject=ghost, predicate=KNOWS)) == []
        assert list(store.match(predicate=KNOWS, obj=ghost)) == []
        assert store.get(ghost, KNOWS, ghost) is None
        self._assert_no_empty_buckets(store)

    def test_missed_count_leaves_no_bucket(self, store):
        ghost = Entity("w:ghost")
        assert store.count(subject=ghost) == 0
        assert store.count(predicate=Relation("w:none")) == 0
        assert store.count(subject=ghost, obj=ghost) == 0
        self._assert_no_empty_buckets(store)

    def test_remove_drops_emptied_buckets(self, store):
        store.remove(Triple(A, LIKES, B))
        self._assert_no_empty_buckets(store)
        assert store.count(predicate=LIKES) == 0
        self._assert_no_empty_buckets(store)
