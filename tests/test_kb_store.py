"""Tests for repro.kb.store (the indexed triple store)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kb import Entity, Relation, Triple, TripleStore, ns, string_literal

A, B, C = Entity("w:a"), Entity("w:b"), Entity("w:c")
KNOWS, LIKES = Relation("w:knows"), Relation("w:likes")


@pytest.fixture
def store():
    return TripleStore(
        [
            Triple(A, KNOWS, B),
            Triple(A, KNOWS, C),
            Triple(B, KNOWS, C),
            Triple(A, LIKES, B),
        ]
    )


class TestAddRemove:
    def test_len(self, store):
        assert len(store) == 4

    def test_add_duplicate_returns_false(self, store):
        assert not store.add(Triple(A, KNOWS, B))
        assert len(store) == 4

    def test_duplicate_keeps_higher_confidence(self):
        store = TripleStore()
        store.add(Triple(A, KNOWS, B, confidence=0.4))
        store.add(Triple(A, KNOWS, B, confidence=0.9))
        assert store.get(A, KNOWS, B).confidence == 0.9
        store.add(Triple(A, KNOWS, B, confidence=0.2))
        assert store.get(A, KNOWS, B).confidence == 0.9

    def test_remove(self, store):
        assert store.remove(Triple(A, KNOWS, B))
        assert len(store) == 3
        assert not store.contains_fact(A, KNOWS, B)
        assert not store.remove(Triple(A, KNOWS, B))

    def test_remove_clears_indexes(self, store):
        store.remove(Triple(A, LIKES, B))
        assert list(store.match(predicate=LIKES)) == []

    def test_merge(self, store):
        other = TripleStore([Triple(C, LIKES, A), Triple(A, KNOWS, B)])
        added = store.merge(other)
        assert added == 1
        assert len(store) == 5


class TestVersionCounter:
    def test_starts_at_zero_and_counts_seed_triples(self, store):
        assert TripleStore().version == 0
        assert store.version == 4

    def test_add_bumps(self, store):
        before = store.version
        assert store.add(Triple(C, LIKES, A))
        assert store.version == before + 1

    def test_duplicate_noop_does_not_bump(self, store):
        before = store.version
        assert not store.add(Triple(A, KNOWS, B))
        assert store.version == before

    def test_witness_replacement_bumps(self):
        store = TripleStore([Triple(A, KNOWS, B, confidence=0.4)])
        before = store.version
        store.add(Triple(A, KNOWS, B, confidence=0.9))
        assert store.version == before + 1
        # A lower-confidence duplicate changes nothing and must not bump.
        store.add(Triple(A, KNOWS, B, confidence=0.2))
        assert store.version == before + 1

    def test_remove_bumps_only_on_success(self, store):
        before = store.version
        assert store.remove(Triple(A, KNOWS, B))
        assert store.version == before + 1
        assert not store.remove(Triple(A, KNOWS, B))
        assert store.version == before + 1

    def test_monotonic_across_mixed_mutations(self, store):
        seen = [store.version]
        store.add(Triple(C, LIKES, B))
        seen.append(store.version)
        store.remove(Triple(C, LIKES, B))
        seen.append(store.version)
        store.add_all([Triple(B, LIKES, C), Triple(C, KNOWS, A)])
        seen.append(store.version)
        assert seen == sorted(seen) and len(set(seen)) == len(seen)

    def test_reads_do_not_bump(self, store):
        before = store.version
        list(store.match(predicate=KNOWS))
        store.count(subject=A)
        store.entities()
        len(store)
        assert store.version == before


class TestMatch:
    def test_full_scan(self, store):
        assert len(list(store.match())) == 4

    def test_by_subject(self, store):
        assert len(list(store.match(subject=A))) == 3

    def test_by_predicate(self, store):
        assert len(list(store.match(predicate=KNOWS))) == 3

    def test_by_object(self, store):
        assert len(list(store.match(obj=C))) == 2

    def test_by_subject_predicate(self, store):
        assert {t.object for t in store.match(A, KNOWS)} == {B, C}

    def test_by_predicate_object(self, store):
        assert {t.subject for t in store.match(predicate=KNOWS, obj=C)} == {A, B}

    def test_by_subject_object(self, store):
        matched = list(store.match(subject=A, obj=B))
        assert {t.predicate for t in matched} == {KNOWS, LIKES}

    def test_exact(self, store):
        assert len(list(store.match(A, KNOWS, B))) == 1
        assert list(store.match(A, LIKES, C)) == []

    def test_count_matches_match(self, store):
        for pattern in [
            {}, {"subject": A}, {"predicate": KNOWS}, {"obj": C},
            {"subject": A, "predicate": KNOWS},
            {"predicate": KNOWS, "obj": C},
        ]:
            assert store.count(**pattern) == len(list(store.match(**pattern)))


class TestConveniences:
    def test_objects_subjects(self, store):
        assert set(store.objects(A, KNOWS)) == {B, C}
        assert set(store.subjects(KNOWS, C)) == {A, B}

    def test_one_object(self, store):
        assert store.one_object(B, KNOWS) == C
        assert store.one_object(C, KNOWS) is None

    def test_entities(self, store):
        assert store.entities() == {A, B, C}

    def test_predicates(self, store):
        assert store.predicates() == {KNOWS, LIKES}

    def test_labels_of(self):
        store = TripleStore(
            [
                Triple(A, ns.LABEL, string_literal("Anna", "en")),
                Triple(A, ns.LABEL, string_literal("Anne", "fr")),
            ]
        )
        assert set(store.labels_of(A)) == {"Anna", "Anne"}
        assert store.labels_of(A, lang="fr") == ["Anne"]

    def test_with_min_confidence(self):
        store = TripleStore(
            [Triple(A, KNOWS, B, confidence=0.3), Triple(A, KNOWS, C, confidence=0.8)]
        )
        kept = store.with_min_confidence(0.5)
        assert len(kept) == 1
        assert kept.contains_fact(A, KNOWS, C)

    def test_copy_is_independent(self, store):
        clone = store.copy()
        clone.add(Triple(C, LIKES, B))
        assert len(store) == 4
        assert len(clone) == 5


_entities = st.integers(0, 8).map(lambda i: Entity(f"e:{i}"))
_relations = st.integers(0, 2).map(lambda i: Relation(f"r:{i}"))
_triples = st.builds(Triple, _entities, _relations, _entities)


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(_triples, max_size=40))
    def test_every_added_triple_matchable(self, triples):
        store = TripleStore(triples)
        for triple in triples:
            assert store.contains_fact(*triple.spo())
            assert triple.spo() in {t.spo() for t in store.match(subject=triple.subject)}

    @settings(max_examples=50, deadline=None)
    @given(st.lists(_triples, max_size=40))
    def test_len_equals_distinct_spo(self, triples):
        store = TripleStore(triples)
        assert len(store) == len({t.spo() for t in triples})

    @settings(max_examples=30, deadline=None)
    @given(st.lists(_triples, min_size=1, max_size=30), st.data())
    def test_remove_then_absent_everywhere(self, triples, data):
        store = TripleStore(triples)
        victim = data.draw(st.sampled_from(triples))
        store.remove(victim)
        assert not store.contains_fact(*victim.spo())
        assert victim.spo() not in {t.spo() for t in store.match(obj=victim.object)}
        assert store.count(victim.subject, victim.predicate, victim.object) == 0
