"""Tests for the zero-copy corpus file format (repro.corpus.corpusfile)."""

import os

import pytest

from repro.corpus import CorpusReader, build_wiki, open_corpus, write_corpus
from repro.world import WorldConfig, generate_world


@pytest.fixture(scope="module")
def small_world():
    world = generate_world(WorldConfig(seed=11, n_people=20))
    return world, build_wiki(world)


class TestWriteAndRead:
    def test_roundtrip_preserves_page_surface(self, small_world, tmp_path):
        world, wiki = small_world
        path = str(tmp_path / "corpus.rprocrp")
        manifest = write_corpus(wiki, path, aliases=world.aliases)
        assert manifest["pages"] == len(wiki.pages)
        with CorpusReader(path) as reader:
            assert len(reader) == len(wiki.pages)
            for title in sorted(wiki.pages):
                original = wiki.pages[title]
                loaded = reader.page(title)
                assert loaded.title == title
                assert loaded.entity == original.entity
                assert [s.text for s in loaded.document.sentences] == [
                    s.text for s in original.document.sentences
                ]
                assert loaded.infobox == original.infobox
                assert [c.name for c in loaded.categories] == [
                    c.name for c in original.categories
                ]
                assert loaded.interlanguage == original.interlanguage

    def test_write_is_byte_deterministic(self, small_world, tmp_path):
        world, wiki = small_world
        a = str(tmp_path / "a.rprocrp")
        b = str(tmp_path / "b.rprocrp")
        write_corpus(wiki, a, aliases=world.aliases)
        write_corpus(wiki, b, aliases=world.aliases)
        assert open(a, "rb").read() == open(b, "rb").read()

    def test_verify_detects_corruption(self, small_world, tmp_path):
        world, wiki = small_world
        path = str(tmp_path / "corpus.rprocrp")
        write_corpus(wiki, path, aliases=world.aliases)
        with CorpusReader(path) as reader:
            assert reader.verify()
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        with CorpusReader(path) as reader:
            assert not reader.verify()

    def test_unknown_title_raises(self, small_world, tmp_path):
        world, wiki = small_world
        path = str(tmp_path / "corpus.rprocrp")
        write_corpus(wiki, path, aliases=world.aliases)
        with CorpusReader(path) as reader:
            with pytest.raises(KeyError):
                reader.page("No Such Page")

    def test_titles_sorted_and_iteration_matches(self, small_world, tmp_path):
        world, wiki = small_world
        path = str(tmp_path / "corpus.rprocrp")
        write_corpus(wiki, path, aliases=world.aliases)
        with CorpusReader(path) as reader:
            titles = reader.titles()
            assert titles == sorted(wiki.pages)
            assert [page.title for page in reader.pages()] == titles

    def test_truncated_file_rejected(self, small_world, tmp_path):
        world, wiki = small_world
        path = str(tmp_path / "corpus.rprocrp")
        write_corpus(wiki, path, aliases=world.aliases)
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        with pytest.raises(ValueError):
            CorpusReader(path)


class TestMatches:
    def test_matches_same_corpus(self, small_world, tmp_path):
        world, wiki = small_world
        path = str(tmp_path / "corpus.rprocrp")
        write_corpus(wiki, path, aliases=world.aliases)
        with CorpusReader(path) as reader:
            assert reader.matches(wiki, world.aliases)

    def test_mismatched_aliases_rejected(self, small_world, tmp_path):
        world, wiki = small_world
        path = str(tmp_path / "corpus.rprocrp")
        write_corpus(wiki, path, aliases=world.aliases)
        with CorpusReader(path) as reader:
            assert not reader.matches(wiki, None)

    def test_different_world_rejected(self, small_world, tmp_path):
        world, wiki = small_world
        other = generate_world(WorldConfig(seed=12, n_people=20))
        other_wiki = build_wiki(other)
        path = str(tmp_path / "corpus.rprocrp")
        write_corpus(wiki, path, aliases=world.aliases)
        with CorpusReader(path) as reader:
            assert not reader.matches(other_wiki, other.aliases)


class TestOpenCorpusCache:
    def test_same_file_returns_same_reader(self, small_world, tmp_path):
        world, wiki = small_world
        path = str(tmp_path / "corpus.rprocrp")
        write_corpus(wiki, path, aliases=world.aliases)
        assert open_corpus(path) is open_corpus(path)

    def test_rewritten_file_invalidates_cached_reader(
        self, small_world, tmp_path
    ):
        world, wiki = small_world
        path = str(tmp_path / "corpus.rprocrp")
        write_corpus(wiki, path, aliases=world.aliases)
        first = open_corpus(path)
        # Rewriting swaps the inode via os.replace; the stale reader must
        # not be served for the new file.
        other_wiki = build_wiki(generate_world(WorldConfig(seed=12, n_people=10)))
        write_corpus(other_wiki, path)
        second = open_corpus(path)
        assert second is not first
        assert len(second) == len(other_wiki.pages)
        # The stale reader still works against its pinned old content.
        assert len(first) == len(wiki.pages)


class TestBuilderTransport:
    def test_file_and_memory_transports_agree_byte_for_byte(self, small_world):
        from repro.determinism import canonical_kb_lines
        from repro.pipeline import BuildConfig, KnowledgeBaseBuilder

        world, wiki = small_world
        lines = {}
        for transport in ("memory", "file"):
            config = BuildConfig(
                workers=2, backend="thread", corpus_transport=transport
            )
            kb, __ = KnowledgeBaseBuilder(
                wiki, aliases=world.aliases, config=config
            ).build()
            lines[transport] = canonical_kb_lines(kb)
        assert lines["memory"] == lines["file"]

    def test_explicit_corpus_file_is_materialized_and_reused(
        self, small_world, tmp_path
    ):
        from repro.pipeline import BuildConfig, KnowledgeBaseBuilder

        world, wiki = small_world
        path = str(tmp_path / "corpus.rprocrp")
        config = BuildConfig(
            workers=2, backend="thread",
            corpus_transport="file", corpus_file=path,
        )
        KnowledgeBaseBuilder(wiki, aliases=world.aliases, config=config).build()
        assert os.path.exists(path)
        stamp = os.stat(path).st_mtime_ns
        KnowledgeBaseBuilder(wiki, aliases=world.aliases, config=config).build()
        assert os.stat(path).st_mtime_ns == stamp  # reused, not rewritten

    def test_unknown_transport_rejected(self, small_world):
        from repro.pipeline import BuildConfig, KnowledgeBaseBuilder

        world, wiki = small_world
        config = BuildConfig(corpus_transport="carrier-pigeon")
        with pytest.raises(ValueError):
            KnowledgeBaseBuilder(
                wiki, aliases=world.aliases, config=config
            ).build()
