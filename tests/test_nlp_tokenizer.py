"""Tests for repro.nlp.tokenizer and repro.nlp.sentences."""

from hypothesis import given, settings, strategies as st

from repro.nlp import sentence_texts, split_sentences, tokenize


class TestTokenizer:
    def test_words_and_punctuation(self):
        tokens = tokenize("Hello, world!")
        assert [t.text for t in tokens] == ["Hello", ",", "world", "!"]

    def test_offsets_match_source(self):
        text = "Viktor Adler founded Nimbus Systems in 1976."
        for token in tokenize(text):
            assert text[token.start:token.end] == token.text

    def test_numbers_with_separators(self):
        tokens = tokenize("population 3,768,000 in 2014")
        assert "3,768,000" in [t.text for t in tokens]

    def test_hyphenated_words(self):
        assert "best-known" in [t.text for t in tokenize("the best-known writer")]

    def test_apostrophes(self):
        tokens = [t.text for t in tokenize("Adler's house")]
        assert tokens[0] == "Adler's"

    def test_flags(self):
        word, comma, number = tokenize("Ab , 12")
        assert word.is_word and word.is_capitalized and not word.is_number
        assert not comma.is_word
        assert number.is_number

    def test_empty(self):
        assert tokenize("") == []

    @settings(max_examples=60, deadline=None)
    @given(st.text(max_size=80))
    def test_offsets_always_consistent(self, text):
        previous_end = -1
        for token in tokenize(text):
            assert text[token.start:token.end] == token.text
            assert token.start >= previous_end
            previous_end = token.end


class TestSentenceSplitter:
    def test_basic_split(self):
        texts = sentence_texts("One sentence. Another one! A third?")
        assert texts == ["One sentence.", "Another one!", "A third?"]

    def test_initials_protected(self):
        texts = sentence_texts("G. Weikum wrote it. F. Suchanek agreed.")
        assert len(texts) == 2
        assert texts[0].startswith("G. Weikum")

    def test_abbreviations_protected(self):
        texts = sentence_texts("Dr. Smith arrived. He sat down.")
        assert len(texts) == 2

    def test_no_trailing_punctuation(self):
        texts = sentence_texts("An unfinished thought")
        assert texts == ["An unfinished thought"]

    def test_spans_cover_text(self):
        text = "First here. Second there."
        for start, end in split_sentences(text):
            assert text[start:end].strip() == text[start:end]

    def test_empty(self):
        assert split_sentences("") == []
