"""Tests for extraction.consistency (MaxSat) and extraction.deepdive (MLN)."""

import pytest

from repro.corpus import CorpusConfig, synthesize
from repro.corpus.document import corpus_gold_facts
from repro.extraction import (
    Candidate,
    ConsistencyReasoner,
    DeepDivePipeline,
    PatternExtractor,
    candidates_to_store,
    corpus_occurrences,
    resolver_from_aliases,
)
from repro.eval import precision_recall
from repro.kb import Entity, Taxonomy, TripleStore
from repro.world import schema as ws


@pytest.fixture(scope="module")
def taxonomy(world):
    return Taxonomy(world.store)


@pytest.fixture(scope="module")
def noisy_candidates(world):
    """Pattern extraction over a corpus with injected false statements."""
    documents = synthesize(
        world,
        CorpusConfig(seed=13, mentions_per_fact=1.5, p_false=0.25, p_short_alias=0.05),
    )
    resolver = resolver_from_aliases(world.aliases)
    sentences = [s.text for d in documents for s in d.sentences]
    occurrences = corpus_occurrences(sentences, resolver)
    candidates = PatternExtractor().extract(occurrences)
    gold = {
        key for key in corpus_gold_facts(documents)
        if isinstance(key[2], Entity)
    }
    return candidates, gold


class TestConsistencyReasoner:
    def test_cleaning_lifts_precision(self, taxonomy, noisy_candidates, world):
        candidates, gold = noisy_candidates
        raw_store = candidates_to_store(candidates)

        def precision(store):
            facts = [t for t in store]
            correct = sum(
                1 for t in facts
                if world.facts.contains_fact(t.subject, t.predicate, t.object)
            )
            return correct / len(facts)

        reasoner = ConsistencyReasoner(taxonomy)
        cleaned, report = reasoner.clean(raw_store)
        assert report.rejected > 0
        assert precision(cleaned) > precision(raw_store)

    def test_small_recall_cost(self, taxonomy, noisy_candidates, gold=None):
        candidates, gold = noisy_candidates
        raw_store = candidates_to_store(candidates)
        cleaned, __ = ConsistencyReasoner(taxonomy).clean(raw_store)
        raw_prf = precision_recall({t.spo() for t in raw_store}, gold)
        clean_prf = precision_recall({t.spo() for t in cleaned}, gold)
        assert clean_prf.recall > raw_prf.recall * 0.85

    def test_constraint_ablation_counts(self, taxonomy, noisy_candidates):
        candidates, __ = noisy_candidates
        store = candidates_to_store(candidates)
        full = ConsistencyReasoner(taxonomy)
        __, full_report = full.clean(store)
        no_functional = ConsistencyReasoner(taxonomy, use_functionality=False)
        __, nf_report = no_functional.clean(store)
        assert full_report.functional_clauses > 0
        assert nf_report.functional_clauses == 0
        assert nf_report.rejected <= full_report.rejected

    def test_type_constraint_kills_mistyped_fact(self, taxonomy, world):
        person = world.people[0]
        company = world.companies[0]
        bad = Candidate(person, ws.BORN_IN, company, 0.9, "test")
        store = candidates_to_store([bad])
        cleaned, report = ConsistencyReasoner(taxonomy).clean(store)
        assert len(cleaned) == 0
        assert report.type_clauses == 1

    def test_functional_conflict_keeps_stronger(self, taxonomy, world):
        person = world.people[0]
        true_city = world.facts.one_object(person, ws.BORN_IN)
        other_city = next(c for c in world.cities if c != true_city)
        store = candidates_to_store(
            [
                Candidate(person, ws.BORN_IN, true_city, 0.9, "a"),
                Candidate(person, ws.BORN_IN, other_city, 0.4, "b"),
            ]
        )
        cleaned, __ = ConsistencyReasoner(taxonomy).clean(store)
        assert cleaned.contains_fact(person, ws.BORN_IN, true_city)
        assert not cleaned.contains_fact(person, ws.BORN_IN, other_city)


class TestDeepDive:
    def test_marginals_favor_repeated_facts(self, taxonomy, world):
        person = world.people[0]
        city = world.facts.one_object(person, ws.BORN_IN)
        repeated = [
            Candidate(person, ws.BORN_IN, city, 0.7, "a", "s1"),
            Candidate(person, ws.BORN_IN, city, 0.7, "b", "s2"),
        ]
        lonely_city = next(c for c in world.cities if c != city)
        lonely = [Candidate(world.people[1], ws.BORN_IN, lonely_city, 0.55, "a")]
        pipeline = DeepDivePipeline(taxonomy)
        __, marginals, __ = pipeline.infer(
            repeated + lonely, iterations=600, burn_in=100, seed=0
        )
        assert marginals[repeated[0].key()] > marginals[lonely[0].key()]

    def test_functional_exclusion_suppresses_conflict(self, taxonomy, world):
        person = world.people[0]
        city_a = world.cities[0]
        city_b = world.cities[1]
        pipeline = DeepDivePipeline(taxonomy)
        accepted, marginals, stats = pipeline.infer(
            [
                Candidate(person, ws.BORN_IN, city_a, 0.9, "a"),
                Candidate(person, ws.BORN_IN, city_b, 0.6, "b"),
            ],
            iterations=800,
            burn_in=100,
            seed=0,
        )
        assert stats.exclusion_factors == 1
        assert marginals[(person, ws.BORN_IN, city_a)] > marginals[
            (person, ws.BORN_IN, city_b)
        ]

    def test_rule_propagates_located_in(self, taxonomy, world):
        city = world.cities[0]
        country = world.facts.one_object(city, ws.LOCATED_IN)
        pipeline = DeepDivePipeline(taxonomy)
        __, marginals, __ = pipeline.infer(
            [
                Candidate(city, ws.CAPITAL_OF, country, 0.9, "a"),
                Candidate(city, ws.LOCATED_IN, country, 0.5, "b"),
            ],
            iterations=800,
            burn_in=100,
            seed=0,
        )
        # The capitalOf -> locatedIn rule lifts the weak locatedIn candidate.
        assert marginals[(city, ws.LOCATED_IN, country)] > 0.6

    def test_empty_input(self, taxonomy):
        pipeline = DeepDivePipeline(taxonomy)
        accepted, marginals, stats = pipeline.infer([])
        assert len(accepted) == 0
        assert marginals == {}
