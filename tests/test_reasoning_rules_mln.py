"""Tests for repro.reasoning.rules and repro.reasoning.mln."""

import pytest

from repro.kb import Entity, Relation, Triple, TripleStore
from repro.reasoning import (
    Atom,
    MarkovLogicNetwork,
    Rule,
    apply_rules,
    confidence_to_weight,
    ground_rules,
)

CAPITAL = Relation("r:capitalOf")
LOCATED = Relation("r:locatedIn")
PARIS, FRANCE, BERLIN, GERMANY = (
    Entity("w:paris"), Entity("w:france"), Entity("w:berlin"), Entity("w:germany"),
)

CAP_RULE = Rule(
    body=(Atom(CAPITAL, "x", "y"),),
    head=Atom(LOCATED, "x", "y"),
    weight=2.0,
)


@pytest.fixture
def store():
    return TripleStore(
        [
            Triple(PARIS, CAPITAL, FRANCE),
            Triple(BERLIN, CAPITAL, GERMANY),
            Triple(PARIS, LOCATED, FRANCE),
        ]
    )


class TestRules:
    def test_head_variable_must_be_bound(self):
        with pytest.raises(ValueError):
            Rule(body=(Atom(CAPITAL, "x", "y"),), head=Atom(LOCATED, "x", "z"))

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            Rule(body=(), head=Atom(LOCATED, "x", "y"))

    def test_grounding(self, store):
        grounded = ground_rules([CAP_RULE], store)
        assert len(grounded) == 2
        heads = {g.head for g in grounded}
        assert (PARIS, LOCATED, FRANCE) in heads
        assert (BERLIN, LOCATED, GERMANY) in heads

    def test_grounding_with_constant(self, store):
        rule = Rule(
            body=(Atom(CAPITAL, "x", FRANCE),),
            head=Atom(LOCATED, "x", FRANCE),
        )
        grounded = ground_rules([rule], store)
        assert len(grounded) == 1
        assert grounded[0].head[0] == PARIS

    def test_two_atom_body(self, store):
        rule = Rule(
            body=(Atom(CAPITAL, "x", "y"), Atom(LOCATED, "x", "y")),
            head=Atom(LOCATED, "x", "y"),
        )
        grounded = ground_rules([rule], store)
        assert len(grounded) == 1  # only Paris satisfies both atoms

    def test_apply_rules_forward_chains(self, store):
        derived = apply_rules([CAP_RULE], store)
        assert derived.contains_fact(BERLIN, LOCATED, GERMANY)
        # Already-known facts are not re-derived.
        assert not derived.contains_fact(PARIS, LOCATED, FRANCE)

    def test_apply_rules_reaches_fixpoint(self):
        r = Relation("r:chain")
        a, b, c = Entity("w:a"), Entity("w:b"), Entity("w:c")
        store = TripleStore([Triple(a, r, b), Triple(b, r, c)])
        transitive = Rule(
            body=(Atom(r, "x", "y"), Atom(r, "y", "z")),
            head=Atom(r, "x", "z"),
        )
        derived = apply_rules([transitive], store)
        assert derived.contains_fact(a, r, c)


class TestMLN:
    def test_rule_raises_head_marginal(self, store):
        mln = MarkovLogicNetwork(rules=[CAP_RULE])
        priors = {
            (BERLIN, CAPITAL, GERMANY): 2.0,
            (BERLIN, LOCATED, GERMANY): 0.0,
        }
        evidence = TripleStore([Triple(BERLIN, CAPITAL, GERMANY)])
        marginals = mln.marginals(
            evidence, priors=priors, iterations=2000, burn_in=200, seed=0
        )
        assert marginals[(BERLIN, LOCATED, GERMANY)] > 0.6

    def test_exclusion_factor(self):
        mln = MarkovLogicNetwork(exclusion_weight=6.0)
        key_a = ("a",)
        key_b = ("b",)
        marginals = mln.marginals(
            TripleStore(),
            priors={key_a: 2.0, key_b: 1.0},
            exclusions=[(key_a, key_b)],
            iterations=2000,
            burn_in=200,
            seed=0,
        )
        assert marginals[key_a] > marginals[key_b]

    def test_empty_graph(self):
        mln = MarkovLogicNetwork()
        assert mln.marginals(TripleStore()) == {}


class TestConfidenceToWeight:
    def test_monotone(self):
        assert confidence_to_weight(0.9) > confidence_to_weight(0.6) > 0

    def test_half_is_zero(self):
        assert confidence_to_weight(0.5) == pytest.approx(0.0)

    def test_clamped(self):
        assert confidence_to_weight(1.0) == confidence_to_weight(0.95)
