"""Scenario engine: registry, determinism, knob movement, and quality.

The contract under test is three-layered:

* **registry** — every shipped profile is a pinned-seed
  :class:`~repro.world.scenarios.ScenarioSpec` with its own seed block,
  and the injector specs validate their parameters;
* **determinism** — building the same profile twice yields the same
  bundle fingerprint, and the KB built from a scenario is byte-identical
  across the serial, thread, and process execution backends;
* **knobs and quality** — each stress profile measurably moves its
  target axis relative to ``baseline``, and the quality harness scores
  every profile above its pinned floor (with the burst profile's
  delta-ingest leg byte-identical to the one-shot build).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.determinism import canonical_kb_text
from repro.eval.scenarios import (
    QUALITY_FLOORS,
    ScenarioScore,
    check_floors,
    evaluate_matrix,
)
from repro.eval.metrics import PRF
from repro.pipeline import BuildConfig, KnowledgeBaseBuilder
from repro.world.scenarios import (
    SCENARIOS,
    DriftSpec,
    NoiseSpec,
    build_scenario,
)

#: Execution backends the byte-identity matrix covers.
BACKENDS = {
    "thread2": {"workers": 2, "backend": "thread"},
    "process2": {"workers": 2, "backend": "process"},
}


@pytest.fixture(scope="module")
def bundles():
    return {name: build_scenario(name) for name in SCENARIOS}


@pytest.fixture(scope="module")
def knobs(bundles):
    return {name: bundle.knobs() for name, bundle in bundles.items()}


def _build_kb(bundle, **overrides):
    config = BuildConfig(**overrides)
    kb, __ = KnowledgeBaseBuilder(
        bundle.wiki, aliases=bundle.world.aliases, config=config
    ).build()
    return kb


@pytest.fixture(scope="module")
def serial_kbs(bundles):
    return {
        name: canonical_kb_text(_build_kb(bundle))
        for name, bundle in bundles.items()
    }


@pytest.fixture(scope="module")
def scores():
    return evaluate_matrix()


class TestRegistry:
    def test_at_least_six_profiles(self):
        assert len(SCENARIOS) >= 6
        assert set(SCENARIOS) >= {
            "baseline",
            "burst_social",
            "adversarial_noise",
            "heavy_ambiguity",
            "temporal_drift",
            "multilingual_skew",
        }

    def test_every_profile_has_its_own_seed_block(self):
        blocks = {
            (spec.world.seed, spec.wiki.seed, spec.corpus.seed)
            for spec in SCENARIOS.values()
        }
        assert len(blocks) == len(SCENARIOS)
        seeds = [
            seed for block in blocks for seed in block
        ]
        assert len(seeds) == len(set(seeds))

    def test_registry_keys_match_spec_names(self):
        assert all(spec.name == name for name, spec in SCENARIOS.items())

    def test_every_profile_has_a_quality_floor(self):
        assert set(QUALITY_FLOORS) == set(SCENARIOS)

    def test_specs_are_frozen(self):
        spec = SCENARIOS["baseline"]
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.name = "renamed"

    def test_unknown_profile_raises_with_known_names(self):
        with pytest.raises(KeyError, match="unknown scenario 'nope'"):
            build_scenario("nope")
        with pytest.raises(KeyError, match="baseline"):
            build_scenario("nope")

    @pytest.mark.parametrize("p_false", [-0.1, 1.5])
    def test_noise_spec_validates_probabilities(self, p_false):
        with pytest.raises(ValueError, match="p_false"):
            NoiseSpec(p_false=p_false)

    def test_drift_spec_validates(self):
        with pytest.raises(ValueError, match="fraction"):
            DriftSpec(fraction=1.5)
        with pytest.raises(ValueError, match="extra_spans"):
            DriftSpec(extra_spans=0)


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_fingerprint_stable_across_builds(self, bundles, name):
        rebuilt = build_scenario(name)
        assert rebuilt.fingerprint() == bundles[name].fingerprint()
        assert rebuilt.gold_fact_keys() == bundles[name].gold_fact_keys()

    def test_fingerprints_distinct_across_profiles(self, bundles):
        prints = {b.fingerprint() for b in bundles.values()}
        assert len(prints) == len(bundles)

    @pytest.mark.parametrize("label", sorted(BACKENDS))
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_kb_byte_identical_across_backends(
        self, bundles, serial_kbs, name, label
    ):
        kb = _build_kb(bundles[name], **BACKENDS[label])
        assert canonical_kb_text(kb) == serial_kbs[name]


class TestKnobs:
    def test_burst_ratio(self, knobs):
        assert knobs["burst_social"]["burst_ratio"] >= 10.0
        assert knobs["baseline"]["burst_ratio"] < 5.0

    def test_false_sentence_rate(self, knobs):
        assert (
            knobs["adversarial_noise"]["false_sentence_rate"]
            > knobs["baseline"]["false_sentence_rate"] + 0.1
        )

    def test_surname_ambiguity(self, knobs):
        assert (
            knobs["heavy_ambiguity"]["surname_ambiguity_degree"]
            > knobs["baseline"]["surname_ambiguity_degree"] + 1.0
        )
        assert (
            knobs["heavy_ambiguity"]["alias_collision_rate"]
            > knobs["baseline"]["alias_collision_rate"]
        )

    def test_drift_pairs(self, knobs):
        assert knobs["temporal_drift"]["drift_pairs"] >= 10
        assert knobs["baseline"]["drift_pairs"] == 0

    def test_interlanguage_spread(self, knobs):
        assert (
            knobs["multilingual_skew"]["interlanguage_spread"]
            > knobs["baseline"]["interlanguage_spread"] + 0.3
        )

    def test_burst_scenario_keeps_prefold_seed_corpus(self, bundles):
        bundle = bundles["burst_social"]
        assert bundle.base_wiki is not None
        assert bundle.changed_pages
        for page in bundle.changed_pages:
            base = bundle.base_wiki.pages[page.title]
            assert len(page.document.sentences) > len(base.document.sentences)

    def test_noise_scenario_reports_injected_sentences(self, bundles):
        assert bundles["adversarial_noise"].injected_false > 0
        assert bundles["baseline"].injected_false == 0


class TestQuality:
    def test_all_profiles_above_their_floors(self, scores):
        assert [s.name for s in scores] == list(SCENARIOS)
        assert check_floors(scores) == []

    def test_reasoning_win_on_adversarial_noise(self, scores):
        adversarial = next(
            s for s in scores if s.name == "adversarial_noise"
        )
        # The whole point of the scenario: extraction precision is dragged
        # down by the injected conflicts, and MaxSat pulls it back up.
        assert adversarial.extraction.precision < 0.9
        assert adversarial.kb.precision > adversarial.extraction.precision

    def test_burst_delta_ingest_byte_identical(self, scores):
        burst = next(s for s in scores if s.name == "burst_social")
        assert burst.incremental_identical is True
        assert burst.ingest_pages > 0

    def test_telemetry_is_greppable(self, scores):
        for score in scores:
            line = score.telemetry()
            assert line.startswith(f"scenario: name={score.name} ")
            assert " kb_f1=" in line and " extraction_f1=" in line

    def test_check_floors_flags_low_quality(self):
        bad = ScenarioScore(name="baseline", kb=PRF(0.5, 0.5, 0.5))
        violations = check_floors([bad])
        assert any("kb_f1" in v and "below floor" in v for v in violations)

    def test_check_floors_flags_diverged_incremental(self):
        diverged = ScenarioScore(
            name="burst_social",
            extraction=PRF(1.0, 1.0, 1.0),
            kb=PRF(1.0, 1.0, 1.0),
            incremental_identical=False,
        )
        assert any(
            "diverged" in v for v in check_floors([diverged])
        )

    def test_check_floors_ignores_unknown_profiles(self):
        custom = ScenarioScore(name="my_custom_profile")
        assert check_floors([custom]) == []
