"""Tests for repro.serving: engine correctness, cache accounting, and the
writer-vs-readers concurrency contract."""

import json
import threading

import pytest

from repro import obs
from repro.kb import Entity, Pattern, Query, Relation, Triple, TripleStore, Var
from repro.kb.rdfio import term_to_text
from repro.serving import (
    MISS,
    BadRequest,
    QueryEngine,
    VersionedLRUCache,
    canonical_triple_key,
    parse_patterns,
    parse_slot,
    parse_term,
)

BORN_IN = Relation("rel:bornIn")
LOCATED_IN = Relation("rel:locatedIn")
GERMANY = Entity("world:Germany")


def make_store() -> TripleStore:
    triples = []
    for i in range(6):
        person = Entity(f"world:P{i}")
        city = Entity(f"world:C{i % 3}")
        triples.append(Triple(person, BORN_IN, city, confidence=0.5 + 0.08 * i))
    for c in range(3):
        triples.append(
            Triple(Entity(f"world:C{c}"), LOCATED_IN, GERMANY, confidence=0.9)
        )
    return TripleStore(triples)


@pytest.fixture
def store():
    return make_store()


@pytest.fixture
def engine(store):
    return QueryEngine(store)


def dumps(payload):
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class TestLookup:
    def test_matches_store_match_byte_equal(self, engine, store):
        payload = engine.lookup(predicate=BORN_IN)
        expected = sorted(store.match(None, BORN_IN, None), key=canonical_triple_key)
        assert payload["count"] == len(expected) == 6
        assert [t["s"] for t in payload["triples"]] == [
            term_to_text(t.subject) for t in expected
        ]
        assert dumps(payload) == dumps(
            {
                "kb_epoch": store.epoch,
                "kb_version": store.version,
                "count": len(expected),
                "triples": [
                    {
                        "s": term_to_text(t.subject),
                        "p": term_to_text(t.predicate),
                        "o": term_to_text(t.object),
                        "confidence": t.confidence,
                        "source": t.source,
                        "scope": None if t.scope is None else str(t.scope),
                    }
                    for t in expected
                ],
            }
        )

    def test_point_lookup_and_empty(self, engine):
        hit = engine.lookup(Entity("world:P0"), BORN_IN, Entity("world:C0"))
        assert hit["count"] == 1
        miss = engine.lookup(Entity("world:Nobody"), None, None)
        assert miss["count"] == 0 and miss["triples"] == []

    def test_cold_and_warm_are_byte_identical(self, engine):
        cold = dumps(engine.lookup(predicate=LOCATED_IN))
        warm = dumps(engine.lookup(predicate=LOCATED_IN))
        assert cold == warm


class TestQueryEndpoint:
    PATTERNS = [
        Pattern(Var("x"), BORN_IN, Var("c")),
        Pattern(Var("c"), LOCATED_IN, GERMANY),
    ]

    def test_byte_equal_to_direct_query_run(self, engine, store):
        payload = engine.query(self.PATTERNS)
        direct = Query(self.PATTERNS).run(store)
        expected = [
            {name: term_to_text(value) for name, value in binding.items()}
            for binding in direct
        ]
        assert dumps(payload["bindings"]) == dumps(expected)
        assert payload["count"] == len(direct) == 6
        assert payload["vars"] == ["c", "x"]

    def test_modifiers_match_direct_run(self, engine, store):
        payload = engine.query(
            self.PATTERNS, select=["x"], distinct=True, order_by="x", limit=4
        )
        direct = Query(
            self.PATTERNS, select=["x"], distinct=True, order_by="x", limit=4
        ).run(store)
        assert dumps(payload["bindings"]) == dumps(
            [{n: term_to_text(v) for n, v in b.items()} for b in direct]
        )

    def test_select_unknown_variable_rejected(self, engine):
        with pytest.raises(BadRequest):
            engine.query(self.PATTERNS, select=["nope"])

    def test_order_by_unknown_variable_rejected(self, engine):
        with pytest.raises(BadRequest):
            engine.query(self.PATTERNS, order_by="nope")

    def test_empty_patterns_rejected(self, engine):
        with pytest.raises(BadRequest):
            engine.query([])

    def test_negative_limit_rejected(self, engine):
        with pytest.raises(BadRequest):
            engine.query(self.PATTERNS, limit=-1)


class TestTopK:
    def test_ranked_by_confidence(self, engine):
        payload = engine.topk(3, predicate=BORN_IN)
        confs = [t["confidence"] for t in payload["results"]]
        assert confs == sorted(confs, reverse=True)
        assert payload["count"] == 3 and len(payload["results"]) == 3

    def test_tie_break_is_canonical_key(self):
        # Four equal-confidence facts: rank order must be the canonical
        # (s, p, o) text order, whatever the insertion order was.
        triples = [
            Triple(Entity(f"world:P{i}"), BORN_IN, Entity("world:C0"), 0.7)
            for i in (3, 1, 2, 0)
        ]
        engine = QueryEngine(TripleStore(triples))
        payload = engine.topk(4, predicate=BORN_IN)
        assert [t["s"] for t in payload["results"]] == [
            "<world:P0>", "<world:P1>", "<world:P2>", "<world:P3>"
        ]
        # The cut at k is the same prefix.
        assert engine.topk(2, predicate=BORN_IN)["results"] == payload["results"][:2]

    def test_k_larger_than_matches(self, engine):
        payload = engine.topk(100, predicate=LOCATED_IN)
        assert payload["count"] == 3

    def test_bad_k_rejected(self, engine):
        with pytest.raises(BadRequest):
            engine.topk(0, predicate=BORN_IN)


class TestCacheAccounting:
    def test_miss_then_hit(self, engine):
        engine.lookup(predicate=BORN_IN)
        stats = engine.cache.stats()
        assert (stats["misses"], stats["hits"]) == (1, 0)
        engine.lookup(predicate=BORN_IN)
        stats = engine.cache.stats()
        assert (stats["misses"], stats["hits"]) == (1, 1)
        assert stats["hit_rate"] == 0.5

    def test_distinct_requests_are_distinct_entries(self, engine):
        engine.lookup(predicate=BORN_IN)
        engine.lookup(predicate=LOCATED_IN)
        engine.topk(2, predicate=BORN_IN)
        assert len(engine.cache) == 3
        assert engine.cache.stats()["hits"] == 0

    def test_lru_eviction(self, store):
        engine = QueryEngine(store, cache_size=2)
        engine.lookup(predicate=BORN_IN)        # entry A
        engine.lookup(predicate=LOCATED_IN)     # entry B
        engine.lookup(predicate=BORN_IN)        # refresh A
        engine.topk(1, predicate=BORN_IN)       # entry C evicts B (LRU)
        assert engine.cache.stats()["evictions"] == 1
        engine.lookup(predicate=BORN_IN)        # still cached
        assert engine.cache.stats()["hits"] == 2
        engine.lookup(predicate=LOCATED_IN)     # was evicted: a miss
        assert engine.cache.stats()["hits"] == 2

    def test_capacity_must_be_positive(self, store):
        with pytest.raises(ValueError):
            QueryEngine(store, cache_size=0)

    def test_raw_cache_miss_sentinel(self):
        cache = VersionedLRUCache(capacity=4)
        assert cache.get("k", "e0", 0) is MISS
        cache.put("k", "e0", 0, {"x": 1})
        assert cache.get("k", "e0", 0) == {"x": 1}
        assert cache.get("k", "e0", 1) is MISS  # version moved on: stale drop
        assert cache.stats()["stale_drops"] == 1
        cache.put("k", "e0", 1, {"x": 2})
        # Same version, different store identity: also a stale drop.
        assert cache.get("k", "e1", 1) is MISS
        assert cache.stats()["stale_drops"] == 2


class TestVersionInvalidation:
    def test_add_invalidates_and_result_reflects_store(self, engine):
        before = engine.lookup(predicate=BORN_IN)
        engine.add(Triple(Entity("world:P9"), BORN_IN, Entity("world:C0"), 0.99))
        after = engine.lookup(predicate=BORN_IN)
        assert after["kb_version"] > before["kb_version"]
        assert after["count"] == before["count"] + 1
        assert engine.cache.stats()["stale_drops"] == 1

    def test_remove_invalidates(self, engine):
        engine.topk(2, predicate=LOCATED_IN)
        engine.remove(Triple(Entity("world:C0"), LOCATED_IN, GERMANY))
        payload = engine.topk(2, predicate=LOCATED_IN)
        assert payload["count"] == 2
        assert "<world:C0>" not in [t["s"] for t in payload["results"]]
        assert engine.cache.stats()["stale_drops"] == 1

    def test_noop_mutation_keeps_cache_warm(self, engine):
        engine.lookup(predicate=BORN_IN)
        # Duplicate with no higher confidence: no state change, no bump.
        engine.add(Triple(Entity("world:P0"), BORN_IN, Entity("world:C0"), 0.1))
        engine.lookup(predicate=BORN_IN)
        assert engine.cache.stats()["hits"] == 1

    def test_unrelated_queries_recompute_at_new_version(self, engine):
        engine.lookup(predicate=BORN_IN)
        engine.add(Triple(Entity("world:C9"), LOCATED_IN, GERMANY, 0.5))
        payload = engine.lookup(predicate=BORN_IN)
        # Same triples, new version tag: still a recompute, not a stale hit.
        assert payload["kb_version"] == engine.store.version
        assert engine.cache.stats()["hits"] == 0


class TestWireParsing:
    def test_bare_identifiers(self):
        assert parse_term("world:A") == Entity("world:A")
        assert parse_term("rel:bornIn", "p") == Relation("rel:bornIn")

    def test_rdfio_syntax(self):
        assert parse_term("<world:A>") == Entity("world:A")
        assert parse_term("<<rel:x>>", "p") == Relation("rel:x")
        literal = parse_term('"Wien"@de', "o")
        assert literal.value == "Wien" and literal.lang == "de"

    def test_slots(self):
        assert parse_slot("?x") == Var("x")
        assert parse_slot("world:A") == Entity("world:A")

    def test_bad_inputs(self):
        with pytest.raises(BadRequest):
            parse_term("")
        with pytest.raises(BadRequest):
            parse_slot("?")
        with pytest.raises(BadRequest):
            parse_term('"unterminated')
        with pytest.raises(BadRequest):
            parse_patterns([["?x", "rel:p"]])
        with pytest.raises(BadRequest):
            parse_patterns("not a list")
        with pytest.raises(BadRequest):
            parse_patterns([])


class TestObsIntegration:
    def test_counters_and_latency_histograms(self, engine):
        obs.reset()
        obs.enable()
        try:
            engine.lookup(predicate=BORN_IN)
            engine.lookup(predicate=BORN_IN)
            engine.topk(2, predicate=BORN_IN)
            counters = obs.core.counters()
            histograms = obs.core.histograms()
        finally:
            obs.disable()
            obs.reset()
        assert counters["serve.request"] == 3
        assert counters["serve.request.lookup"] == 2
        assert counters["serve.cache.hit"] == 1
        assert counters["serve.cache.miss"] == 2
        assert histograms["serve.request.latency"].count == 3
        assert histograms["serve.request.latency.lookup"].count == 2
        assert histograms["serve.request.latency"].p99 >= 0.0

    def test_metrics_payload_always_on(self, engine):
        engine.lookup(predicate=BORN_IN)
        engine.lookup(predicate=BORN_IN)
        metrics = engine.metrics()
        assert metrics["cache"]["hits"] == 1
        endpoint = metrics["endpoints"]["lookup"]
        assert endpoint["requests"] == 2
        for field in ("count", "mean", "p50", "p95", "p99", "max"):
            assert field in endpoint["latency_ms"]


class TestConcurrencyStress:
    """One writer mutating the store while 8 readers hammer the engine.

    Invariants checked per response: the reported ``kb_version`` is >= the
    store version observed when the request started (no stale reads), and
    a conjunctive join over an atomically-added triple *pair* binds either
    both variables or yields nothing (no torn bindings).
    """

    READERS = 8
    WRITES = 150
    READS_PER_READER = 250
    SEED = 1306

    def test_writer_vs_readers(self):
        store = make_store()
        engine = QueryEngine(store, cache_size=256)
        country = Entity("world:Atlantis")
        errors: list[BaseException] = []
        stop = threading.Event()

        def writer():
            try:
                for i in range(self.WRITES):
                    person = Entity(f"world:N{i}")
                    city = Entity(f"world:NC{i}")
                    # One atomic batch: readers must never see the person
                    # edge without the city edge.
                    engine.add_all(
                        [
                            Triple(person, BORN_IN, city, confidence=0.8),
                            Triple(city, LOCATED_IN, country, confidence=0.9),
                        ]
                    )
                    if i % 10 == 0:
                        engine.remove(Triple(person, BORN_IN, city, 0.8))
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)
            finally:
                stop.set()

        def reader(reader_id: int):
            import random

            rng = random.Random(self.SEED + reader_id)
            try:
                for _ in range(self.READS_PER_READER):
                    started_at = engine.store.version
                    choice = rng.random()
                    if choice < 0.4:
                        i = rng.randrange(self.WRITES)
                        payload = engine.query(
                            [
                                Pattern(Entity(f"world:N{i}"), BORN_IN, Var("c")),
                                Pattern(Var("c"), LOCATED_IN, Var("k")),
                            ]
                        )
                        assert payload["count"] in (0, 1)
                        for binding in payload["bindings"]:
                            # No torn joins: both variables bound, and the
                            # country edge the writer added in the same
                            # atomic batch is the one joined.
                            assert set(binding) == {"c", "k"}
                            assert binding["k"] == "<world:Atlantis>"
                    elif choice < 0.7:
                        payload = engine.lookup(predicate=LOCATED_IN)
                        assert payload["count"] >= 3
                    else:
                        payload = engine.topk(5, predicate=BORN_IN)
                        assert payload["count"] >= 5
                    assert payload["kb_version"] >= started_at
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=writer, name="stress-writer")]
        threads += [
            threading.Thread(target=reader, args=(i,), name=f"stress-reader-{i}")
            for i in range(self.READERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not any(thread.is_alive() for thread in threads)
        assert not errors, errors
        assert stop.is_set()
        # The cache survived the churn with sane accounting.
        stats = engine.cache.stats()
        assert stats["hits"] + stats["misses"] == sum(
            endpoint["requests"] for endpoint in engine.metrics()["endpoints"].values()
        )
        # Final state is consistent: every remaining person edge joins.
        final = engine.query(
            [
                Pattern(Var("x"), BORN_IN, Var("c")),
                Pattern(Var("c"), LOCATED_IN, country),
            ]
        )
        assert final["count"] == self.WRITES - (self.WRITES + 9) // 10


class TestNegativeCaching:
    def test_empty_answer_is_cached_and_counted(self, engine):
        nobody = Entity("world:Nobody")
        first = engine.lookup(subject=nobody)
        assert first["count"] == 0
        stats = engine.cache.stats()
        assert stats["negative_entries"] == 1
        assert stats["negative_hits"] == 0
        second = engine.lookup(subject=nobody)
        assert second == first
        stats = engine.cache.stats()
        assert stats["negative_hits"] == 1
        assert stats["hits"] == 1

    def test_positive_entries_not_counted_negative(self, engine):
        engine.lookup(predicate=BORN_IN)
        engine.lookup(predicate=BORN_IN)
        stats = engine.cache.stats()
        assert stats["negative_entries"] == 0
        assert stats["negative_hits"] == 0
        assert stats["hits"] == 1

    def test_negative_entry_invalidated_by_write(self, engine):
        person = Entity("world:NewPerson")
        assert engine.lookup(subject=person)["count"] == 0
        engine.add(Triple(person, BORN_IN, Entity("world:C0"), confidence=0.7))
        after = engine.lookup(subject=person)
        assert after["count"] == 1
        stats = engine.cache.stats()
        # The stale negative entry was dropped, never served.
        assert stats["negative_hits"] == 0
        assert stats["stale_drops"] >= 1

    def test_raw_cache_negative_flag(self):
        cache = VersionedLRUCache(4)
        cache.put("k", "e", 1, {"count": 0}, negative=True)
        cache.put("p", "e", 1, {"count": 3})
        assert cache.get("k", "e", 1) == {"count": 0}
        assert cache.get("p", "e", 1) == {"count": 3}
        stats = cache.stats()
        assert stats["negative_entries"] == 1
        assert stats["negative_hits"] == 1
        assert stats["hits"] == 2

    def test_negative_hits_mirrored_to_obs(self, engine):
        obs.reset()
        obs.enable()
        try:
            nobody = Entity("world:Nobody")
            engine.lookup(subject=nobody)
            engine.lookup(subject=nobody)
            from repro.obs import core as obs_core

            counters = obs_core.counters()
            assert counters.get("serve.cache.negative_hit") == 1
        finally:
            obs.disable()
            obs.reset()
