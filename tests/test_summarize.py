"""Tests for entity-aware extractive summarization."""

import pytest

from repro.analytics import EntitySummarizer
from repro.extraction import resolver_from_aliases
from repro.world import schema as ws


@pytest.fixture(scope="module")
def summarizer(world):
    return EntitySummarizer(world.store, resolver_from_aliases(world.aliases))


class TestScoring:
    def test_target_mention_required_for_base_score(self, world, summarizer):
        person = world.people[0]
        name = world.name[person]
        on_topic = summarizer.score_sentence(f"{name} won a prize.", person)
        off_topic = summarizer.score_sentence("The weather was nice.", person)
        assert on_topic.score > off_topic.score
        assert on_topic.mentions_target
        assert not off_topic.mentions_target

    def test_related_entities_boost(self, world, summarizer):
        person = world.people[0]
        name = world.name[person]
        city = world.facts.one_object(person, ws.BORN_IN)
        unrelated = next(
            c for c in world.cities
            if c != city and not world.facts.contains_fact(person, ws.DIED_IN, c)
        )
        related_sentence = summarizer.score_sentence(
            f"{name} was born in {world.name[city]}.", person
        )
        unrelated_sentence = summarizer.score_sentence(
            f"{name} was photographed near {world.name[unrelated]}.", person
        )
        assert related_sentence.score > unrelated_sentence.score


class TestSummaries:
    def test_summary_prefers_fact_sentences(self, world, documents, summarizer):
        target = next(d.topic for d in documents if d.topic in world.people)
        document = next(d for d in documents if d.topic == target)
        distractors = [
            "The weather was nice that day.",
            "Nothing happened for a while.",
        ]
        pool = [s.text for s in document.sentences] + distractors
        summary = summarizer.summarize(pool, target, max_sentences=3)
        assert summary
        assert all(s.mentions_target or s.score > 0 for s in summary)
        texts = [s.text for s in summary]
        assert not set(texts) & set(distractors)

    def test_max_sentences_respected(self, world, documents, summarizer):
        document = next(d for d in documents if len(d.sentences) >= 4)
        summary = summarizer.summarize(
            [s.text for s in document.sentences], document.topic, max_sentences=2
        )
        assert len(summary) <= 2

    def test_redundancy_penalized(self, world, summarizer):
        person = world.people[0]
        name = world.name[person]
        city = world.facts.one_object(person, ws.BORN_IN)
        repeated = f"{name} was born in {world.name[city]}."
        other = f"{name} studied at a university."
        summary = summarizer.summarize(
            [repeated, repeated + " ", other], person, max_sentences=2
        )
        texts = [s.text.strip() for s in summary]
        assert len(set(texts)) == 2

    def test_empty_input(self, world, summarizer):
        assert summarizer.summarize([], world.people[0]) == []
