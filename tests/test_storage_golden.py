"""The golden tiny-world KB: a committed segment directory every run
must reproduce byte-for-byte.

The fixture in ``tests/golden/tiny_world_kb/`` was produced by building
the seed-7, 6-person world through the full pipeline and emitting
segments.  Because the segment format is byte-pinned and the build is
deterministic, rebuilding today — on any machine, any PYTHONHASHSEED,
any worker count — must yield the identical files.  A diff here means
either the build pipeline or the storage format drifted; bump the
fixture only for an *intentional* format or pipeline change, and say so
in the commit.
"""

import json
import os

import pytest

from repro.corpus import build_wiki
from repro.kb import TripleStore, diff_segment_dirs, open_snapshot, write_segments
from repro.pipeline import BuildConfig, KnowledgeBaseBuilder
from repro.serving import QueryEngine
from repro.world import WorldConfig, generate_world

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden", "tiny_world_kb")


@pytest.fixture(scope="module")
def rebuilt_kb():
    world = generate_world(WorldConfig(seed=7, n_people=6))
    wiki = build_wiki(world)
    kb, _report = KnowledgeBaseBuilder(
        wiki, aliases=world.aliases, config=BuildConfig()
    ).build()
    return kb


class TestGoldenBytes:
    def test_fixture_is_present_and_well_formed(self):
        with open(os.path.join(GOLDEN_DIR, "MANIFEST.json")) as fh:
            manifest = json.load(fh)
        assert manifest["triples"] > 0
        assert len(manifest["epoch"]) == 32
        assert len(manifest["segments"]) == 1

    def test_rebuild_reproduces_golden_bytes(self, rebuilt_kb, tmp_path):
        fresh = str(tmp_path / "rebuilt")
        write_segments(rebuilt_kb, fresh)
        differences = diff_segment_dirs(GOLDEN_DIR, fresh)
        assert differences == [], "\n".join(
            ["storage format or build pipeline drifted from the golden KB:"]
            + differences
        )

    def test_golden_epoch_matches_rebuilt_store(self, rebuilt_kb):
        with open(os.path.join(GOLDEN_DIR, "MANIFEST.json")) as fh:
            manifest = json.load(fh)
        assert manifest["epoch"] == rebuilt_kb.epoch
        assert manifest["triples"] == len(rebuilt_kb)


class TestGoldenServes:
    def test_snapshot_of_golden_equals_in_memory(self, rebuilt_kb):
        """Cold (snapshot, straight off the golden files) and warm
        (in-memory store) engines must answer byte-identically."""
        with open_snapshot(GOLDEN_DIR) as snap:
            cold = QueryEngine(snap)
            warm = QueryEngine(TripleStore(snap))
            assert snap.epoch == rebuilt_kb.epoch

            def dumps(payload):
                return json.dumps(payload, sort_keys=True, separators=(",", ":"))

            predicates = sorted(snap.predicates(), key=repr)
            assert predicates
            for predicate in predicates:
                assert dumps(cold.lookup(predicate=predicate)) == dumps(
                    warm.lookup(predicate=predicate)
                )
                assert dumps(cold.topk(5, predicate=predicate)) == dumps(
                    warm.topk(5, predicate=predicate)
                )
            subjects = sorted({t.subject for t in snap}, key=repr)[:25]
            for subject in subjects:
                assert dumps(cold.lookup(subject=subject)) == dumps(
                    warm.lookup(subject=subject)
                )
            assert dumps(cold.healthz()) == dumps(warm.healthz())
