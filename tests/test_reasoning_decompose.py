"""Tests for repro.reasoning.decompose (component-parallel MaxSat).

The contract under test: ``solve_decomposed`` reaches the same
``(hard_violations, soft_cost)`` key as the monolithic solver (the optimum
of a disconnected instance is the union of component optima), decides
constraint-free variables closed-form without search, and produces
byte-identical results for every backend and worker count.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.kb import Entity, Relation, Taxonomy, Triple, TripleStore
from repro.determinism import canonical_kb_text
from repro.extraction.consistency import ConsistencyReasoner
from repro.reasoning import (
    HARD,
    ComponentCache,
    WeightedMaxSat,
    decompose,
    solve_decomposed,
)


def _two_component_problem() -> WeightedMaxSat:
    problem = WeightedMaxSat()
    # Component A: x0/x1 mutually exclusive.
    problem.add_soft_unit("x0", True, 0.9)
    problem.add_soft_unit("x1", True, 0.4)
    problem.add_hard([("x0", False), ("x1", False)])
    # Component B: a three-variable chain.
    problem.add_soft_unit("y0", True, 0.8)
    problem.add_soft_unit("y1", True, 0.7)
    problem.add_soft_unit("y2", True, 0.6)
    problem.add_hard([("y0", False), ("y1", False)])
    problem.add_hard([("y1", False), ("y2", False)])
    # Unconstrained variables: closed-form accepts.
    problem.add_soft_unit("z0", True, 1.0)
    problem.add_soft_unit("z1", True, 0.2)
    return problem


class TestDecompose:
    def test_components_and_trivial_variables(self):
        decomposition = decompose(_two_component_problem())
        assert decomposition.trivial == {"z0": True, "z1": True}
        assert [c.variables for c in decomposition.components] == [
            ["x0", "x1"],
            ["y0", "y1", "y2"],
        ]
        assert decomposition.largest_component == 3
        assert decomposition.component_sizes() == [3, 2]

    def test_every_clause_lands_in_exactly_one_component(self):
        problem = _two_component_problem()
        decomposition = decompose(problem)
        covered = sorted(
            index
            for component in decomposition.components
            for index in component.clause_indexes
        )
        # All clauses except the two trivial variables' own soft units.
        trivial_units = {
            index
            for index, clause in enumerate(problem.clauses)
            if len(clause.literals) == 1
            and clause.literals[0][0] in decomposition.trivial
        }
        expected = [
            index
            for index in range(len(problem.clauses))
            if index not in trivial_units
        ]
        assert covered == expected

    def test_negative_polarity_units_are_trivial_too(self):
        problem = WeightedMaxSat()
        problem.add_soft_unit("keep", True, 1.0)
        problem.add_soft_unit("drop", False, 1.0)
        decomposition = decompose(problem)
        assert decomposition.trivial == {"keep": True, "drop": False}
        assert decomposition.components == []

    def test_conflicting_polarity_units_are_not_trivial(self):
        problem = WeightedMaxSat()
        problem.add_soft_unit("torn", True, 0.8)
        problem.add_soft_unit("torn", False, 0.3)
        decomposition = decompose(problem)
        assert decomposition.trivial == {}
        assert len(decomposition.components) == 1

    def test_component_seed_is_content_derived(self):
        first = decompose(_two_component_problem())
        second = decompose(_two_component_problem())
        assert [c.seed(7) for c in first.components] == [
            c.seed(7) for c in second.components
        ]
        # Different base seeds give different component seeds.
        assert first.components[0].seed(7) != first.components[0].seed(8)

    def test_flip_budget_scales_with_size_and_caps_at_max(self):
        decomposition = decompose(_two_component_problem())
        small, large = decomposition.components
        assert small.flip_budget(20_000) <= large.flip_budget(20_000)
        assert small.flip_budget(100) == 100


class TestSolveDecomposed:
    def test_trivial_only_instance_needs_no_search(self):
        problem = WeightedMaxSat()
        for i in range(40):
            problem.add_soft_unit(f"v{i}", True, 0.5)
        result = solve_decomposed(problem)
        assert result.flips == 0
        assert result.soft_cost == 0.0
        assert len(result.true_variables()) == 40

    def test_matches_monolithic_key_on_fixed_instance(self):
        problem = _two_component_problem()
        decomposed = solve_decomposed(problem, seed=3)
        monolithic = _two_component_problem().solve(seed=3)
        assert decomposed.hard_violations == monolithic.hard_violations
        assert decomposed.soft_cost == pytest.approx(monolithic.soft_cost)

    def test_empty_instance(self):
        result = solve_decomposed(WeightedMaxSat())
        assert result.assignment == {}
        assert result.soft_cost == 0.0
        assert result.hard_violations == 0

    def test_component_cache_replays_outcomes_bit_for_bit(self):
        uncached = solve_decomposed(_two_component_problem(), seed=3)
        cache = ComponentCache()
        cold = solve_decomposed(_two_component_problem(), seed=3, cache=cache)
        assert cache.hits == 0 and cache.misses == 2
        warm = solve_decomposed(_two_component_problem(), seed=3, cache=cache)
        # Second pass: every non-trivial component replays from the cache.
        assert cache.hits == 2 and cache.misses == 2
        for result in (cold, warm):
            assert result.assignment == uncached.assignment
            assert repr(result.soft_cost) == repr(uncached.soft_cost)
            assert result.hard_violations == uncached.hard_violations

    def test_component_cache_entries_round_trip_through_json(self):
        import json as _json

        cache = ComponentCache()
        solve_decomposed(_two_component_problem(), seed=3, cache=cache)
        revived = ComponentCache(
            _json.loads(_json.dumps(cache.entries))
        )
        replay = solve_decomposed(
            _two_component_problem(), seed=3, cache=revived
        )
        assert revived.hits == 2 and revived.misses == 0
        baseline = solve_decomposed(_two_component_problem(), seed=3)
        assert replay.assignment == baseline.assignment
        assert repr(replay.soft_cost) == repr(baseline.soft_cost)

    def test_component_cache_ignores_mismatched_content(self):
        cache = ComponentCache()
        solve_decomposed(_two_component_problem(), seed=3, cache=cache)
        # A different seed changes every work order: all misses again.
        solve_decomposed(_two_component_problem(), seed=4, cache=cache)
        assert cache.hits == 0
        assert cache.misses == 4

    @pytest.mark.parametrize("backend,workers", [
        ("serial", 0), ("thread", 2), ("process", 2),
    ])
    def test_backends_byte_identical(self, backend, workers):
        problem = _two_component_problem()
        reference = solve_decomposed(problem, seed=11)
        other = solve_decomposed(
            _two_component_problem(), seed=11, backend=backend, workers=workers
        )
        assert other.assignment == reference.assignment
        assert other.soft_cost == reference.soft_cost
        assert other.hard_violations == reference.hard_violations
        assert other.flips == reference.flips

    def test_steal_schedule_byte_identical(self):
        problem = _two_component_problem()
        reference = solve_decomposed(problem, seed=11)
        for backend, workers in (("thread", 2), ("process", 2)):
            stolen = solve_decomposed(
                _two_component_problem(), seed=11,
                backend=backend, workers=workers, schedule="steal",
            )
            assert stolen.assignment == reference.assignment
            assert stolen.soft_cost == reference.soft_cost
            assert stolen.hard_violations == reference.hard_violations
            assert stolen.flips == reference.flips

    def test_worker_count_does_not_change_result(self):
        problem = _two_component_problem()
        reference = solve_decomposed(problem, seed=5)
        for workers in (2, 3, 4):
            again = solve_decomposed(
                _two_component_problem(), seed=5,
                backend="thread", workers=workers,
            )
            assert again.assignment == reference.assignment
            assert again.soft_cost == reference.soft_cost


# ------------------------------------------------- randomized equivalence

def _random_problem(weights: list[float], exclusions: list[tuple[int, int]]):
    problem = WeightedMaxSat()
    names = [f"v{i}" for i in range(len(weights))]
    for name, weight in zip(names, weights):
        problem.add_soft_unit(name, True, round(weight, 3))
    for i, j in exclusions:
        a, b = names[i % len(names)], names[j % len(names)]
        if a != b:
            problem.add_hard([(a, False), (b, False)])
    return problem


def _brute_force_key(problem: WeightedMaxSat):
    variables = problem.variables
    best = None
    for mask in range(1 << len(variables)):
        assignment = {
            v: bool(mask >> i & 1) for i, v in enumerate(variables)
        }
        hard = 0
        soft = 0.0
        for clause in problem.clauses:
            if clause.satisfied(assignment):
                continue
            if clause.weight == HARD:
                hard += 1
            else:
                soft += clause.weight
        key = (hard, soft)
        if best is None or key < best:
            best = key
    return best


class TestDecomposedVsMonolithicProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.floats(0.1, 1.0), min_size=2, max_size=8),
        st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)),
            max_size=6,
        ),
    )
    def test_same_key_as_monolithic_and_optimum(self, weights, exclusions):
        monolithic = _random_problem(weights, exclusions).solve(
            seed=1, restarts=4, max_flips=4000
        )
        decomposed = solve_decomposed(
            _random_problem(weights, exclusions),
            seed=1, restarts=4, max_flips=4000,
        )
        optimum = _brute_force_key(_random_problem(weights, exclusions))
        assert decomposed.hard_violations == optimum[0]
        assert decomposed.soft_cost == pytest.approx(optimum[1], abs=1e-6)
        assert decomposed.hard_violations == monolithic.hard_violations
        assert decomposed.soft_cost == pytest.approx(
            monolithic.soft_cost, abs=1e-6
        )

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.floats(0.1, 1.0), min_size=2, max_size=8),
        st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)),
            max_size=5,
        ),
    )
    def test_components_agree_with_exact_solver(self, weights, exclusions):
        problem = _random_problem(weights, exclusions)
        decomposition = decompose(problem)
        clauses = problem.clauses
        for component in decomposition.components:
            sub = WeightedMaxSat()
            for index in component.clause_indexes:
                sub.add_clause(clauses[index].literals, clauses[index].weight)
            local = sub.solve(
                seed=component.seed(1), restarts=4, max_flips=4000
            )
            exact = sub.solve_exact()
            assert local.hard_violations == exact.hard_violations
            assert local.soft_cost == pytest.approx(
                exact.soft_cost, abs=1e-6
            )


# --------------------------------------------- cleaned-KB byte equality

def _noisy_candidates(world) -> TripleStore:
    """World facts plus injected functional conflicts and disjoint pairs."""
    store = TripleStore()
    for index, triple in enumerate(world.facts):
        if isinstance(triple.object, Entity) and index % 2 == 0:
            store.add(
                Triple(
                    triple.subject, triple.predicate, triple.object,
                    confidence=0.9, source="test",
                )
            )
    facts = [t for t in store]
    for triple in facts[: len(facts) // 4]:
        # A second object for the same (s, p): conflicts on functional
        # relations, more components everywhere else.
        store.add(
            Triple(
                triple.subject, triple.predicate, Entity("world:Decoy"),
                confidence=0.4, source="test",
            )
        )
    return store


class TestCleanedKbCrossBackend:
    @pytest.fixture(scope="class")
    def cleaned_reference(self, world):
        reasoner = ConsistencyReasoner(Taxonomy(world.store))
        return reasoner.clean(_noisy_candidates(world))

    @pytest.mark.parametrize("backend,workers", [
        ("serial", 0), ("thread", 2), ("process", 2),
    ])
    def test_cleaned_kb_byte_identical(
        self, world, cleaned_reference, backend, workers
    ):
        reference_kb, reference_report = cleaned_reference
        with ConsistencyReasoner(
            Taxonomy(world.store), workers=workers, backend=backend
        ) as reasoner:
            cleaned, report = reasoner.clean(_noisy_candidates(world))
        assert canonical_kb_text(cleaned) == canonical_kb_text(reference_kb)
        assert report == reference_report

    @pytest.mark.parametrize("backend,workers", [
        ("thread", 2), ("process", 2),
    ])
    def test_steal_schedule_cleaned_kb_byte_identical(
        self, world, cleaned_reference, backend, workers
    ):
        reference_kb, reference_report = cleaned_reference
        with ConsistencyReasoner(
            Taxonomy(world.store), workers=workers, backend=backend,
            schedule="steal",
        ) as reasoner:
            cleaned, report = reasoner.clean(_noisy_candidates(world))
        assert canonical_kb_text(cleaned) == canonical_kb_text(reference_kb)
        assert report == reference_report

    def test_persistent_pool_reused_across_cleans(self, world):
        with ConsistencyReasoner(
            Taxonomy(world.store), workers=2, backend="thread"
        ) as reasoner:
            first, __ = reasoner.clean(_noisy_candidates(world))
            second, __ = reasoner.clean(_noisy_candidates(world))
            assert canonical_kb_text(first) == canonical_kb_text(second)
            # One pool spinup serves every clean() of the reasoner's life.
            assert reasoner.backend.spinups == 1
            assert reasoner.backend.reuses >= 1

    def test_report_carries_decomposition_shape(self, cleaned_reference):
        __, report = cleaned_reference
        assert report.components > 0
        assert report.largest_component >= 2
        assert report.trivial_vars > 0
        assert (
            report.accepted + report.rejected == report.candidates
        )
