"""Tests for repro.ned (candidates, context, coherence, graph, pipeline)."""

import pytest

from repro.corpus import CorpusConfig, build_wiki, synthesize
from repro.kb import Entity
from repro.ned import (
    CoherenceIndex,
    DisambiguationGraph,
    EntityContextIndex,
    MentionTask,
    NEDSystem,
    dictionary_from_wiki,
    evaluate_document,
)
from repro.world import WorldConfig, generate_world


@pytest.fixture(scope="module")
def ambiguous_world():
    return generate_world(WorldConfig(seed=1, ambiguity=0.8, n_people=150))


@pytest.fixture(scope="module")
def ambiguous_wiki(ambiguous_world):
    return build_wiki(ambiguous_world)


@pytest.fixture(scope="module")
def ned_system(ambiguous_world, ambiguous_wiki):
    return NEDSystem(ambiguous_wiki, aliases=ambiguous_world.aliases)


@pytest.fixture(scope="module")
def eval_documents(ambiguous_world):
    documents = synthesize(
        ambiguous_world,
        CorpusConfig(seed=9, p_short_alias=0.6, mentions_per_fact=1.2, document_size=3),
    )
    return [d for d in documents if d.topic is not None][:150]


class TestCandidateDictionary:
    def test_titles_resolve(self, ambiguous_world, ned_system):
        person = ambiguous_world.people[0]
        name = ambiguous_world.name[person]
        candidates = ned_system.dictionary.candidates(name)
        assert candidates and candidates[0].entity == person

    def test_aliases_are_ambiguous(self, ambiguous_world, ned_system):
        index = ambiguous_world.alias_index()
        shared = next(
            name for name, entities in index.items() if len(entities) > 2
        )
        assert ned_system.dictionary.ambiguity(shared) >= 2

    def test_priors_sum_to_one(self, ned_system):
        for name in list(ned_system.dictionary.names())[:50]:
            candidates = ned_system.dictionary.candidates(name)
            assert sum(c.prior for c in candidates) == pytest.approx(1.0)

    def test_unknown_name_empty(self, ned_system):
        assert ned_system.dictionary.candidates("Zorblatt Unknown") == []

    def test_popularity_orders_candidates(self, ambiguous_wiki):
        dictionary = dictionary_from_wiki(ambiguous_wiki)
        for name in list(dictionary.names())[:50]:
            priors = [c.prior for c in dictionary.candidates(name)]
            assert priors == sorted(priors, reverse=True)


class TestContextIndex:
    def test_own_page_text_scores_high(self, ambiguous_world, ambiguous_wiki):
        index = EntityContextIndex(ambiguous_wiki)
        person = ambiguous_world.people[0]
        page = ambiguous_wiki.page_of(person)
        context = index.context_of(page.document.text)
        own = index.similarity(person, context)
        other = index.similarity(ambiguous_world.people[1], context)
        assert own > other

    def test_empty_context(self, ambiguous_world, ambiguous_wiki):
        index = EntityContextIndex(ambiguous_wiki)
        assert index.similarity(ambiguous_world.people[0], []) == 0.0


class TestCoherence:
    def test_linked_entities_related(self, ambiguous_world, ambiguous_wiki):
        from repro.world import schema as ws

        index = CoherenceIndex(ambiguous_wiki)
        person = ambiguous_world.people[0]
        city = ambiguous_world.facts.one_object(person, ws.BORN_IN)
        assert index.relatedness(person, city) > 0.3

    def test_self_relatedness_is_one(self, ambiguous_world, ambiguous_wiki):
        index = CoherenceIndex(ambiguous_wiki)
        person = ambiguous_world.people[0]
        assert index.relatedness(person, person) == 1.0

    def test_symmetry(self, ambiguous_world, ambiguous_wiki):
        index = CoherenceIndex(ambiguous_wiki)
        a, b = ambiguous_world.people[0], ambiguous_world.cities[0]
        assert index.relatedness(a, b) == pytest.approx(index.relatedness(b, a))

    def test_average_coherence(self, ambiguous_world, ambiguous_wiki):
        from repro.world import schema as ws

        index = CoherenceIndex(ambiguous_wiki)
        person = ambiguous_world.people[0]
        city = ambiguous_world.facts.one_object(person, ws.BORN_IN)
        assert index.average_coherence(person, [city]) > 0.0
        assert index.average_coherence(person, [person]) == 0.0


class TestGraphSolver:
    def test_coherence_overrides_weak_local(self):
        a1, a2 = Entity("w:right_a"), Entity("w:wrong_a")
        b1 = Entity("w:b")
        graph = DisambiguationGraph(coherence_weight=2.0)
        # The wrong candidate is locally a bit stronger...
        graph.add_mention("m1", "A", [(a1, 0.4), (a2, 0.5)])
        graph.add_mention("m2", "B", [(b1, 0.9)])
        # ...but only the right one coheres with the unambiguous mention.
        graph.add_entity_edge(a1, b1, 0.8)
        result = graph.solve()
        assert result["m1"] == a1
        assert result["m2"] == b1

    def test_local_wins_without_edges(self):
        a1, a2 = Entity("w:x"), Entity("w:y")
        graph = DisambiguationGraph()
        graph.add_mention("m", "A", [(a1, 0.7), (a2, 0.3)])
        assert graph.solve()["m"] == a1

    def test_empty_candidates(self):
        graph = DisambiguationGraph()
        graph.add_mention("m", "A", [])
        assert graph.solve()["m"] is None


class TestPipeline:
    def test_method_ordering(self, ned_system, eval_documents):
        scores = {}
        for method in ("prior", "local", "graph"):
            correct = total = 0
            for document in eval_documents:
                c, t = evaluate_document(ned_system, document, method)
                correct += c
                total += t
            scores[method] = correct / total
        assert scores["local"] > scores["prior"]
        assert scores["graph"] >= scores["local"] - 0.01
        assert scores["graph"] > scores["prior"]

    def test_unknown_method_rejected(self, ned_system):
        with pytest.raises(ValueError):
            ned_system.disambiguate([MentionTask("m", "X")], "", method="magic")

    def test_unknown_surface_yields_none(self, ned_system):
        result = ned_system.disambiguate(
            [MentionTask("m", "Totally Unknown Name")], "context", method="local"
        )
        assert result["m"] is None

    def test_graph_beats_prior_on_ambiguous_couples(
        self, ambiguous_world, ned_system
    ):
        # Refer to married couples by surname only; coherence should link the
        # right pair more often than the popularity prior does.
        from repro.world import schema as ws

        def couple_hits(method: str) -> int:
            hits = 0
            for triple in ambiguous_world.facts.match(predicate=ws.MARRIED_TO):
                a, b = triple.subject, triple.object
                if a.id > b.id:
                    continue  # each couple once
                surname_a = ambiguous_world.aliases[a][2]
                surname_b = ambiguous_world.aliases[b][2]
                result = ned_system.disambiguate(
                    [MentionTask("a", surname_a), MentionTask("b", surname_b)],
                    f"{surname_a} married {surname_b}.",
                    method=method,
                )
                if result["a"] == a and result["b"] == b:
                    hits += 1
            return hits

        assert couple_hits("graph") >= couple_hits("prior")
