"""Tests for PRA link prediction, Knowledge-Vault fusion, and NELL."""

import random

import pytest

from repro.corpus import CorpusConfig, synthesize
from repro.extraction import (
    Candidate,
    DistantSupervisionExtractor,
    KnowledgeFusion,
    NeverEndingLearner,
    PatternExtractor,
    corpus_occurrences,
    cumulative_precision,
    resolver_from_aliases,
)
from repro.kb import Entity, Taxonomy, TripleStore
from repro.reasoning import KnowledgeGraph, PathRankingModel
from repro.world import schema as ws


class TestKnowledgeGraph:
    def test_neighbors_bidirectional(self, world):
        graph = KnowledgeGraph(world.facts)
        person = world.people[0]
        city = world.facts.one_object(person, ws.BORN_IN)
        forward = [(r, d, n) for r, d, n in graph.neighbors(person)]
        assert (ws.BORN_IN.id, ">", city) in forward
        backward = [(r, d, n) for r, d, n in graph.neighbors(city)]
        assert (ws.BORN_IN.id, "<", person) in backward

    def test_paths_exclude_scored_edge(self, world):
        graph = KnowledgeGraph(world.facts)
        city = world.cities[0]
        country = world.facts.one_object(city, ws.LOCATED_IN)
        with_edge = graph.paths_between(city, country, max_length=1)
        without = graph.paths_between(
            city, country, max_length=1,
            exclude=(ws.LOCATED_IN.id, city, country),
        )
        direct = ((ws.LOCATED_IN.id, ">"),)
        assert direct in with_edge
        assert direct not in without

    def test_path_length_bound(self, world):
        graph = KnowledgeGraph(world.facts)
        person = world.people[0]
        country = world.facts.one_object(person, ws.CITIZEN_OF)
        for path in graph.paths_between(person, country, max_length=2):
            assert len(path) <= 2


class TestPathRanking:
    @pytest.fixture(scope="class")
    def trained(self, world):
        graph = KnowledgeGraph(world.facts)
        model = PathRankingModel(ws.LOCATED_IN)
        model.train(graph, world.facts, seed=0)
        return graph, model

    def test_true_facts_outscore_false(self, world, trained):
        graph, model = trained
        hits = 0
        for city in world.cities[:10]:
            country = world.facts.one_object(city, ws.LOCATED_IN)
            wrong = next(c for c in world.countries if c != country)
            if model.score(graph, city, country) > model.score(graph, city, wrong):
                hits += 1
        assert hits >= 8

    def test_top_features_meaningful(self, trained):
        __, model = trained
        features = model.top_features(5)
        assert features
        # The born-in / citizen-of composition is the classic signal.
        path_strings = [str(p) for p, __ in features]
        assert any("citizenOf" in s or "capitalOf" in s for s in path_strings)

    def test_untrained_raises(self, world):
        graph = KnowledgeGraph(world.facts)
        model = PathRankingModel(ws.LOCATED_IN)
        with pytest.raises(RuntimeError):
            model.score(graph, world.cities[0], world.countries[0])

    def test_too_few_facts_rejected(self, world):
        graph = KnowledgeGraph(world.facts)
        model = PathRankingModel(ws.SUCCESSOR_OF)
        tiny = TripleStore(list(world.facts.match(predicate=ws.SUCCESSOR_OF))[:1])
        with pytest.raises(ValueError):
            model.train(graph, tiny)


@pytest.fixture(scope="module")
def fusion_setup(world, seed_kb):
    documents = synthesize(
        world,
        CorpusConfig(seed=44, mentions_per_fact=1.5, p_false=0.25, p_short_alias=0.1),
    )
    resolver = resolver_from_aliases(world.aliases)
    sentences = [s.text for d in documents for s in d.sentences]
    occurrences = corpus_occurrences(sentences, resolver)
    relations = [s.relation for s in ws.RELATION_SPECS]
    candidates = list(PatternExtractor().extract(occurrences))
    distant = DistantSupervisionExtractor(seed_kb, relations)
    distant.train(occurrences)
    candidates += distant.extract(occurrences)
    return candidates, documents


class TestFusion:
    def test_fuse_probabilities_ordered_by_truth(self, world, seed_kb, fusion_setup):
        candidates, __ = fusion_setup
        fusion = KnowledgeFusion(
            {"surface-patterns", "distant-supervision"}, seed_kb
        )
        fusion.train(candidates, truth=world.facts)
        fused = fusion.fuse(candidates)
        true_probs = [
            f.probability for f in fused
            if world.facts.contains_fact(f.subject, f.relation, f.object)
        ]
        false_probs = [
            f.probability for f in fused
            if not world.facts.contains_fact(f.subject, f.relation, f.object)
        ]
        assert true_probs and false_probs
        mean = lambda xs: sum(xs) / len(xs)
        assert mean(true_probs) > mean(false_probs) + 0.2

    def test_multiple_extractors_raise_probability(self, world, seed_kb, fusion_setup):
        candidates, __ = fusion_setup
        fusion = KnowledgeFusion(
            {"surface-patterns", "distant-supervision"}, seed_kb
        )
        fusion.train(candidates, truth=world.facts)
        fused = {(
            f.subject, f.relation, f.object): f for f in fusion.fuse(candidates)
        }
        multi = [f for f in fused.values() if f.extractor_count >= 2]
        single = [f for f in fused.values() if f.extractor_count == 1]
        assert multi and single

    def test_graph_prior_ablation(self, world, seed_kb, fusion_setup):
        candidates, __ = fusion_setup
        with_prior = KnowledgeFusion(
            {"surface-patterns", "distant-supervision"}, seed_kb,
            use_graph_prior=True,
        )
        without_prior = KnowledgeFusion(
            {"surface-patterns", "distant-supervision"}, seed_kb,
            use_graph_prior=False,
        )
        with_prior.train(candidates, truth=world.facts)
        without_prior.train(candidates, truth=world.facts)
        # Both must produce usable probabilities; the prior version exposes
        # PRA models for the relations it saw.
        assert with_prior.fuse(candidates)
        assert without_prior.fuse(candidates)

    def test_untrained_raises(self, seed_kb):
        fusion = KnowledgeFusion({"x"}, seed_kb)
        with pytest.raises(RuntimeError):
            fusion.fuse([])

    def test_single_label_training_rejected(self, world, seed_kb):
        person = world.people[0]
        city = world.facts.one_object(person, ws.BORN_IN)
        only_true = [Candidate(person, ws.BORN_IN, city, 0.9, "x")]
        fusion = KnowledgeFusion({"x"}, seed_kb, use_graph_prior=False)
        with pytest.raises(ValueError):
            fusion.train(only_true, truth=world.facts)

    def test_to_store_threshold(self, world, seed_kb, fusion_setup):
        candidates, __ = fusion_setup
        fusion = KnowledgeFusion(
            {"surface-patterns", "distant-supervision"}, seed_kb
        )
        fusion.train(candidates, truth=world.facts)
        fused = fusion.fuse(candidates)
        strict = fusion.to_store(fused, threshold=0.9)
        loose = fusion.to_store(fused, threshold=0.3)
        assert len(strict) < len(loose)


@pytest.fixture(scope="module")
def nell_setup(world):
    documents = synthesize(
        world,
        CorpusConfig(
            seed=45, mentions_per_fact=1.6, p_false=0.3,
            p_cross_class=0.6, p_short_alias=0.05,
        ),
    )
    resolver = resolver_from_aliases(world.aliases)
    sentences = [s.text for d in documents for s in d.sentences]
    occurrences = corpus_occurrences(sentences, resolver)
    seeds = []
    for spec in ws.RELATION_SPECS:
        seeds.extend(list(world.facts.match(predicate=spec.relation))[:4])
    return occurrences, TripleStore(seeds)


class TestNeverEndingLearner:
    def test_promotes_beyond_seeds(self, world, nell_setup):
        occurrences, seed_kb = nell_setup
        learner = NeverEndingLearner(
            [s.relation for s in ws.RELATION_SPECS],
            seed_kb,
            Taxonomy(world.store),
        )
        promoted = learner.run(occurrences, iterations=4)
        assert len(promoted) > 50
        assert learner.history
        assert all(r.promoted >= 0 for r in learner.history)

    def test_coupling_beats_uncoupled_precision(self, world, nell_setup):
        occurrences, seed_kb = nell_setup
        taxonomy = Taxonomy(world.store)

        def run(coupling):
            learner = NeverEndingLearner(
                [s.relation for s in ws.RELATION_SPECS],
                seed_kb,
                taxonomy,
                use_coupling=coupling,
            )
            promoted = learner.run(occurrences, iterations=5)
            return cumulative_precision(promoted, world.facts), learner

        coupled_precision, coupled = run(True)
        uncoupled_precision, __ = run(False)
        assert coupled_precision > uncoupled_precision
        rejected = sum(
            r.rejected_by_type + r.rejected_by_functionality
            for r in coupled.history
        )
        assert rejected > 0

    def test_seed_kb_not_mutated(self, world, nell_setup):
        occurrences, seed_kb = nell_setup
        before = len(seed_kb)
        learner = NeverEndingLearner(
            [ws.BORN_IN], seed_kb, Taxonomy(world.store)
        )
        learner.run(occurrences, iterations=2)
        assert len(seed_kb) == before

    def test_stops_when_nothing_promotes(self, world):
        seed_kb = TripleStore(list(world.facts.match(predicate=ws.BORN_IN))[:4])
        learner = NeverEndingLearner(
            [ws.BORN_IN], seed_kb, Taxonomy(world.store)
        )
        promoted = learner.run([], iterations=10)  # no occurrences at all
        assert len(promoted) == 0
        assert len(learner.history) == 1
