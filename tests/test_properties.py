"""Cross-cutting property-based tests: implementations vs brute force.

These tests pit the optimized implementations against tiny brute-force
oracles on randomly generated inputs — the strongest correctness evidence
short of proofs for the query engine, the MaxSat solver, and the parser's
structural invariants.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro.kb import Entity, Pattern, Query, Relation, Triple, TripleStore, Var
from repro.nlp import analyze
from repro.reasoning import WeightedMaxSat
from repro.reasoning.maxsat import HARD

_entities = st.integers(0, 5).map(lambda i: Entity(f"e:{i}"))
_relations = st.integers(0, 2).map(lambda i: Relation(f"r:{i}"))
_triples = st.builds(Triple, _entities, _relations, _entities)


def _brute_force_query(triples, patterns):
    """Evaluate a conjunctive query by full enumeration."""
    solutions = []

    def extend(binding, remaining):
        if not remaining:
            solutions.append(dict(binding))
            return
        pattern = remaining[0]
        for triple in triples:
            candidate = dict(binding)
            consistent = True
            for slot, value in (
                (pattern.subject, triple.subject),
                (pattern.predicate, triple.predicate),
                (pattern.object, triple.object),
            ):
                if isinstance(slot, Var):
                    if slot.name in candidate and candidate[slot.name] != value:
                        consistent = False
                        break
                    candidate[slot.name] = value
                elif slot != value:
                    consistent = False
                    break
            if consistent:
                extend(candidate, remaining[1:])

    extend({}, patterns)
    return solutions


class TestQueryVsBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(_triples, min_size=1, max_size=25),
        st.sampled_from(["svo", "chain", "star"]),
    )
    def test_join_results_match(self, triples, shape):
        store = TripleStore(triples)
        distinct = list({t.spo(): t for t in triples}.values())
        r0, r1 = Relation("r:0"), Relation("r:1")
        if shape == "svo":
            patterns = [Pattern(Var("x"), r0, Var("y"))]
        elif shape == "chain":
            patterns = [
                Pattern(Var("x"), r0, Var("y")),
                Pattern(Var("y"), r1, Var("z")),
            ]
        else:
            patterns = [
                Pattern(Var("x"), r0, Var("y")),
                Pattern(Var("x"), r1, Var("z")),
            ]
        engine_results = Query(patterns).run(store)
        brute_results = _brute_force_query(distinct, patterns)

        def canon(results):
            return sorted(
                tuple(sorted((k, str(v)) for k, v in b.items())) for b in results
            )

        assert canon(engine_results) == canon(brute_results)


def _brute_force_maxsat(clauses, variables):
    """The optimal (hard violations, soft cost) by full enumeration."""
    best = None
    for values in itertools.product((False, True), repeat=len(variables)):
        assignment = dict(zip(variables, values))
        hard = 0
        soft = 0.0
        for literals, weight in clauses:
            satisfied = any(assignment[v] == pol for v, pol in literals)
            if not satisfied:
                if weight == HARD:
                    hard += 1
                else:
                    soft += weight
        key = (hard, soft)
        if best is None or key < best:
            best = key
    return best


_literal = st.tuples(st.integers(0, 4).map(lambda i: f"v{i}"), st.booleans())
_soft_clause = st.tuples(
    st.lists(_literal, min_size=1, max_size=3, unique_by=lambda l: l[0]),
    st.floats(0.1, 2.0),
)


class TestMaxSatVsBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(_soft_clause, min_size=1, max_size=8), st.data())
    def test_solver_reaches_optimum(self, soft_clauses, data):
        problem = WeightedMaxSat()
        clause_list = []
        for literals, weight in soft_clauses:
            weight = round(weight, 3)
            problem.add_clause(literals, weight)
            clause_list.append((literals, weight))
        # Optionally add one hard exclusion clause.
        if data.draw(st.booleans()):
            hard = [("v0", False), ("v1", False)]
            problem.add_hard(hard)
            clause_list.append((hard, HARD))
        variables = problem.variables
        optimal = _brute_force_maxsat(clause_list, variables)
        result = problem.solve(seed=1, restarts=4, max_flips=4000)
        assert result.hard_violations == optimal[0]
        assert result.soft_cost <= optimal[1] + 1e-6


_sentence_texts = st.sampled_from(
    [
        "Alan Weber founded Nimbus Systems in 1976.",
        "Nimbus Systems was founded by Alan Weber.",
        "The capital of Arvandia is Corvain.",
        "In 1955, Julia Weber was born in Lorvik.",
        "Julia Weber and Marco Santos married in 1981.",
        "Mara Santos is the CEO of Orbital Corp.",
        "He praised the new Nova 3 repeatedly.",
        "Many scientists, including Alan Weber, attended the meeting.",
        "Corvain lies in Arvandia.",
        "She has worked at Helio Labs since 1988.",
    ]
)


class TestParserInvariants:
    @settings(max_examples=30, deadline=None)
    @given(_sentence_texts)
    def test_single_root_and_total_attachment(self, text):
        parse = analyze(text).parse
        roots = [i for i, h in enumerate(parse.heads) if h == -1]
        assert len(roots) == 1
        n = len(parse.heads)
        for head in parse.heads:
            assert -1 <= head < n

    @settings(max_examples=30, deadline=None)
    @given(_sentence_texts)
    def test_no_self_loops_or_cycles(self, text):
        parse = analyze(text).parse
        for i, head in enumerate(parse.heads):
            assert head != i
        # Walking up from any token terminates at the root.
        for start in range(len(parse.heads)):
            seen = set()
            node = start
            while node != -1:
                assert node not in seen
                seen.add(node)
                node = parse.heads[node]

    @settings(max_examples=30, deadline=None)
    @given(_sentence_texts, _sentence_texts)
    def test_path_symmetric_existence(self, text_a, text_b):
        parse = analyze(text_a).parse
        n = len(parse.heads)
        if n < 2:
            return
        forward = parse.path(0, n - 1, max_length=n)
        backward = parse.path(n - 1, 0, max_length=n)
        assert (forward is None) == (backward is None)


_confident_triples = st.builds(
    Triple,
    _entities,
    _relations,
    _entities,
    st.floats(0.0, 1.0).map(lambda c: round(c, 3)),
)
_operations = st.lists(
    st.tuples(st.sampled_from(["add", "remove"]), _confident_triples),
    max_size=60,
)


class TestTripleStoreInvariants:
    """After any add/remove sequence, every index agrees with ``_by_spo``."""

    @staticmethod
    def _assert_indexes_consistent(store: TripleStore) -> None:
        engine = store.engine
        keys = set(engine.keys())
        index_views = {
            "_by_s": engine._by_s,
            "_by_p": engine._by_p,
            "_by_o": engine._by_o,
            "_by_sp": engine._by_sp,
            "_by_po": engine._by_po,
        }
        # 1. Every index entry points at a live key; no empty buckets linger.
        for name, index in index_views.items():
            for bucket_key, bucket in index.items():
                assert bucket, f"{name}[{bucket_key!r}] is an empty bucket"
                assert set(bucket) <= keys, f"{name} holds dead keys"
        # 2. Every live key is present in all five indexes, in the right
        #    bucket.
        for s, p, o in keys:
            assert (s, p, o) in engine._by_s[s]
            assert (s, p, o) in engine._by_p[p]
            assert (s, p, o) in engine._by_o[o]
            assert (s, p, o) in engine._by_sp[(s, p)]
            assert (s, p, o) in engine._by_po[(p, o)]
        # 3. Index cardinalities add up: each index partitions the key set.
        for name, index in index_views.items():
            total = sum(len(bucket) for bucket in index.values())
            assert total == len(keys), f"{name} cardinality mismatch"

    @settings(max_examples=80, deadline=None)
    @given(_operations)
    def test_indexes_agree_after_any_operation_sequence(self, operations):
        store = TripleStore()
        oracle: dict[tuple, Triple] = {}
        for action, triple in operations:
            if action == "add":
                store.add(triple)
                existing = oracle.get(triple.spo())
                if existing is None or triple.confidence > existing.confidence:
                    oracle[triple.spo()] = triple
            else:
                store.remove(triple)
                oracle.pop(triple.spo(), None)
        self._assert_indexes_consistent(store)
        assert set(store.engine.keys()) == set(oracle)

    @settings(max_examples=80, deadline=None)
    @given(_operations)
    def test_higher_confidence_witness_wins(self, operations):
        store = TripleStore()
        oracle: dict[tuple, Triple] = {}
        for action, triple in operations:
            if action == "add":
                store.add(triple)
                existing = oracle.get(triple.spo())
                if existing is None or triple.confidence > existing.confidence:
                    oracle[triple.spo()] = triple
            else:
                store.remove(triple)
                oracle.pop(triple.spo(), None)
        for key, expected in oracle.items():
            stored = store.get(*key)
            assert stored is not None
            assert stored.confidence == expected.confidence

    @settings(max_examples=40, deadline=None)
    @given(st.lists(_confident_triples, max_size=40))
    def test_match_agrees_with_scan_after_load(self, triples):
        store = TripleStore(triples)
        everything = list(store)
        for s, p, o in {t.spo() for t in everything}:
            assert store.contains_fact(s, p, o)
            assert {t.spo() for t in store.match(subject=s)} == {
                t.spo() for t in everything if t.subject == s
            }
            assert {t.spo() for t in store.match(predicate=p, obj=o)} == {
                t.spo() for t in everything
                if t.predicate == p and t.object == o
            }


class TestWorldDeterminism:
    def test_same_seed_same_everything(self):
        from repro.corpus import CorpusConfig, build_wiki, synthesize
        from repro.world import WorldConfig, generate_world

        def fingerprint():
            world = generate_world(WorldConfig(seed=99, n_people=40))
            wiki = build_wiki(world)
            documents = synthesize(world, CorpusConfig(seed=98))
            return (
                sorted(str(t) for t in world.facts),
                sorted(wiki.pages),
                [s.text for d in documents for s in d.sentences],
            )

        assert fingerprint() == fingerprint()
