"""Tests for repro.analytics (sentiment, tracking, search, QA)."""

import pytest

from repro.analytics import (
    EntitySearch,
    ProductTracker,
    TemplateQA,
    classify_sentiment,
    volume_correlation,
)
from repro.corpus import SocialConfig, generate_stream
from repro.extraction import resolver_from_aliases
from repro.world import schema as ws


class TestSentiment:
    def test_positive(self):
        assert classify_sentiment("love my new Nova 3") == "pos"

    def test_negative(self):
        assert classify_sentiment("my Nova keeps overheating") == "neg"

    def test_neutral(self):
        assert classify_sentiment("just saw an ad for the Nova") == "neu"

    def test_mixed_votes(self):
        assert classify_sentiment("love it but the screen cracked and it broke") == "neg"


class TestTracking:
    @pytest.fixture(scope="class")
    def stream(self, world):
        return generate_stream(world, SocialConfig(seed=5, months=24))

    @pytest.fixture(scope="class")
    def tracker(self, world):
        return ProductTracker(world.store, world.product_family)

    def test_kb_beats_string_on_assignment(self, world, stream, tracker):
        kb_result = tracker.track(stream, "kb", start_year=stream.start_year)
        string_result = tracker.track(stream, "string", start_year=stream.start_year)
        assert kb_result.assignment_accuracy > string_result.assignment_accuracy

    def test_family_volume_exact(self, stream, tracker):
        result = tracker.track(stream, "kb", start_year=stream.start_year)
        for family in stream.families:
            assert result.volume[family] == stream.gold_volume[family]

    def test_volume_correlation_perfect(self, stream, tracker):
        result = tracker.track(stream, "kb", start_year=stream.start_year)
        for family in stream.families:
            assert volume_correlation(
                result.volume[family], stream.gold_volume[family]
            ) == pytest.approx(1.0)

    def test_sentiment_accuracy_high(self, stream, tracker):
        result = tracker.track(stream, "kb", start_year=stream.start_year)
        assert result.sentiment_accuracy > 0.9

    def test_unknown_method(self, stream, tracker):
        with pytest.raises(ValueError):
            tracker.track(stream, "magic")

    def test_correlation_validation(self):
        with pytest.raises(ValueError):
            volume_correlation([1, 2], [1])


class TestSearch:
    @pytest.fixture(scope="class")
    def search(self, world):
        return EntitySearch(world.store)

    def test_name_query_finds_entity(self, world, search):
        person = world.people[0]
        hits = search.search(world.name[person])
        assert hits and hits[0].entity == person

    def test_class_filter(self, world, search):
        city_name = world.name[world.cities[0]]
        hits = search.search(city_name, class_filter=ws.PERSON)
        assert all(
            world.primary_class.get(h.entity) in ws.OCCUPATIONS
            or h.entity in world.people
            for h in hits
        )

    def test_related_keyword_query(self, world, search):
        person = world.people[0]
        birth_city = world.facts.one_object(person, ws.BORN_IN)
        hits = search.search(world.name[birth_city], class_filter=ws.PERSON, top_k=30)
        assert person in {h.entity for h in hits}

    def test_empty_query(self, search):
        assert search.search("") == []

    def test_scores_sorted(self, world, search):
        hits = search.search(world.name[world.cities[0]])
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)


class TestQA:
    @pytest.fixture(scope="class")
    def qa(self, world):
        return TemplateQA(world.store, resolver_from_aliases(world.aliases))

    def test_born_question(self, world, qa):
        person = world.people[0]
        city = world.facts.one_object(person, ws.BORN_IN)
        answers = qa.answer(f"Where was {world.name[person]} born?")
        assert answers
        assert answers[0].text == world.name[city]

    def test_when_born(self, world, qa):
        person = world.people[0]
        year = world.facts.one_object(person, ws.BIRTH_YEAR)
        answers = qa.answer(f"When was {world.name[person]} born?")
        assert answers and answers[0].text == year.value

    def test_inverse_question(self, world, qa):
        founded = next(iter(world.facts.match(predicate=ws.FOUNDED)))
        company_name = world.name[founded.object]
        answers = qa.answer(f"Who founded {company_name}?")
        assert world.name[founded.subject] in [a.text for a in answers]

    def test_capital_question(self, world, qa):
        capital = next(iter(world.facts.match(predicate=ws.CAPITAL_OF)))
        answers = qa.answer(f"What is the capital of {world.name[capital.object]}?")
        assert answers and answers[0].text == world.name[capital.subject]

    def test_unsupported_question(self, qa):
        assert qa.answer("Why is the sky blue?") == []

    def test_unknown_entity(self, qa):
        assert qa.answer("Where was Zorblatt Unknown born?") == []

    def test_case_insensitive(self, world, qa):
        person = world.people[0]
        answers = qa.answer(f"WHERE WAS {world.name[person]} BORN?")
        assert answers

    def test_multi_answer_question(self, world, qa):
        company = None
        for c in world.companies:
            if len(list(world.facts.match(subject=c, predicate=ws.CREATED_PRODUCT))) >= 2:
                company = c
                break
        if company is None:
            pytest.skip("no multi-product company in this world")
        answers = qa.answer(f"Which products did {world.name[company]} release?")
        assert len(answers) >= 2


class TestTemporalQA:
    @pytest.fixture(scope="class")
    def qa(self, world):
        return TemplateQA(world.store, resolver_from_aliases(world.aliases))

    def test_ceo_in_year(self, world, qa):
        scoped = next(
            t for t in world.facts.match(predicate=ws.CEO_OF) if t.scope
        )
        year = scoped.scope.begin + 1 if scoped.scope.begin != scoped.scope.end else scoped.scope.begin
        company = world.name[scoped.object]
        answers = qa.answer(f"Who was the CEO of {company} in {year}?")
        assert world.name[scoped.subject] in [a.text for a in answers]

    def test_ceo_outside_scope_empty(self, world, qa):
        scoped = next(
            t for t in world.facts.match(predicate=ws.CEO_OF) if t.scope
        )
        year = scoped.scope.begin - 5
        company = world.name[scoped.object]
        answers = qa.answer(f"Who was the CEO of {company} in {year}?")
        assert world.name[scoped.subject] not in [a.text for a in answers]

    def test_married_in_year(self, world, qa):
        scoped = next(
            t for t in world.facts.match(predicate=ws.MARRIED_TO) if t.scope
        )
        year = scoped.scope.begin
        person = world.name[scoped.subject]
        answers = qa.answer(f"Who was {person} married to in {year}?")
        assert world.name[scoped.object] in [a.text for a in answers]

    def test_work_in_year(self, world, qa):
        scoped = next(
            t for t in world.facts.match(predicate=ws.WORKS_AT) if t.scope
        )
        year = scoped.scope.begin
        person = world.name[scoped.subject]
        answers = qa.answer(f"Where did {person} work in {year}?")
        assert world.name[scoped.object] in [a.text for a in answers]


class TestHybridQA:
    @pytest.fixture(scope="class")
    def hybrid(self, world, sentences):
        from repro.analytics import HybridQA
        from repro.kb import TripleStore, Triple, ns
        from repro.kb import string_literal

        # A KB that knows labels but has NO relational facts: every
        # relational question must fall back to text evidence.
        labels_only = TripleStore()
        for entity in world.all_entities():
            labels_only.add(
                Triple(entity, ns.PREF_LABEL, string_literal(world.name[entity]))
            )
        return HybridQA(labels_only, resolver_from_aliases(world.aliases), sentences)

    def test_text_fallback_answers(self, world, hybrid):
        person = world.people[0]
        city = world.facts.one_object(person, ws.BORN_IN)
        answers = hybrid.answer(f"Where was {world.name[person]} born?")
        assert answers
        assert answers[0].source == "text"
        assert answers[0].text == world.name[city]

    def test_kb_preferred_when_present(self, world, sentences):
        from repro.analytics import HybridQA

        full = HybridQA(world.store, resolver_from_aliases(world.aliases), sentences)
        person = world.people[0]
        answers = full.answer(f"Where was {world.name[person]} born?")
        assert answers and answers[0].source == "kb"

    def test_unparseable_question(self, hybrid):
        assert hybrid.answer("Why is the sky blue?") == []

    def test_text_accuracy_over_sample(self, world, hybrid):
        correct = asked = 0
        for person in world.people:
            city = world.facts.one_object(person, ws.BORN_IN)
            if city is None:
                continue
            answers = hybrid.answer(f"Where was {world.name[person]} born?")
            if not answers:
                continue
            asked += 1
            if answers[0].text == world.name[city]:
                correct += 1
        assert asked >= 10
        assert correct / asked > 0.85
