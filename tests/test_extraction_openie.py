"""Tests for repro.extraction.openie (ReVerb-style open IE)."""

import pytest

from repro.extraction import ReVerbExtractor, cluster_relation_phrases
from repro.nlp import analyze


class TestReVerbSentence:
    @pytest.fixture
    def extractor(self):
        return ReVerbExtractor(apply_lexical_constraint=False)

    def test_simple_svo(self, extractor):
        triples = extractor.extract_sentence(
            analyze("Alan Weber founded Nimbus Systems.")
        )
        assert len(triples) == 1
        triple = triples[0]
        assert triple.arg1 == "Alan Weber"
        assert triple.relation == "founded"
        assert triple.arg2 == "Nimbus Systems"
        assert triple.normalized == "found"

    def test_verb_preposition(self, extractor):
        triples = extractor.extract_sentence(
            analyze("Julia Weber was born in Lorvik.")
        )
        assert triples
        assert triples[0].normalized == "born in"
        assert triples[0].arg2 == "Lorvik"

    def test_v_w_p_pattern(self, extractor):
        triples = extractor.extract_sentence(
            analyze("Corvain is the capital of Arvandia.")
        )
        assert triples
        assert triples[0].normalized == "be capital of"
        assert triples[0].arg1 == "Corvain"
        assert triples[0].arg2 == "Arvandia"

    def test_no_arguments_no_extraction(self, extractor):
        assert extractor.extract_sentence(analyze("It rained heavily.")) == []

    def test_confidence_in_bounds(self, extractor):
        triples = extractor.extract_sentence(
            analyze("Alan Weber founded Nimbus Systems in 1976.")
        )
        assert all(0.0 < t.confidence < 1.0 for t in triples)

    def test_propn_arguments_score_higher(self, extractor):
        named = extractor.extract_sentence(
            analyze("Alan Weber founded Nimbus Systems.")
        )[0]
        generic = extractor.extract_sentence(
            analyze("The old man founded a company.")
        )[0]
        assert named.confidence > generic.confidence


class TestLexicalConstraint:
    def test_rare_phrases_filtered(self):
        sentences = [
            "Alan Weber founded Nimbus Systems.",
            "Mara Santos founded Orbital Corp.",
            "Karin Winter blorbed Vertex Labs.",
        ]
        strict = ReVerbExtractor(min_distinct_pairs=2)
        kept = strict.extract_corpus(sentences)
        normalized = {t.normalized for t in kept}
        assert "found" in normalized
        assert all("blorb" not in n for n in normalized)

    def test_yield_exceeds_closed_ie(self, sentences):
        # Open IE harvests relation phrases far beyond the fixed inventory.
        extractor = ReVerbExtractor(min_distinct_pairs=2)
        triples = extractor.extract_corpus(sentences[:500])
        phrases = {t.normalized for t in triples}
        assert len(phrases) > 15

    def test_corpus_triples_carry_sentences(self, sentences):
        extractor = ReVerbExtractor()
        for triple in extractor.extract_corpus(sentences[:100]):
            assert triple.sentence


class TestRelationClustering:
    def test_synonymous_phrases_cluster(self):
        sentences = [
            # Same argument pairs expressed two ways.
            "Alan Weber founded Nimbus Systems.",
            "Nimbus Systems was founded by Alan Weber.",
            "Mara Santos founded Orbital Corp.",
            "Orbital Corp was founded by Mara Santos.",
        ]
        extractor = ReVerbExtractor(apply_lexical_constraint=False)
        triples = extractor.extract_corpus(sentences)
        clusters = cluster_relation_phrases(triples, min_shared_pairs=1)
        assert clusters
        top = clusters[0]
        # Active and passive normalizations share no string, yet cluster...
        # only if they share arg pairs in the same order; the passive
        # reverses them, so here we simply check clustering is sane.
        assert all(isinstance(c, set) for c in clusters)

    def test_unrelated_phrases_stay_apart(self):
        sentences = [
            "Alan Weber founded Nimbus Systems.",
            "Mara Santos founded Orbital Corp.",
            "Julia Weber was born in Lorvik.",
            "Tara Winter was born in Corvain.",
        ]
        extractor = ReVerbExtractor(apply_lexical_constraint=False)
        triples = extractor.extract_corpus(sentences)
        clusters = cluster_relation_phrases(triples, min_shared_pairs=1)
        for cluster in clusters:
            assert not ({"found", "born in"} <= cluster)
