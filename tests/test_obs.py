"""Tests for the observability layer (repro.obs): spans, metrics, overhead."""

import tracemalloc

import pytest

from repro import obs
from repro.kb import Entity, Relation, Triple, TripleStore
from repro.obs.core import Histogram


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends with observability off and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestSpans:
    def test_nesting_builds_a_tree(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner.a"):
                pass
            with obs.span("inner.b"):
                with obs.span("leaf"):
                    pass
        roots = obs.take_roots()
        assert [r.name for r in roots] == ["outer"]
        outer = roots[0]
        assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]

    def test_elapsed_is_recorded_and_contains_children(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        outer = obs.take_roots()[0]
        inner = outer.children[0]
        assert outer.elapsed >= inner.elapsed >= 0.0

    def test_span_counters(self):
        obs.enable()
        with obs.span("work") as tracing:
            tracing.add("items", 3)
            tracing.add("items", 2)
            obs.annotate("annotated")
        work = obs.take_roots()[0]
        assert work.counters == {"items": 5, "annotated": 1}

    def test_sibling_spans_stay_separate_until_rendered(self):
        obs.enable()
        for __ in range(3):
            with obs.span("repeated"):
                pass
        assert len(obs.take_roots()) == 3
        merged = obs.render_trace()
        assert "repeated x3" in merged

    def test_structure_ignores_timings(self):
        obs.enable()
        with obs.span("a"):
            with obs.span("b") as tracing:
                tracing.add("n", 1)
        first = [s.structure() for s in obs.take_roots()]
        obs.reset()
        with obs.span("a"):
            with obs.span("b") as tracing:
                tracing.add("n", 1)
        second = [s.structure() for s in obs.take_roots()]
        assert first == second

    def test_exception_still_closes_span(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("outer"):
                with obs.span("failing"):
                    raise ValueError("boom")
        roots = obs.take_roots()
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["failing"]
        assert obs.current_span() is None


class TestMetrics:
    def test_counters_and_gauges(self):
        obs.enable()
        obs.count("events")
        obs.count("events", 4)
        obs.gauge("level", 0.5)
        obs.gauge("level", 0.75)
        report = obs.report_json()
        assert report["counters"] == {"events": 5}
        assert report["gauges"] == {"level": 0.75}

    def test_histogram_percentiles(self):
        h = Histogram("t")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.count == 100
        assert h.p50 == 50.0
        assert h.p95 == 95.0
        assert h.max == 100.0
        assert h.mean == pytest.approx(50.5)

    def test_histogram_edge_cases(self):
        h = Histogram("t")
        assert h.p50 == 0.0 and h.p95 == 0.0 and h.max == 0.0 and h.mean == 0.0
        h.observe(7.0)
        assert h.p50 == 7.0 and h.p95 == 7.0 and h.max == 7.0

    def test_observe_registers_histogram(self):
        obs.enable()
        obs.observe("latency", 1.0)
        obs.observe("latency", 3.0)
        digest = obs.report_json()["histograms"]["latency"]
        assert digest["count"] == 2
        assert digest["max"] == 3.0

    def test_reset_clears_everything_between_runs(self):
        obs.enable()
        with obs.span("run1"):
            obs.count("facts", 10)
            obs.observe("h", 1.0)
        obs.reset()
        assert obs.take_roots() == []
        report = obs.report_json()
        assert report["counters"] == {}
        assert report["histograms"] == {}
        assert report["spans"] == []
        # A second run records only its own telemetry.
        with obs.span("run2"):
            obs.count("facts", 3)
        report = obs.report_json()
        assert [s["name"] for s in report["spans"]] == ["run2"]
        assert report["counters"] == {"facts": 3}


class TestDisabledPath:
    def test_disabled_records_nothing(self):
        with obs.span("invisible"):
            obs.count("c", 5)
            obs.gauge("g", 1.0)
            obs.observe("h", 1.0)
            obs.annotate("a")
        assert obs.take_roots() == []
        report = obs.report_json()
        assert report["spans"] == []
        assert report["counters"] == {}
        assert report["gauges"] == {}
        assert report["histograms"] == {}

    def test_disabled_span_is_a_shared_singleton(self):
        assert obs.span("a") is obs.span("b")

    def test_store_add_allocates_nothing_in_obs(self):
        """With observability off, store.add never allocates in repro.obs."""
        triples = [
            Triple(Entity(f"e:{i}"), Relation("r:p"), Entity(f"e:{i + 1}"))
            for i in range(200)
        ]
        store = TripleStore()
        import repro.obs.core as core_module

        tracemalloc.start()
        try:
            for triple in triples:
                store.add(triple)
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        obs_allocations = snapshot.filter_traces(
            [tracemalloc.Filter(True, core_module.__file__)]
        )
        assert sum(s.size for s in obs_allocations.statistics("filename")) == 0

    def test_enable_disable_roundtrip(self):
        assert not obs.enabled()
        obs.enable()
        assert obs.enabled()
        with obs.span("visible"):
            pass
        obs.disable()
        assert not obs.enabled()
        with obs.span("invisible"):
            pass
        assert [s.name for s in obs.take_roots()] == ["visible"]


class TestRendering:
    def test_render_trace_empty(self):
        assert obs.render_trace() == "(no spans recorded)"

    def test_render_metrics_empty(self):
        assert obs.render_metrics() == "(no metrics recorded)"

    def test_render_trace_merges_and_indents(self):
        obs.enable()
        with obs.span("root"):
            for __ in range(2):
                with obs.span("child") as tracing:
                    tracing.add("n", 1)
        text = obs.render_trace()
        assert "root" in text
        assert "child x2" in text
        assert "[n=2]" in text
        assert "└─" in text

    def test_render_metrics_tables(self):
        obs.enable()
        obs.count("c.one", 2)
        obs.gauge("g.one", 1.5)
        obs.observe("h.one", 2.0)
        text = obs.render_metrics()
        assert "counter" in text and "c.one" in text
        assert "gauge" in text and "g.one" in text
        assert "histogram" in text and "h.one" in text

    def test_stage_breakdown_paths(self):
        obs.enable()
        with obs.span("build"):
            with obs.span("extract"):
                pass
            with obs.span("extract"):
                pass
        breakdown = obs.stage_breakdown()
        stages = {entry["stage"]: entry for entry in breakdown}
        assert stages["build"]["calls"] == 1
        assert stages["build/extract"]["calls"] == 2

    def test_report_json_is_serializable(self):
        import json

        obs.enable()
        with obs.span("a") as tracing:
            tracing.add("n", 1)
            obs.count("c", 1)
            obs.observe("h", 0.5)
        json.dumps(obs.report_json())


class TestInstrumentedComponents:
    def test_store_counters(self):
        obs.enable()
        store = TripleStore()
        t = Triple(Entity("e:a"), Relation("r:p"), Entity("e:b"))
        store.add(t)
        store.add(t)
        list(store.match(subject=Entity("e:a")))
        store.remove(t)
        counters = obs.report_json()["counters"]
        assert counters["kb.store.add"] == 2
        assert counters["kb.store.add.duplicate"] == 1
        assert counters["kb.store.match"] == 1
        assert counters["kb.store.remove"] == 1

    def test_match_traces_index_shape_and_bucket_size(self):
        obs.enable()
        store = TripleStore()
        s, p = Entity("e:a"), Relation("r:p")
        for i in range(3):
            store.add(Triple(s, p, Entity(f"e:o{i}")))
        with obs.span("query") as tracing:
            list(store.match(subject=s, predicate=p))          # sp composite
            list(store.match(predicate=p))                     # p single
            list(store.match(subject=s, obj=Entity("e:o0")))   # s+o filtered
            list(store.match())                                # full scan
        counters = obs.report_json()["counters"]
        assert counters["kb.store.match.shape.sp"] == 1
        assert counters["kb.store.match.shape.p"] == 1
        assert counters["kb.store.match.shape.s+o"] == 1
        assert counters["kb.store.match.shape.scan"] == 1
        # The innermost open span carries the per-query annotations.
        assert tracing.counters["store.match.sp"] == 1
        assert tracing.counters["store.match.sp.scanned"] == 3
        assert tracing.counters["store.match.p.scanned"] == 3
        assert tracing.counters["store.match.s+o.scanned"] == 1
        assert tracing.counters["store.match.scan.scanned"] == 3
        histogram = obs.report_json()["histograms"]["kb.store.match.scanned"]
        assert histogram["count"] == 4

    def test_mapreduce_publishes_into_registry(self):
        from repro.bigdata import word_count

        obs.enable()
        __, stats = word_count(["a b a", "b c"], shards=2)
        report = obs.report_json()
        counters = report["counters"]
        assert counters["mapreduce.jobs"] == 1
        assert counters["mapreduce.map_input_records"] == stats.map_input_records
        assert counters["mapreduce.shuffled_records"] == stats.shuffled_records
        assert report["histograms"]["mapreduce.shard.records"]["count"] == 2
        span_names = {entry["stage"] for entry in obs.stage_breakdown()}
        assert "mapreduce.run" in span_names
        assert "mapreduce.run/mapreduce.map" in span_names
        assert "mapreduce.run/mapreduce.reduce" in span_names

    def test_consistency_spans_and_counters(self, world):
        from repro.extraction.consistency import ConsistencyReasoner
        from repro.kb import Taxonomy

        obs.enable()
        reasoner = ConsistencyReasoner(Taxonomy(world.store))
        candidates = TripleStore(
            t for i, t in enumerate(world.facts) if i < 50
        )
        obs.reset()  # drop the counters the store construction recorded
        accepted, report = reasoner.clean(candidates)
        stages = {entry["stage"] for entry in obs.stage_breakdown()}
        assert "consistency.clean" in stages
        assert "consistency.clean/consistency.solve" in stages
        assert (
            "consistency.clean/consistency.solve/maxsat.decompose" in stages
        )
        counters = obs.report_json()["counters"]
        # Component-decomposed solving: one solve call per component, and
        # the decomposition counters account for every candidate variable.
        assert counters["maxsat.components"] == report.components
        assert counters["maxsat.trivial_vars"] == report.trivial_vars
        assert counters.get("maxsat.solve_calls", 0) == report.components
