"""Tests for repro.kb.query (the conjunctive query engine)."""

import pytest

from repro.kb import Entity, Pattern, Query, Relation, Triple, TripleStore, Var, ask

ALICE, BOB, CARLA = Entity("w:alice"), Entity("w:bob"), Entity("w:carla")
PARIS, BERLIN = Entity("w:paris"), Entity("w:berlin")
FRANCE, GERMANY = Entity("w:france"), Entity("w:germany")
BORN = Relation("w:bornIn")
LOC = Relation("w:locatedIn")
KNOWS = Relation("w:knows")


@pytest.fixture
def store():
    return TripleStore(
        [
            Triple(ALICE, BORN, PARIS),
            Triple(BOB, BORN, BERLIN),
            Triple(CARLA, BORN, PARIS),
            Triple(PARIS, LOC, FRANCE),
            Triple(BERLIN, LOC, GERMANY),
            Triple(ALICE, KNOWS, BOB),
            Triple(BOB, KNOWS, CARLA),
        ]
    )


class TestQuery:
    def test_single_pattern(self, store):
        results = Query([Pattern(Var("x"), BORN, PARIS)]).run(store)
        assert {b["x"] for b in results} == {ALICE, CARLA}

    def test_join_two_patterns(self, store):
        query = Query(
            [
                Pattern(Var("p"), BORN, Var("c")),
                Pattern(Var("c"), LOC, FRANCE),
            ]
        )
        results = query.run(store)
        assert {b["p"] for b in results} == {ALICE, CARLA}
        assert all(b["c"] == PARIS for b in results)

    def test_three_way_join(self, store):
        query = Query(
            [
                Pattern(Var("a"), KNOWS, Var("b")),
                Pattern(Var("b"), KNOWS, Var("c")),
            ]
        )
        results = query.run(store)
        assert len(results) == 1
        assert results[0]["a"] == ALICE and results[0]["c"] == CARLA

    def test_shared_variable_consistency(self, store):
        # ?x knows ?x has no solutions (nobody knows themselves).
        assert Query([Pattern(Var("x"), KNOWS, Var("x"))]).run(store) == []

    def test_variable_predicate(self, store):
        results = Query([Pattern(ALICE, Var("r"), Var("o"))]).run(store)
        assert {b["r"] for b in results} == {BORN, KNOWS}

    def test_filters(self, store):
        query = Query(
            [Pattern(Var("x"), BORN, Var("c"))],
            filters=[lambda b: b["c"] == BERLIN],
        )
        results = query.run(store)
        assert [b["x"] for b in results] == [BOB]

    def test_select_projection(self, store):
        query = Query(
            [Pattern(Var("x"), BORN, Var("c"))], select=["x"]
        )
        for binding in query.run(store):
            assert set(binding) == {"x"}

    def test_count(self, store):
        assert Query([Pattern(Var("x"), BORN, Var("y"))]).count(store) == 3

    def test_no_solutions(self, store):
        assert Query([Pattern(FRANCE, BORN, Var("y"))]).run(store) == []

    def test_empty_pattern_list_rejected(self):
        with pytest.raises(ValueError):
            Query([])

    def test_constant_only_pattern(self, store):
        assert Query([Pattern(ALICE, BORN, PARIS)]).count(store) == 1
        assert Query([Pattern(ALICE, BORN, BERLIN)]).count(store) == 0


class TestAsk:
    def test_ask_true(self, store):
        assert ask(store, [Pattern(Var("x"), LOC, GERMANY)])

    def test_ask_false(self, store):
        assert not ask(store, [Pattern(FRANCE, LOC, Var("x"))])


class TestSolutionModifiers:
    def test_distinct(self, store):
        query = Query(
            [Pattern(Var("x"), BORN, Var("c"))], select=["c"], distinct=True
        )
        results = query.run(store)
        assert len(results) == 2  # Paris and Berlin, Paris deduplicated

    def test_order_by(self, store):
        query = Query(
            [Pattern(Var("x"), BORN, Var("c"))], order_by="x"
        )
        names = [b["x"].id for b in query.run(store)]
        assert names == sorted(names)

    def test_limit(self, store):
        query = Query([Pattern(Var("x"), BORN, Var("c"))], limit=2)
        assert len(query.run(store)) == 2

    def test_limit_zero(self, store):
        query = Query([Pattern(Var("x"), BORN, Var("c"))], limit=0)
        assert query.run(store) == []

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            Query([Pattern(Var("x"), BORN, Var("c"))], limit=-1)

    def test_modifiers_compose(self, store):
        query = Query(
            [Pattern(Var("x"), BORN, Var("c"))],
            select=["c"],
            distinct=True,
            order_by="c",
            limit=1,
        )
        results = query.run(store)
        assert len(results) == 1
        assert results[0]["c"] == BERLIN  # 'berlin' < 'paris' lexicographically
