"""Shared fixtures: one world, corpus, and wiki reused across the suite.

The expensive artifacts are session-scoped; tests must treat them as
read-only (stores hand out immutable triples, so accidental mutation is
hard anyway — but don't add to them).
"""

from __future__ import annotations

import pytest

from repro.corpus import CorpusConfig, build_wiki, synthesize
from repro.extraction import corpus_occurrences, resolver_from_aliases
from repro.kb import Entity, TripleStore
from repro.world import WorldConfig, generate_world


@pytest.fixture(scope="session")
def world():
    return generate_world(WorldConfig(seed=1))


@pytest.fixture(scope="session")
def wiki(world):
    return build_wiki(world)


@pytest.fixture(scope="session")
def documents(world):
    return synthesize(
        world,
        CorpusConfig(seed=2, mentions_per_fact=1.3, p_short_alias=0.1),
    )


@pytest.fixture(scope="session")
def sentences(documents):
    return [s.text for d in documents for s in d.sentences]


@pytest.fixture(scope="session")
def resolver(world):
    return resolver_from_aliases(world.aliases)


@pytest.fixture(scope="session")
def occurrences(sentences, resolver):
    return corpus_occurrences(sentences, resolver)


@pytest.fixture(scope="session")
def seed_kb(world):
    """Half of the world's entity-object facts (deterministic split)."""
    import random

    rng = random.Random(3)
    facts = [t for t in world.facts if isinstance(t.object, Entity)]
    rng.shuffle(facts)
    return TripleStore(facts[: len(facts) // 2])
