"""Tests for repro.kb.sameas (union-find and canonicalization)."""

from hypothesis import given, settings, strategies as st

from repro.kb import Entity, Relation, Triple, TripleStore, UnionFind, canonicalize, ns

A, B, C, D = (Entity(f"w:{x}") for x in "abcd")
P = Relation("w:p")


class TestUnionFind:
    def test_initially_distinct(self):
        uf = UnionFind()
        assert not uf.same(A, B)

    def test_union_and_same(self):
        uf = UnionFind()
        uf.union(A, B)
        uf.union(B, C)
        assert uf.same(A, C)
        assert not uf.same(A, D)

    def test_groups(self):
        uf = UnionFind()
        uf.union(A, B)
        uf.union(C, D)
        groups = sorted(uf.groups(), key=lambda g: min(e.id for e in g))
        assert groups == [{A, B}, {C, D}]

    def test_find_unknown_is_self(self):
        assert UnionFind().find(A) == A

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=40))
    def test_equivalence_is_transitive_closure(self, unions):
        import networkx as nx

        uf = UnionFind()
        graph = nx.Graph()
        graph.add_nodes_from(range(16))
        for a, b in unions:
            uf.union(a, b)
            graph.add_edge(a, b)
        components = list(nx.connected_components(graph))
        for component in components:
            members = sorted(component)
            for m in members[1:]:
                assert uf.same(members[0], m)
        # Items in different components stay apart.
        if len(components) >= 2:
            first, second = sorted(components[0])[0], sorted(components[1])[0]
            assert not uf.same(first, second)


class TestCanonicalize:
    def test_rewrites_to_smallest_id(self):
        store = TripleStore(
            [
                Triple(B, ns.SAME_AS, A),
                Triple(B, P, C),
                Triple(D, P, B),
            ]
        )
        result = canonicalize(store)
        assert result.contains_fact(A, P, C)
        assert result.contains_fact(D, P, A)
        assert not result.contains_fact(B, P, C)

    def test_sameas_dropped_by_default(self):
        store = TripleStore([Triple(A, ns.SAME_AS, B)])
        assert len(canonicalize(store)) == 0

    def test_sameas_kept_when_requested(self):
        store = TripleStore([Triple(B, ns.SAME_AS, A), Triple(B, P, C)])
        result = canonicalize(store, keep_sameas=True)
        assert any(t.predicate == ns.SAME_AS for t in result)

    def test_deterministic_regardless_of_order(self):
        forward = TripleStore([Triple(A, ns.SAME_AS, B), Triple(B, P, C)])
        backward = TripleStore([Triple(B, ns.SAME_AS, A), Triple(B, P, C)])
        assert {t.spo() for t in canonicalize(forward)} == {
            t.spo() for t in canonicalize(backward)
        }
