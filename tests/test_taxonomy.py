"""Tests for repro.taxonomy (head parsing, categories, WordNet, integration)."""

import pytest

from repro.kb import Taxonomy, ns
from repro.taxonomy import (
    WORDNET,
    classify_category,
    category_class,
    integrate,
    is_plural,
    parse_label,
    wordnet_class,
)
from repro.world import schema as ws


class TestHeadParser:
    def test_premodified_plural(self):
        parsed = parse_label("Arvandian computer scientists")
        assert parsed.head == "scientists"
        assert parsed.head_lemma == "scientist"
        assert parsed.head_is_plural
        assert parsed.premodifiers == ("Arvandian", "computer")

    def test_postmodifier_of(self):
        parsed = parse_label("History of Arvandia")
        assert parsed.head == "History"
        assert not parsed.head_is_plural
        assert parsed.postmodifier == "of Arvandia"

    def test_participle_postmodifier(self):
        parsed = parse_label("Companies established in 1976")
        assert parsed.head == "Companies"
        assert parsed.head_is_plural
        assert parsed.postmodifier == "established in 1976"

    def test_people_from(self):
        parsed = parse_label("People from Corvain")
        assert parsed.head == "People"
        assert parsed.head_is_plural

    def test_year_births(self):
        parsed = parse_label("1955 births")
        assert parsed.head == "births"
        assert parsed.head_is_plural

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_label("")

    def test_is_plural_edge_cases(self):
        assert is_plural("cities")
        assert is_plural("people")
        assert not is_plural("bus")
        assert not is_plural("history")
        assert not is_plural("analysis")


class TestCategoryClassifier:
    def test_conceptual_plural(self):
        decision = classify_category("Arvandian scientists")
        assert decision.conceptual
        assert decision.head_lemma == "scientist"

    def test_topical_singular(self):
        assert not classify_category("History of Arvandia").conceptual

    def test_administrative_stoplist(self):
        assert not classify_category("1955 births").conceptual
        assert not classify_category("Articles needing cleanup").conceptual

    def test_stoplist_ablation(self):
        decision = classify_category("1955 births", use_stoplist=False)
        assert decision.conceptual  # leaks through without the stoplist

    def test_plural_heuristic_ablation(self):
        decision = classify_category(
            "History of Arvandia", use_plural_heuristic=False
        )
        assert decision.conceptual  # the naive all-conceptual baseline


class TestMiniWordNet:
    def test_first_synset(self):
        synset = WORDNET.first_synset("scientist")
        assert synset is not None and synset.id == "scientist.n.01"

    def test_hypernym_closure_reaches_entity(self):
        closure = [s.id for s in WORDNET.hypernym_closure("scientist.n.01")]
        assert closure[-1] == "entity.n.01"
        assert "person.n.01" in closure

    def test_is_hyponym_of(self):
        assert WORDNET.is_hyponym_of("city.n.01", "location.n.01")
        assert not WORDNET.is_hyponym_of("city.n.01", "person.n.01")

    def test_unknown_lemma(self):
        assert WORDNET.first_synset("zorbly") is None

    def test_multi_lemma_synset(self):
        assert WORDNET.first_synset("prize").id == "award.n.01"


class TestIntegration:
    @pytest.fixture(scope="class")
    def integrated(self, wiki):
        return integrate(wiki)

    def test_typed_entities_cover_most_pages(self, integrated, wiki):
        __, report = integrated
        assert report.typed_entities > 0.8 * report.pages

    def test_anchor_rate_high(self, integrated):
        __, report = integrated
        assert report.anchor_rate > 0.9

    def test_scientists_end_up_under_person(self, integrated, world, wiki):
        store, __ = integrated
        taxonomy = Taxonomy(store)
        scientists = world.entities_of_class(ws.SCIENTIST)
        person_class = wordnet_class("person.n.01")
        hits = sum(
            1 for s in scientists if taxonomy.is_instance_of(s, person_class)
        )
        assert hits / len(scientists) > 0.8

    def test_fine_classes_subclass_wordnet(self, integrated):
        store, __ = integrated
        fine = category_class("Arvandian scientists")
        anchors = store.objects(fine, ns.SUBCLASS_OF)
        assert wordnet_class("scientist.n.01") in anchors

    def test_no_birth_year_classes(self, integrated):
        store, __ = integrated
        for triple in store.match(predicate=ns.TYPE):
            assert "births" not in triple.object.id

    def test_baseline_pollutes_taxonomy(self, wiki):
        __, clean_report = integrate(wiki)
        __, noisy_report = integrate(wiki, use_plural_heuristic=False)
        assert (
            noisy_report.conceptual_categories
            > clean_report.conceptual_categories
        )
