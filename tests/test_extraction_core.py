"""Tests for extraction base, resolution, and occurrences."""

import pytest

from repro.extraction import (
    Candidate,
    NameResolver,
    candidates_to_store,
    corpus_occurrences,
    merge_candidates,
    resolver_from_aliases,
    sentence_occurrences,
)
from repro.kb import Entity, Relation
from repro.nlp import analyze

R = Relation("rel:bornIn")
A, B = Entity("w:a"), Entity("w:b")


def make_candidate(confidence: float, extractor: str = "x") -> Candidate:
    return Candidate(A, R, B, confidence, extractor, "evidence text")


class TestCandidateModel:
    def test_key(self):
        assert make_candidate(0.5).key() == (A, R, B)

    def test_to_triple_carries_provenance(self):
        triple = make_candidate(0.7, "patterns").to_triple()
        assert triple.confidence == 0.7
        assert triple.source == "patterns"

    def test_to_triple_clamps_confidence(self):
        assert make_candidate(0.0).to_triple().confidence == 0.0

    def test_merge_noisy_or(self):
        merged = merge_candidates([make_candidate(0.5), make_candidate(0.5)])
        assert merged[(A, R, B)] == pytest.approx(0.75)

    def test_merge_distinct_keys(self):
        other = Candidate(B, R, A, 0.4, "y")
        merged = merge_candidates([make_candidate(0.5), other])
        assert len(merged) == 2

    def test_candidates_to_store_threshold(self):
        store = candidates_to_store(
            [make_candidate(0.3)], min_confidence=0.5
        )
        assert len(store) == 0
        store = candidates_to_store(
            [make_candidate(0.3), make_candidate(0.4)], min_confidence=0.5
        )
        assert len(store) == 1  # noisy-or lifts above the threshold


class TestNameResolver:
    @pytest.fixture
    def resolver(self):
        resolver = NameResolver(dominance=0.8)
        resolver.add_aliases(A, ["Alan Weber", "Weber", "Alan"])
        resolver.add_aliases(B, ["Bella Weber", "Weber"])
        return resolver

    def test_unique_name_resolves(self, resolver):
        assert resolver.resolve("Alan Weber") == A
        assert resolver.resolve("Bella Weber") == B

    def test_ambiguous_name_dropped(self, resolver):
        assert resolver.resolve("Weber") is None

    def test_dominant_candidate_resolves(self):
        resolver = NameResolver(dominance=0.8)
        resolver.add("X", A, count=9)
        resolver.add("X", B, count=1)
        assert resolver.resolve("X") == A

    def test_unknown_name(self, resolver):
        assert resolver.resolve("Nobody") is None

    def test_candidates_with_priors(self, resolver):
        candidates = resolver.candidates("Weber")
        assert len(candidates) == 2
        assert sum(prior for __, prior in candidates) == pytest.approx(1.0)

    def test_gazetteer_roundtrip(self, resolver):
        gazetteer = resolver.to_gazetteer()
        assert gazetteer.lookup("Alan Weber") == "Alan Weber"

    def test_from_aliases(self, world):
        resolver = resolver_from_aliases(world.aliases)
        person = world.people[0]
        assert resolver.resolve(world.name[person]) == person

    def test_invalid_dominance(self):
        with pytest.raises(ValueError):
            NameResolver(dominance=0.0)


class TestOccurrences:
    @pytest.fixture
    def simple_resolver(self):
        resolver = NameResolver()
        resolver.add("Alan Weber", A)
        resolver.add("Nimbus Systems", B)
        return resolver

    def test_forward_pair(self, simple_resolver):
        analysis = analyze(
            "Alan Weber founded Nimbus Systems.",
            simple_resolver.to_gazetteer(),
        )
        occurrences = list(sentence_occurrences(analysis, simple_resolver))
        assert len(occurrences) == 1
        occurrence = occurrences[0]
        assert occurrence.first == A and occurrence.second == B
        assert occurrence.middle == ("founded",)
        assert occurrence.pair() == (A, B)
        assert occurrence.pair(inverse=True) == (B, A)

    def test_paths_in_both_directions(self, simple_resolver):
        analysis = analyze(
            "Nimbus Systems was founded by Alan Weber.",
            simple_resolver.to_gazetteer(),
        )
        occurrence = next(iter(sentence_occurrences(analysis, simple_resolver)))
        assert occurrence.path(False) != occurrence.path(True)
        assert "nsubjpass" in occurrence.path(True)

    def test_max_gap_respected(self, simple_resolver):
        analysis = analyze(
            "Alan Weber said many different things about a lot of topics "
            "before mentioning Nimbus Systems.",
            simple_resolver.to_gazetteer(),
        )
        assert list(sentence_occurrences(analysis, simple_resolver, max_gap=5)) == []

    def test_unresolved_mentions_skipped(self, simple_resolver):
        analysis = analyze(
            "Unknown Person praised Nimbus Systems.",
            simple_resolver.to_gazetteer(),
        )
        assert list(sentence_occurrences(analysis, simple_resolver)) == []

    def test_corpus_occurrences_counts(self, sentences, resolver, occurrences):
        assert len(occurrences) > len(sentences) * 0.5
        for occurrence in occurrences[:50]:
            assert occurrence.first != occurrence.second
            assert occurrence.sentence
