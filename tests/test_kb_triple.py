"""Tests for repro.kb.triple (Triple and TimeSpan)."""

import pytest
from hypothesis import given, strategies as st

from repro.kb import ALWAYS, Entity, Relation, TimeSpan, Triple

S = Entity("w:s")
P = Relation("w:p")
O = Entity("w:o")


class TestTimeSpan:
    def test_point_span(self):
        span = TimeSpan(1955, 1955)
        assert span.is_point
        assert span.contains(1955)
        assert not span.contains(1956)

    def test_open_ends(self):
        assert TimeSpan(None, 2000).contains(1500)
        assert TimeSpan(1990, None).contains(3000)
        assert ALWAYS.contains(-500)

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            TimeSpan(2000, 1990)

    def test_overlap(self):
        assert TimeSpan(1990, 2000).overlaps(TimeSpan(1995, 2005))
        assert not TimeSpan(1990, 1995).overlaps(TimeSpan(1996, 2000))
        assert TimeSpan(None, 1995).overlaps(TimeSpan(1995, None))

    def test_intersect(self):
        left = TimeSpan(1990, 2000)
        right = TimeSpan(1995, 2005)
        assert left.intersect(right) == TimeSpan(1995, 2000)
        assert left.intersect(TimeSpan(2001, 2002)) is None

    def test_intersect_with_open_span(self):
        assert TimeSpan(1990, None).intersect(TimeSpan(None, 2000)) == TimeSpan(1990, 2000)

    @given(
        st.integers(1800, 2100), st.integers(0, 100),
        st.integers(1800, 2100), st.integers(0, 100),
    )
    def test_overlap_symmetry(self, b1, l1, b2, l2):
        s1, s2 = TimeSpan(b1, b1 + l1), TimeSpan(b2, b2 + l2)
        assert s1.overlaps(s2) == s2.overlaps(s1)

    @given(
        st.integers(1800, 2100), st.integers(0, 100),
        st.integers(1800, 2100), st.integers(0, 100),
    )
    def test_intersect_contained_in_both(self, b1, l1, b2, l2):
        s1, s2 = TimeSpan(b1, b1 + l1), TimeSpan(b2, b2 + l2)
        common = s1.intersect(s2)
        if common is not None:
            for year in (common.begin, common.end):
                assert s1.contains(year) and s2.contains(year)


class TestTriple:
    def test_spo_key(self):
        assert Triple(S, P, O).spo() == (S, P, O)

    def test_confidence_bounds(self):
        with pytest.raises(ValueError):
            Triple(S, P, O, confidence=1.5)
        with pytest.raises(ValueError):
            Triple(S, P, O, confidence=-0.1)

    def test_with_confidence(self):
        triple = Triple(S, P, O, confidence=0.5)
        updated = triple.with_confidence(0.9)
        assert updated.confidence == 0.9
        assert updated.spo() == triple.spo()

    def test_with_scope(self):
        triple = Triple(S, P, O).with_scope(TimeSpan(1990, 1995))
        assert triple.scope == TimeSpan(1990, 1995)

    def test_holds_in(self):
        unscoped = Triple(S, P, O)
        assert unscoped.holds_in(1234)
        scoped = Triple(S, P, O, scope=TimeSpan(1990, 1995))
        assert scoped.holds_in(1992)
        assert not scoped.holds_in(1980)

    def test_str_contains_scope(self):
        assert "[1990,1995]" in str(Triple(S, P, O, scope=TimeSpan(1990, 1995)))
