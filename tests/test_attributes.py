"""Tests for the query-log substrate and Biperpedia-style attribute discovery."""

import pytest

from repro.corpus import GOLD_ATTRIBUTES, QueryLogConfig, generate_query_log
from repro.taxonomy import AttributeDiscoverer, resolver_for_attributes
from repro.world import schema as ws


@pytest.fixture(scope="module")
def query_log(world):
    return generate_query_log(world, QueryLogConfig(seed=47))


def classes_of_factory(world):
    def classes_of(entity):
        classes = []
        cls = world.primary_class.get(entity)
        if cls is not None:
            classes.append(cls)
        if entity in world.people:
            classes.append(ws.PERSON)
        return classes

    return classes_of


@pytest.fixture(scope="module")
def discoverer(world, query_log):
    discoverer = AttributeDiscoverer(
        resolver_for_attributes(world), classes_of_factory(world)
    )
    for record in query_log.records:
        discoverer.observe(record.text, count=record.frequency)
    return discoverer


class TestQueryLog:
    def test_deterministic(self, world):
        first = generate_query_log(world, QueryLogConfig(seed=47))
        second = generate_query_log(world, QueryLogConfig(seed=47))
        assert [r.text for r in first.records] == [r.text for r in second.records]

    def test_noise_fraction(self, query_log):
        noise = [r for r in query_log.records if r.entity is None]
        total = len(query_log.records)
        assert 0.1 < len(noise) / total < 0.3

    def test_attribute_records_reference_gold(self, world, query_log):
        for record in query_log.records:
            if record.entity is None:
                continue
            assert record.attribute is not None
            # The attribute must come from some class's gold vocabulary.
            vocabulary = {
                a for attrs in GOLD_ATTRIBUTES.values() for a, __ in attrs
            }
            assert record.attribute in vocabulary

    def test_texts_expand_frequency(self, query_log):
        texts = query_log.texts()
        assert len(texts) == sum(r.frequency for r in query_log.records)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            QueryLogConfig(noise_fraction=1.5)


class TestInterpretation:
    @pytest.fixture
    def simple(self, world):
        return AttributeDiscoverer(
            resolver_for_attributes(world), classes_of_factory(world)
        )

    def test_of_shape(self, world, simple):
        person = world.people[0]
        name = world.name[person].lower()
        assert simple.observe(f"birthplace of {name}")

    def test_question_shape(self, world, simple):
        person = world.people[0]
        name = world.name[person].lower()
        assert simple.observe(f"what is the age of {name}")

    def test_suffix_shape(self, world, simple):
        company = world.companies[0]
        name = world.name[company].lower()
        assert simple.observe(f"{name} ceo")

    def test_noise_rejected(self, simple):
        assert not simple.observe("cheap flights")
        assert not simple.observe("how to tie a tie")

    def test_unknown_entity_rejected(self, simple):
        assert not simple.observe("population of atlantis")


class TestDiscovery:
    def test_gold_attributes_recovered(self, discoverer):
        for cls in (ws.COMPANY, ws.CITY, ws.COUNTRY):
            gold = {a for a, __ in GOLD_ATTRIBUTES[cls]}
            found = {
                a.attribute for a in discoverer.attributes_of(cls, top_k=len(gold))
            }
            assert len(found & gold) / len(gold) >= 0.75

    def test_ranking_follows_popularity(self, discoverer):
        ranked = discoverer.attributes_of(ws.CITY, top_k=4)
        assert ranked[0].attribute == "population"

    def test_misspellings_rank_below_gold(self, discoverer):
        top = discoverer.attributes_of(ws.PERSON, top_k=6)
        gold = {a for a, __ in GOLD_ATTRIBUTES[ws.PERSON]}
        assert all(a.attribute in gold for a in top)

    def test_support_threshold(self, world, query_log):
        strict = AttributeDiscoverer(
            resolver_for_attributes(world),
            classes_of_factory(world),
            min_support=10_000,
        )
        for record in query_log.records:
            strict.observe(record.text, count=record.frequency)
        assert strict.attributes_of(ws.CITY) == []

    def test_diversity_filter(self, world):
        # One entity asked the same thing many times is not class evidence.
        discoverer = AttributeDiscoverer(
            resolver_for_attributes(world),
            classes_of_factory(world),
            min_support=2,
            min_diversity=2,
        )
        name = world.name[world.cities[0]].lower()
        for __ in range(20):
            discoverer.observe(f"secret codes of {name}")
        found = {a.attribute for a in discoverer.attributes_of(ws.CITY)}
        assert "secret codes" not in found
