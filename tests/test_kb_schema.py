"""Tests for repro.kb.schema (taxonomy and relation signatures)."""

import pytest

from repro.kb import Entity, Relation, Taxonomy, Triple, TripleStore, ns, schema_triples

PERSON = Entity("c:person")
SCIENTIST = Entity("c:scientist")
PHYSICIST = Entity("c:physicist")
ORG = Entity("c:org")
CITY = Entity("c:city")
EINSTEIN = Entity("w:einstein")
ACME = Entity("w:acme")
BORN = Relation("r:bornIn")
WORKS = Relation("r:worksAt")


@pytest.fixture
def store():
    store = TripleStore(
        [
            Triple(SCIENTIST, ns.SUBCLASS_OF, PERSON),
            Triple(PHYSICIST, ns.SUBCLASS_OF, SCIENTIST),
            Triple(EINSTEIN, ns.TYPE, PHYSICIST),
            Triple(ACME, ns.TYPE, ORG),
            Triple(PERSON, ns.DISJOINT_CLASS_WITH, ORG),
        ]
    )
    store.add_all(schema_triples(BORN, domain=PERSON, range_=CITY, functional=True))
    store.add_all(schema_triples(WORKS, domain=PERSON, range_=ORG))
    return store


@pytest.fixture
def taxonomy(store):
    return Taxonomy(store)


class TestHierarchy:
    def test_superclasses_transitive(self, taxonomy):
        assert taxonomy.superclasses(PHYSICIST) == {SCIENTIST, PERSON}

    def test_subclasses_transitive(self, taxonomy):
        assert taxonomy.subclasses(PERSON) == {SCIENTIST, PHYSICIST}

    def test_is_subclass_of(self, taxonomy):
        assert taxonomy.is_subclass_of(PHYSICIST, PERSON)
        assert taxonomy.is_subclass_of(PERSON, PERSON)
        assert not taxonomy.is_subclass_of(PERSON, PHYSICIST)
        assert taxonomy.is_subclass_of(ORG, ns.THING)

    def test_cycle_tolerated(self):
        store = TripleStore(
            [
                Triple(PERSON, ns.SUBCLASS_OF, SCIENTIST),
                Triple(SCIENTIST, ns.SUBCLASS_OF, PERSON),
            ]
        )
        taxonomy = Taxonomy(store)
        assert SCIENTIST in taxonomy.superclasses(PERSON)
        assert PERSON in taxonomy.superclasses(SCIENTIST)


class TestInstances:
    def test_types_of_transitive(self, taxonomy):
        assert taxonomy.types_of(EINSTEIN) == {PHYSICIST, SCIENTIST, PERSON}

    def test_types_of_direct(self, taxonomy):
        assert taxonomy.types_of(EINSTEIN, transitive=False) == {PHYSICIST}

    def test_instances_of_superclass(self, taxonomy):
        assert EINSTEIN in taxonomy.instances_of(PERSON)

    def test_instances_of_direct_only(self, taxonomy):
        assert taxonomy.instances_of(PERSON, transitive=False) == set()

    def test_is_instance_of(self, taxonomy):
        assert taxonomy.is_instance_of(EINSTEIN, PERSON)
        assert not taxonomy.is_instance_of(ACME, PERSON)
        assert taxonomy.is_instance_of(ACME, ns.THING)


class TestSignatures:
    def test_domain_range(self, taxonomy):
        assert taxonomy.domain_of(BORN) == PERSON
        assert taxonomy.range_of(BORN) == CITY
        assert taxonomy.domain_of(Relation("r:unknown")) is None

    def test_functional(self, taxonomy):
        assert taxonomy.is_functional(BORN)
        assert not taxonomy.is_functional(WORKS)

    def test_disjoint_classes_inherited(self, taxonomy):
        assert taxonomy.are_disjoint_classes(PHYSICIST, ORG)
        assert taxonomy.are_disjoint_classes(ORG, SCIENTIST)
        assert not taxonomy.are_disjoint_classes(SCIENTIST, PHYSICIST)

    def test_type_violations(self, taxonomy, store):
        data = TripleStore(
            [
                Triple(EINSTEIN, WORKS, ACME),   # fine
                Triple(ACME, WORKS, ACME),       # domain violation: org person
            ]
        )
        violations = taxonomy.type_violations(data)
        assert len(violations) == 1
        assert violations[0].subject == ACME

    def test_untyped_entities_not_flagged(self, taxonomy):
        ghost = Entity("w:ghost")
        data = TripleStore([Triple(ghost, WORKS, ACME)])
        assert taxonomy.type_violations(data) == []
