"""Tests for repro.linkage (strsim, records, blocking, matchers, task)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.kb import Entity
from repro.linkage import (
    GraphMatcher,
    LogisticMatcher,
    StringMatcher,
    TfIdfCosine,
    blocking_recall,
    edit_similarity,
    jaro,
    jaro_winkler,
    key_blocking,
    levenshtein,
    make_linkage_task,
    minhash_blocking,
    ngram_jaccard,
    no_blocking,
    pair_prf,
    pairs_to_sameas,
    perturb_name,
    records_from_store,
    sorted_neighborhood,
)

_names = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122), max_size=15
)


class TestStringSimilarity:
    def test_levenshtein_basics(self):
        assert levenshtein("kitten", "sitting") == 3
        assert levenshtein("", "abc") == 3
        assert levenshtein("same", "same") == 0

    @settings(max_examples=60, deadline=None)
    @given(_names, _names)
    def test_levenshtein_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @settings(max_examples=60, deadline=None)
    @given(_names, _names, _names)
    def test_levenshtein_triangle(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    def test_edit_similarity_bounds(self):
        assert edit_similarity("abc", "abc") == 1.0
        assert edit_similarity("abc", "xyz") == 0.0
        assert edit_similarity("", "") == 1.0

    def test_jaro_known_value(self):
        assert jaro("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_jaro_winkler_prefix_boost(self):
        assert jaro_winkler("nimbus", "nimbux") > jaro("nimbus", "nimbux")

    @settings(max_examples=60, deadline=None)
    @given(_names, _names)
    def test_jaro_winkler_bounds(self, a, b):
        assert 0.0 <= jaro_winkler(a, b) <= 1.0

    def test_ngram_jaccard(self):
        assert ngram_jaccard("abc", "abc") == 1.0
        assert ngram_jaccard("abcdef", "abcxef") < 1.0

    def test_tfidf_cosine(self):
        tfidf = TfIdfCosine().fit(["nimbus systems", "vertex labs", "nimbus labs"])
        assert tfidf.similarity("nimbus systems", "nimbus systems") == pytest.approx(1.0)
        assert tfidf.similarity("nimbus systems", "vertex labs") == 0.0
        # The rare token "systems" outweighs the common "labs".
        assert tfidf.similarity("nimbus systems", "nimbus labs") > 0.0

    def test_tfidf_unfitted(self):
        with pytest.raises(RuntimeError):
            TfIdfCosine().similarity("a", "b")


class TestRecords:
    def test_records_have_names_and_structure(self, world):
        records = records_from_store(world.store, label_lang="en")
        person = world.people[0]
        record = records[person]
        assert record.name == world.name[person]
        assert record.neighbors  # relational neighbourhood present
        assert record.neighbor_name_set()

    def test_attributes_collected(self, world):
        records = records_from_store(world.store, label_lang="en")
        person = world.people[0]
        assert "birthYear" in records[person].attributes


class TestPerturbation:
    def test_identity_at_zero_noise(self):
        rng = random.Random(0)
        assert perturb_name("Viktor Adler", rng, 0.0) == "Viktor Adler"

    def test_noise_changes_names(self):
        rng = random.Random(0)
        changed = sum(
            1 for __ in range(50)
            if perturb_name("Viktor Adler", rng, 0.8) != "Viktor Adler"
        )
        assert changed > 25


class TestBlocking:
    @pytest.fixture(scope="class")
    def task(self, world):
        return make_linkage_task(world, seed=31, name_noise=0.3, fact_dropout=0.3)

    def test_no_blocking_is_cross_product(self, task):
        result = no_blocking(task.side_a, task.side_b)
        assert len(result.pairs) == len(task.side_a) * len(task.side_b)
        assert result.reduction_ratio == 0.0

    def test_key_blocking_prunes_and_keeps_recall(self, task):
        result = key_blocking(task.side_a, task.side_b)
        assert result.reduction_ratio > 0.9
        assert blocking_recall(result, task.gold) > 0.8

    def test_sorted_neighborhood(self, task):
        result = sorted_neighborhood(task.side_a, task.side_b, window=8)
        assert result.reduction_ratio > 0.8
        assert blocking_recall(result, task.gold) > 0.5

    def test_minhash_blocking(self, task):
        result = minhash_blocking(task.side_a, task.side_b)
        assert result.reduction_ratio > 0.8
        assert blocking_recall(result, task.gold) > 0.7

    def test_window_validation(self, task):
        with pytest.raises(ValueError):
            sorted_neighborhood(task.side_a, task.side_b, window=0)


class TestMatchers:
    @pytest.fixture(scope="class")
    def task(self, world):
        return make_linkage_task(world, seed=31, name_noise=0.4, fact_dropout=0.3)

    @pytest.fixture(scope="class")
    def blocked(self, task):
        return key_blocking(task.side_a, task.side_b)

    @pytest.fixture(scope="class")
    def trained_logistic(self, world, task):
        train_task = make_linkage_task(world, seed=77, name_noise=0.4, fact_dropout=0.3)
        blocked = key_blocking(train_task.side_a, train_task.side_b)
        rng = random.Random(5)
        # sorted_pairs(): training order must not depend on PYTHONHASHSEED.
        positives = [p for p in blocked.sorted_pairs() if p in train_task.gold]
        negatives = [p for p in blocked.sorted_pairs() if p not in train_task.gold]
        rng.shuffle(negatives)
        labeled = [(p, True) for p in positives] + [
            (p, False) for p in negatives[: len(positives) * 3]
        ]
        matcher = LogisticMatcher(threshold=0.3)
        matcher.train(labeled, train_task.side_a, train_task.side_b)
        return matcher

    def test_string_matcher_high_precision(self, task, blocked):
        matches = StringMatcher(threshold=0.92).match(
            blocked.sorted_pairs(), task.side_a, task.side_b
        )
        prf = pair_prf([m.pair for m in matches], task.gold)
        assert prf.precision > 0.95

    def test_one_to_one(self, task, blocked):
        matches = StringMatcher(threshold=0.8).match(
            blocked.sorted_pairs(), task.side_a, task.side_b
        )
        lefts = [m.pair[0] for m in matches]
        rights = [m.pair[1] for m in matches]
        assert len(set(lefts)) == len(lefts)
        assert len(set(rights)) == len(rights)

    def test_logistic_beats_string_f1(self, task, blocked, trained_logistic):
        string_prf = pair_prf(
            [
                m.pair
                for m in StringMatcher(threshold=0.9).match(
                    blocked.sorted_pairs(), task.side_a, task.side_b
                )
            ],
            task.gold,
        )
        logistic_prf = pair_prf(
            [
                m.pair
                for m in trained_logistic.match(blocked.sorted_pairs(), task.side_a, task.side_b)
            ],
            task.gold,
        )
        assert logistic_prf.f1 > string_prf.f1

    def test_graph_matcher_best_f1(self, task, blocked, trained_logistic):
        graph = GraphMatcher()
        graph_prf = pair_prf(
            [m.pair for m in graph.match(blocked.sorted_pairs(), task.side_a, task.side_b)],
            task.gold,
        )
        logistic_prf = pair_prf(
            [
                m.pair
                for m in trained_logistic.match(blocked.sorted_pairs(), task.side_a, task.side_b)
            ],
            task.gold,
        )
        assert graph_prf.f1 >= logistic_prf.f1
        assert graph.report.propagated_matches > 0

    def test_untrained_logistic_raises(self, task, blocked):
        with pytest.raises(RuntimeError):
            LogisticMatcher().score_pairs(blocked.sorted_pairs(), task.side_a, task.side_b)

    def test_sameas_output(self, task, blocked):
        matches = StringMatcher(threshold=0.9).match(
            blocked.sorted_pairs(), task.side_a, task.side_b
        )
        store = pairs_to_sameas(matches)
        assert len(store) == len(matches)
        from repro.kb import ns

        assert all(t.predicate == ns.SAME_AS for t in store)
