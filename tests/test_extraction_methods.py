"""Tests for the extraction method spectrum (E3's subsystems)."""

import pytest

from repro.corpus.document import corpus_gold_facts
from repro.eval import precision_recall
from repro.extraction import (
    DependencyPathExtractor,
    DistantSupervisionExtractor,
    PatternExtractor,
    SnowballExtractor,
    candidates_to_store,
)
from repro.kb import Entity
from repro.world import schema as ws


@pytest.fixture(scope="module")
def gold_entity_facts(documents):
    return {
        key for key in corpus_gold_facts(documents)
        if isinstance(key[2], Entity)
    }


class TestPatternExtractor:
    def test_high_precision(self, occurrences, gold_entity_facts):
        store = candidates_to_store(PatternExtractor().extract(occurrences))
        prf = precision_recall({t.spo() for t in store}, gold_entity_facts)
        assert prf.precision > 0.95
        assert 0.3 < prf.recall < 0.9  # misses the paraphrases by design

    def test_evidence_recorded(self, occurrences):
        candidates = PatternExtractor().extract(occurrences)
        assert all(c.evidence for c in candidates)

    def test_empty_pattern_rejected(self):
        from repro.extraction import SurfacePattern

        with pytest.raises(ValueError):
            SurfacePattern(ws.BORN_IN, ())


class TestSnowball:
    def test_bootstraps_beyond_seeds(self, world, occurrences):
        seeds = [
            (t.subject, t.object)
            for t in list(world.facts.match(predicate=ws.FOUNDED))[:8]
        ]
        extractor = SnowballExtractor(ws.FOUNDED, seeds)
        candidates = extractor.run(occurrences)
        found_pairs = {(c.subject, c.object) for c in candidates}
        assert len(found_pairs) > len(seeds)
        assert extractor.report.iterations >= 1
        assert extractor.patterns  # learned something

    def test_learned_patterns_include_paraphrases(self, world, occurrences):
        seeds = [
            (t.subject, t.object)
            for t in list(world.facts.match(predicate=ws.FOUNDED))[:8]
        ]
        extractor = SnowballExtractor(ws.FOUNDED, seeds)
        extractor.run(occurrences)
        middles = {p.middle for p in extractor.patterns}
        assert ("founded",) in middles
        assert len(middles) >= 3  # paraphrase contexts were promoted

    def test_precision_against_world(self, world, occurrences):
        seeds = [
            (t.subject, t.object)
            for t in list(world.facts.match(predicate=ws.FOUNDED))[:8]
        ]
        candidates = SnowballExtractor(ws.FOUNDED, seeds).run(occurrences)
        correct = sum(
            1 for c in candidates
            if world.fact_exists(c.subject, ws.FOUNDED, c.object)
        )
        assert correct / len(candidates) > 0.9

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            SnowballExtractor(ws.FOUNDED, [])


class TestDependencyPaths:
    @pytest.fixture(scope="class")
    def extractor(self, seed_kb, occurrences):
        extractor = DependencyPathExtractor(
            seed_kb, [s.relation for s in ws.RELATION_SPECS]
        )
        extractor.learn(occurrences)
        return extractor

    def test_rules_learned(self, extractor):
        assert len(extractor.rules) >= 10
        assert all(0.0 < r.confidence <= 1.0 for r in extractor.rules)

    def test_covers_passives(self, extractor):
        passive_rules = [r for r in extractor.rules if "nsubjpass" in r.path]
        assert passive_rules

    def test_beats_patterns_on_recall(
        self, extractor, occurrences, gold_entity_facts
    ):
        path_pred = {c.key() for c in extractor.extract(occurrences)}
        pattern_pred = {
            t.spo()
            for t in candidates_to_store(PatternExtractor().extract(occurrences))
        }
        path_prf = precision_recall(path_pred, gold_entity_facts)
        pattern_prf = precision_recall(pattern_pred, gold_entity_facts)
        assert path_prf.recall > pattern_prf.recall
        assert path_prf.precision > 0.9


class TestDistantSupervision:
    @pytest.fixture(scope="class")
    def extractor(self, seed_kb, occurrences):
        extractor = DistantSupervisionExtractor(
            seed_kb, [s.relation for s in ws.RELATION_SPECS]
        )
        extractor.train(occurrences)
        return extractor

    def test_training_summary(self, extractor):
        assert extractor.summary.positives > 100
        assert extractor.summary.negatives > 0

    def test_best_recall_of_the_spectrum(
        self, extractor, occurrences, gold_entity_facts
    ):
        predictions = {c.key() for c in extractor.extract(occurrences)}
        prf = precision_recall(predictions, gold_entity_facts)
        pattern_prf = precision_recall(
            {
                t.spo()
                for t in candidates_to_store(
                    PatternExtractor().extract(occurrences)
                )
            },
            gold_entity_facts,
        )
        assert prf.recall > pattern_prf.recall
        assert prf.f1 > pattern_prf.f1
        assert prf.precision > 0.85

    def test_extract_before_train_raises(self, seed_kb):
        extractor = DistantSupervisionExtractor(seed_kb, [ws.BORN_IN])
        with pytest.raises(RuntimeError):
            extractor.extract([])
