"""Tests for repro.nlp.chunk and repro.nlp.dependency."""

from repro.nlp import analyze, noun_phrases, parse, tag, tokenize, verb_groups


def chunks_of(text):
    tokens = tokenize(text)
    tags = tag(tokens)
    return tokens, tags


class TestNounPhrases:
    def test_simple_np(self):
        tokens, tags = chunks_of("The old city fell.")
        nps = noun_phrases(tokens, tags)
        assert [c.text(tokens) for c in nps] == ["The old city"]

    def test_proper_noun_np(self):
        tokens, tags = chunks_of("Viktor Adler founded Nimbus Systems.")
        nps = noun_phrases(tokens, tags)
        assert [c.text(tokens) for c in nps] == ["Viktor Adler", "Nimbus Systems"]

    def test_np_with_number(self):
        tokens, tags = chunks_of("He launched the Nova 3 yesterday.")
        texts = [c.text(tokens) for c in noun_phrases(tokens, tags)]
        assert "the Nova 3" in texts

    def test_head_index_is_last_token(self):
        tokens, tags = chunks_of("The capital fell.")
        np = noun_phrases(tokens, tags)[0]
        assert tokens[np.head_index].text == "capital"


class TestVerbGroups:
    def test_simple_verb(self):
        tokens, tags = chunks_of("Adler founded Nimbus.")
        groups = verb_groups(tokens, tags)
        assert [g.text(tokens) for g in groups] == ["founded"]

    def test_aux_verb_group(self):
        tokens, tags = chunks_of("Nimbus was founded by Adler.")
        groups = verb_groups(tokens, tags)
        assert groups and groups[0].text(tokens) == "was founded"

    def test_bare_copula(self):
        tokens, tags = chunks_of("Corvain is the capital of Arvandia.")
        groups = verb_groups(tokens, tags)
        assert groups[0].text(tokens) == "is"


class TestDependencyParser:
    def test_svo_arcs(self):
        analysis = analyze("Viktor Adler founded Nimbus Systems.")
        parse_ = analysis.parse
        root = parse_.root()
        assert analysis.tokens[root].text == "founded"
        labels = dict(zip([t.text for t in analysis.tokens], parse_.labels))
        assert labels["Adler"] == "nsubj"
        assert labels["Systems"] == "dobj"

    def test_passive_arcs(self):
        analysis = analyze("Nimbus Systems was founded by Viktor Adler.")
        labels = dict(zip([t.text for t in analysis.tokens], analysis.parse.labels))
        assert labels["Systems"] == "nsubjpass"
        assert labels["was"] == "auxpass"
        assert labels["by"] == "prep"
        assert labels["Adler"] == "pobj"

    def test_copular_attr(self):
        analysis = analyze("Adler is the founder of Nimbus.")
        labels = dict(zip([t.text for t in analysis.tokens], analysis.parse.labels))
        assert labels["founder"] == "attr"
        assert labels["Nimbus"] == "pobj"

    def test_preverbal_pp(self):
        analysis = analyze("The capital of Arvandia is Corvain.")
        labels = dict(zip([t.text for t in analysis.tokens], analysis.parse.labels))
        assert labels["capital"] == "nsubj"
        assert labels["Arvandia"] == "pobj"

    def test_single_root(self):
        for text in [
            "Adler founded Nimbus.",
            "In 1955, Weber was born in Lorvik.",
            "The capital of Arvandia is Corvain.",
        ]:
            parse_ = analyze(text).parse
            roots = [i for i, h in enumerate(parse_.heads) if h == -1]
            assert len(roots) == 1

    def test_all_tokens_attached(self):
        parse_ = analyze("Julia Weber and Marco Santos married in 1981.").parse
        root = parse_.root()
        for i, head in enumerate(parse_.heads):
            assert head == -1 if i == root else head >= 0

    def test_path_signature_stable(self):
        first = analyze("Alan Weber founded Helio Labs.")
        second = analyze("Mara Santos founded Orbital Corp.")
        path1 = first.parse.path(1, 4)
        path2 = second.parse.path(1, 4)
        assert path1 == path2 == "^nsubj:found:vdobj"

    def test_path_differs_for_passive(self):
        active = analyze("Alan Weber founded Helio Labs.")
        passive = analyze("Helio Labs was founded by Alan Weber.")
        active_path = active.parse.path(1, 4)
        # From the agent (Weber, index 6) to the patient (Labs, index 1).
        passive_path = passive.parse.path(6, 1)
        assert active_path != passive_path
        assert "nsubjpass" in passive_path

    def test_path_none_beyond_max_length(self):
        analysis = analyze("Alan Weber founded Helio Labs.")
        assert analysis.parse.path(0, 4, max_length=1) is None

    def test_empty_sentence(self):
        parse_ = parse([], [])
        assert parse_.heads == []
