"""Tests for extraction.commonsense and extraction.infobox."""

import pytest

from repro.extraction import (
    GOLD_PARTS,
    HAS_PROPERTY,
    HAS_SHAPE,
    PART_OF,
    InfoboxExtractor,
    acquire,
    concept,
    generate_sentences,
    gold_store,
    resolver_from_aliases,
)
from repro.eval import precision_recall
from repro.kb import Literal
from repro.world import schema as ws


class TestCommonsenseAcquisition:
    def test_parses_property_sentence(self):
        store, __ = acquire(["Apples are often red."] * 2)
        assert store.contains_fact(concept("apple"), HAS_PROPERTY, concept("red"))

    def test_parses_part_sentences_all_templates(self):
        store, __ = acquire(
            [
                "The wheel is part of a car.",
                "Every car has a wheel.",
                "A car contains a wheel.",
            ],
            min_support=3,
        )
        assert store.contains_fact(concept("wheel"), PART_OF, concept("car"))

    def test_parses_shape_sentences(self):
        store, __ = acquire(
            ["A clarinet is cylindrical in shape.",
             "The clarinet has a cylindrical shape."],
            min_support=2,
        )
        assert store.contains_fact(
            concept("clarinet"), HAS_SHAPE, concept("cylindrical")
        )

    def test_support_filter_drops_rare_noise(self):
        sentences = ["Apples are often red."] * 3 + ["Apples are often funny."]
        store, report = acquire(sentences, min_support=2)
        assert store.contains_fact(concept("apple"), HAS_PROPERTY, concept("red"))
        assert not store.contains_fact(
            concept("apple"), HAS_PROPERTY, concept("funny")
        )
        assert report.filtered_low_support == 1

    def test_end_to_end_precision_recall(self):
        sentences = generate_sentences(seed=5, repetitions=4, noise_rate=0.15)
        harvested, __ = acquire(sentences, min_support=2)
        gold = gold_store()
        prf = precision_recall(
            {t.spo() for t in harvested}, {t.spo() for t in gold}
        )
        assert prf.precision > 0.9
        assert prf.recall > 0.8

    def test_without_filter_noise_leaks(self):
        sentences = generate_sentences(seed=5, repetitions=4, noise_rate=0.3)
        unfiltered, __ = acquire(sentences, min_support=1)
        gold = gold_store()
        prf = precision_recall(
            {t.spo() for t in unfiltered}, {t.spo() for t in gold}
        )
        filtered, __ = acquire(sentences, min_support=2)
        filtered_prf = precision_recall(
            {t.spo() for t in filtered}, {t.spo() for t in gold}
        )
        assert filtered_prf.precision > prf.precision

    def test_generation_deterministic(self):
        assert generate_sentences(seed=5) == generate_sentences(seed=5)


class TestInfoboxExtractor:
    @pytest.fixture(scope="class")
    def extractor(self, world):
        return InfoboxExtractor(resolver_from_aliases(world.aliases))

    def test_extracts_gold_facts(self, world, wiki, extractor):
        page = wiki.page_of(world.people[0])
        candidates = extractor.extract_page(page)
        assert candidates
        for candidate in candidates:
            assert world.facts.contains_fact(
                candidate.subject, candidate.relation, candidate.object
            )

    def test_year_values_become_literals(self, world, wiki, extractor):
        page = wiki.page_of(world.companies[0])
        candidates = extractor.extract_page(page)
        founding = [c for c in candidates if c.relation == ws.FOUNDING_YEAR]
        assert founding
        assert isinstance(founding[0].object, Literal)
        assert founding[0].object.datatype == "year"

    def test_wiki_level_report(self, wiki, extractor):
        candidates, report = extractor.extract_wiki(wiki)
        assert report.pages == len(wiki.pages)
        assert report.values_resolved == len(candidates)
        assert report.attributes_mapped >= report.values_resolved

    def test_wiki_precision_near_one(self, world, wiki, extractor):
        candidates, __ = extractor.extract_wiki(wiki)
        correct = sum(
            1 for c in candidates
            if world.facts.contains_fact(c.subject, c.relation, c.object)
        )
        assert correct / len(candidates) > 0.98
