"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def built_kb(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "kb.nt"
    out = io.StringIO()
    code = main(
        ["build", "--seed", "7", "--people", "60", "--out", str(path)], out=out
    )
    assert code == 0
    return path, out.getvalue()


class TestBuild:
    def test_reports_counts(self, built_kb):
        path, output = built_kb
        assert "Accepted" in output
        assert path.exists()

    def test_output_is_loadable(self, built_kb):
        from repro.kb import load

        path, __ = built_kb
        kb = load(str(path))
        assert len(kb) > 500

    def test_reasoner_workers_build_matches_serial(self, built_kb, tmp_path):
        path, __ = built_kb
        parallel_path = tmp_path / "kb-reasoner.nt"
        out = io.StringIO()
        code = main(
            [
                "build", "--seed", "7", "--people", "60",
                "--reasoner-workers", "2", "--reasoner-backend", "thread",
                "--out", str(parallel_path),
            ],
            out=out,
        )
        assert code == 0
        assert parallel_path.read_text() == path.read_text()

    def test_negative_reasoner_workers_rejected(self, tmp_path):
        out = io.StringIO()
        code = main(
            [
                "build", "--seed", "7", "--people", "10",
                "--reasoner-workers", "-1", "--out", str(tmp_path / "kb.nt"),
            ],
            out=out,
        )
        assert code == 2
        assert "reasoner-workers" in out.getvalue()


class TestStats:
    def test_summary(self, built_kb):
        path, __ = built_kb
        out = io.StringIO()
        assert main(["stats", "--kb", str(path)], out=out) == 0
        text = out.getvalue()
        assert "triples" in text
        assert "rdf:type" in text


class TestQuery:
    def test_by_predicate(self, built_kb):
        path, __ = built_kb
        out = io.StringIO()
        assert main(
            ["query", "--kb", str(path), "--predicate", "rel:bornIn"], out=out
        ) == 0
        assert "rel:bornIn" in out.getvalue()

    def test_no_matches(self, built_kb):
        path, __ = built_kb
        out = io.StringIO()
        main(["query", "--kb", str(path), "--subject", "world:Nobody"], out=out)
        assert "no matching triples" in out.getvalue()

    def test_limit(self, built_kb):
        path, __ = built_kb
        out = io.StringIO()
        main(
            ["query", "--kb", str(path), "--predicate", "rdf:type", "--limit", "3"],
            out=out,
        )
        assert "limited to 3" in out.getvalue()


class TestAsk:
    def test_answerable_question(self, built_kb):
        from repro.kb import load, ns, Literal
        from repro.world import WorldConfig, generate_world
        from repro.world import schema as ws

        path, __ = built_kb
        kb = load(str(path))
        # Find a person with a harvested birth city and ask about them.
        world = generate_world(WorldConfig(seed=7, n_people=60))
        for person in world.people:
            city = None
            for t in kb.match(subject=person, predicate=ws.BORN_IN):
                city = t.object
            if city is None:
                continue
            out = io.StringIO()
            code = main(
                ["ask", "--kb", str(path),
                 f"Where was {world.name[person]} born?"],
                out=out,
            )
            assert code == 0
            assert world.name[city] in out.getvalue()
            return
        pytest.fail("no harvested birth facts to ask about")

    def test_unanswerable_question(self, built_kb):
        path, __ = built_kb
        out = io.StringIO()
        code = main(["ask", "--kb", str(path), "Why is the sky blue?"], out=out)
        assert code == 1
        assert "no answer" in out.getvalue()


class TestScenario:
    def test_list_names_every_profile(self):
        from repro.world.scenarios import SCENARIOS

        out = io.StringIO()
        assert main(["scenario", "list"], out=out) == 0
        output = out.getvalue()
        for name in SCENARIOS:
            assert name in output
        assert "seeds:" in output

    def test_build_writes_kb_and_telemetry(self, tmp_path):
        path = tmp_path / "kb-baseline.nt"
        out = io.StringIO()
        code = main(
            ["scenario", "build", "--name", "baseline", "--out", str(path)],
            out=out,
        )
        assert code == 0
        assert path.exists()
        output = out.getvalue()
        assert "scenario: name=baseline pages=" in output
        assert "fingerprint=" in output

    def test_build_unknown_profile_rejected(self):
        out = io.StringIO()
        code = main(["scenario", "build", "--name", "nope"], out=out)
        assert code == 2
        assert "unknown scenario" in out.getvalue()
        assert "baseline" in out.getvalue()

    def test_evaluate_prints_greppable_telemetry(self, tmp_path):
        import json

        report = tmp_path / "scores.json"
        out = io.StringIO()
        code = main(
            [
                "scenario", "evaluate", "--name", "baseline",
                "--enforce-floors", "--json", str(report),
            ],
            out=out,
        )
        assert code == 0
        lines = out.getvalue().splitlines()
        telemetry = [l for l in lines if l.startswith("scenario: name=")]
        assert len(telemetry) == 1
        assert "kb_f1=" in telemetry[0]
        data = json.loads(report.read_text())
        assert data["violations"] == []
        assert data["scores"][0]["name"] == "baseline"
        assert data["scores"][0]["kb"]["f1"] > 0.8

    def test_evaluate_unknown_profile_rejected(self):
        out = io.StringIO()
        code = main(["scenario", "evaluate", "--name", "nope"], out=out)
        assert code == 2
        assert "unknown scenario" in out.getvalue()
