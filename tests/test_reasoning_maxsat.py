"""Tests for repro.reasoning.maxsat."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.reasoning import HARD, Clause, WeightedMaxSat


class TestClause:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Clause((), 1.0)

    def test_nonpositive_soft_weight_rejected(self):
        with pytest.raises(ValueError):
            Clause((("x", True),), 0.0)

    def test_hard_flag(self):
        assert Clause((("x", True),), HARD).is_hard
        assert not Clause((("x", True),), 2.0).is_hard

    def test_satisfied(self):
        clause = Clause((("x", True), ("y", False)), 1.0)
        assert clause.satisfied({"x": True, "y": True})
        assert clause.satisfied({"x": False, "y": False})
        assert not clause.satisfied({"x": False, "y": True})


class TestSolver:
    def test_pure_soft_units_all_true(self):
        problem = WeightedMaxSat()
        for i in range(50):
            problem.add_soft_unit(f"x{i}", True, 1.0)
        result = problem.solve(seed=0)
        assert result.soft_cost == 0.0
        assert len(result.true_variables()) == 50

    def test_functional_conflict_keeps_heavier(self):
        problem = WeightedMaxSat()
        problem.add_soft_unit("a", True, 0.9)
        problem.add_soft_unit("b", True, 0.4)
        problem.add_hard([("a", False), ("b", False)])
        result = problem.solve(seed=0)
        assert result.assignment["a"] is True
        assert result.assignment["b"] is False
        assert result.soft_cost == pytest.approx(0.4)
        assert result.hard_violations == 0

    def test_unit_propagation_forces(self):
        problem = WeightedMaxSat()
        problem.add_hard([("a", True)])
        problem.add_hard([("a", False), ("b", True)])
        problem.add_soft_unit("b", False, 5.0)
        result = problem.solve(seed=0)
        assert result.assignment["a"] is True
        assert result.assignment["b"] is True  # forced despite the soft wish
        assert result.hard_violations == 0

    def test_forced_unsatisfiable_soft_does_not_stall(self):
        # A soft clause decided false by propagation must not abort search.
        problem = WeightedMaxSat()
        problem.add_hard([("dead", False)])
        problem.add_soft_unit("dead", True, 1.0)
        for i in range(20):
            problem.add_soft_unit(f"x{i}", True, 1.0)
        result = problem.solve(seed=0)
        assert len(result.true_variables()) == 20
        assert result.soft_cost == pytest.approx(1.0)

    def test_chain_implications(self):
        # (!a | b) hard, (!b | c) hard, a soft: everything comes true.
        problem = WeightedMaxSat()
        problem.add_hard([("a", False), ("b", True)])
        problem.add_hard([("b", False), ("c", True)])
        problem.add_soft_unit("a", True, 2.0)
        result = problem.solve(seed=0)
        assert result.assignment == {"a": True, "b": True, "c": True}

    def test_deterministic_per_seed(self):
        def build():
            problem = WeightedMaxSat()
            for i in range(30):
                problem.add_soft_unit(f"x{i}", i % 2 == 0, 0.5 + i * 0.01)
            problem.add_hard([("x0", False), ("x2", False)])
            return problem

        first = build().solve(seed=5)
        second = build().solve(seed=5)
        assert first.assignment == second.assignment

    def test_cost_of(self):
        problem = WeightedMaxSat()
        problem.add_soft_unit("a", True, 0.7)
        problem.add_hard([("a", False), ("b", True)])
        hard, soft = problem.cost_of({"a": True, "b": False})
        assert hard == 1
        assert soft == 0.0

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(0.1, 1.0), min_size=2, max_size=10))
    def test_mutual_exclusion_group_keeps_heaviest(self, weights):
        # All variables mutually exclusive: the optimum keeps exactly the
        # heaviest one (ties broken arbitrarily but cost must be optimal).
        problem = WeightedMaxSat()
        names = [f"v{i}" for i in range(len(weights))]
        for name, weight in zip(names, weights):
            problem.add_soft_unit(name, True, weight)
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                problem.add_hard([(names[i], False), (names[j], False)])
        result = problem.solve(seed=2, restarts=4)
        assert result.hard_violations == 0
        true_vars = result.true_variables()
        assert len(true_vars) <= 1
        optimal_cost = sum(weights) - max(weights)
        assert result.soft_cost == pytest.approx(optimal_cost, rel=1e-6)
