"""Tests for extraction.temporal and extraction.multilingual."""

import pytest

from repro.corpus import WikiConfig, build_wiki
from repro.extraction import (
    Candidate,
    align_by_links,
    align_by_strings,
    align_combined,
    attach_scopes,
    extract_year_attributes,
    harvest_labels,
    sentence_scope,
    tag_temporal,
)
from repro.kb import Entity, TimeSpan, ns
from repro.world import schema as ws


class TestTemporalTagger:
    def test_bare_year(self):
        tags = tag_temporal("He arrived in Lorvik in 1955 by train.")
        assert any(t.span == TimeSpan(1955, 1955) for t in tags)

    def test_span_expression(self):
        tags = tag_temporal("She led the company from 1990 to 2001.")
        span_tags = [t for t in tags if t.kind == "span"]
        assert span_tags and span_tags[0].span == TimeSpan(1990, 2001)

    def test_since_expression(self):
        tags = tag_temporal("He has worked there since 1988.")
        since = [t for t in tags if t.kind == "since"]
        assert since and since[0].span == TimeSpan(1988, None)

    def test_until_expression(self):
        tags = tag_temporal("She stayed until 1999.")
        until = [t for t in tags if t.kind == "until"]
        assert until and until[0].span == TimeSpan(None, 1999)

    def test_no_overlapping_tags(self):
        tags = tag_temporal("from 1990 to 2001")
        assert len(tags) == 1  # the years inside the span are not re-tagged

    def test_non_years_ignored(self):
        assert tag_temporal("He bought 5000 apples for 300 coins.") == []

    def test_invalid_span_order_skipped(self):
        tags = tag_temporal("from 2010 to 2001")
        assert all(t.kind != "span" for t in tags)


class TestSentenceScope:
    def test_span_preferred_over_point(self):
        scope = sentence_scope("In 1995 she led Acme from 1990 to 2001.")
        assert scope == TimeSpan(1990, 2001)

    def test_point_fallback(self):
        assert sentence_scope("They married in 1981.") == TimeSpan(1981, 1981)

    def test_none_when_no_expression(self):
        assert sentence_scope("They married in spring.") is None


class TestAttachScopes:
    def test_scoped_relation_gets_span(self, world):
        person = world.people[0]
        prize = world.prizes[0]
        candidate = Candidate(
            person, ws.WON_PRIZE, prize, 0.9, "test",
            evidence="Alan won the Meridian Prize in 1977.",
        )
        scoped = attach_scopes([candidate])[0]
        assert scoped.scope == TimeSpan(1977, 1977)
        assert scoped.to_triple().scope == TimeSpan(1977, 1977)

    def test_unscoped_relation_untouched(self, world):
        candidate = Candidate(
            world.people[0], ws.BORN_IN, world.cities[0], 0.9, "test",
            evidence="Alan was born in Lorvik in 1950.",
        )
        assert attach_scopes([candidate])[0].scope is None


class TestYearAttributes:
    def test_birth_year(self, world):
        person = world.people[0]
        triples = extract_year_attributes(
            person, "Alan Weber was born in Lorvik in 1950.", ws.PERSON
        )
        assert len(triples) == 1
        assert triples[0].predicate == ws.BIRTH_YEAR
        assert triples[0].object.value == "1950"

    def test_class_filter(self, world):
        company = world.companies[0]
        triples = extract_year_attributes(
            company, "Nimbus was founded in 1976.", ws.COMPANY
        )
        assert [t.predicate for t in triples] == [ws.FOUNDING_YEAR]
        none = extract_year_attributes(
            company, "Nimbus was born in 1976.", ws.COMPANY
        )
        assert [t.predicate for t in none] == []

    def test_no_year_no_facts(self, world):
        assert extract_year_attributes(world.people[0], "He was born early.") == []


class TestMultilingual:
    @pytest.fixture(scope="class")
    def sparse_wiki(self, world):
        return build_wiki(world, WikiConfig(seed=21, interlanguage_dropout=0.4))

    def test_harvest_labels_covers_languages(self, sparse_wiki):
        labels = harvest_labels(sparse_wiki)
        langs = {
            t.object.lang for t in labels.match(predicate=ns.LABEL)
        }
        assert {"en", "de", "fr", "es"} <= langs

    def test_link_alignment_perfect_but_partial(self, world, sparse_wiki):
        alignments = align_by_links(sparse_wiki, "de")
        assert alignments
        for alignment in alignments:
            page = sparse_wiki.pages[alignment.english]
            assert world.label_in(page.entity, "de") == alignment.foreign
        assert len(alignments) < len(sparse_wiki.pages)

    def test_string_alignment_recovers_translations(self, world, sparse_wiki):
        english = sorted(sparse_wiki.pages)[:40]
        foreign = [
            world.label_in(sparse_wiki.pages[t].entity, "de") for t in english
        ]
        alignments = align_by_strings(english, foreign)
        gold = dict(zip(english, foreign))
        correct = sum(1 for a in alignments if gold[a.english] == a.foreign)
        assert alignments
        assert correct / len(alignments) > 0.7

    def test_combined_beats_strings_alone(self, world, sparse_wiki):
        english = sorted(sparse_wiki.pages)
        foreign = [
            world.label_in(sparse_wiki.pages[t].entity, "de") for t in english
        ]
        gold = dict(zip(english, foreign))

        def accuracy(alignments):
            correct = sum(1 for a in alignments if gold.get(a.english) == a.foreign)
            return correct / len(english)

        combined = align_combined(sparse_wiki, "de", foreign)
        strings_only = align_by_strings(english, foreign)
        assert accuracy(combined) > accuracy(strings_only)

    def test_one_to_one(self, sparse_wiki, world):
        english = sorted(sparse_wiki.pages)[:30]
        foreign = [
            world.label_in(sparse_wiki.pages[t].entity, "fr") for t in english
        ]
        alignments = align_by_strings(english, foreign)
        assert len({a.english for a in alignments}) == len(alignments)
        assert len({a.foreign for a in alignments}) == len(alignments)


class TestScopeInference:
    def test_inferred_bounds_contain_gold_scopes(self, world):
        from repro.extraction import infer_scope_bounds
        from repro.kb import TripleStore
        import dataclasses

        # Strip the gold scopes, infer bounds, check containment.
        stripped = TripleStore(
            dataclasses.replace(t, scope=None) for t in world.store
        )
        inferred = infer_scope_bounds(stripped)
        checked = 0
        for gold in world.facts:
            if gold.scope is None:
                continue
            witness = inferred.get(*gold.spo())
            if witness is None or witness.scope is None:
                continue
            checked += 1
            assert witness.scope.begin <= gold.scope.begin
            if witness.scope.end is not None:
                assert gold.scope.end is None or gold.scope.end <= witness.scope.end
        assert checked > 50

    def test_existing_scopes_pass_through(self, world):
        from repro.extraction import infer_scope_bounds

        inferred = infer_scope_bounds(world.store)
        for gold in world.facts:
            if gold.scope is not None:
                witness = inferred.get(*gold.spo())
                assert witness.scope == gold.scope

    def test_world_has_no_lifespan_violations(self, world):
        from repro.extraction import lifespan_violations

        assert lifespan_violations(world.store) == []

    def test_violations_detected(self, world):
        from repro.extraction import lifespan_violations
        from repro.kb import TimeSpan, Triple, TripleStore
        from repro.world import schema as ws
        import dataclasses

        person = next(
            p for p in world.people
            if world.facts.one_object(p, ws.DEATH_YEAR) is not None
        )
        death = int(world.facts.one_object(person, ws.DEATH_YEAR).value)
        bad = Triple(
            person, ws.WORKS_AT, world.companies[0],
            scope=TimeSpan(death + 1, death + 5),
        )
        store = world.store.copy()
        store.add(bad)
        violations = lifespan_violations(store)
        assert bad in violations


class TestExactMaxSat:
    def test_matches_walksat_on_small_instance(self):
        from repro.reasoning import WeightedMaxSat

        problem = WeightedMaxSat()
        problem.add_soft_unit("a", True, 0.9)
        problem.add_soft_unit("b", True, 0.4)
        problem.add_soft_unit("c", True, 0.7)
        problem.add_hard([("a", False), ("b", False)])
        problem.add_hard([("b", False), ("c", False)])
        exact = problem.solve_exact()
        local = problem.solve(seed=0, restarts=4)
        assert exact.hard_violations == 0
        assert abs(exact.soft_cost - local.soft_cost) < 1e-9
        assert exact.assignment["a"] and exact.assignment["c"]
        assert not exact.assignment["b"]

    def test_size_limit(self):
        from repro.reasoning import WeightedMaxSat

        problem = WeightedMaxSat()
        for i in range(30):
            problem.add_soft_unit(f"x{i}", True, 1.0)
        import pytest as _pytest

        with _pytest.raises(ValueError):
            problem.solve_exact(max_variables=24)
