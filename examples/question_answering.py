#!/usr/bin/env python3
"""Deep question answering over a harvested knowledge base.

Builds a KB from the synthetic encyclopedia (the harvesting pipeline), then
answers natural-language questions against it through the template QA layer
— the Watson-style knowledge-centric service the tutorial motivates —
together with NED-backed semantic entity search.

Run:  python examples/question_answering.py
"""

from repro.analytics import EntitySearch, TemplateQA
from repro.corpus import build_wiki
from repro.extraction import NameResolver
from repro.pipeline import KnowledgeBaseBuilder
from repro.world import WorldConfig, generate_world
from repro.world import schema as ws


def main() -> None:
    print("Building the knowledge base ...")
    world = generate_world(WorldConfig(seed=7, n_people=120))
    wiki = build_wiki(world)
    kb, report = KnowledgeBaseBuilder(wiki, aliases=world.aliases).build()
    print(f"  {report.accepted_facts} facts accepted, KB size {len(kb)}\n")

    resolver = NameResolver()
    for title, page in wiki.pages.items():
        resolver.add(title, page.entity, count=5)
    qa = TemplateQA(kb, resolver)

    # Generate questions from the world so the script works for any seed.
    person = world.people[0]
    founded = next(iter(world.facts.match(predicate=ws.FOUNDED)), None)
    capital = next(iter(world.facts.match(predicate=ws.CAPITAL_OF)))
    company = world.companies[0]
    questions = [
        f"Where was {world.name[person]} born?",
        f"When was {world.name[person]} born?",
        f"What is the capital of {world.name[capital.object]}?",
        f"Where is {world.name[company]} headquartered?",
    ]
    if founded is not None:
        questions.append(f"Who founded {world.name[founded.object]}?")
    questions.append("Why is the sky blue?")  # unsupported on purpose

    for question in questions:
        answers = qa.answer(question)
        if answers:
            rendered = ", ".join(
                f"{a.text} ({a.confidence:.2f})" for a in answers[:3]
            )
        else:
            rendered = "(no answer)"
        print(f"Q: {question}\nA: {rendered}\n")

    # Semantic entity search: keywords + class constraint.
    search = EntitySearch(kb)
    birth_city = world.facts.one_object(person, ws.BORN_IN)
    query = world.name[birth_city]
    print(f'Search: entities matching "{query}" restricted to persons')
    from repro.taxonomy import wordnet_class

    hits = search.search(query, class_filter=wordnet_class("person.n.01"), top_k=5)
    for hit in hits:
        print(f"  {hit.score:6.2f}  {hit.name}")


if __name__ == "__main__":
    main()
