#!/usr/bin/env python3
"""Build "a YAGO": a full knowledge base from the synthetic encyclopedia.

The end-to-end harvesting pipeline of the tutorial's sections 2-3:

1. generate a ground-truth world and its synthetic Wikipedia;
2. harvest the class taxonomy from the category system (WikiTaxonomy/YAGO);
3. harvest facts from infoboxes and text (patterns + year attributes);
4. attach temporal scopes;
5. clean with weighted-MaxSat consistency reasoning;
6. harvest multilingual labels from interlanguage links;
7. evaluate the result against the (normally unknowable) ground truth.

Run:  python examples/build_kb_from_wiki.py
"""

from repro.corpus import build_wiki
from repro.eval import print_table
from repro.pipeline import KnowledgeBaseBuilder
from repro.world import WorldConfig, generate_world
from repro.world import schema as ws

FACT_RELATIONS = {s.relation for s in ws.RELATION_SPECS} | set(ws.LITERAL_RELATIONS)


def main() -> None:
    print("Generating world and encyclopedia ...")
    world = generate_world(WorldConfig(seed=7, n_people=150))
    wiki = build_wiki(world)
    print(f"  {len(world.all_entities())} entities, {len(wiki.pages)} pages")

    print("Building the knowledge base ...")
    builder = KnowledgeBaseBuilder(wiki, aliases=world.aliases)
    kb, report = builder.build()

    print_table(
        "Pipeline report",
        ["stage", "count"],
        [
            ["pages", report.pages],
            ["sentences", report.sentences],
            ["type triples (category integration)", report.type_triples],
            ["infobox candidates", report.infobox_candidates],
            ["pattern candidates", report.pattern_candidates],
            ["year-attribute candidates", report.year_candidates],
            ["merged candidate facts", report.merged_facts],
            ["rejected by consistency reasoning", report.consistency.rejected],
            ["accepted facts", report.accepted_facts],
            ["label triples (multilingual)", report.label_triples],
            ["total KB size", len(kb)],
        ],
    )

    # Evaluate against the ground truth.
    facts = [t for t in kb if t.predicate in FACT_RELATIONS]
    correct = sum(
        1 for t in facts
        if world.facts.contains_fact(t.subject, t.predicate, t.object)
    )
    gold = [t for t in world.facts if t.predicate in FACT_RELATIONS]
    recalled = sum(
        1 for t in gold if kb.contains_fact(t.subject, t.predicate, t.object)
    )
    print_table(
        "Quality against the ground-truth world",
        ["metric", "value"],
        [
            ["fact precision", correct / len(facts)],
            ["fact recall", recalled / len(gold)],
        ],
    )

    # Show a harvested entity close up.
    person = world.people[0]
    print(f"Everything the KB knows about {world.name[person]}:")
    for triple in sorted(kb.match(subject=person), key=str):
        print("  ", triple)


if __name__ == "__main__":
    main()
