#!/usr/bin/env python3
"""Quickstart: build a small knowledge base, query it, save and reload it.

Walks the SPO data model from the tutorial's section 2: create entities and
relations, assert facts (with confidence and temporal scope), run
conjunctive queries, apply taxonomy reasoning, and round-trip the store
through the line serialization format.

Run:  python examples/quickstart.py
"""

from repro.kb import (
    Entity,
    Pattern,
    Query,
    Relation,
    Taxonomy,
    TimeSpan,
    Triple,
    TripleStore,
    Var,
    ns,
    save,
    load,
    schema_triples,
    string_literal,
)


def main() -> None:
    # --- terms -----------------------------------------------------------
    person = Entity("cls:person")
    company = Entity("cls:company")
    city = Entity("cls:city")
    jobs = Entity("demo:Steve_Jobs")
    apple = Entity("demo:Apple")
    sf = Entity("demo:San_Francisco")
    founded = Relation("demo:founded")
    born_in = Relation("demo:bornIn")
    ceo_of = Relation("demo:ceoOf")

    # --- build the store ---------------------------------------------------
    kb = TripleStore()
    kb.add_all(schema_triples(born_in, domain=person, range_=city, functional=True))
    kb.add_all(schema_triples(founded, domain=person, range_=company))
    kb.add(Triple(jobs, ns.TYPE, person))
    kb.add(Triple(apple, ns.TYPE, company))
    kb.add(Triple(sf, ns.TYPE, city))
    kb.add(Triple(jobs, ns.LABEL, string_literal("Steve Jobs", "en")))
    kb.add(Triple(jobs, born_in, sf, confidence=0.98, source="wiki_Jobs"))
    kb.add(Triple(jobs, founded, apple, confidence=0.95))
    # A fact that only held during a timespan:
    kb.add(Triple(jobs, ceo_of, apple, scope=TimeSpan(1997, 2011)))

    print(f"Store: {kb}")
    print(f"Labels of Jobs: {kb.labels_of(jobs)}")

    # --- pattern matching ---------------------------------------------------
    print("\nAll facts about Steve Jobs:")
    for triple in kb.match(subject=jobs):
        print("  ", triple, f"(conf={triple.confidence})")

    # --- temporal reasoning --------------------------------------------------
    ceo_fact = kb.get(jobs, ceo_of, apple)
    print(f"\nWas Jobs CEO in 2005? {ceo_fact.holds_in(2005)}")
    print(f"Was Jobs CEO in 1990? {ceo_fact.holds_in(1990)}")

    # --- conjunctive queries -------------------------------------------------
    query = Query(
        [
            Pattern(Var("p"), founded, Var("c")),
            Pattern(Var("p"), born_in, Var("where")),
        ]
    )
    print("\nWho founded what, and where were they born?")
    for binding in query.run(kb):
        print(f"  {binding['p']} founded {binding['c']}, born in {binding['where']}")

    # --- taxonomy reasoning ---------------------------------------------------
    taxonomy = Taxonomy(kb)
    print(f"\nJobs is a person? {taxonomy.is_instance_of(jobs, person)}")
    print(f"bornIn is functional? {taxonomy.is_functional(born_in)}")

    # --- serialization ----------------------------------------------------------
    path = "/tmp/quickstart_kb.nt"
    count = save(kb, path)
    reloaded = load(path)
    print(f"\nSaved {count} triples to {path}; reloaded {len(reloaded)}.")
    assert {t.spo() for t in reloaded} == {t.spo() for t in kb}
    print("Round trip OK.")


if __name__ == "__main__":
    main()
