#!/usr/bin/env python3
"""The tutorial's motivating application: track two product families.

"An example application could aim to track and compare two entities in
social media over an extended timespan (e.g., the Apple iPhone vs Samsung
Galaxy families).  In this context, knowledge about entities is a key
asset."  (Suchanek & Weikum, section 4.)

This script generates a 3-year synthetic social stream about the world's
two rival smartphone families, runs the KB-backed tracker, and prints the
per-family monthly dashboard plus the accuracy gap over plain string
matching.

Run:  python examples/entity_tracking.py
"""

from repro.analytics import ProductTracker, volume_correlation
from repro.corpus import SocialConfig, generate_stream
from repro.eval import print_table
from repro.world import WorldConfig, generate_world


def sparkline(values, width: int = 24) -> str:
    """A tiny ASCII chart for a monthly series."""
    if not values:
        return ""
    blocks = " ▁▂▃▄▅▆▇█"
    peak = max(values) or 1
    step = max(len(values) // width, 1)
    sampled = values[::step][:width]
    return "".join(blocks[int(v / peak * (len(blocks) - 1))] for v in sampled)


def main() -> None:
    world = generate_world(WorldConfig(seed=7))
    stream = generate_stream(
        world, SocialConfig(seed=8, months=36, p_family_alias=0.5)
    )
    print(
        f"Stream: {len(stream.posts)} posts over 36 months about "
        f"{' vs '.join(stream.families)}"
    )

    tracker = ProductTracker(world.store, world.product_family)
    results = {
        method: tracker.track(stream, method, start_year=stream.start_year)
        for method in ("string", "kb")
    }

    print_table(
        "Assignment quality (which exact product generation?)",
        ["method", "product accuracy", "sentiment accuracy"],
        [
            [m, r.assignment_accuracy, r.sentiment_accuracy]
            for m, r in results.items()
        ],
    )

    kb_result = results["kb"]
    print("Monthly volume (KB method) — the iPhone-vs-Galaxy chart:")
    for family in stream.families:
        series = kb_result.volume[family]
        correlation = volume_correlation(series, stream.gold_volume[family])
        print(f"  {family:>8} |{sparkline(series)}| corr={correlation:.3f}")

    print("\nMonthly sentiment (KB method):")
    for family in stream.families:
        values = [s + 1.0 for s in kb_result.sentiment[family]]  # shift >= 0
        print(f"  {family:>8} |{sparkline(values)}|")

    print("\nSample resolved posts:")
    for post in stream.posts[:5]:
        product = tracker.resolve(
            post.surface, post.month, stream.start_year, "kb"
        )
        marker = "OK " if product == post.product else "MISS"
        print(
            f"  [{marker}] month {post.month:>2}  \"{post.text}\"  ->  "
            f"{world.name[product] if product else '???'}"
        )


if __name__ == "__main__":
    main()
