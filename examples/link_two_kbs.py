#!/usr/bin/env python3
"""Entity linkage: align two knowledge resources and merge them.

The Web of Linked Data (tutorial sections 1 and 4) rests on owl:sameAs
links between independently built KBs.  This script simulates the problem:
two snapshots of the same underlying world — one clean, one with noisy
names, missing facts, and foreign identifiers — are aligned with blocking
+ the graph-propagation matcher, turned into owl:sameAs triples, and
merged into one canonicalized KB.

Run:  python examples/link_two_kbs.py
"""

from repro.eval import print_table
from repro.kb import TripleStore, canonicalize
from repro.linkage import (
    GraphMatcher,
    StringMatcher,
    blocking_recall,
    key_blocking,
    make_linkage_task,
    pair_prf,
    pairs_to_sameas,
)
from repro.world import WorldConfig, generate_world


def main() -> None:
    world = generate_world(WorldConfig(seed=7))
    task = make_linkage_task(world, seed=11, name_noise=0.4, fact_dropout=0.3)
    print(
        f"Side A: {len(task.side_a)} records   "
        f"Side B: {len(task.side_b)} records (noisy names, 30% facts missing)"
    )
    print("Example noisy pairs:")
    for a, b in sorted(task.gold, key=lambda p: p[0].id)[:5]:
        print(f"  {task.side_a[a].name!r:30} <-> {task.side_b[b].name!r}")

    blocked = key_blocking(task.side_a, task.side_b)
    print(
        f"\nBlocking: {len(blocked.pairs)} candidate pairs "
        f"({blocked.reduction_ratio:.1%} of the pair space pruned, "
        f"gold recall {blocking_recall(blocked, task.gold):.3f})"
    )

    rows = []
    matchers = [
        ("string threshold", StringMatcher(threshold=0.9)),
        ("graph propagation", GraphMatcher()),
    ]
    best_matches = None
    for label, matcher in matchers:
        matches = matcher.match(blocked.pairs, task.side_a, task.side_b)
        prf = pair_prf([m.pair for m in matches], task.gold)
        rows.append([label, len(matches), prf.precision, prf.recall, prf.f1])
        if label == "graph propagation":
            best_matches = matches
    print_table("Matcher comparison", ["method", "matches", "P", "R", "F1"], rows)

    # Merge: sameAs triples + canonicalization onto one identifier space.
    from repro.kb import Relation, Triple, ns, string_literal

    sameas = pairs_to_sameas(best_matches)
    merged = TripleStore()
    for side in (task.side_a, task.side_b):
        for record in side.values():
            merged.add(
                Triple(record.entity, ns.PREF_LABEL, string_literal(record.name))
            )
            for relation, neighbors in record.neighbors.items():
                for neighbor in neighbors:
                    merged.add(
                        Triple(record.entity, Relation(f"rel:{relation}"), neighbor)
                    )
    before = len(merged.entities())
    merged.merge(sameas)
    unified = canonicalize(merged)
    after = len(unified.entities())
    print(
        f"Merged KB: {before} entities before linking, "
        f"{after} after canonicalizing {len(sameas)} owl:sameAs links."
    )


if __name__ == "__main__":
    main()
