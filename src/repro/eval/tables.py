"""ASCII table rendering used by every benchmark harness.

Benches print the same rows a paper table would contain; this module keeps
the formatting in one place so the output of ``pytest benchmarks/`` reads as
a set of small, aligned result tables.
"""

from __future__ import annotations

from typing import Sequence


def format_cell(value) -> str:
    """Render one table cell: floats get 3 decimals, the rest str()."""
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence]
) -> str:
    """Render a titled, column-aligned ASCII table."""
    text_rows = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "-" * max(len(title), sum(widths) + 2 * (len(widths) - 1))]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Print a rendered table surrounded by blank lines."""
    print()
    print(render_table(title, headers, rows))
    print()
