"""The scenario quality harness: build each stress profile, score it.

Every profile in :data:`repro.world.scenarios.SCENARIOS` is built through
the *real* pipeline (:class:`repro.pipeline.KnowledgeBaseBuilder` — same
extractors, same temporal scoping, same MaxSat reasoning as ``repro
build``) and scored against the scenario's gold facts at two stages:

* **extraction** — the merged pre-consistency fact store
  (``BuildReport.merged_store``), measuring what the harvesters got right
  before any cleaning;
* **kb** — the post-reasoning knowledge base, measuring what survives
  consistency reasoning (on ``adversarial_noise`` the gap between the two
  is exactly the value MaxSat adds).

``burst_social`` additionally runs its post spike through
:class:`repro.pipeline.IncrementalBuilder` as a delta ingest and asserts
the result is byte-identical to the one-shot build of the folded corpus —
the scenario-level restatement of the incremental == full-rebuild
contract.

:data:`QUALITY_FLOORS` pins per-scenario minimums; CI fails a PR whose
change drops any scenario below its floor (:func:`check_floors`), which is
what makes quality — not just speed or bytes — a per-PR regression axis.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..determinism.stable import canonical_kb_text
from ..pipeline.builder import BuildConfig, KnowledgeBaseBuilder
from ..world.scenarios import (
    FACT_RELATIONS,
    SCENARIOS,
    ScenarioBundle,
    build_scenario,
)
from .metrics import PRF, precision_recall


@dataclass(slots=True)
class ScenarioScore:
    """One scenario's build-and-score outcome."""

    name: str
    pages: int = 0
    sentences: int = 0
    triples: int = 0
    build_seconds: float = 0.0
    backend: str = "serial"
    workers: int = 1
    extraction: PRF = field(default_factory=lambda: PRF(0.0, 0.0, 0.0))
    kb: PRF = field(default_factory=lambda: PRF(0.0, 0.0, 0.0))
    knobs: dict[str, float] = field(default_factory=dict)
    fingerprint: str = ""
    #: Burst leg (``incremental_burst`` scenarios only): was the delta
    #: ingest byte-identical to the one-shot build?
    incremental_identical: Optional[bool] = None
    ingest_pages: int = 0
    ingest_seconds: float = 0.0

    def telemetry(self) -> str:
        """The greppable one-line summary (``scenario: key=value ...``)."""
        parts = [
            f"name={self.name}",
            f"pages={self.pages}",
            f"sentences={self.sentences}",
            f"triples={self.triples}",
            f"build_s={self.build_seconds:.3f}",
            f"backend={self.backend}",
            f"workers={self.workers}",
            f"extraction_p={self.extraction.precision:.3f}",
            f"extraction_r={self.extraction.recall:.3f}",
            f"extraction_f1={self.extraction.f1:.3f}",
            f"kb_p={self.kb.precision:.3f}",
            f"kb_r={self.kb.recall:.3f}",
            f"kb_f1={self.kb.f1:.3f}",
        ]
        if self.incremental_identical is not None:
            parts.append(
                f"incremental_identical={str(self.incremental_identical).lower()}"
            )
            parts.append(f"ingest_pages={self.ingest_pages}")
            parts.append(f"ingest_s={self.ingest_seconds:.3f}")
        return "scenario: " + " ".join(parts)


#: Pinned per-scenario quality minimums (F1 against gold facts), set with
#: margin below the measured values at the pinned seeds so ordinary noise
#: does not flap CI while real quality regressions trip it.  The
#: ``adversarial_noise`` floors additionally encode the reasoning win: the
#: KB precision floor sits above the extraction precision *ceiling* a
#: no-reasoning build would score.
QUALITY_FLOORS: dict[str, dict[str, float]] = {
    # measured at pin time: ext_f1=0.911 kb_f1=0.930 kb_p=1.000
    "baseline": {"extraction_f1": 0.88, "kb_f1": 0.90, "kb_p": 0.98},
    # measured: ext_f1=0.906 kb_f1=0.927 (plus incremental_identical=true)
    "burst_social": {"extraction_f1": 0.87, "kb_f1": 0.89},
    # measured: ext_p=0.791 ext_f1=0.818 kb_p=0.939 kb_f1=0.891 — the kb_p
    # floor sits well above the extraction precision, so a PR that breaks
    # the reasoner's cleanup (not just the extractors) trips it.
    "adversarial_noise": {"extraction_f1": 0.78, "kb_f1": 0.85, "kb_p": 0.90},
    # measured: ext_f1=0.873 kb_f1=0.896
    "heavy_ambiguity": {"extraction_f1": 0.84, "kb_f1": 0.86},
    # measured: ext_f1=0.878 kb_f1=0.895
    "temporal_drift": {"extraction_f1": 0.84, "kb_f1": 0.86},
    # measured: ext_f1=0.898 kb_f1=0.922
    "multilingual_skew": {"extraction_f1": 0.86, "kb_f1": 0.89},
}


def _fact_keys(store) -> set:
    """(s, p, o) keys of a store's relational facts (the scorable subset)."""
    return {
        triple.spo()
        for triple in store
        if triple.predicate in FACT_RELATIONS
    }


def _score_stores(
    score: ScenarioScore, bundle: ScenarioBundle, kb, merged_store
) -> None:
    gold = bundle.gold_fact_keys()
    if merged_store is not None:
        score.extraction = precision_recall(_fact_keys(merged_store), gold)
    score.kb = precision_recall(_fact_keys(kb), gold)


def _burst_leg(
    score: ScenarioScore, bundle: ScenarioBundle, kb, config: BuildConfig
) -> None:
    """Replay the burst as a delta ingest; assert byte-identity to ``kb``.

    Seed-ingests the pre-fold wiki, ingests the post-fold delta batch
    (compacting), and compares the snapshot's canonical serialization to
    the one-shot build's.
    """
    from ..kb.segments import open_snapshot
    from ..pipeline.incremental import IncrementalBuilder

    assert bundle.base_wiki is not None
    base = bundle.base_wiki
    with tempfile.TemporaryDirectory(prefix="repro-scenario-") as tmp:
        directory = os.path.join(tmp, "segments")
        with IncrementalBuilder(directory, config=config) as builder:
            builder.ingest(
                pages=[base.pages[title] for title in sorted(base.pages)],
                aliases=bundle.world.aliases,
            )
            started = time.perf_counter()
            report = builder.ingest(pages=bundle.changed_pages, compact=True)
            score.ingest_seconds = time.perf_counter() - started
            score.ingest_pages = report.batch_pages
        with open_snapshot(directory) as snapshot:
            score.incremental_identical = (
                canonical_kb_text(snapshot) == canonical_kb_text(kb)
            )


def evaluate_scenario(
    name: str,
    workers: int = 0,
    backend: str = "auto",
    burst_leg: bool = True,
) -> ScenarioScore:
    """Build one scenario through the real pipeline and score it."""
    bundle = build_scenario(name)
    config = BuildConfig(
        workers=workers, backend=backend, keep_merged_store=True
    )
    builder = KnowledgeBaseBuilder(
        bundle.wiki, aliases=bundle.world.aliases, config=config
    )
    started = time.perf_counter()
    kb, report = builder.build()
    elapsed = time.perf_counter() - started

    score = ScenarioScore(
        name=bundle.spec.name,
        pages=report.pages,
        sentences=report.sentences,
        triples=len(kb),
        build_seconds=elapsed,
        backend=report.backend,
        workers=report.workers,
        knobs=bundle.knobs(),
        fingerprint=bundle.fingerprint(),
    )
    _score_stores(score, bundle, kb, report.merged_store)
    if burst_leg and bundle.spec.incremental_burst:
        # The delta leg replays the same logical build, so it must use a
        # config whose pinned (byte-affecting) fields match the one-shot's.
        _burst_leg(score, bundle, kb, BuildConfig(workers=workers, backend=backend))
    return score


def evaluate_matrix(
    names: Optional[Sequence[str]] = None,
    workers: int = 0,
    backend: str = "auto",
    burst_leg: bool = True,
) -> list[ScenarioScore]:
    """Score every (or the named) scenario profile, in registry order."""
    selected = list(names) if names is not None else list(SCENARIOS)
    return [
        evaluate_scenario(
            name, workers=workers, backend=backend, burst_leg=burst_leg
        )
        for name in selected
    ]


def check_floors(scores: Sequence[ScenarioScore]) -> list[str]:
    """Violations of the pinned quality floors (empty = all good).

    Also fails a burst scenario whose incremental leg diverged from the
    one-shot build — a byte-identity regression is a quality regression.
    """
    violations: list[str] = []
    for score in scores:
        floors = QUALITY_FLOORS.get(score.name)
        if floors is None:
            continue
        measured = {
            "extraction_f1": score.extraction.f1,
            "kb_f1": score.kb.f1,
            "extraction_p": score.extraction.precision,
            "extraction_r": score.extraction.recall,
            "kb_p": score.kb.precision,
            "kb_r": score.kb.recall,
        }
        for metric, floor in floors.items():
            value = measured.get(metric)
            if value is None:
                violations.append(
                    f"{score.name}: unknown floor metric {metric!r}"
                )
            elif value < floor:
                violations.append(
                    f"{score.name}: {metric}={value:.3f} below floor {floor:.3f}"
                )
        if score.incremental_identical is False:
            violations.append(
                f"{score.name}: incremental ingest diverged from the "
                "one-shot build"
            )
    return violations
