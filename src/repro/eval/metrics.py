"""Evaluation metrics shared by every experiment: P/R/F1, accuracy, MAP.

All metrics are computed from explicit predicted/gold collections so callers
never have to thread counts around, and each returns a plain float (or a
:class:`PRF` triple) suitable for table rendering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence


@dataclass(frozen=True, slots=True)
class PRF:
    """A precision/recall/F1 triple."""

    precision: float
    recall: float
    f1: float

    def __str__(self) -> str:
        return f"P={self.precision:.3f} R={self.recall:.3f} F1={self.f1:.3f}"


def f1_score(precision: float, recall: float) -> float:
    """Harmonic mean of precision and recall (0 when both are 0)."""
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def precision_recall(
    predicted: Iterable[Hashable], gold: Iterable[Hashable]
) -> PRF:
    """Set-based precision/recall/F1 of predictions against a gold set.

    Empty prediction sets have precision 1 by convention (nothing wrong was
    said); empty gold sets have recall 1 (nothing was missed).
    """
    predicted_set, gold_set = set(predicted), set(gold)
    correct = len(predicted_set & gold_set)
    precision = correct / len(predicted_set) if predicted_set else 1.0
    recall = correct / len(gold_set) if gold_set else 1.0
    return PRF(precision, recall, f1_score(precision, recall))


def accuracy(predictions: Sequence[Hashable], gold: Sequence[Hashable]) -> float:
    """Fraction of positions where prediction equals gold."""
    if len(predictions) != len(gold):
        raise ValueError(
            f"length mismatch: {len(predictions)} predictions vs {len(gold)} gold"
        )
    if not gold:
        return 1.0
    correct = sum(1 for p, g in zip(predictions, gold) if p == g)
    return correct / len(gold)


def precision_at_k(ranked: Sequence[Hashable], gold: Iterable[Hashable], k: int) -> float:
    """Precision of the top-k of a ranked list against a gold set."""
    if k <= 0:
        raise ValueError("k must be positive")
    gold_set = set(gold)
    top = ranked[:k]
    if not top:
        return 0.0
    return sum(1 for item in top if item in gold_set) / len(top)


def average_precision(ranked: Sequence[Hashable], gold: Iterable[Hashable]) -> float:
    """Average precision of a ranked list against a gold set."""
    gold_set = set(gold)
    if not gold_set:
        return 1.0
    hits, total = 0, 0.0
    for rank, item in enumerate(ranked, start=1):
        if item in gold_set:
            hits += 1
            total += hits / rank
    return total / len(gold_set)


def mean_average_precision(
    runs: Sequence[tuple[Sequence[Hashable], Iterable[Hashable]]]
) -> float:
    """Mean of :func:`average_precision` over (ranked, gold) runs."""
    if not runs:
        return 0.0
    return sum(average_precision(ranked, gold) for ranked, gold in runs) / len(runs)


def micro_prf(
    per_item: Iterable[tuple[int, int, int]]
) -> PRF:
    """Micro-averaged PRF from (correct, predicted, gold) count triples."""
    correct = predicted = gold = 0
    for c, p, g in per_item:
        correct += c
        predicted += p
        gold += g
    precision = correct / predicted if predicted else 1.0
    recall = correct / gold if gold else 1.0
    return PRF(precision, recall, f1_score(precision, recall))


def macro_prf(scores: Sequence[PRF]) -> PRF:
    """Macro average of per-class PRF triples."""
    if not scores:
        return PRF(0.0, 0.0, 0.0)
    precision = sum(s.precision for s in scores) / len(scores)
    recall = sum(s.recall for s in scores) / len(scores)
    return PRF(precision, recall, f1_score(precision, recall))


def brier_score(probabilities: Sequence[float], outcomes: Sequence[bool]) -> float:
    """Mean squared error of probabilistic predictions (lower is better)."""
    if len(probabilities) != len(outcomes):
        raise ValueError("length mismatch between probabilities and outcomes")
    if not outcomes:
        return 0.0
    total = sum((p - (1.0 if o else 0.0)) ** 2 for p, o in zip(probabilities, outcomes))
    return total / len(outcomes)


def calibration_bins(
    probabilities: Sequence[float], outcomes: Sequence[bool], bins: int = 10
) -> list[tuple[float, float, int]]:
    """Reliability diagram data: (mean predicted, observed rate, count) per bin."""
    if len(probabilities) != len(outcomes):
        raise ValueError("length mismatch between probabilities and outcomes")
    buckets: list[list[tuple[float, bool]]] = [[] for __ in range(bins)]
    for p, o in zip(probabilities, outcomes):
        index = min(int(p * bins), bins - 1)
        buckets[index].append((p, o))
    result = []
    for bucket in buckets:
        if not bucket:
            continue
        mean_p = sum(p for p, __ in bucket) / len(bucket)
        rate = sum(1 for __, o in bucket if o) / len(bucket)
        result.append((mean_p, rate, len(bucket)))
    return result
