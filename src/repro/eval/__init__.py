"""Evaluation metrics and table rendering for experiments E1-E12."""

from .metrics import (
    PRF,
    accuracy,
    average_precision,
    brier_score,
    calibration_bins,
    f1_score,
    macro_prf,
    mean_average_precision,
    micro_prf,
    precision_at_k,
    precision_recall,
)
from .tables import format_cell, print_table, render_table

__all__ = [
    "PRF",
    "accuracy",
    "average_precision",
    "brier_score",
    "calibration_bins",
    "f1_score",
    "macro_prf",
    "mean_average_precision",
    "micro_prf",
    "precision_at_k",
    "precision_recall",
    "format_cell",
    "print_table",
    "render_table",
]
