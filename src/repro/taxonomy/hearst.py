"""Hearst-pattern harvesting of instance-class pairs from text.

The Web-based complement to category analysis (tutorial section 2):
lexico-syntactic patterns like "<class> such as <X>, <Y>, and <Z>" or
"<X> is a <class>" yield (instance, class) pairs directly from sentences.
Each pair is counted across the corpus; support doubles as confidence.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from ..nlp import lexicon as lx
from ..nlp.lemmatize import lemma
from ..nlp.pipeline import Analysis, analyze


@dataclass(frozen=True, slots=True)
class IsAPair:
    """An extracted (instance surface form, class lemma) pair."""

    instance: str
    class_lemma: str


def extract_pairs(analysis: Analysis) -> list[IsAPair]:
    """Apply all Hearst patterns to one analyzed sentence."""
    pairs: list[IsAPair] = []
    pairs.extend(_such_as(analysis))
    pairs.extend(_including(analysis))
    pairs.extend(_and_other(analysis))
    pairs.extend(_is_a(analysis))
    return pairs


def harvest(sentences: Iterable[str]) -> Counter:
    """Count (instance, class) pairs over a corpus of raw sentences."""
    counts: Counter = Counter()
    for sentence in sentences:
        for pair in extract_pairs(analyze(sentence)):
            counts[pair] += 1
    return counts


def _mention_list_after(analysis: Analysis, start_token: int) -> list[str]:
    """Proper-noun mentions in the enumeration starting at a token index."""
    names = []
    for mention in analysis.mentions:
        if mention.token_start >= start_token:
            names.append(mention.text)
    return names


def _class_noun_before(analysis: Analysis, token_index: int) -> str | None:
    """The common-noun lemma directly before a pattern trigger."""
    j = token_index - 1
    if j >= 0 and analysis.tags[j] == lx.NOUN:
        return lemma(analysis.tokens[j].text)
    return None


def _such_as(analysis: Analysis) -> list[IsAPair]:
    """"<class> such as X, Y, and Z"."""
    tokens = [t.text.lower() for t in analysis.tokens]
    pairs = []
    for i in range(len(tokens) - 1):
        if tokens[i] == "such" and tokens[i + 1] == "as":
            class_lemma = _class_noun_before(analysis, i)
            if class_lemma is None:
                continue
            for name in _mention_list_after(analysis, i + 2):
                pairs.append(IsAPair(name, class_lemma))
    return pairs


def _including(analysis: Analysis) -> list[IsAPair]:
    """"many <class>, including X and Y"."""
    tokens = [t.text.lower() for t in analysis.tokens]
    pairs = []
    for i, token in enumerate(tokens):
        if token != "including":
            continue
        # Walk back over punctuation to the class noun.
        j = i - 1
        while j >= 0 and analysis.tags[j] == lx.PUNCT:
            j -= 1
        if j < 0 or analysis.tags[j] != lx.NOUN:
            continue
        class_lemma = lemma(analysis.tokens[j].text)
        for name in _mention_list_after(analysis, i + 1):
            pairs.append(IsAPair(name, class_lemma))
    return pairs


def _and_other(analysis: Analysis) -> list[IsAPair]:
    """"X, Y, and other <class>"."""
    tokens = [t.text.lower() for t in analysis.tokens]
    pairs = []
    for i in range(len(tokens) - 1):
        if tokens[i] == "other" and analysis.tags[i + 1] == lx.NOUN:
            class_lemma = lemma(analysis.tokens[i + 1].text)
            for mention in analysis.mentions:
                if mention.token_end <= i:
                    pairs.append(IsAPair(mention.text, class_lemma))
    return pairs


def _is_a(analysis: Analysis) -> list[IsAPair]:
    """"X is a/an <class>" (copula with indefinite article)."""
    tokens = [t.text.lower() for t in analysis.tokens]
    pairs = []
    for i in range(len(tokens) - 2):
        if tokens[i] in ("is", "was") and tokens[i + 1] in ("a", "an"):
            # The class noun is the next NOUN after the article (skipping
            # adjectives: "is a famous scientist").
            j = i + 2
            while j < len(tokens) and analysis.tags[j] == lx.ADJ:
                j += 1
            if j >= len(tokens) or analysis.tags[j] != lx.NOUN:
                continue
            class_lemma = lemma(analysis.tokens[j].text)
            for mention in analysis.mentions:
                if mention.token_end <= i:
                    pairs.append(IsAPair(mention.text, class_lemma))
                    break  # only the nearest subject mention
    return pairs
