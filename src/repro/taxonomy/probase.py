"""Probase-style probabilistic taxonomy from Hearst evidence.

Probase (Wu et al., SIGMOD 2012 — reference [32] of the tutorial) builds a
*probabilistic* isA taxonomy: instead of hard class memberships, every
(instance, concept) pair carries frequencies from which typicality scores
are derived —

* ``P(concept | instance)`` — what is "Corvain" most likely to be?
* ``P(instance | concept)`` — what is a typical "city"?

and *conceptualization* ranks the concepts that best explain a *set* of
instances (the basis of Probase's text-understanding applications).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Iterable

from .hearst import IsAPair


@dataclass(frozen=True, slots=True)
class ScoredConcept:
    """A concept with its probability under some conditioning."""

    concept: str
    probability: float


class ProbabilisticTaxonomy:
    """Frequency-backed isA knowledge with typicality scores."""

    def __init__(self, smoothing: float = 0.0) -> None:
        self.smoothing = smoothing
        self._pair_counts: Counter = Counter()
        self._instance_totals: Counter = Counter()
        self._concept_totals: Counter = Counter()
        self._instances_of: dict[str, set[str]] = defaultdict(set)
        self._concepts_of: dict[str, set[str]] = defaultdict(set)

    # --------------------------------------------------------------- loading

    def add_evidence(self, instance: str, concept: str, count: int = 1) -> None:
        """Record ``count`` isA observations for (instance, concept)."""
        if count < 1:
            raise ValueError("count must be positive")
        self._pair_counts[(instance, concept)] += count
        self._instance_totals[instance] += count
        self._concept_totals[concept] += count
        self._instances_of[concept].add(instance)
        self._concepts_of[instance].add(concept)

    def add_pairs(self, counts: dict[IsAPair, int]) -> None:
        """Load a Hearst-harvest Counter (from :mod:`repro.taxonomy.hearst`)."""
        for pair, count in counts.items():
            self.add_evidence(pair.instance, pair.class_lemma, count)

    # ---------------------------------------------------------------- scores

    def concept_given_instance(self, instance: str) -> list[ScoredConcept]:
        """P(concept | instance), highest first."""
        total = self._instance_totals.get(instance, 0)
        if total == 0:
            return []
        concepts = self._concepts_of[instance]
        denominator = total + self.smoothing * len(concepts)
        scored = [
            ScoredConcept(
                concept,
                (self._pair_counts[(instance, concept)] + self.smoothing)
                / denominator,
            )
            for concept in concepts
        ]
        scored.sort(key=lambda s: (-s.probability, s.concept))
        return scored

    def instance_given_concept(self, concept: str) -> list[tuple[str, float]]:
        """P(instance | concept) — the typicality ranking of a concept."""
        total = self._concept_totals.get(concept, 0)
        if total == 0:
            return []
        ranked = [
            (instance, self._pair_counts[(instance, concept)] / total)
            for instance in self._instances_of[concept]
        ]
        ranked.sort(key=lambda item: (-item[1], item[0]))
        return ranked

    def typicality(self, instance: str, concept: str) -> float:
        """P(instance | concept) for one pair (0 when unseen)."""
        total = self._concept_totals.get(concept, 0)
        if total == 0:
            return 0.0
        return self._pair_counts.get((instance, concept), 0) / total

    # ------------------------------------------------------ conceptualization

    def conceptualize(
        self, instances: Iterable[str], top_k: int = 5
    ) -> list[ScoredConcept]:
        """The concepts that best explain a set of instances (naive Bayes).

        Scores each concept by P(concept) * prod_i P(instance_i | concept),
        which is Probase's standard conceptualization recipe; returns a
        normalized distribution over the top-k.
        """
        instance_list = [i for i in instances if self._instance_totals.get(i)]
        if not instance_list:
            return []
        grand_total = sum(self._concept_totals.values())
        candidates: set[str] = set()
        for instance in instance_list:
            candidates |= self._concepts_of[instance]
        raw: dict[str, float] = {}
        for concept in sorted(candidates):
            score = self._concept_totals[concept] / grand_total
            for instance in instance_list:
                likelihood = self.typicality(instance, concept)
                if likelihood == 0.0:
                    score = 0.0
                    break
                score *= likelihood
            if score > 0.0:
                raw[concept] = score
        if not raw:
            return []
        normalizer = sum(raw.values())
        scored = [
            ScoredConcept(concept, score / normalizer)
            for concept, score in raw.items()
        ]
        scored.sort(key=lambda s: (-s.probability, s.concept))
        return scored[:top_k]

    # ------------------------------------------------------------------ misc

    def concepts(self) -> list[str]:
        """All known concepts."""
        return sorted(self._concept_totals)

    def size(self) -> int:
        """Number of distinct (instance, concept) pairs."""
        return len(self._pair_counts)
