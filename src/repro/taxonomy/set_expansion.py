"""SEAL/Paşca-style set expansion from seed entities.

Given a handful of seed names ("Corvain", "Lorvik"), set expansion finds
other members of the same implicit class by collecting the *contexts* the
seeds occur in (token windows and list constructs) and ranking every other
candidate mention by how many distinct seed contexts it shares.  Scoring
uses a per-context reliability weight (how many distinct seeds the context
matched), which is the essence of the wrapper-quality score in SEAL.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

from ..nlp.pipeline import Analysis, analyze

#: A context: the token immediately left and right of a mention (lowercased),
#: with sentence boundaries marked.
Context = tuple[str, str]


@dataclass(frozen=True, slots=True)
class ExpansionResult:
    """A ranked expansion candidate."""

    name: str
    score: float
    shared_contexts: int


class SetExpander:
    """An inverted index from contexts to the mentions seen in them."""

    def __init__(self) -> None:
        self._contexts_of: dict[str, set[Context]] = defaultdict(set)
        self._mentions_in: dict[Context, set[str]] = defaultdict(set)

    def index_sentence(self, analysis: Analysis) -> None:
        """Add one analyzed sentence's mentions to the index."""
        for mention in analysis.mentions:
            left = (
                analysis.tokens[mention.token_start - 1].text.lower()
                if mention.token_start > 0
                else "<s>"
            )
            right = (
                analysis.tokens[mention.token_end].text.lower()
                if mention.token_end < len(analysis.tokens)
                else "</s>"
            )
            context = (left, right)
            self._contexts_of[mention.text].add(context)
            self._mentions_in[context].add(mention.text)

    def index_corpus(self, sentences: Iterable[str]) -> None:
        """Analyze and index raw sentences."""
        for sentence in sentences:
            self.index_sentence(analyze(sentence))

    def expand(self, seeds: list[str], top_k: int = 20) -> list[ExpansionResult]:
        """Candidates ranked by reliability-weighted shared contexts."""
        if not seeds:
            raise ValueError("set expansion needs at least one seed")
        seed_set = set(seeds)
        seed_contexts: set[Context] = set()
        for seed in seeds:
            seed_contexts |= self._contexts_of.get(seed, set())
        if not seed_contexts:
            return []
        # A context is reliable in proportion to how many distinct seeds use
        # it: listing constructs shared by several seeds beat one-off noise.
        # Canonical context order: score accumulation below is float
        # arithmetic, whose rounding must not depend on set iteration order.
        context_order = sorted(seed_contexts)
        reliability = {
            context: sum(1 for s in seed_set if context in self._contexts_of.get(s, ()))
            / len(seed_set)
            for context in context_order
        }
        scores: dict[str, float] = defaultdict(float)
        shared: dict[str, int] = defaultdict(int)
        for context in context_order:
            weight = reliability[context]
            for name in self._mentions_in.get(context, ()):
                if name in seed_set:
                    continue
                scores[name] += weight
                shared[name] += 1
        ranked = sorted(
            scores, key=lambda name: (-scores[name], -shared[name], name)
        )
        return [
            ExpansionResult(name, scores[name], shared[name])
            for name in ranked[:top_k]
        ]
