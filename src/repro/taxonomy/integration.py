"""YAGO-style integration of conceptual categories into WordNet.

For every page, each conceptual category becomes a fine-grained class
(``wcat:Arvandian_scientists``); the category's head lemma is anchored to
its most frequent WordNet sense (``wn:scientist.n.01``), and the synset's
hypernym chain supplies the upper taxonomy.  The output is an ordinary
triple store of ``rdf:type`` / ``rdfs:subClassOf`` facts plus a coverage
report — the data behind experiment E1's integration rows.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..kb import Entity, Triple, TripleStore, ns
from ..corpus.wiki import Wiki
from ..world import schema as ws
from ..world.names import identifier_from_name
from .categories import classify_category
from .wordnet_mini import WORDNET, MiniWordNet


@dataclass(slots=True)
class IntegrationReport:
    """What happened during taxonomy integration."""

    pages: int = 0
    conceptual_categories: int = 0
    rejected_categories: int = 0
    anchored_heads: Counter = field(default_factory=Counter)
    unanchored_heads: Counter = field(default_factory=Counter)
    typed_entities: int = 0

    @property
    def anchor_rate(self) -> float:
        """Fraction of conceptual-category uses whose head found a synset."""
        anchored = sum(self.anchored_heads.values())
        total = anchored + sum(self.unanchored_heads.values())
        return anchored / total if total else 0.0


def wordnet_class(synset_id: str) -> Entity:
    """The class entity representing a WordNet synset."""
    return Entity(f"wn:{synset_id}")


def category_class(label: str) -> Entity:
    """The fine-grained class entity representing a category."""
    return Entity(f"wcat:{identifier_from_name(label)}")


#: World class -> the WordNet synset its instances should end up under.
#: (Used by E1's evaluation, not by the integration algorithm itself.)
EXPECTED_SYNSET: dict[Entity, str] = {
    ws.SCIENTIST: "scientist.n.01",
    ws.MUSICIAN: "musician.n.01",
    ws.POLITICIAN: "politician.n.01",
    ws.ENTREPRENEUR: "entrepreneur.n.01",
    ws.ATHLETE: "athlete.n.01",
    ws.WRITER: "writer.n.01",
    ws.COMPANY: "company.n.01",
    ws.UNIVERSITY: "university.n.01",
    ws.CITY: "city.n.01",
    ws.COUNTRY: "country.n.01",
    ws.SMARTPHONE: "smartphone.n.01",
    ws.BOOK: "book.n.01",
    ws.ALBUM: "album.n.01",
    ws.PRIZE: "award.n.01",
}


def integrate(
    wiki: Wiki,
    wordnet: MiniWordNet = WORDNET,
    use_plural_heuristic: bool = True,
    use_stoplist: bool = True,
) -> tuple[TripleStore, IntegrationReport]:
    """Build the category-over-WordNet taxonomy for an encyclopedia."""
    store = TripleStore()
    report = IntegrationReport()
    linked_synsets: set[str] = set()
    for page in wiki.pages.values():
        report.pages += 1
        typed = False
        for category in page.categories:
            decision = classify_category(
                category.name,
                use_plural_heuristic=use_plural_heuristic,
                use_stoplist=use_stoplist,
            )
            if not decision.conceptual:
                report.rejected_categories += 1
                continue
            report.conceptual_categories += 1
            fine_class = category_class(category.name)
            store.add(Triple(page.entity, ns.TYPE, fine_class))
            typed = True
            synset = wordnet.first_synset(decision.head_lemma)
            if synset is None:
                report.unanchored_heads[decision.head_lemma] += 1
                continue
            report.anchored_heads[decision.head_lemma] += 1
            store.add(Triple(fine_class, ns.SUBCLASS_OF, wordnet_class(synset.id)))
            linked_synsets.add(synset.id)
        if typed:
            report.typed_entities += 1
    # The upper taxonomy: hypernym chains of every linked synset.
    for synset_id in sorted(linked_synsets):
        current = synset_id
        for hypernym in wordnet.hypernym_closure(synset_id):
            store.add(
                Triple(wordnet_class(current), ns.SUBCLASS_OF, wordnet_class(hypernym.id))
            )
            current = hypernym.id
    return store, report
