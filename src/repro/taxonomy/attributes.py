"""Biperpedia-style class-attribute discovery from a query stream.

Gupta et al. (PVLDB 2014 — reference [13] of the tutorial) showed that the
best source of *attributes* (what users want to know about a class) is the
query stream itself: queries shaped like "A of E" / "E A" pair an entity
mention with an attribute phrase; aggregating over all entities of a class
and filtering by support and entity diversity yields a per-class attribute
vocabulary far richer than hand-built ontologies.

The discoverer below matches those query shapes with the KB name
dictionary, aggregates (class, attribute) evidence, and ranks attributes
per class by smoothed frequency; misspelled and noise queries fall out via
the entity-match requirement and the support threshold.
"""

from __future__ import annotations

import re
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Optional

from ..kb import Entity
from ..extraction.resolution import NameResolver

_OF_RE = re.compile(r"^(?:what is the )?(?P<a>[a-z ]+?) of (?P<e>.+)$")


@dataclass(frozen=True, slots=True)
class DiscoveredAttribute:
    """One attribute of one class, with its evidence."""

    attribute: str
    support: int          # total query occurrences
    entity_diversity: int  # distinct entities it was asked about

    def score(self) -> float:
        """Diversity-weighted support (diverse evidence beats one hot entity)."""
        return self.support * (1.0 + 0.1 * self.entity_diversity)


class AttributeDiscoverer:
    """Aggregate (class, attribute) evidence from query texts."""

    def __init__(
        self,
        resolver: NameResolver,
        classes_of,  # callable: Entity -> Iterable[Entity] (the classes)
        min_support: int = 3,
        min_diversity: int = 2,
    ) -> None:
        self.resolver = resolver
        self.classes_of = classes_of
        self.min_support = min_support
        self.min_diversity = min_diversity
        self._support: dict[tuple[Entity, str], int] = defaultdict(int)
        self._entities: dict[tuple[Entity, str], set[Entity]] = defaultdict(set)

    # -------------------------------------------------------------- parsing

    def _interpret(self, query: str) -> Optional[tuple[Entity, str]]:
        """(entity, attribute) if the query matches an attribute shape."""
        query = query.strip().lower()
        match = _OF_RE.match(query)
        if match is not None:
            entity = self._resolve(match.group("e"))
            if entity is not None:
                return entity, match.group("a").strip()
        # "E A" shape: longest entity-name prefix, remainder = attribute.
        tokens = query.split()
        for split in range(len(tokens) - 1, 0, -1):
            entity = self._resolve(" ".join(tokens[:split]))
            if entity is not None:
                attribute = " ".join(tokens[split:])
                if attribute:
                    return entity, attribute
        return None

    def _resolve(self, surface: str) -> Optional[Entity]:
        return self.resolver.resolve(surface)

    # ------------------------------------------------------------ streaming

    def observe(self, query: str, count: int = 1) -> bool:
        """Feed one query; returns True if it matched an attribute shape."""
        interpreted = self._interpret(query)
        if interpreted is None:
            return False
        entity, attribute = interpreted
        for cls in self.classes_of(entity):
            key = (cls, attribute)
            self._support[key] += count
            self._entities[key].add(entity)
        return True

    def observe_all(self, queries: Iterable[str]) -> int:
        """Feed many queries; returns how many matched."""
        return sum(1 for q in queries if self.observe(q))

    # -------------------------------------------------------------- results

    def attributes_of(self, cls: Entity, top_k: int = 10) -> list[DiscoveredAttribute]:
        """The discovered attribute vocabulary of a class, best first."""
        found = []
        for (candidate_cls, attribute), support in self._support.items():
            if candidate_cls != cls:
                continue
            diversity = len(self._entities[(candidate_cls, attribute)])
            if support < self.min_support or diversity < self.min_diversity:
                continue
            found.append(DiscoveredAttribute(attribute, support, diversity))
        found.sort(key=lambda a: (-a.score(), a.attribute))
        return found[:top_k]

    def classes(self) -> list[Entity]:
        """Classes with at least one observed attribute."""
        return sorted({cls for cls, __ in self._support}, key=lambda c: c.id)


def resolver_for_attributes(world) -> NameResolver:
    """A lowercase name dictionary over the world's entity names."""
    resolver = NameResolver(dominance=0.9)
    for entity in world.all_entities():
        resolver.add(world.name[entity].lower(), entity, count=5)
    return resolver
