"""Harvesting knowledge on entities and classes (tutorial section 2)."""

from .headparser import ParsedLabel, is_plural, parse_label
from .categories import (
    ADMINISTRATIVE_HEADS,
    CategoryDecision,
    class_label_of,
    classify_category,
)
from .wordnet_mini import WORDNET, MiniWordNet, Synset
from .integration import (
    EXPECTED_SYNSET,
    IntegrationReport,
    category_class,
    integrate,
    wordnet_class,
)
from .hearst import IsAPair, extract_pairs, harvest
from .set_expansion import ExpansionResult, SetExpander
from .probase import ProbabilisticTaxonomy, ScoredConcept
from .attributes import (
    AttributeDiscoverer,
    DiscoveredAttribute,
    resolver_for_attributes,
)

__all__ = [
    "ParsedLabel",
    "is_plural",
    "parse_label",
    "ADMINISTRATIVE_HEADS",
    "CategoryDecision",
    "class_label_of",
    "classify_category",
    "WORDNET",
    "MiniWordNet",
    "Synset",
    "EXPECTED_SYNSET",
    "IntegrationReport",
    "category_class",
    "integrate",
    "wordnet_class",
    "IsAPair",
    "extract_pairs",
    "harvest",
    "ExpansionResult",
    "SetExpander",
    "ProbabilisticTaxonomy",
    "ScoredConcept",
    "AttributeDiscoverer",
    "DiscoveredAttribute",
    "resolver_for_attributes",
]
