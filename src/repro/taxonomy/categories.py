"""WikiTaxonomy-style classification of Wikipedia categories.

The category system mixes three kinds of label:

* *conceptual* categories whose members are instances of the head class
  ("Arvandian scientists" — every member is a scientist),
* *administrative* categories ("1955 births", "Articles needing cleanup"),
* *topical* categories ("History of Arvandia" — members are *about* the
  topic, not instances of a history).

The classic heuristics (Ponzetto & Strube 2007; used in YAGO): a category
is conceptual iff its head noun is **plural**, minus a stoplist of
administrative plural heads (births, deaths, stubs, articles).  Both
heuristics can be toggled for the E1 ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .headparser import ParsedLabel, parse_label

#: Plural heads that are administrative, not conceptual (the YAGO stoplist).
ADMINISTRATIVE_HEADS = frozenset(
    {"births", "deaths", "establishments", "disestablishments", "articles",
     "stubs", "pages", "redirects", "templates", "lists"}
)


@dataclass(frozen=True, slots=True)
class CategoryDecision:
    """The classifier's verdict on one category label."""

    label: str
    conceptual: bool
    head_lemma: str
    parsed: ParsedLabel
    reason: str


def classify_category(
    label: str,
    use_plural_heuristic: bool = True,
    use_stoplist: bool = True,
) -> CategoryDecision:
    """Decide whether a category is conceptual (class-defining).

    With ``use_plural_heuristic`` off, every category is taken as
    conceptual (the naive baseline E1 compares against).  With
    ``use_stoplist`` off, administrative plural heads leak through.
    """
    parsed = parse_label(label)
    if not use_plural_heuristic:
        return CategoryDecision(label, True, parsed.head_lemma, parsed, "baseline:all")
    if not parsed.head_is_plural:
        return CategoryDecision(
            label, False, parsed.head_lemma, parsed, "singular head -> topical"
        )
    if use_stoplist and parsed.head.lower() in ADMINISTRATIVE_HEADS:
        return CategoryDecision(
            label, False, parsed.head_lemma, parsed, "administrative head"
        )
    return CategoryDecision(label, True, parsed.head_lemma, parsed, "plural head")


def class_label_of(decision: CategoryDecision) -> Optional[str]:
    """The singular class noun a conceptual category defines, else None."""
    return decision.head_lemma if decision.conceptual else None
