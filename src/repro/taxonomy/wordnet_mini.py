"""A miniature WordNet: synsets, lemmas, and hypernym edges.

YAGO anchors Wikipedia category heads in WordNet synsets to obtain a clean
upper taxonomy.  This module provides the small lexical hierarchy that role
needs: a core of everyday and domain nouns with hypernym chains up to
``entity``.  Senses are ordered; ``first_synset`` is the most frequent
sense, which is the YAGO default disambiguation policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True, slots=True)
class Synset:
    """One sense: an id like ``person.n.01`` plus its member lemmas."""

    id: str
    lemmas: tuple[str, ...]
    gloss: str = ""


#: (synset id, lemmas, gloss, hypernym id or None)
_SYNSET_TABLE: tuple[tuple[str, tuple[str, ...], str, Optional[str]], ...] = (
    ("entity.n.01", ("entity",), "that which exists", None),
    ("physical_entity.n.01", ("physical entity",), "a tangible entity", "entity.n.01"),
    ("abstraction.n.01", ("abstraction",), "an abstract entity", "entity.n.01"),
    ("object.n.01", ("object",), "a physical object", "physical_entity.n.01"),
    ("living_thing.n.01", ("living thing", "organism"), "a living entity", "physical_entity.n.01"),
    ("person.n.01", ("person", "individual", "human"), "a human being", "living_thing.n.01"),
    ("worker.n.01", ("worker",), "a person who works", "person.n.01"),
    ("professional.n.01", ("professional",), "a person engaged in a profession", "worker.n.01"),
    ("scientist.n.01", ("scientist",), "a person with advanced knowledge of science", "professional.n.01"),
    ("physicist.n.01", ("physicist",), "a scientist trained in physics", "scientist.n.01"),
    ("chemist.n.01", ("chemist",), "a scientist trained in chemistry", "scientist.n.01"),
    ("musician.n.01", ("musician",), "an artist who plays music", "artist.n.01"),
    ("artist.n.01", ("artist",), "a person who creates art", "person.n.01"),
    ("writer.n.01", ("writer", "author"), "a person who writes", "artist.n.01"),
    ("politician.n.01", ("politician",), "a person active in politics", "leader.n.01"),
    ("leader.n.01", ("leader",), "a person who leads", "person.n.01"),
    ("entrepreneur.n.01", ("entrepreneur", "businessperson"), "a person who starts businesses", "person.n.01"),
    ("athlete.n.01", ("athlete", "sportsperson"), "a person trained in sports", "person.n.01"),
    ("pioneer.n.01", ("pioneer",), "one of the first of its kind", "person.n.01"),
    ("group.n.01", ("group",), "a collection of entities", "abstraction.n.01"),
    ("organization.n.01", ("organization", "organisation"), "a group with a purpose", "group.n.01"),
    ("company.n.01", ("company", "firm", "business"), "a commercial organization", "organization.n.01"),
    ("university.n.01", ("university",), "an institution of higher learning", "organization.n.01"),
    ("institution.n.01", ("institution",), "an established organization", "organization.n.01"),
    ("location.n.01", ("location", "place"), "a point or extent in space", "object.n.01"),
    ("region.n.01", ("region",), "an extended spatial location", "location.n.01"),
    ("city.n.01", ("city", "town", "metropolis"), "a large settlement", "region.n.01"),
    ("country.n.01", ("country", "state", "nation"), "a politically organized territory", "region.n.01"),
    ("artifact.n.01", ("artifact", "artefact"), "a man-made object", "object.n.01"),
    ("product.n.01", ("product",), "an artifact that is made for sale", "artifact.n.01"),
    ("device.n.01", ("device",), "an instrumentality for a purpose", "artifact.n.01"),
    ("smartphone.n.01", ("smartphone", "phone"), "a handheld computing phone", "device.n.01"),
    ("instrument.n.01", ("instrument",), "a device for making music or measurements", "device.n.01"),
    ("clarinet.n.01", ("clarinet",), "a single-reed woodwind", "instrument.n.01"),
    ("creation.n.01", ("creation", "work"), "an artifact brought into existence", "artifact.n.01"),
    ("book.n.01", ("book",), "a written work", "creation.n.01"),
    ("album.n.01", ("album",), "a recorded collection of music", "creation.n.01"),
    ("award.n.01", ("award", "prize", "medal"), "a tangible symbol of recognition", "abstraction.n.01"),
    ("event.n.01", ("event",), "something that happens", "abstraction.n.01"),
    ("birth.n.01", ("birth",), "the event of being born", "event.n.01"),
    ("death.n.01", ("death",), "the event of dying", "event.n.01"),
    ("communication.n.01", ("communication",), "something communicated", "abstraction.n.01"),
    ("history.n.01", ("history",), "a record of events", "communication.n.01"),
    ("economy.n.01", ("economy",), "a system of production and consumption", "abstraction.n.01"),
    ("music.n.01", ("music",), "an artistic form of sound", "communication.n.01"),
    ("food.n.01", ("food",), "a substance that can be eaten", "physical_entity.n.01"),
    ("fruit.n.01", ("fruit",), "the ripened reproductive body of a plant", "food.n.01"),
    ("apple.n.01", ("apple",), "a common pome fruit", "fruit.n.01"),
    ("animal.n.01", ("animal",), "a living organism that feeds on organic matter", "living_thing.n.01"),
    ("bird.n.01", ("bird",), "a warm-blooded egg-laying vertebrate", "animal.n.01"),
    ("body_part.n.01", ("part", "body part"), "a part of an organism or artifact", "object.n.01"),
    ("wing.n.01", ("wing",), "a limb used for flying", "body_part.n.01"),
    ("mouthpiece.n.01", ("mouthpiece",), "the part held in or near the mouth", "body_part.n.01"),
    ("vehicle.n.01", ("vehicle",), "a conveyance that transports", "artifact.n.01"),
    ("car.n.01", ("car", "automobile"), "a motor vehicle", "vehicle.n.01"),
    ("wheel.n.01", ("wheel",), "a circular frame that revolves", "artifact.n.01"),
    ("engine.n.01", ("engine",), "a motor that converts energy into motion", "device.n.01"),
)


class MiniWordNet:
    """The in-memory lexical taxonomy."""

    def __init__(self) -> None:
        self._synsets: dict[str, Synset] = {}
        self._hypernym: dict[str, Optional[str]] = {}
        self._by_lemma: dict[str, list[str]] = {}
        for synset_id, lemmas, gloss, hypernym in _SYNSET_TABLE:
            self._synsets[synset_id] = Synset(synset_id, lemmas, gloss)
            self._hypernym[synset_id] = hypernym
            for lemma in lemmas:
                self._by_lemma.setdefault(lemma, []).append(synset_id)

    def synset(self, synset_id: str) -> Optional[Synset]:
        """Look up a synset by id."""
        return self._synsets.get(synset_id)

    def synsets_for(self, lemma: str) -> list[Synset]:
        """All senses of a lemma, most frequent first."""
        return [self._synsets[i] for i in self._by_lemma.get(lemma.lower(), ())]

    def first_synset(self, lemma: str) -> Optional[Synset]:
        """The most frequent sense of a lemma (the YAGO policy)."""
        senses = self.synsets_for(lemma)
        return senses[0] if senses else None

    def hypernym(self, synset_id: str) -> Optional[Synset]:
        """The direct hypernym, if any."""
        parent = self._hypernym.get(synset_id)
        return self._synsets.get(parent) if parent else None

    def hypernym_closure(self, synset_id: str) -> list[Synset]:
        """All hypernyms from direct parent up to the root, in order."""
        closure = []
        current = self._hypernym.get(synset_id)
        while current is not None:
            closure.append(self._synsets[current])
            current = self._hypernym.get(current)
        return closure

    def is_hyponym_of(self, child_id: str, ancestor_id: str) -> bool:
        """True if ``ancestor_id`` is ``child_id`` or one of its hypernyms."""
        if child_id == ancestor_id:
            return True
        return any(s.id == ancestor_id for s in self.hypernym_closure(child_id))

    def all_synsets(self) -> list[Synset]:
        """Every synset."""
        return list(self._synsets.values())


#: A process-wide instance (the data is immutable).
WORDNET = MiniWordNet()
