"""Parsing category labels into head noun, premodifiers, and postmodifier.

WikiTaxonomy/YAGO-style category analysis rests on a shallow parse of the
category label: "Arvandian computer scientists" has head ``scientists`` and
premodifiers ``Arvandian computer``; "Companies established in 1976" has
head ``Companies`` and the participle postmodifier ``established in 1976``;
"History of Arvandia" has head ``History`` with an of-postmodifier.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nlp.lemmatize import lemma
from ..nlp.tokenizer import tokenize

#: Connectors that start a postmodifier.
_POSTMODIFIER_STARTERS = frozenset(
    {"of", "in", "from", "by", "at", "for", "with", "established",
     "founded", "located", "born", "based", "needing"}
)

#: Plural forms that do not end in "s" (head plurality check).
_IRREGULAR_PLURALS = frozenset({"people", "men", "women", "children"})


@dataclass(frozen=True, slots=True)
class ParsedLabel:
    """The shallow parse of one category label."""

    head: str                 # the head word as it appears (maybe plural)
    head_lemma: str           # singular lemma of the head
    head_is_plural: bool
    premodifiers: tuple[str, ...]
    postmodifier: str         # "" when absent


def parse_label(label: str) -> ParsedLabel:
    """Parse a category label into its head structure."""
    words = [t.text for t in tokenize(label) if t.text[0].isalnum()]
    if not words:
        raise ValueError(f"cannot parse empty label: {label!r}")
    # The head is the last word of the initial noun group, i.e. the word
    # right before the first postmodifier connector (skipping position 0,
    # which can never be a connector in a well-formed label).
    cut = len(words)
    for index in range(1, len(words)):
        if words[index].lower() in _POSTMODIFIER_STARTERS:
            cut = index
            break
    head = words[cut - 1]
    premodifiers = tuple(words[:cut - 1])
    postmodifier = " ".join(words[cut:])
    return ParsedLabel(
        head=head,
        head_lemma=lemma(head),
        head_is_plural=is_plural(head),
        premodifiers=premodifiers,
        postmodifier=postmodifier,
    )


def is_plural(word: str) -> bool:
    """A conservative plural test for category heads."""
    lower = word.lower()
    if lower in _IRREGULAR_PLURALS:
        return True
    if lower.endswith("ss") or lower.endswith("us") or lower.endswith("is"):
        return False
    # The lemmatizer strips plural suffixes; a changed lemma implies plural.
    return lower.endswith("s") and lemma(lower) != lower
