"""The end-to-end knowledge-base construction pipeline.

This is "a YAGO built from the synthetic Wikipedia": category integration
supplies the class taxonomy, infobox and sentence extractors supply the
facts, temporal tagging supplies scopes, interlanguage links supply
multilingual labels, and MaxSat consistency reasoning cleans the result.
The same extraction work can run through the in-process map-reduce engine
(one page per input record), which is how the scaling experiment E11
measures per-shard work and shuffle volume.  Per-page extraction can also
fan out across an execution backend (``BuildConfig.workers`` /
``BuildConfig.backend``): worker threads or worker processes each build
the name resolver and gazetteer once in their initializer, extract page
batches, and ship their telemetry back to the parent, and because batch
results are concatenated in input order the resulting KB is byte-identical
to a serial build.  Consistency reasoning parallelizes the same way
(``BuildConfig.reasoner_workers`` / ``reasoner_backend``): the MaxSat
instance decomposes into connected components that fan out over the same
backends, with content-derived component seeds keeping the cleaned KB
byte-identical at every worker count.
"""

from __future__ import annotations

import os
import tempfile
import threading
from dataclasses import dataclass
from typing import Optional

from ..kb import Entity, Taxonomy, Triple, TripleStore, ns
from ..corpus.corpusfile import CorpusReader, open_corpus, write_corpus
from ..corpus.wiki import Wiki, WikiPage
from ..bigdata.backends import ExecutionBackend, chunked, get_backend
from ..bigdata.costs import (
    CostModel,
    batch_key,
    make_batch_estimator,
    split_dominant,
)
from ..bigdata.mapreduce import JobStats, MapReduce
from ..extraction.base import Candidate, candidates_to_store
from ..extraction.consistency import ConsistencyReasoner, ConsistencyReport
from ..extraction.infobox import InfoboxExtractor
from ..extraction.multilingual import harvest_labels
from ..extraction.occurrences import sentence_occurrences
from ..extraction.patterns import PatternExtractor
from ..extraction.resolution import NameResolver
from ..extraction.temporal import attach_scopes, extract_year_attributes
from ..nlp.pipeline import analyze
from ..obs import core as _obs
from ..taxonomy.integration import integrate
from ..world import schema as ws


@dataclass(frozen=True, slots=True)
class BuildConfig:
    """Pipeline switches."""

    use_infobox: bool = True
    use_patterns: bool = True
    use_year_attributes: bool = True
    use_temporal_scoping: bool = True
    use_consistency: bool = True
    use_multilingual: bool = True
    min_confidence: float = 0.5
    mapreduce_shards: Optional[int] = None  # None = direct extraction
    workers: int = 0                        # <= 1 = in-process execution
    backend: str = "auto"                   # serial | thread | process | auto
    reasoner_workers: int = 0               # <= 1 = in-process MaxSat solving
    reasoner_backend: str = "auto"          # backend for consistency reasoning
    schedule: str = "static"                # static | steal (worker dispatch)
    # Zero-copy corpus transport (execution policy — never byte-affecting):
    # "auto" ships process workers a corpus-file path instead of a pickled
    # Wiki; "file"/"memory" force the choice for any multi-worker backend.
    corpus_transport: str = "auto"          # auto | memory | file
    corpus_file: Optional[str] = None       # write/reuse the corpus file here
    # Keep a copy of the merged pre-consistency fact store on the report
    # (``BuildReport.merged_store``) so quality harnesses can score the
    # extraction stage separately from the reasoned KB.  Observation only —
    # never byte-affecting.
    keep_merged_store: bool = False


@dataclass(slots=True)
class BuildReport:
    """What the pipeline produced at each stage."""

    pages: int = 0
    sentences: int = 0
    type_triples: int = 0
    infobox_candidates: int = 0
    pattern_candidates: int = 0
    year_candidates: int = 0
    merged_facts: int = 0
    accepted_facts: int = 0
    label_triples: int = 0
    consistency: Optional[ConsistencyReport] = None
    mapreduce: Optional[JobStats] = None
    backend: str = "serial"
    workers: int = 1
    schedule: str = "static"
    #: The merged pre-consistency fact store (only when
    #: ``BuildConfig.keep_merged_store`` is set).
    merged_store: Optional[TripleStore] = None


def _build_resolver(
    wiki: Wiki, aliases: Optional[dict[Entity, list[str]]]
) -> NameResolver:
    """The shared resolver construction: page titles plus alias forms.

    Every alias form resolves except the one that *is* the page title
    (already registered with full weight) — comparing against the title,
    not positionally, so a single-element alias list still contributes.
    """
    resolver = NameResolver()
    for title, page in wiki.pages.items():
        resolver.add(title, page.entity, count=5)
    if aliases:
        for entity, forms in aliases.items():
            title = wiki.by_entity.get(entity)
            if title is None:
                continue
            for form in forms:
                if form != title:
                    resolver.add(form, entity)
    return resolver


class PageExtractor:
    """The per-page fact extraction context.

    Holds the extractor instances (infobox, patterns) alongside the
    resolver and gazetteer so they are constructed once per worker, not
    once per page — this is the unit the execution backends instantiate in
    their worker initializer.
    """

    def __init__(self, resolver: NameResolver, config: BuildConfig) -> None:
        self.resolver = resolver
        self.config = config
        self.gazetteer = resolver.to_gazetteer()
        self.infobox = InfoboxExtractor(resolver)
        self.patterns = PatternExtractor()

    def extract(self, page: WikiPage) -> list[Candidate]:
        """All fact candidates one page contributes (the map function)."""
        candidates: list[Candidate] = []
        if self.config.use_infobox:
            with _obs.span("pipeline.extract.infobox") as tracing:
                extracted = self.infobox.extract_page(page)
                tracing.add("candidates", len(extracted))
                candidates.extend(extracted)
        if self.config.use_patterns or self.config.use_year_attributes:
            with _obs.span("pipeline.extract.sentences") as tracing:
                pattern_found = 0
                year_found = 0
                for sentence in page.document.sentences:
                    analysis = analyze(sentence.text, self.gazetteer)
                    if self.config.use_patterns:
                        occurrences = list(
                            sentence_occurrences(analysis, self.resolver)
                        )
                        extracted = self.patterns.extract(occurrences)
                        pattern_found += len(extracted)
                        candidates.extend(extracted)
                    if self.config.use_year_attributes:
                        for triple in extract_year_attributes(
                            page.entity, sentence.text
                        ):
                            year_found += 1
                            candidates.append(
                                Candidate(
                                    subject=triple.subject,
                                    relation=triple.predicate,
                                    object=triple.object,
                                    confidence=triple.confidence,
                                    extractor="year-attributes",
                                    evidence=sentence.text,
                                )
                            )
                tracing.add("sentences", len(page.document.sentences))
                tracing.add("patterns", pattern_found)
                tracing.add("year_attributes", year_found)
        return candidates


# Worker-side extraction context.  ``threading.local`` covers every backend
# uniformly: pool threads each see their own slot, and a pool process's
# main thread sees a fresh one after fork/spawn.
_WORKER = threading.local()


def _extraction_worker_init(
    wiki: Wiki, aliases: Optional[dict[Entity, list[str]]], config: BuildConfig
) -> None:
    """Build one worker's resolver/gazetteer/extractors (runs once per
    worker, before any page batch)."""
    _WORKER.load_page = wiki.pages.__getitem__
    _WORKER.extractor = PageExtractor(_build_resolver(wiki, aliases), config)


def _corpus_resolver(reader: CorpusReader) -> NameResolver:
    """:func:`_build_resolver` reconstructed from a corpus file's catalog:
    same registrations, same order, no in-memory wiki required."""
    titles, by_entity, aliases = reader.catalog()
    resolver = NameResolver()
    for title, entity in titles.items():
        resolver.add(title, entity, count=5)
    for entity, forms in aliases:
        title = by_entity.get(entity)
        if title is None:
            continue
        for form in forms:
            if form != title:
                resolver.add(form, entity)
    return resolver


def _extraction_worker_init_corpus(corpus_path: str, config: BuildConfig) -> None:
    """The zero-copy variant of :func:`_extraction_worker_init`.

    The worker receives a *path* instead of a pickled wiki, mmaps the
    shared read-only corpus file (process-cached across map calls), and
    loads pages by title on demand — the OS page cache shares the bytes
    between every worker on the host.
    """
    reader = open_corpus(corpus_path)
    _WORKER.load_page = reader.page
    _WORKER.extractor = PageExtractor(_corpus_resolver(reader), config)


def _extract_batch(titles: list[str]) -> list[Candidate]:
    """Extract one batch of pages inside a worker (titles in input order)."""
    extractor: PageExtractor = _WORKER.extractor
    load_page = _WORKER.load_page
    candidates: list[Candidate] = []
    for title in titles:
        candidates.extend(extractor.extract(load_page(title)))
    return candidates


def _mapreduce_map_page(title: str) -> list[tuple[str, Candidate]]:
    """Map one page title to keyed candidates (runs inside a worker)."""
    extractor: PageExtractor = _WORKER.extractor
    return [
        (repr(candidate.key()), candidate)
        for candidate in extractor.extract(_WORKER.load_page(title))
    ]


def _identity_reduce(key: str, values: list[Candidate]):
    """Pass candidates through; the real merge happens downstream."""
    yield from values


class KnowledgeBaseBuilder:
    """Build a KB from an encyclopedia."""

    def __init__(
        self,
        wiki: Wiki,
        aliases: Optional[dict[Entity, list[str]]] = None,
        config: Optional[BuildConfig] = None,
        component_cache=None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.wiki = wiki
        self.aliases = aliases
        self.config = config if config is not None else BuildConfig()
        # Optional repro.reasoning.decompose.ComponentCache: consistency
        # components whose content is unchanged replay their stored MaxSat
        # outcome instead of re-solving (the incremental build's
        # component-scoped re-reasoning).  Stays in the parent process —
        # never shipped to extraction workers.
        self.component_cache = component_cache
        # Measured-cost model for steal scheduling: per-batch wall seconds
        # recorded by the backends replace the static sentence-count proxy
        # on later map calls (and feed adaptive batch splitting).  Shared
        # across builds when the caller passes one in (the incremental
        # builder does); execution policy only — never byte-affecting.
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.resolver = _build_resolver(wiki, aliases)
        self._extractor = PageExtractor(self.resolver, self.config)
        self._gazetteer = self._extractor.gazetteer
        self._sentence_counts: Optional[dict[str, int]] = None
        self._corpus_path: Optional[str] = None

    # -------------------------------------------------------------- stages

    def _page_candidates(self, page: WikiPage) -> list[Candidate]:
        """All fact candidates one page contributes (the map function)."""
        return self._extractor.extract(page)

    def build(
        self, candidates: Optional[list[Candidate]] = None
    ) -> tuple[TripleStore, BuildReport]:
        """Run the full pipeline; returns (knowledge base, report).

        ``candidates`` injects a pre-computed extraction-stage result (the
        incremental build's mix of cached and re-extracted page
        candidates); the extraction stage is skipped and every later stage
        runs unchanged, so the output is the same function of (wiki,
        candidates) either way.
        """
        report = BuildReport(pages=len(self.wiki.pages))
        report.sentences = sum(
            len(p.document.sentences) for p in self.wiki.pages.values()
        )

        # Resolve the execution backends once per build: a pooled backend
        # keeps its workers alive across the extraction stage, map-reduce
        # map phases, and consistency reasoning (one pool spinup per
        # build, not one per stage), shared between the two stages when
        # their specs coincide, and closed when the build finishes.
        backend = get_backend(self.config.backend, self.config.workers)
        reasoner_backend = get_backend(
            self.config.reasoner_backend, self.config.reasoner_workers
        )
        if (reasoner_backend.name, reasoner_backend.workers) == (
            backend.name,
            backend.workers,
        ):
            reasoner_backend = backend
        report.backend = backend.name
        report.workers = backend.workers
        report.schedule = self.config.schedule
        corpus_tmp = self._prepare_corpus(backend, skip=candidates is not None)
        try:
            return self._build_with(
                backend, reasoner_backend, report, candidates
            )
        finally:
            backend.close()
            if reasoner_backend is not backend:
                reasoner_backend.close()
            self._corpus_path = None
            if corpus_tmp is not None:
                import shutil

                shutil.rmtree(corpus_tmp, ignore_errors=True)

    def _prepare_corpus(
        self, backend: ExecutionBackend, skip: bool = False
    ) -> Optional[str]:
        """Write (or reuse) the corpus file this build's workers will mmap.

        Returns the temp directory to clean up afterwards, if one was
        created.  No file is produced when the transport resolves to
        in-memory — serial builds, thread builds under "auto", injected
        candidates (``skip``) — unless the caller pinned ``corpus_file``,
        which always materializes the artifact for reuse.
        """
        transport = self.config.corpus_transport
        if transport not in ("auto", "memory", "file"):
            raise ValueError(
                f"unknown corpus transport {transport!r} "
                "(expected auto, memory, or file)"
            )
        wants_file = transport == "file" or (
            transport == "auto" and backend.name == "process"
        )
        uses_file = wants_file and backend.workers > 1 and not skip
        if not uses_file and self.config.corpus_file is None:
            return None
        tmp_dir: Optional[str] = None
        if self.config.corpus_file is not None:
            path = self.config.corpus_file
        else:
            tmp_dir = tempfile.mkdtemp(prefix="repro-corpus-")
            path = os.path.join(tmp_dir, "corpus.rprocrp")
        with _obs.span("pipeline.corpus") as tracing:
            manifest = self._ensure_corpus_file(path)
            tracing.add("pages", manifest["pages"])
            tracing.add("bytes", manifest["bytes"])
            tracing.add("reused", manifest.get("reused", False))
        if uses_file:
            self._corpus_path = path
        return tmp_dir

    def _ensure_corpus_file(self, path: str) -> dict:
        """Write the corpus file, or validate and reuse an existing one.

        Reuse checks identity cheaply via the file's resolver catalog
        (see :meth:`CorpusReader.matches`); a mismatched or unreadable
        file is rewritten in place (atomic replace; open mmaps keep the
        old inode).
        """
        if os.path.exists(path):
            try:
                reader = CorpusReader(path)
            except (ValueError, OSError):
                reader = None
            if reader is not None:
                with reader:
                    if reader.matches(self.wiki, self.aliases):
                        manifest = reader.manifest()
                        manifest["reused"] = True
                        if _obs.ENABLED:
                            _obs.count("corpus.file.reuses")
                        return manifest
        return write_corpus(self.wiki, path, aliases=self.aliases)

    def _build_with(
        self,
        backend: ExecutionBackend,
        reasoner_backend: ExecutionBackend,
        report: BuildReport,
        candidates: Optional[list[Candidate]] = None,
    ) -> tuple[TripleStore, BuildReport]:
        with _obs.span("pipeline.build") as building:
            building.add("pages", report.pages)
            building.add("sentences", report.sentences)

            kb = TripleStore()
            kb.merge(ws.schema_store())

            # 1. Classes: category integration (types + subclass hierarchy).
            with _obs.span("pipeline.taxonomy") as tracing:
                type_store, __ = integrate(self.wiki)
                report.type_triples = len(type_store)
                tracing.add("type_triples", report.type_triples)
                kb.merge(type_store)

            # 2. Facts: per-page extraction — direct or through map-reduce,
            #    either way fanned out across the configured backend.
            with _obs.span("pipeline.extract") as tracing:
                tracing.add("workers", backend.workers)
                if candidates is not None:
                    pass  # injected by an incremental build
                elif self.config.mapreduce_shards:
                    candidates, stats = self._extract_mapreduce(backend)
                    report.mapreduce = stats
                else:
                    candidates = self._extract_pages(backend)
                for candidate in candidates:
                    if candidate.extractor == "infobox":
                        report.infobox_candidates += 1
                    elif candidate.extractor == "year-attributes":
                        report.year_candidates += 1
                    else:
                        report.pattern_candidates += 1
                tracing.add("candidates", len(candidates))
                if _obs.ENABLED:
                    _obs.count(
                        "pipeline.candidates.infobox", report.infobox_candidates
                    )
                    _obs.count(
                        "pipeline.candidates.patterns", report.pattern_candidates
                    )
                    _obs.count(
                        "pipeline.candidates.year", report.year_candidates
                    )

            # 3. Temporal scoping from the evidence sentences.
            if self.config.use_temporal_scoping:
                with _obs.span("pipeline.temporal") as tracing:
                    before = sum(1 for c in candidates if c.scope is not None)
                    candidates = attach_scopes(candidates)
                    scoped = sum(1 for c in candidates if c.scope is not None)
                    tracing.add("scoped", scoped - before)

            with _obs.span("pipeline.merge"):
                fact_store = candidates_to_store(
                    candidates, self.config.min_confidence
                )
                report.merged_facts = len(fact_store)
                if self.config.keep_merged_store:
                    report.merged_store = fact_store.copy()

            # 4. Consistency reasoning against the harvested + schema
            #    taxonomy.
            if self.config.use_consistency:
                with _obs.span("pipeline.consistency") as tracing:
                    taxonomy = Taxonomy(_taxonomy_view(kb, self.wiki))
                    reasoner = ConsistencyReasoner(
                        taxonomy,
                        workers=self.config.reasoner_workers,
                        backend=reasoner_backend,
                        schedule=self.config.schedule,
                        component_cache=self.component_cache,
                    )
                    fact_store, report.consistency = reasoner.clean(fact_store)
                    tracing.add("accepted", report.consistency.accepted)
                    tracing.add("rejected", report.consistency.rejected)
                    tracing.add("components", report.consistency.components)
            report.accepted_facts = len(fact_store)
            kb.merge(fact_store)

            # 5. Multilingual labels.
            if self.config.use_multilingual:
                with _obs.span("pipeline.multilingual") as tracing:
                    labels = harvest_labels(self.wiki)
                    report.label_triples = len(labels)
                    tracing.add("labels", report.label_triples)
                    kb.merge(labels)
            with _obs.span("pipeline.labels"):
                for title, page in self.wiki.pages.items():
                    kb.add_fact(page.entity, ns.PREF_LABEL, _literal(title))
            building.add("triples", len(kb))
        return kb, report

    def _batch_cost(self, titles: list[str]) -> int:
        """Estimated extraction cost of one page batch: sentence count.

        The work-stealing schedule dispatches the heaviest batch first so
        a batch of long pages doesn't serialize behind a worker's lighter
        ones.  Per-page sentence counts are computed once per build and
        cached — a dispatch used to re-walk every page's sentence list per
        batch per ``map`` call.  Runs in the parent only — never shipped
        to workers.
        """
        if self._sentence_counts is None:
            self._sentence_counts = {
                title: len(page.document.sentences)
                for title, page in self.wiki.pages.items()
            }
        counts = self._sentence_counts
        return sum(counts[title] for title in titles)

    def _worker_setup(self, backend: ExecutionBackend) -> tuple:
        """The (initializer, initargs) pair for this build's transport.

        Corpus-file transport ships workers a path; in-memory transport
        ships the wiki itself (free for threads, a full pickle for
        processes — the cost E21 measures).
        """
        if self._corpus_path is not None:
            return _extraction_worker_init_corpus, (
                self._corpus_path,
                self.config,
            )
        return _extraction_worker_init, (self.wiki, self.aliases, self.config)

    def _extract_pages(self, backend: ExecutionBackend) -> list[Candidate]:
        """Per-page extraction over the backend, in page-title order.

        Batches are contiguous title ranges and results concatenate in
        batch order, so every backend — and every dispatch schedule —
        yields the same candidate list.  Adaptive splitting halves a
        batch whose estimated cost dominates the rest (contiguously, in
        place), which tightens the makespan without touching that order.
        """
        titles = sorted(self.wiki.pages)
        if backend.workers <= 1:
            candidates: list[Candidate] = []
            for title in titles:
                candidates.extend(self._page_candidates(self.wiki.pages[title]))
            return candidates
        chunks = chunked(titles, backend.workers * 4)
        chunks = split_dominant(
            chunks,
            make_batch_estimator(
                self.cost_model, chunks, static_cost=self._batch_cost
            ),
        )
        initializer, initargs = self._worker_setup(backend)
        batches = backend.map(
            _extract_batch,
            chunks,
            initializer=initializer,
            initargs=initargs,
            schedule=self.config.schedule,
            cost_key=self._batch_cost,
            cost_model=self.cost_model,
            task_key=batch_key,
        )
        return [candidate for batch in batches for candidate in batch]

    def _extract_mapreduce(
        self, backend: ExecutionBackend
    ) -> tuple[list[Candidate], JobStats]:
        """Run per-page extraction as a map-reduce job."""
        engine: MapReduce = MapReduce(
            shards=self.config.mapreduce_shards,
            backend=backend,
            schedule=self.config.schedule,
            cost_model=self.cost_model,
        )
        initializer, initargs = self._worker_setup(backend)
        candidates, stats = engine.run(
            sorted(self.wiki.pages),
            _mapreduce_map_page,
            _identity_reduce,
            initializer=initializer,
            initargs=initargs,
        )
        return candidates, stats


def _taxonomy_view(kb: TripleStore, wiki: Wiki) -> TripleStore:
    """Schema plus a coarse type assignment for consistency checking.

    Harvested wcat/wordnet types do not line up with the schema's ``cls:``
    domain/range classes by themselves; the bridge is the category-class
    naming (the head lemma matches the schema class noun).  Real systems
    maintain exactly such a mapping between harvested classes and the
    ontology.  Unmapped entities stay untyped (open world).
    """
    from ..corpus.templates import CLASS_NOUNS
    from ..taxonomy.categories import classify_category

    noun_to_class = {
        singular: cls for cls, (singular, __) in CLASS_NOUNS.items()
    }
    noun_to_class["person"] = ws.PERSON
    noun_to_class["product"] = ws.PRODUCT
    view = kb.copy()
    for page in wiki.pages.values():
        for category in page.categories:
            decision = classify_category(category.name)
            if not decision.conceptual:
                continue
            mapped = noun_to_class.get(decision.head_lemma)
            if mapped is not None:
                view.add(Triple(page.entity, ns.TYPE, mapped))
    return view


def _literal(text: str):
    from ..kb import string_literal

    return string_literal(text)


def emit_segments(kb: TripleStore, directory: str) -> dict:
    """Emit a built KB as a byte-pinned segment directory.

    The build-side entry point for the on-disk storage engine
    (:mod:`repro.kb.segments`): a fresh single-segment directory that is
    a pure function of the KB's logical content, traced as its own
    pipeline stage.  Returns the written manifest.
    """
    from ..kb.segments import write_segments

    with _obs.span("pipeline.segments") as tracing:
        manifest = write_segments(kb, directory)
        if tracing:
            _obs.annotate("segments.triples", manifest["triples"])
            _obs.annotate("segments.files", 4 * len(manifest["segments"]) + 1)
    return manifest
