"""End-to-end knowledge-base construction."""

from .builder import BuildConfig, BuildReport, KnowledgeBaseBuilder, emit_segments

__all__ = ["BuildConfig", "BuildReport", "KnowledgeBaseBuilder", "emit_segments"]
