"""End-to-end knowledge-base construction."""

from .builder import BuildConfig, BuildReport, KnowledgeBaseBuilder, emit_segments
from .incremental import IncrementalBuilder, IngestReport, attach_posts

__all__ = [
    "BuildConfig",
    "BuildReport",
    "IncrementalBuilder",
    "IngestReport",
    "KnowledgeBaseBuilder",
    "attach_posts",
    "emit_segments",
]
