"""End-to-end knowledge-base construction."""

from .builder import BuildConfig, BuildReport, KnowledgeBaseBuilder

__all__ = ["BuildConfig", "BuildReport", "KnowledgeBaseBuilder"]
