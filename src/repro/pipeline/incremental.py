"""Incremental KB construction: delta ingestion over a segment directory.

The paper frames KB construction as *continuous* big-data analytics — the
iPhone-vs-Galaxy tracker only makes sense live, with new pages and social
posts arriving while the KB serves queries.  This module turns the batch
pipeline into that maintenance loop:

* **Delta ingestion** — :class:`IncrementalBuilder` accepts a batch of new
  or changed pages (or social posts folded into product pages via
  :func:`attach_posts`), re-extracts *only* the documents the batch could
  have changed, and reuses every other page's cached extraction verbatim.
* **Phantom anchors** — entity resolution never runs on the delta alone.
  The accumulated name registrations of *all* previously ingested pages
  (titles and aliases) are replayed into the resolver, so mentions in new
  documents link against the full canonical entity catalogue instead of
  forking fresh entities per batch — the existing KB joins resolution as
  synthetic anchor mentions.
* **Component-scoped re-reasoning** — consistency MaxSat components whose
  clause content is untouched by the delta replay their stored outcome
  from a persisted :class:`~repro.reasoning.decompose.ComponentCache`;
  only components the new candidates actually touch are re-solved.
* **Tombstoned deltas** — the rebuilt logical KB is diffed against the
  segment stack's current logical content; disappeared keys (retractions,
  re-resolution flips, consistency reversals) become tombstone records in
  the delta flushed through :meth:`SegmentStore.flush`, erased for good at
  ``compact()``.  The manifest's ``epoch`` rolls forward so a serving
  ``QueryEngine`` rebinds with correct result-cache invalidation.

The crown invariant, guarded by ``repro check-determinism --incremental``:
ingesting batches one by one and compacting is **byte-identical** — segment
files and canonical KB serialization — to ingesting everything in one
batch, which in turn equals a full batch rebuild of the same corpus.  The
delta path is a pure optimization, never a semantic fork.

Why it holds: the full pipeline output is a pure function of (pages,
aliases, config); cached candidate lists are exact (extraction is per-page
given the resolver, and every page whose resolver *view* could have
changed is re-extracted — see :meth:`IncrementalBuilder._affected_titles`);
and every downstream stage (noisy-or merge, canonical-order store
assembly, content-seeded component solving) is order- and
history-independent by the determinism contracts of PRs 2–4.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Iterable, Optional

from ..corpus.document import Document, Sentence
from ..corpus.social import Post
from ..corpus.wiki import Category, Wiki, WikiPage
from ..extraction.base import Candidate
from ..kb import Entity, TimeSpan, Triple
from ..kb.rdfio import term_from_text, term_to_text
from ..kb.segments import (
    MANIFEST_NAME,
    SegmentStore,
    record_fields,
    spo_key_bytes,
)
from ..kb.store import EMPTY_EPOCH, epoch_hex
from ..nlp.tokenizer import tokenize
from ..bigdata.costs import CostModel
from ..obs import core as _obs
from ..reasoning.decompose import ComponentCache
from .builder import (
    BuildConfig,
    BuildReport,
    KnowledgeBaseBuilder,
    PageExtractor,
    _build_resolver,
)

#: Name of the builder's persisted state file inside the segment directory.
#: ``diff_segment_dirs`` hashes only the manifest and ``seg-*`` files, so
#: state never participates in byte comparisons, and ``write_segments``'s
#: stale-file cleanup leaves it alone.
STATE_NAME = "INGEST_STATE.json"

STATE_VERSION = 1

#: BuildConfig fields that change the *bytes* of the output KB.  They are
#: pinned in the state file: mixing configs across ingests would silently
#: break the incremental == full-rebuild invariant, so it is an error.
#: Execution knobs (workers/backend/schedule/shards) are byte-neutral by
#: the determinism contract and may vary freely between ingests.
_PINNED_CONFIG = (
    "use_infobox",
    "use_patterns",
    "use_year_attributes",
    "use_temporal_scoping",
    "use_consistency",
    "use_multilingual",
    "min_confidence",
)


@dataclass(slots=True)
class IngestReport:
    """What one delta ingest did, stage by stage."""

    #: Pages in the ingested batch (new or changed).
    batch_pages: int = 0
    #: Total pages known to the builder after this ingest.
    total_pages: int = 0
    #: Registered names whose resolution entry changed with this batch.
    affected_names: int = 0
    #: Pages re-extracted: the batch plus pages that can see an affected
    #: name (their cached candidates could be stale).
    reextracted_pages: int = 0
    #: Pages whose cached candidates were reused verbatim.
    cached_pages: int = 0
    #: Consistency components replayed from the component cache.
    cached_components: int = 0
    #: Consistency components in the full problem.
    components: int = 0
    #: Curated retractions applied to the rebuilt KB (cumulative set).
    retracted: int = 0
    #: Records written into the delta segment (new or changed witnesses).
    added: int = 0
    #: Tombstones written into the delta segment (disappeared keys).
    tombstones: int = 0
    #: Name of the flushed delta segment (None: the delta was empty).
    segment: Optional[str] = None
    #: Whether this ingest compacted the stack down to canonical form.
    compacted: bool = False
    #: Manifest epoch before/after — the serving layer's cache key.
    epoch_before: str = ""
    epoch_after: str = ""
    #: Logical triple count after this ingest.
    triples: int = 0
    #: Wall-clock seconds spent in this ingest.
    elapsed: float = 0.0
    #: The underlying pipeline's report for the rebuild pass.
    build: Optional[BuildReport] = None


# ------------------------------------------------------------ state records


def _candidate_record(candidate: Candidate) -> list:
    scope = candidate.scope
    return [
        term_to_text(candidate.subject),
        term_to_text(candidate.relation),
        term_to_text(candidate.object),
        candidate.confidence,
        candidate.extractor,
        candidate.evidence,
        None if scope is None else [scope.begin, scope.end],
    ]


def _candidate_from(record: list) -> Candidate:
    subject, relation, obj, confidence, extractor, evidence, scope = record
    return Candidate(
        subject=term_from_text(subject),
        relation=term_from_text(relation),
        object=term_from_text(obj),
        confidence=confidence,
        extractor=extractor,
        evidence=evidence,
        scope=None if scope is None else TimeSpan(scope[0], scope[1]),
    )


def _page_record(page: WikiPage) -> dict:
    """Serialize the pipeline-visible content of a page.

    Gold annotations (mention/fact labels, infobox gold, category flags)
    and page links are evaluation-only — extractors never see them — so
    they are deliberately not persisted; a reconstructed page runs through
    the pipeline identically to the original.
    """
    return {
        "entity": term_to_text(page.entity),
        "sentences": [s.text for s in page.document.sentences],
        "infobox": dict(page.infobox),
        "categories": [c.name for c in page.categories],
        "interlanguage": dict(page.interlanguage),
        "candidates": None,  # filled after extraction
    }


def _page_from(title: str, record: dict) -> WikiPage:
    return WikiPage(
        title=title,
        entity=term_from_text(record["entity"]),
        document=Document(
            doc_id=f"ingest:{title}",
            sentences=[Sentence(text) for text in record["sentences"]],
        ),
        infobox=dict(record["infobox"]),
        categories=[
            Category(name, conceptual=False) for name in record["categories"]
        ],
        interlanguage=dict(record["interlanguage"]),
    )


def _fresh_state(config: BuildConfig) -> dict:
    return {
        "state_version": STATE_VERSION,
        "config": {name: getattr(config, name) for name in _PINNED_CONFIG},
        "pages": {},
        "aliases": {},
        "retracted": [],
        "components": {},
    }


# --------------------------------------------------------------- the builder


class IncrementalBuilder:
    """Grow a segment-backed KB batch by batch.

    Owns a :class:`SegmentStore` on ``directory`` plus a state file
    (``INGEST_STATE.json``) holding everything needed to make the next
    delta equal to a full rebuild: the pipeline-visible page contents,
    the alias registrations (the phantom anchors), per-page cached
    extraction candidates, the cumulative curated-retraction set, and the
    consistency component cache.
    """

    def __init__(
        self,
        directory: str,
        config: Optional[BuildConfig] = None,
        compact_threshold: int = 4,
    ) -> None:
        self.directory = directory
        self.config = config if config is not None else BuildConfig()
        self.store = SegmentStore(directory, compact_threshold=compact_threshold)
        self.state = self._load_state()
        # One cost model across every ingest this builder performs: batch
        # costs measured while rebuilding ingest N drive the stealing
        # dispatch of ingest N+1 (purely a scheduling input — the
        # determinism contract keeps the bytes identical either way).
        self.cost_model = CostModel()

    # --------------------------------------------------------------- state

    @property
    def _state_path(self) -> str:
        return os.path.join(self.directory, STATE_NAME)

    def _load_state(self) -> dict:
        if not os.path.exists(self._state_path):
            return _fresh_state(self.config)
        with open(self._state_path, "r", encoding="utf-8") as handle:
            state = json.load(handle)
        if state.get("state_version") != STATE_VERSION:
            raise ValueError(
                f"unsupported ingest state version: "
                f"{state.get('state_version')!r}"
            )
        pinned = {name: getattr(self.config, name) for name in _PINNED_CONFIG}
        if state["config"] != pinned:
            raise ValueError(
                "ingest config mismatch: this segment directory was built "
                f"with {state['config']!r}, not {pinned!r} — mixed configs "
                "would break incremental == full-rebuild"
            )
        return state

    def _save_state(self) -> None:
        blob = json.dumps(
            self.state, ensure_ascii=False, sort_keys=True, indent=None
        )
        tmp = self._state_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(blob)
        os.replace(tmp, self._state_path)

    def close(self) -> None:
        """Quiesce the underlying segment store."""
        self.store.close()

    def __enter__(self) -> "IncrementalBuilder":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------ anchoring

    def _registrations(self) -> dict[str, dict[str, int]]:
        """The resolver's registration map implied by the current state.

        Mirrors :func:`repro.pipeline.builder._build_resolver` exactly:
        titles count 5, alias forms count 1 each, title-equal forms and
        page-less entities skipped.  Diffing this map across a batch is
        how affected names are found.
        """
        registrations: dict[str, dict[str, int]] = {}

        def register(name: str, entity_text: str, count: int) -> None:
            entry = registrations.setdefault(name, {})
            entry[entity_text] = entry.get(entity_text, 0) + count

        titles_by_entity = {
            record["entity"]: title
            for title, record in self.state["pages"].items()
        }
        for title, record in self.state["pages"].items():
            register(title, record["entity"], 5)
        for entity_text, forms in self.state["aliases"].items():
            title = titles_by_entity.get(entity_text)
            if title is None:
                continue
            for form in forms:
                if form != title:
                    register(form, entity_text, 1)
        return registrations

    def _wiki(self) -> Wiki:
        pages = {
            title: _page_from(title, record)
            for title, record in sorted(self.state["pages"].items())
        }
        return Wiki(
            pages=pages,
            by_entity={page.entity: title for title, page in pages.items()},
        )

    def _alias_map(self) -> dict[Entity, list[str]]:
        return {
            term_from_text(entity_text): list(forms)
            for entity_text, forms in self.state["aliases"].items()
        }

    def _affected_titles(
        self, batch_titles: set[str], affected_names: set[str]
    ) -> set[str]:
        """Pages whose cached candidates could be stale.

        A page outside the batch must be re-extracted iff an *affected
        name* — one whose resolver registration changed with this batch —
        is visible to its extraction:

        * gazetteer matching and mention resolution are exact
          token-sequence affairs, so a sentence is touched only when an
          affected name's token sequence occurs contiguously in it;
        * infobox entity values resolve by exact string lookup, so a row
          is touched only when its value *is* an affected name.

        Everything else about extraction is local to the page, so cached
        candidates of unaffected pages are exact.
        """
        stale = set(batch_titles)
        sequences = [
            [token.text for token in tokenize(name)]
            for name in sorted(affected_names)
        ]
        sequences = [seq for seq in sequences if seq]
        for title, record in self.state["pages"].items():
            if title in stale:
                continue
            if record["candidates"] is None:
                stale.add(title)  # never extracted (shouldn't happen)
                continue
            if any(
                value in affected_names
                for value in record["infobox"].values()
            ):
                stale.add(title)
                continue
            if sequences and any(
                _contains_sequence(
                    [token.text for token in tokenize(text)], sequences
                )
                for text in record["sentences"]
            ):
                stale.add(title)
        return stale

    # --------------------------------------------------------------- ingest

    def ingest(
        self,
        pages: Iterable[WikiPage] = (),
        aliases: Optional[dict[Entity, list[str]]] = None,
        retract: Iterable[tuple[str, str, str]] = (),
        compact: bool = False,
    ) -> IngestReport:
        """Ingest one delta batch and flush it as a new segment generation.

        ``pages`` are new or changed pages (a changed page replaces its
        previous version wholesale); ``aliases`` replaces the alias form
        list of each given entity; ``retract`` adds canonical
        (subject, predicate, object) text triples to the cumulative
        curated-removal set — they are erased from every future snapshot
        and their current records tombstoned in this delta.  With
        ``compact=True`` the generation stack is folded to canonical
        single-segment form afterwards.
        """
        started = time.perf_counter()
        report = IngestReport(epoch_before=self._epoch())
        with _obs.span("pipeline.ingest") as tracing:
            batch = list(pages)
            report.batch_pages = len(batch)

            old_registrations = self._registrations()
            for page in batch:
                self.state["pages"][page.title] = _page_record(page)
            for entity, forms in (aliases or {}).items():
                self.state["aliases"][term_to_text(entity)] = list(forms)
            retracted = {tuple(key) for key in self.state["retracted"]}
            retracted.update(tuple(key) for key in retract)
            self.state["retracted"] = sorted(retracted)
            new_registrations = self._registrations()

            affected_names = {
                name
                for name in old_registrations.keys()
                | new_registrations.keys()
                if old_registrations.get(name) != new_registrations.get(name)
            }
            report.affected_names = len(affected_names)
            report.total_pages = len(self.state["pages"])

            # Re-extract the batch plus every page an affected name can
            # reach; reuse cached candidates everywhere else.
            stale = self._affected_titles(
                {page.title for page in batch}, affected_names
            )
            report.reextracted_pages = len(stale)
            report.cached_pages = report.total_pages - len(stale)
            wiki = self._wiki()
            alias_map = self._alias_map()
            if stale:
                extractor = PageExtractor(
                    _build_resolver(wiki, alias_map), self.config
                )
                for title in sorted(stale):
                    self.state["pages"][title]["candidates"] = [
                        _candidate_record(candidate)
                        for candidate in extractor.extract(wiki.pages[title])
                    ]

            # Full-corpus candidate list in sorted-title order — exactly
            # what the batch pipeline's extraction stage would produce.
            candidates = [
                _candidate_from(record)
                for title in sorted(self.state["pages"])
                for record in self.state["pages"][title]["candidates"]
            ]

            # Rebuild the logical KB through the unchanged downstream
            # stages, replaying untouched consistency components.
            cache = ComponentCache(self.state["components"])
            builder = KnowledgeBaseBuilder(
                wiki,
                aliases=alias_map,
                config=self.config,
                component_cache=cache,
                cost_model=self.cost_model,
            )
            kb, report.build = builder.build(candidates=candidates)
            if report.build.consistency is not None:
                report.components = report.build.consistency.components
                report.cached_components = (
                    report.build.consistency.cached_components
                )

            # Curated removals: set-minus after the pipeline, so the
            # invariant stays "full rebuild minus the same retractions".
            for key in self.state["retracted"]:
                if kb.remove(_retraction_probe(*key)):
                    report.retracted += 1

            # Delta derivation: diff the rebuilt KB against the segment
            # stack's logical content.  Changed or new keys become delta
            # records, disappeared keys become tombstones.
            current = self.store.logical_parts()
            rebuilt: dict[bytes, tuple] = {}
            additions: list[Triple] = []
            for triple in kb:
                fields = record_fields(triple)
                key = spo_key_bytes(fields)
                rebuilt[key] = fields
                if current.get(key) != fields:
                    additions.append(triple)
            tombstones = [
                current[key][:3] for key in current if key not in rebuilt
            ]
            report.added = len(additions)
            report.tombstones = len(tombstones)
            report.segment = self.store.flush(additions, tombstones=tombstones)
            if compact:
                report.compacted = self.store.compact() is not None
            self._save_state()

            report.epoch_after = self._epoch()
            report.triples = len(kb)
            report.elapsed = time.perf_counter() - started
            if _obs.ENABLED:
                tracing.add("batch_pages", report.batch_pages)
                tracing.add("reextracted", report.reextracted_pages)
                tracing.add("cached_pages", report.cached_pages)
                tracing.add("cached_components", report.cached_components)
                tracing.add("added", report.added)
                tracing.add("tombstones", report.tombstones)
                _obs.count("pipeline.ingest.batches")
                _obs.count("pipeline.ingest.added", report.added)
                _obs.count("pipeline.ingest.tombstones", report.tombstones)
        return report

    # -------------------------------------------------------------- queries

    def _epoch(self) -> str:
        manifest_path = os.path.join(self.directory, MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            return epoch_hex(EMPTY_EPOCH)
        with open(manifest_path, "r", encoding="utf-8") as handle:
            return json.load(handle)["epoch"]


def _contains_sequence(haystack: list[str], needles: list[list[str]]) -> bool:
    """True if any needle occurs as a contiguous run inside haystack."""
    for needle in needles:
        span = len(needle)
        if span > len(haystack):
            continue
        first = needle[0]
        for i in range(len(haystack) - span + 1):
            if haystack[i] == first and haystack[i : i + span] == needle:
                return True
    return False


def _retraction_probe(
    subject_text: str, predicate_text: str, object_text: str
) -> Triple:
    """A key-only triple used to remove a fact by canonical (s, p, o)."""
    return Triple(
        term_from_text(subject_text),
        term_from_text(predicate_text, relation_position=True),
        term_from_text(object_text),
    )


def attach_posts(
    wiki: Wiki, posts: Iterable[Post]
) -> list[WikiPage]:
    """Fold social posts into changed product pages for ingestion.

    The social stream's unit of arrival is a post *about* a product; the
    incremental pipeline's unit of change is a page.  This adapter appends
    each post's text as a new sentence to (a copy of) the product's page,
    returning the changed pages — ready to pass to
    :meth:`IncrementalBuilder.ingest` as a delta batch.  Posts about
    entities with no page are skipped (there is nothing to anchor them to).
    """
    by_title: dict[str, list[Post]] = {}
    for post in posts:
        title = wiki.by_entity.get(post.product)
        if title is not None:
            by_title.setdefault(title, []).append(post)
    changed: list[WikiPage] = []
    for title in sorted(by_title):
        page = wiki.pages[title]
        extra = [
            Sentence(post.text)
            for post in sorted(by_title[title], key=lambda p: p.post_id)
        ]
        changed.append(
            WikiPage(
                title=page.title,
                entity=page.entity,
                document=Document(
                    doc_id=page.document.doc_id,
                    sentences=list(page.document.sentences) + extra,
                ),
                infobox=dict(page.infobox),
                categories=list(page.categories),
                interlanguage=dict(page.interlanguage),
            )
        )
    return changed
