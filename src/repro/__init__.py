"""repro — a from-scratch reproduction of the knowledge-base construction
and analytics landscape surveyed in Suchanek & Weikum, *Knowledge Bases in
the Age of Big Data Analytics* (PVLDB 7(13), 2014).

Subpackages
-----------
``repro.kb``
    The SPO data model: terms, triples, indexed store, conjunctive queries,
    taxonomy reasoning, sameAs closure, serialization.
``repro.world`` / ``repro.corpus``
    The synthetic ground truth and its rendering into annotated text,
    a synthetic Wikipedia, and a social-media stream.
``repro.nlp``
    The from-scratch NLP stack (tokenizer ... dependency parser).
``repro.taxonomy``
    Harvesting entities and classes (category analysis, WordNet
    integration, Hearst patterns, set expansion).
``repro.extraction``
    The fact-harvesting spectrum (patterns, Snowball, dependency paths,
    distant supervision, DeepDive-style inference, MaxSat consistency,
    open IE, temporal, multilingual, commonsense, infoboxes).
``repro.reasoning``
    Factor graphs + Gibbs, weighted MaxSat, rules, Markov-logic-lite.
``repro.ned`` / ``repro.linkage``
    Named entity disambiguation and entity linkage.
``repro.analytics``
    Entity tracking, semantic search, template QA.
``repro.bigdata``
    Map-reduce engine, frequent sequence mining, MinHash/LSH.
``repro.pipeline``
    The end-to-end KB builder.
``repro.obs``
    Observability: tracing spans, metrics, trace-tree rendering.
"""

__version__ = "0.1.0"

from . import (
    analytics,
    bigdata,
    corpus,
    eval,
    extraction,
    kb,
    linkage,
    ml,
    ned,
    nlp,
    obs,
    pipeline,
    reasoning,
    taxonomy,
    world,
)

__all__ = [
    "analytics",
    "bigdata",
    "corpus",
    "eval",
    "extraction",
    "kb",
    "linkage",
    "ml",
    "ned",
    "nlp",
    "obs",
    "pipeline",
    "reasoning",
    "taxonomy",
    "world",
    "__version__",
]
