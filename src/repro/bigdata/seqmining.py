"""Frequent sequence mining with PrefixSpan.

Open information extraction "makes clever use of big-data techniques like
frequent sequence mining" (tutorial section 3): the frequent token
subsequences of relation phrases reveal the canonical patterns ("was born
in", "is the capital of") around which synonymous phrasings cluster.  This
is a standard PrefixSpan implementation over projected databases,
restricted to *contiguous* or *gappy* subsequences as configured.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Hashable, Iterable, Sequence

Item = Hashable
Sequence_ = Sequence[Item]


def frequent_sequences(
    sequences: Iterable[Sequence_],
    min_support: int = 2,
    max_length: int = 5,
    contiguous: bool = False,
) -> dict[tuple, int]:
    """All subsequences with support >= ``min_support``, up to ``max_length``.

    ``contiguous`` restricts mining to n-grams (no gaps), which is what the
    relation-phrase normalizer wants; the default allows gaps as in classic
    PrefixSpan.
    """
    if min_support < 1:
        raise ValueError("min_support must be at least 1")
    if max_length < 1:
        raise ValueError("max_length must be at least 1")
    database = [tuple(s) for s in sequences]
    if contiguous:
        return _frequent_ngrams(database, min_support, max_length)
    result: dict[tuple, int] = {}
    # Projected database: list of (sequence_index, start_position).
    initial = [(i, 0) for i in range(len(database))]
    _prefixspan(database, (), initial, min_support, max_length, result)
    return result


def _prefixspan(database, prefix, projections, min_support, max_length, result):
    if len(prefix) >= max_length:
        return
    # Count items occurring after each projection point, once per sequence.
    support: Counter = Counter()
    for seq_index, start in projections:
        seen = set()
        for item in database[seq_index][start:]:
            if item not in seen:
                support[item] += 1
                seen.add(item)
    for item, count in sorted(support.items(), key=lambda kv: repr(kv[0])):
        if count < min_support:
            continue
        new_prefix = prefix + (item,)
        result[new_prefix] = count
        new_projections = []
        for seq_index, start in projections:
            sequence = database[seq_index]
            for position in range(start, len(sequence)):
                if sequence[position] == item:
                    new_projections.append((seq_index, position + 1))
                    break
        _prefixspan(database, new_prefix, new_projections, min_support, max_length, result)


def _frequent_ngrams(database, min_support, max_length) -> dict[tuple, int]:
    counts: Counter = Counter()
    for sequence in database:
        seen_in_sequence = set()
        for length in range(1, max_length + 1):
            for start in range(0, len(sequence) - length + 1):
                gram = sequence[start:start + length]
                if gram not in seen_in_sequence:
                    counts[gram] += 1
                    seen_in_sequence.add(gram)
    return {gram: count for gram, count in counts.items() if count >= min_support}


def closed_sequences(frequent: dict[tuple, int]) -> dict[tuple, int]:
    """The closed subset: sequences with no super-sequence of equal support."""
    by_length = defaultdict(list)
    for sequence, support in frequent.items():
        by_length[len(sequence)].append((sequence, support))
    closed = {}
    for sequence, support in frequent.items():
        dominated = False
        for longer, longer_support in by_length.get(len(sequence) + 1, ()):
            if longer_support == support and _is_subsequence(sequence, longer):
                dominated = True
                break
        if not dominated:
            closed[sequence] = support
    return closed


def _is_subsequence(short: tuple, long: tuple) -> bool:
    it = iter(long)
    return all(item in it for item in short)
