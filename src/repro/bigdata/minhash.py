"""MinHash signatures and LSH banding for near-duplicate detection.

Entity linkage at web scale cannot compare all pairs; MinHash/LSH turns the
quadratic candidate-generation problem into hash-bucket lookups while
approximately preserving Jaccard similarity.  Used as the scalable blocking
option in the linkage package (E10) and for corpus near-dup detection.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from functools import lru_cache

from ..determinism.stable import stable_hash

_MERSENNE = (1 << 61) - 1


@lru_cache(maxsize=32)
def _hash_coefficients(num_hashes: int, seed: int) -> tuple[tuple[int, int], ...]:
    import random

    rng = random.Random(seed)
    return tuple(
        (rng.randrange(1, _MERSENNE), rng.randrange(0, _MERSENNE))
        for __ in range(num_hashes)
    )


@dataclass(frozen=True, slots=True)
class MinHasher:
    """A family of ``num_hashes`` universal hash functions over item hashes."""

    num_hashes: int = 64
    seed: int = 17

    def __post_init__(self) -> None:
        if self.num_hashes < 1:
            raise ValueError("num_hashes must be at least 1")

    def _coefficients(self) -> tuple[tuple[int, int], ...]:
        return _hash_coefficients(self.num_hashes, self.seed)

    def signature(self, items: Iterable[Hashable]) -> tuple[int, ...]:
        """The MinHash signature of a set of items."""
        hashes = [stable_hash(repr(item)) for item in set(items)]  # det: allow-unordered -- feeds min() only
        if not hashes:
            return tuple([_MERSENNE] * self.num_hashes)
        signature = []
        for a, b in self._coefficients():
            signature.append(min((a * h + b) % _MERSENNE for h in hashes))
        return tuple(signature)

    @staticmethod
    def estimate_jaccard(sig_a: Sequence[int], sig_b: Sequence[int]) -> float:
        """Estimated Jaccard similarity from two signatures."""
        if len(sig_a) != len(sig_b) or not sig_a:
            raise ValueError("signatures must be equal-length and non-empty")
        agree = sum(1 for x, y in zip(sig_a, sig_b) if x == y)
        return agree / len(sig_a)


def jaccard(a: Iterable[Hashable], b: Iterable[Hashable]) -> float:
    """Exact Jaccard similarity of two item collections."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    return len(set_a & set_b) / len(set_a | set_b)


def lsh_candidate_pairs(
    signatures: dict[Hashable, Sequence[int]],
    bands: int = 16,
) -> set[tuple[Hashable, Hashable]]:
    """Candidate pairs whose signatures collide in at least one LSH band."""
    if not signatures:
        return set()
    length = len(next(iter(signatures.values())))
    if bands < 1 or length % bands != 0:
        raise ValueError(f"bands must divide the signature length {length}")
    rows = length // bands
    pairs: set[tuple[Hashable, Hashable]] = set()
    for band in range(bands):
        buckets: dict[tuple, list[Hashable]] = defaultdict(list)
        for key, signature in signatures.items():
            chunk = tuple(signature[band * rows:(band + 1) * rows])
            buckets[chunk].append(key)
        for members in buckets.values():
            members = sorted(members, key=repr)
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    pairs.add((members[i], members[j]))
    return pairs


def shingles(text: str, size: int = 3) -> set[str]:
    """Character shingles of a string (lowercased)."""
    lowered = text.lower()
    if len(lowered) <= size:
        return {lowered}
    return {lowered[i:i + size] for i in range(len(lowered) - size + 1)}
