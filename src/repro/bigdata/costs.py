"""Measured-cost scheduling: wall-clock task costs feeding steal dispatch.

The work-stealing schedule (PR 5) orders the shared queue by a *static*
cost proxy — sentence counts for page batches, record counts for shards.
Proxies are free but wrong exactly when it matters: a short page with a
pathological sentence, a component whose MaxSat instance blows up.  This
module closes the loop the way a real cluster scheduler does: backends
record the measured wall-clock seconds of every task they ran, keyed by a
caller-provided stable task key, and the next ``map`` call whose tasks
are *all* known replays those measurements as the cost key instead.

Two properties keep this compatible with the byte-determinism contract:

* Measured costs only ever change the **dispatch order** of a steal
  schedule.  Results are reassembled in task-index order regardless
  (:func:`repro.bigdata.backends._collect`), so byte-identity across
  schedules — and across cold (static proxy) vs warm (measured) models —
  holds by construction and is asserted by the cross-mode matrix.
* Replay is all-or-nothing per call: measured seconds and proxy units are
  incomparable scales, so a call mixes them never — tasks are ordered by
  measurements only when every task in the call has one.

The model is persistent in two senses: it outlives individual ``map``
calls (the builder threads one instance through extraction, map-reduce
map phases, and repeated incremental ingests) and it can optionally be
saved to / loaded from a JSON file for reuse across processes.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Optional, Sequence

__all__ = ["CostModel", "batch_key", "make_batch_estimator", "split_dominant"]


def batch_key(batch: Sequence) -> str:
    """A stable identity for one contiguous task batch.

    First element, last element, and length pin a contiguous slice of a
    deterministic task order (``repr`` keeps it printable and stable for
    strings and dataclasses alike) — enough to recognize "the same batch"
    across map calls without hashing every member.
    """
    if not batch:
        return "#0"
    return f"{batch[0]!r}..{batch[-1]!r}#{len(batch)}"


class CostModel:
    """An exponentially-weighted map of task key -> measured seconds."""

    __slots__ = ("path", "alpha", "recorded", "replayed", "_costs")

    def __init__(self, path: Optional[str] = None, alpha: float = 0.5) -> None:
        self.path = path
        #: EWMA weight of the newest sample (1.0 = last-measurement-wins).
        self.alpha = alpha
        self.recorded = 0
        self.replayed = 0
        self._costs: dict[str, float] = {}
        if path is not None and os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            self._costs = {str(k): float(v) for k, v in payload["costs"].items()}

    def __len__(self) -> int:
        return len(self._costs)

    def record(self, key: str, seconds: float) -> None:
        """Fold one measured task duration into the model."""
        previous = self._costs.get(key)
        if previous is None:
            self._costs[key] = seconds
        else:
            self._costs[key] = self.alpha * seconds + (1 - self.alpha) * previous
        self.recorded += 1

    def estimate(self, key: str) -> Optional[float]:
        """The measured estimate for ``key``, or None if never seen."""
        return self._costs.get(key)

    def estimates_for(self, keys: Sequence[str]) -> Optional[dict[str, float]]:
        """Estimates for a whole call's task keys — all or nothing.

        Returns None unless *every* key has a measurement: measured
        seconds and static proxy units live on incomparable scales, so a
        call either replays measurements for all tasks or none.
        """
        estimates: dict[str, float] = {}
        for key in keys:
            cost = self._costs.get(key)
            if cost is None:
                return None
            estimates[key] = cost
        self.replayed += 1
        return estimates

    def save(self, path: Optional[str] = None) -> None:
        """Persist the model as canonical JSON (atomic replace)."""
        target = path or self.path
        if target is None:
            raise ValueError("no path to save the cost model to")
        blob = json.dumps(
            {"costs": self._costs},
            ensure_ascii=False,
            sort_keys=True,
            separators=(",", ":"),
        )
        tmp = target + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(blob)
        os.replace(tmp, target)

    def stats(self) -> dict:
        """Counters for telemetry and tests."""
        return {
            "keys": len(self._costs),
            "recorded": self.recorded,
            "replayed": self.replayed,
        }


def make_batch_estimator(
    cost_model: Optional["CostModel"],
    batches: Sequence[Sequence],
    static_cost: Optional[Callable[[Sequence], float]] = None,
) -> Callable[[Sequence], float]:
    """A per-batch cost estimator usable on arbitrary sub-batches.

    Measured batch costs (when the model knows a batch) are preferred;
    unknown batches — including the halves :func:`split_dominant`
    creates, whose keys have never run — fall back to the static proxy
    scaled into seconds with the mean measured cost per proxy unit, so
    measured and fallback estimates stay on one comparable scale.  With
    no model (or no measurements) this degrades to the static proxy
    alone.
    """
    if static_cost is None:
        static_cost = len
    if cost_model is None or len(cost_model) == 0:
        return lambda batch: float(static_cost(batch))
    measured_seconds = 0.0
    measured_units = 0.0
    for batch in batches:
        seconds = cost_model.estimate(batch_key(batch))
        if seconds is not None:
            measured_seconds += seconds
            measured_units += float(static_cost(batch))
    per_unit = (
        measured_seconds / measured_units if measured_units > 0 else None
    )

    def estimate(batch: Sequence) -> float:
        seconds = cost_model.estimate(batch_key(batch))
        if seconds is not None:
            return seconds
        units = float(static_cost(batch))
        return units * per_unit if per_unit is not None else units

    return estimate


def split_dominant(
    batches: list[list],
    estimate: Callable[[list], float],
    factor: float = 2.0,
) -> list[list]:
    """Split dominant batches until none is estimated above ``factor``
    times the mean.

    A single straggler batch bounds the whole map call's wall clock: with
    a 2x-the-mean batch on a 4-worker pool the other workers idle for the
    straggler's second half.  Splitting it in two (contiguously, in
    place) halves the tail while preserving the concatenation order of
    results — which is what keeps the candidate stream, and therefore the
    KB bytes, identical to the unsplit dispatch.

    ``estimate`` maps a batch to a nonnegative cost (static proxy or
    measured seconds; only ratios matter).  Deterministic: ties split the
    lowest-index batch first.
    """
    if factor <= 1.0:
        raise ValueError("factor must exceed 1.0")
    batches = [list(batch) for batch in batches]
    # Each pass splits one batch in two; a batch of one task can never
    # split, so the loop is bounded by the total task count.
    limit = sum(len(batch) for batch in batches)
    for _ in range(limit):
        costs = [estimate(batch) for batch in batches]
        mean = sum(costs) / len(costs) if costs else 0.0
        if mean <= 0.0:
            break
        worst = max(range(len(batches)), key=lambda i: (costs[i], -i))
        if costs[worst] <= factor * mean or len(batches[worst]) < 2:
            break
        batch = batches[worst]
        middle = len(batch) // 2
        batches[worst:worst + 1] = [batch[:middle], batch[middle:]]
    return batches
