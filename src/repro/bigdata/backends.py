"""Pluggable execution backends: serial, thread pool, process pool.

The map-reduce engine and the KB pipeline fan per-record work out through
one small interface — :meth:`ExecutionBackend.map` runs a function over a
task list and returns results in task order, whatever executes them:

* :class:`SerialBackend` — in-process, in-order (today's behavior);
* :class:`ThreadBackend` — a ``ThreadPoolExecutor`` (shared memory, GIL);
* :class:`ProcessBackend` — a real ``multiprocessing.Pool`` with a
  per-worker initializer (build the resolver/gazetteer once per process,
  not once per task) and picklable task payloads.

Pooled backends are **persistent**: the pool is created lazily on the
first ``map`` call and reused by every later call until :meth:`close`
(or the context manager exit), so one build pays one pool spinup for the
extraction stage, the map-reduce map phases, and every consistency
``clean()`` — not one per stage.  Because the pool outlives a single
``map``, the per-call ``initializer`` is delivered per call: worker
threads run it once per (thread, call), worker processes install it via a
barrier-synchronized broadcast that hands exactly one setup task to each
process before any real task is dispatched.

Scheduling is selectable per call.  ``schedule="static"`` dispatches
tasks in index order (the contiguous-chunk behavior callers relied on);
``schedule="steal"`` feeds workers from the shared pool queue
largest-estimated-cost-first (``cost_key``), so a straggler task starts
first instead of landing on an already-loaded worker — the map-reduce
answer to skewed page batches and lopsided reasoner components.  Either
way :func:`_collect` reassembles results in task-index order, so a
correct caller sees byte-identical output from every schedule, backend,
and worker count.

Worker telemetry is never lost: ``repro.obs`` state is process- and
thread-local by design, so after every task the worker captures its own
spans/counters (:func:`repro.obs.core.snapshot`) and ships them back with
the result; the parent groups the snapshots by worker and folds each
worker's combined telemetry into its registry under one
``worker[<name>]`` span (:func:`repro.obs.core.merge_snapshot`), which is
the per-worker breakdown ``build --trace`` renders.  The parent also
records ``backend.tasks_dispatched``, per-worker task/busy-time
histograms (``backend.worker.tasks`` / ``backend.worker.busy_s``), and
pool lifecycle counters (``backend.pool.spinups`` /
``backend.pool.reuses``).
"""

from __future__ import annotations

import pickle
import threading
import time
from typing import Callable, Optional, Sequence, TypeVar, Union

from .costs import CostModel
from ..obs import core as _obs

T = TypeVar("T")
R = TypeVar("R")

#: The selectable backend names (plus "auto": serial unless workers > 1).
BACKEND_NAMES = ("serial", "thread", "process")

#: The selectable dispatch schedules.
SCHEDULE_NAMES = ("static", "steal")

#: How long a process worker waits for its setup-broadcast peers before
#: declaring the pool wedged (a worker died mid-broadcast).
_BROADCAST_TIMEOUT_S = 300.0


def chunked(items: Sequence[T], chunks: int) -> list[list[T]]:
    """Split ``items`` into at most ``chunks`` contiguous, near-equal
    batches (deterministically; no empty batches)."""
    items = list(items)
    if not items:
        return []
    chunks = max(1, min(chunks, len(items)))
    size, remainder = divmod(len(items), chunks)
    batches: list[list[T]] = []
    start = 0
    for index in range(chunks):
        stop = start + size + (1 if index < remainder else 0)
        batches.append(items[start:stop])
        start = stop
    return batches


def _dispatch_order(
    tasks: Sequence[T],
    schedule: str,
    cost_key: Optional[Callable[[T], float]],
    cost_model: Optional[CostModel] = None,
    task_key: Optional[Callable[[T], str]] = None,
) -> list[tuple[int, T]]:
    """The (index, task) dispatch sequence for one ``map`` call.

    Static scheduling keeps task-index order.  Stealing orders the shared
    queue largest-estimated-cost-first so the most expensive task is
    claimed by the first free worker; ties break on the task index, which
    keeps the dispatch order — and therefore any in-worker side effects —
    deterministic for a given cost key.

    When a warm :class:`~repro.bigdata.costs.CostModel` covers every task
    in the call (keyed by ``task_key``), its measured wall-clock seconds
    replace the static ``cost_key`` proxy — replay is all-or-nothing
    because the two scales are incomparable.  Either way results are
    re-ordered by task index downstream, so the choice of estimator can
    never change output bytes, only queue order.
    """
    if schedule not in SCHEDULE_NAMES:
        raise ValueError(
            f"unknown schedule {schedule!r} (expected one of {SCHEDULE_NAMES})"
        )
    indexed = list(enumerate(tasks))
    if schedule == "steal":
        costs: Optional[list[float]] = None
        if cost_model is not None and task_key is not None:
            measured = cost_model.estimates_for([task_key(t) for t in tasks])
            if measured is not None:
                costs = [measured[task_key(t)] for t in tasks]
                if _obs.ENABLED:
                    _obs.count("backend.costs.replayed_calls")
        if costs is None and cost_key is not None:
            costs = [cost_key(t) for t in tasks]
        if costs is not None:
            indexed.sort(key=lambda pair: (-costs[pair[0]], pair[0]))
    return indexed


def _record_costs(
    cost_model: Optional[CostModel],
    task_key: Optional[Callable[[T], str]],
    tasks: Sequence[T],
    outcomes,
) -> None:
    """Fold measured per-task wall seconds back into the cost model.

    Outcomes are visited in task-index order so repeated keys fold their
    EWMA deterministically however the pool finished the tasks.
    """
    if cost_model is None or task_key is None:
        return
    for outcome in sorted(outcomes, key=lambda o: o[0]):
        cost_model.record(task_key(tasks[outcome[0]]), outcome[3])
    if _obs.ENABLED:
        _obs.count("backend.costs.recorded", len(outcomes))


class ExecutionBackend:
    """Run a function over tasks; results come back in task order."""

    name: str = "?"
    workers: int = 1
    #: Pool lifecycle counters (stay 0 for unpooled backends).
    spinups: int = 0
    reuses: int = 0

    def map(
        self,
        fn: Callable[[T], R],
        tasks: Sequence[T],
        *,
        initializer: Optional[Callable[..., None]] = None,
        initargs: tuple = (),
        schedule: str = "static",
        cost_key: Optional[Callable[[T], float]] = None,
        cost_model: Optional[CostModel] = None,
        task_key: Optional[Callable[[T], str]] = None,
    ) -> list[R]:
        """Execute ``fn`` on every task; results in task order.

        ``initializer(*initargs)`` runs once per worker per call before
        that worker's first task (and once in-process for the serial
        backend).  No backend runs the initializer for an empty task
        list.  ``schedule`` picks the dispatch order ("static" =
        task-index order, "steal" = largest ``cost_key`` first from the
        shared queue); the returned list is index-ordered either way.
        ``cost_model`` + ``task_key`` opt into measured-cost scheduling:
        every task's wall seconds are recorded under ``task_key(task)``,
        and a steal-scheduled call whose tasks are all known replays the
        measurements instead of the static ``cost_key`` proxy.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release any pooled workers; the next ``map`` re-creates them."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def _combine_snapshots(worker: str, snaps: list[dict]) -> dict:
    """Fold one worker's per-task snapshots into a single snapshot.

    Counters add, gauges last-write-wins, histogram samples extend, spans
    concatenate — all in task order, matching what per-snapshot merging
    would have produced, but yielding exactly one ``worker[...]`` wrapper
    when the combined snapshot is merged.
    """
    combined: dict = {
        "worker": worker,
        "counters": {},
        "gauges": {},
        "histograms": {},
        "spans": [],
    }
    for snap in snaps:
        for name, value in snap["counters"].items():
            combined["counters"][name] = combined["counters"].get(name, 0) + value
        combined["gauges"].update(snap["gauges"])
        for name, values in snap["histograms"].items():
            combined["histograms"].setdefault(name, []).extend(values)
        combined["spans"].extend(snap["spans"])
    return combined


def _collect(outcomes) -> list:
    """Order (index, result, snapshot, elapsed) outcomes and merge
    telemetry.

    Results return in task-index order — deterministic however the pool
    scheduled the work.  Snapshots are grouped by the worker that
    produced them (first-seen in task order) and merged as **one**
    ``worker[<name>]`` wrapper per worker, so a worker that ran 50 tasks
    contributes one wrapper span, not 50 siblings; per-worker task counts
    and busy time feed the utilization histograms.
    """
    results = []
    snaps_by_worker: dict[str, list[dict]] = {}
    for __, result, snap, ___ in sorted(outcomes, key=lambda outcome: outcome[0]):
        if snap is not None:
            snaps_by_worker.setdefault(snap["worker"], []).append(snap)
        results.append(result)
    for worker, snaps in snaps_by_worker.items():
        _obs.merge_snapshot(
            _combine_snapshots(worker, snaps), label=f"worker[{worker}]"
        )
        _obs.observe("backend.worker.tasks", len(snaps))
        _obs.observe(
            "backend.worker.busy_s",
            sum(
                span["elapsed_s"]
                for snap in snaps
                for span in snap["spans"]
            ),
        )
    return results


class SerialBackend(ExecutionBackend):
    """In-process, in-order execution — the degenerate one-worker pool."""

    name = "serial"

    def map(self, fn, tasks, *, initializer=None, initargs=(),
            schedule="static", cost_key=None, cost_model=None, task_key=None):
        tasks = list(tasks)
        order = _dispatch_order(tasks, schedule, cost_key, cost_model, task_key)
        if not order:
            return []
        if _obs.ENABLED:
            _obs.count("backend.tasks_dispatched", len(order))
        if initializer is not None:
            initializer(*initargs)
        measure = cost_model is not None and task_key is not None
        outcomes = []
        for index, task in order:
            started = time.perf_counter() if measure else 0.0
            result = fn(task)
            elapsed = time.perf_counter() - started if measure else 0.0
            outcomes.append((index, result, None, elapsed))
        _record_costs(cost_model, task_key, tasks, outcomes)
        outcomes.sort(key=lambda outcome: outcome[0])
        return [result for __, result, ___, ____ in outcomes]


class ThreadBackend(ExecutionBackend):
    """A persistent thread pool: shared memory, per-thread telemetry."""

    name = "thread"

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.spinups = 0
        self.reuses = 0
        self._pool = None

    def _ensure_pool(self):
        from concurrent.futures import ThreadPoolExecutor

        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-worker"
            )
            self.spinups += 1
            if _obs.ENABLED:
                _obs.count("backend.pool.spinups")
        else:
            self.reuses += 1
            if _obs.ENABLED:
                _obs.count("backend.pool.reuses")
        return self._pool

    def map(self, fn, tasks, *, initializer=None, initargs=(),
            schedule="static", cost_key=None, cost_model=None, task_key=None):
        tasks = list(tasks)
        order = _dispatch_order(tasks, schedule, cost_key, cost_model, task_key)
        if not order:
            return []
        if _obs.ENABLED:
            _obs.count("backend.tasks_dispatched", len(order))
        capture = _obs.ENABLED
        # Per-call worker initialization: the pool outlives this call, so
        # each worker thread runs the initializer lazily, once per call.
        call_state = threading.local()

        def run_one(indexed):
            index, task = indexed
            if initializer is not None and not getattr(call_state, "ready", False):
                initializer(*initargs)
                call_state.ready = True
            started = time.perf_counter()
            result = fn(task)
            elapsed = time.perf_counter() - started
            snap = _obs.snapshot(reset=True) if capture else None
            return index, result, snap, elapsed

        pool = self._ensure_pool()
        started = time.perf_counter()
        futures = [pool.submit(run_one, pair) for pair in order]
        outcomes = [future.result() for future in futures]
        if capture:
            _obs.observe("backend.map.elapsed_s", time.perf_counter() - started)
        _record_costs(cost_model, task_key, tasks, outcomes)
        return _collect(outcomes)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __del__(self):
        pool = getattr(self, "_pool", None)
        if pool is not None:
            try:
                pool.shutdown(wait=False)
            except Exception:
                pass


# Worker-process globals, installed by the pool bootstrap (at worker
# creation) and the per-call broadcast (before a call's first task).
_POOL_BARRIER = None
_POOL_CALL_ID: Optional[int] = None
_POOL_FN: Optional[Callable] = None


def _pool_worker_bootstrap(barrier) -> None:
    """Runs once per worker process at pool creation."""
    global _POOL_BARRIER
    _POOL_BARRIER = barrier
    # Clear anything a forked child inherited mid-trace from the parent.
    _obs.reset()
    _obs.disable()


def _pool_install_call(payload) -> None:
    """Install one call's (fn, initializer, capture flag) in this worker.

    Exactly ``workers`` of these are dispatched per ``map`` call; the
    barrier keeps every worker parked on its setup task until all workers
    hold one, so no worker can grab two and no worker can miss the call's
    initializer.
    """
    global _POOL_CALL_ID, _POOL_FN
    call_id, setup = payload
    _POOL_BARRIER.wait(timeout=_BROADCAST_TIMEOUT_S)
    fn, initializer, initargs, capture = pickle.loads(setup)
    _obs.reset()
    if capture:
        _obs.enable()
    else:
        _obs.disable()
    if initializer is not None:
        initializer(*initargs)
    _POOL_CALL_ID, _POOL_FN = call_id, fn


def _pool_run_task(payload):
    call_id, index, task = payload
    if call_id != _POOL_CALL_ID:
        raise RuntimeError(
            f"worker missed the setup broadcast for call {call_id} "
            f"(has {_POOL_CALL_ID})"
        )
    started = time.perf_counter()
    result = _POOL_FN(task)
    elapsed = time.perf_counter() - started
    snap = _obs.snapshot(reset=True) if _obs.ENABLED else None
    return index, result, snap, elapsed


class ProcessBackend(ExecutionBackend):
    """A persistent ``multiprocessing.Pool``: real parallelism, picklable
    payloads.

    ``fn``, ``initializer``, and task payloads must be picklable
    (module-level functions, dataclass values) so the backend also works
    under the ``spawn`` start method.  The pool is created on the first
    ``map`` and reused until :meth:`close`; each call broadcasts its
    function and initializer to every worker through a barrier before
    dispatching tasks.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None) -> None:
        import os

        self.workers = workers if workers else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        self.spinups = 0
        self.reuses = 0
        #: Transport cost of the last ``map`` call's setup broadcast:
        #: bytes pickled per worker, and the broadcast's wall time.
        self.init_payload_bytes = 0
        self.init_elapsed_s = 0.0
        self._pool = None
        self._barrier = None
        self._call_id = 0

    def _ensure_pool(self):
        import multiprocessing

        if self._pool is None:
            context = multiprocessing.get_context()
            self._barrier = context.Barrier(self.workers)
            self._pool = context.Pool(
                processes=self.workers,
                initializer=_pool_worker_bootstrap,
                initargs=(self._barrier,),
            )
            self.spinups += 1
            if _obs.ENABLED:
                _obs.count("backend.pool.spinups")
        else:
            self.reuses += 1
            if _obs.ENABLED:
                _obs.count("backend.pool.reuses")
        return self._pool

    def map(self, fn, tasks, *, initializer=None, initargs=(),
            schedule="static", cost_key=None, cost_model=None, task_key=None):
        tasks = list(tasks)
        order = _dispatch_order(tasks, schedule, cost_key, cost_model, task_key)
        if not order:
            return []
        if _obs.ENABLED:
            _obs.count("backend.tasks_dispatched", len(order))
        started = time.perf_counter()
        pool = self._ensure_pool()
        self._call_id += 1
        setup = pickle.dumps((fn, initializer, initargs, _obs.ENABLED))
        # The transport cost the corpus file exists to shrink: every
        # worker receives (and unpickles) this setup blob per call.
        self.init_payload_bytes = len(setup)
        pool.map(
            _pool_install_call,
            [(self._call_id, setup)] * self.workers,
            chunksize=1,
        )
        self.init_elapsed_s = time.perf_counter() - started
        if _obs.ENABLED:
            _obs.observe("backend.init.payload_bytes", len(setup))
            _obs.observe("backend.init.elapsed_s", self.init_elapsed_s)
        payloads = [(self._call_id, index, task) for index, task in order]
        if schedule == "steal":
            outcomes = list(pool.imap_unordered(_pool_run_task, payloads, chunksize=1))
        else:
            outcomes = pool.map(_pool_run_task, payloads, chunksize=1)
        if _obs.ENABLED:
            _obs.observe("backend.map.elapsed_s", time.perf_counter() - started)
        _record_costs(cost_model, task_key, tasks, outcomes)
        return _collect(outcomes)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
            self._barrier = None

    def __del__(self):
        pool = getattr(self, "_pool", None)
        if pool is not None:
            try:
                pool.terminate()
            except Exception:
                pass


def get_backend(
    name: Union[str, ExecutionBackend, None] = "auto", workers: int = 0
) -> ExecutionBackend:
    """Resolve a backend spec to an instance.

    ``"auto"`` (or ``None``) means serial for ``workers <= 1`` and a
    process pool otherwise — the CLI's ``--workers N`` default.  An
    explicit worker count of N >= 1 is honored exactly (``workers=1``
    builds a one-worker pool); the backend's own default (2 threads, one
    process per CPU) applies only when ``workers == 0``.  An
    :class:`ExecutionBackend` instance passes through unchanged.
    """
    if isinstance(name, ExecutionBackend):
        return name
    if workers < 0:
        raise ValueError("workers must be non-negative (0 = backend default)")
    if name is None or name == "auto":
        name = "serial" if workers <= 1 else "process"
    if name == "serial":
        return SerialBackend()
    if name == "thread":
        return ThreadBackend(workers if workers else 2)
    if name == "process":
        return ProcessBackend(workers if workers else None)
    raise ValueError(
        f"unknown backend {name!r} (expected one of {BACKEND_NAMES} or 'auto')"
    )


def advise_worker_count(workers: int, target: float = 0.75) -> Optional[dict]:
    """Utilization-driven worker-count advice from this build's telemetry.

    Reads the parent-side histograms the backends maintain per ``map``
    call — ``backend.worker.busy_s`` (summed worker busy time) and
    ``backend.map.elapsed_s`` (per-call wall time) — and compares how
    much worker capacity the build paid for against how much it used:
    ``utilization = total_busy / (workers * total_wall)``.  The
    recommendation sizes the pool so the same busy time would land near
    ``target`` utilization, clamped to [1, cpu_count].  Returns None when
    the build produced no multi-worker telemetry (serial build, tracing
    disabled, or empty task lists).
    """
    import os

    if workers <= 1:
        return None
    histograms = _obs.histograms()
    busy = histograms.get("backend.worker.busy_s")
    wall = histograms.get("backend.map.elapsed_s")
    if busy is None or wall is None or not busy.values or not wall.values:
        return None
    total_busy = sum(busy.values)
    total_wall = sum(wall.values)
    if total_wall <= 0.0 or total_busy <= 0.0:
        return None
    utilization = total_busy / (workers * total_wall)
    cpus = os.cpu_count() or 1
    recommended = max(1, min(cpus, round(workers * utilization / target)))
    return {
        "workers": workers,
        "utilization": utilization,
        "busy_s": total_busy,
        "wall_s": total_wall,
        "recommended": recommended,
        "cpus": cpus,
    }
