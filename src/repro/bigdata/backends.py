"""Pluggable execution backends: serial, thread pool, process pool.

The map-reduce engine and the KB pipeline fan per-record work out through
one small interface — :meth:`ExecutionBackend.map` runs a function over a
task list and returns results in task order, whatever executes them:

* :class:`SerialBackend` — in-process, in-order (today's behavior);
* :class:`ThreadBackend` — a ``ThreadPoolExecutor`` (shared memory, GIL);
* :class:`ProcessBackend` — a real ``multiprocessing.Pool`` with a
  per-worker initializer (build the resolver/gazetteer once per process,
  not once per task) and picklable task payloads.

Worker telemetry is never lost: ``repro.obs`` state is process- and
thread-local by design, so after every task the worker captures its own
spans/counters (:func:`repro.obs.core.snapshot`) and ships them back with
the result; the parent folds them into its registry under a
``worker[<name>]`` span (:func:`repro.obs.core.merge_snapshot`), which is
the per-worker breakdown ``build --trace`` renders.

Determinism contract: results are returned (and snapshots merged) in task
order, regardless of completion order, so a correct caller sees the same
output from every backend.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, TypeVar, Union

from ..obs import core as _obs

T = TypeVar("T")
R = TypeVar("R")

#: The selectable backend names (plus "auto": serial unless workers > 1).
BACKEND_NAMES = ("serial", "thread", "process")


def chunked(items: Sequence[T], chunks: int) -> list[list[T]]:
    """Split ``items`` into at most ``chunks`` contiguous, near-equal
    batches (deterministically; no empty batches)."""
    items = list(items)
    if not items:
        return []
    chunks = max(1, min(chunks, len(items)))
    size, remainder = divmod(len(items), chunks)
    batches: list[list[T]] = []
    start = 0
    for index in range(chunks):
        stop = start + size + (1 if index < remainder else 0)
        batches.append(items[start:stop])
        start = stop
    return batches


class ExecutionBackend:
    """Run a function over tasks; results come back in task order."""

    name: str = "?"
    workers: int = 1

    def map(
        self,
        fn: Callable[[T], R],
        tasks: Sequence[T],
        *,
        initializer: Optional[Callable[..., None]] = None,
        initargs: tuple = (),
    ) -> list[R]:
        """Execute ``fn`` on every task; ``initializer(*initargs)`` runs
        once per worker before any task (and once in-process for the
        serial backend)."""
        raise NotImplementedError


def _collect(outcomes) -> list:
    """Order (index, result, snapshot) outcomes and merge telemetry.

    Snapshots merge in task order — deterministic however the pool
    scheduled the work — labeled by the worker that produced them.
    """
    results = []
    for __, result, snap in sorted(outcomes, key=lambda outcome: outcome[0]):
        if snap is not None:
            _obs.merge_snapshot(snap, label=f"worker[{snap['worker']}]")
        results.append(result)
    return results


class SerialBackend(ExecutionBackend):
    """In-process, in-order execution — the degenerate one-worker pool."""

    name = "serial"

    def map(self, fn, tasks, *, initializer=None, initargs=()):
        if initializer is not None:
            initializer(*initargs)
        return [fn(task) for task in tasks]


class ThreadBackend(ExecutionBackend):
    """A thread pool: shared memory, per-thread telemetry capture."""

    name = "thread"

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers

    def map(self, fn, tasks, *, initializer=None, initargs=()):
        from concurrent.futures import ThreadPoolExecutor

        tasks = list(tasks)
        if not tasks:
            return []
        capture = _obs.ENABLED

        def run_one(indexed):
            index, task = indexed
            result = fn(task)
            snap = _obs.snapshot(reset=True) if capture else None
            return index, result, snap

        with ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="repro-worker",
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            outcomes = list(pool.map(run_one, enumerate(tasks)))
        return _collect(outcomes)


# Worker-process globals, installed by the pool initializer: the task
# function arrives once per worker (not once per task).
_PROCESS_FN: Optional[Callable] = None


def _process_worker_init(fn, capture, initializer, initargs) -> None:
    global _PROCESS_FN
    _PROCESS_FN = fn
    # Clear anything a forked child inherited mid-trace from the parent.
    _obs.reset()
    if capture:
        _obs.enable()
    else:
        _obs.disable()
    if initializer is not None:
        initializer(*initargs)


def _process_run_task(indexed):
    index, task = indexed
    result = _PROCESS_FN(task)
    snap = _obs.snapshot(reset=True) if _obs.ENABLED else None
    return index, result, snap


class ProcessBackend(ExecutionBackend):
    """A ``multiprocessing.Pool``: real parallelism, picklable payloads.

    ``fn``, ``initializer``, and task payloads must be picklable
    (module-level functions, dataclass values) so the backend also works
    under the ``spawn`` start method.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None) -> None:
        import os

        self.workers = workers if workers else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError("workers must be at least 1")

    def map(self, fn, tasks, *, initializer=None, initargs=()):
        import multiprocessing

        tasks = list(tasks)
        if not tasks:
            return []
        with multiprocessing.Pool(
            processes=self.workers,
            initializer=_process_worker_init,
            initargs=(fn, _obs.ENABLED, initializer, initargs),
        ) as pool:
            outcomes = pool.map(_process_run_task, list(enumerate(tasks)), chunksize=1)
        return _collect(outcomes)


def get_backend(
    name: Union[str, ExecutionBackend, None] = "auto", workers: int = 0
) -> ExecutionBackend:
    """Resolve a backend spec to an instance.

    ``"auto"`` (or ``None``) means serial for ``workers <= 1`` and a
    process pool otherwise — the CLI's ``--workers N`` default. An
    :class:`ExecutionBackend` instance passes through unchanged.
    """
    if isinstance(name, ExecutionBackend):
        return name
    if name is None or name == "auto":
        name = "serial" if workers <= 1 else "process"
    if name == "serial":
        return SerialBackend()
    if name == "thread":
        return ThreadBackend(workers if workers > 1 else 2)
    if name == "process":
        return ProcessBackend(workers if workers > 1 else None)
    raise ValueError(
        f"unknown backend {name!r} (expected one of {BACKEND_NAMES} or 'auto')"
    )
