"""Big-data substrates: map-reduce, frequent sequence mining, MinHash/LSH."""

from .mapreduce import JobStats, MapReduce, word_count
from .seqmining import closed_sequences, frequent_sequences
from .minhash import MinHasher, jaccard, lsh_candidate_pairs, shingles

__all__ = [
    "JobStats",
    "MapReduce",
    "word_count",
    "closed_sequences",
    "frequent_sequences",
    "MinHasher",
    "jaccard",
    "lsh_candidate_pairs",
    "shingles",
]
