"""Big-data substrates: map-reduce, frequent sequence mining, MinHash/LSH."""

from .backends import advise_worker_count, chunked, get_backend
from .costs import CostModel, batch_key, split_dominant
from .mapreduce import JobStats, MapReduce, word_count
from .seqmining import closed_sequences, frequent_sequences
from .minhash import MinHasher, jaccard, lsh_candidate_pairs, shingles

__all__ = [
    "advise_worker_count",
    "chunked",
    "get_backend",
    "CostModel",
    "batch_key",
    "split_dominant",
    "JobStats",
    "MapReduce",
    "word_count",
    "closed_sequences",
    "frequent_sequences",
    "MinHasher",
    "jaccard",
    "lsh_candidate_pairs",
    "shingles",
]
