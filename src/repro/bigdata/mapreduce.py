"""A map-reduce engine with shuffle accounting and pluggable execution.

The tutorial repeatedly points at map-reduce computation as the big-data
substrate of web-scale knowledge harvesting.  Real clusters are out of
scope, so this engine executes the same programming model — mapper,
optional combiner, partitioned shuffle, reducer — deterministically, while
*measuring* what a cluster would have to move: records and approximate
bytes shuffled per shard.  The scaling experiment (E11) reads those
counters instead of wall-clock network time.

The map phase runs through a pluggable :mod:`~repro.bigdata.backends`
executor: serial (the default), a thread pool, or a real process pool.
Chunked inputs keep worker dispatch coarse; shuffle and reduce stay in the
parent, and because chunk results come back in input order the job output
is byte-identical across backends — and across dispatch schedules: with
``schedule="steal"`` workers pull the largest remaining chunk from the
shared queue first, which tightens the makespan on skewed inputs without
changing a single output byte.  With the process backend, the mapper
(and the optional ``initializer``) must be picklable module-level
functions.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Generic, Iterable, Optional, TypeVar

from ..determinism.stable import stable_hash
from ..obs import core as _obs
from .backends import ExecutionBackend, chunked
from .costs import CostModel, batch_key, make_batch_estimator, split_dominant

I = TypeVar("I")   # input record
K = TypeVar("K")   # intermediate key
V = TypeVar("V")   # intermediate value
R = TypeVar("R")   # reduce output

Mapper = Callable[[I], Iterable[tuple[K, V]]]
Combiner = Callable[[K, list[V]], Iterable[V]]
Reducer = Callable[[K, list[V]], Iterable[R]]


@dataclass(slots=True)
class JobStats:
    """Counters a cluster scheduler would report for one job."""

    shards: int = 0
    map_input_records: int = 0
    map_output_records: int = 0
    combine_output_records: int = 0
    shuffled_records: int = 0
    shuffled_bytes: int = 0
    reduce_groups: int = 0
    reduce_output_records: int = 0
    records_per_shard: list[int] = field(default_factory=list)

    @property
    def skew(self) -> float:
        """Max/mean shard load (1.0 = perfectly balanced).

        Defined as 1.0 for an empty job (no shards, or no records shuffled
        at all) so callers never see a division by zero — an empty input is
        a legitimate job, not an error.
        """
        if not self.records_per_shard:
            return 1.0
        mean = sum(self.records_per_shard) / len(self.records_per_shard)
        if mean == 0:
            return 1.0
        return max(self.records_per_shard) / mean

    def publish(self) -> None:
        """Fold these counters into the observability registry.

        This is the single metrics mechanism for map-reduce jobs: the
        dataclass stays the structured return value, and (when tracing is
        enabled) the same numbers land in the global registry under
        ``mapreduce.*`` along with a per-shard load histogram.
        """
        if not _obs.ENABLED:
            return
        _obs.count("mapreduce.jobs")
        _obs.count("mapreduce.map_input_records", self.map_input_records)
        _obs.count("mapreduce.map_output_records", self.map_output_records)
        _obs.count("mapreduce.combine_output_records", self.combine_output_records)
        _obs.count("mapreduce.shuffled_records", self.shuffled_records)
        _obs.count("mapreduce.shuffled_bytes", self.shuffled_bytes)
        _obs.count("mapreduce.reduce_groups", self.reduce_groups)
        _obs.count("mapreduce.reduce_output_records", self.reduce_output_records)
        _obs.gauge("mapreduce.last_job.skew", self.skew)
        for records in self.records_per_shard:
            _obs.observe("mapreduce.shard.records", records)


def _approximate_size(value) -> int:
    """A cheap, deterministic stand-in for serialized record size."""
    if isinstance(value, str):
        return len(value)
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, (tuple, list)):
        return 2 + sum(_approximate_size(v) for v in value)
    if isinstance(value, dict):
        return 2 + sum(
            _approximate_size(k) + _approximate_size(v) for k, v in value.items()
        )
    return len(repr(value))


# Worker-side state for backend-parallel map phases: the mapper is
# installed once per worker by the initializer, not pickled per task.
_WORKER_MAPPER: Optional[Callable] = None


def _mapreduce_worker_init(mapper, user_initializer, user_initargs) -> None:
    global _WORKER_MAPPER
    if user_initializer is not None:
        user_initializer(*user_initargs)
    _WORKER_MAPPER = mapper


def _map_chunk(records: list) -> tuple[int, list]:
    """Apply the installed mapper to one input chunk (runs in a worker)."""
    pairs: list = []
    for record in records:
        pairs.extend(_WORKER_MAPPER(record))
    return len(records), pairs


class MapReduce(Generic[I, K, V, R]):
    """A map-reduce executor with deterministic sharding and backends."""

    def __init__(
        self,
        shards: int = 4,
        backend: Optional[ExecutionBackend] = None,
        schedule: str = "static",
        cost_model: Optional[CostModel] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be at least 1")
        self.shards = shards
        self.backend = backend
        self.schedule = schedule
        # Optional measured-cost model: per-chunk map wall seconds are
        # recorded under the chunk's batch key and replayed as steal
        # estimates by later jobs that see the same chunks (execution
        # policy only — never changes output bytes).
        self.cost_model = cost_model

    def run(
        self,
        inputs: Iterable[I],
        mapper: Mapper,
        reducer: Reducer,
        combiner: Optional[Combiner] = None,
        initializer: Optional[Callable[..., None]] = None,
        initargs: tuple = (),
    ) -> tuple[list[R], JobStats]:
        """Execute one job; return (reduce outputs, counters).

        ``initializer(*initargs)`` runs once per map worker before any
        record, for per-worker state the mapper needs (dictionaries,
        gazetteers).  An empty input is a valid job: every counter is
        zero, ``records_per_shard`` is a zero per shard, and ``skew`` is
        1.0.
        """
        stats = JobStats(shards=self.shards)
        with _obs.span("mapreduce.run") as job:

            # Map phase: each mapper output is routed to a shard by key hash.
            # With a parallel backend, chunks fan out to workers and their
            # (key, value) pairs come back in input order, so shard-buffer
            # content and order match the serial execution exactly.
            shard_buffers: list[dict[K, list[V]]] = [
                defaultdict(list) for __ in range(self.shards)
            ]
            with _obs.span("mapreduce.map"):
                if self.backend is not None and self.backend.workers > 1:
                    chunks = chunked(list(inputs), self.backend.workers * 4)
                    if self.cost_model is not None:
                        # Adaptive splitting: a chunk estimated well above
                        # the mean is halved before dispatch (results
                        # still concatenate in input order).
                        chunks = split_dominant(
                            chunks,
                            make_batch_estimator(self.cost_model, chunks),
                        )
                    mapped = self.backend.map(
                        _map_chunk,
                        chunks,
                        initializer=_mapreduce_worker_init,
                        initargs=(mapper, initializer, initargs),
                        schedule=self.schedule,
                        cost_key=len,
                        cost_model=self.cost_model,
                        task_key=batch_key,
                    )
                    pair_stream = (
                        (records, pairs) for records, pairs in mapped
                    )
                else:
                    if initializer is not None:
                        initializer(*initargs)
                    pair_stream = (
                        (1, mapper(record)) for record in inputs
                    )
                for records, pairs in pair_stream:
                    stats.map_input_records += records
                    for key, value in pairs:
                        stats.map_output_records += 1
                        shard = stable_hash(repr(key)) % self.shards
                        shard_buffers[shard][key].append(value)

            # Combine phase (runs "map-side", before the shuffle).
            with _obs.span("mapreduce.combine"):
                if combiner is not None:
                    for buffer in shard_buffers:
                        for key in list(buffer):
                            combined = list(combiner(key, buffer[key]))
                            buffer[key] = combined
                            stats.combine_output_records += len(combined)
                else:
                    stats.combine_output_records = stats.map_output_records

            # Shuffle accounting: everything crossing the map/reduce border.
            with _obs.span("mapreduce.shuffle"):
                stats.records_per_shard = [0] * self.shards
                for shard_index, buffer in enumerate(shard_buffers):
                    for key, values in buffer.items():
                        stats.shuffled_records += len(values)
                        stats.records_per_shard[shard_index] += len(values)
                        stats.shuffled_bytes += sum(
                            _approximate_size(key) + _approximate_size(v)
                            for v in values
                        )

            # Reduce phase: shards in order, keys sorted for determinism.
            # Each shard's reduce wall time feeds the per-shard histogram —
            # the straggler signal a cluster scheduler would watch.
            results: list[R] = []
            with _obs.span("mapreduce.reduce"):
                for buffer in shard_buffers:
                    shard_t0 = time.perf_counter() if _obs.ENABLED else 0.0
                    for key in sorted(buffer, key=repr):
                        stats.reduce_groups += 1
                        for output in reducer(key, buffer[key]):
                            results.append(output)
                            stats.reduce_output_records += 1
                    if _obs.ENABLED:
                        _obs.observe(
                            "mapreduce.shard.reduce_s",
                            time.perf_counter() - shard_t0,
                        )
            if _obs.ENABLED:
                job.add("shards", self.shards)
                job.add("map_input_records", stats.map_input_records)
                job.add("shuffled_records", stats.shuffled_records)
                stats.publish()
        return results, stats


def word_count(
    documents: Iterable[str], shards: int = 4
) -> tuple[dict[str, int], JobStats]:
    """The canonical example job, used by tests and the quickstart."""

    def mapper(document: str):
        for word in document.split():
            yield word.lower(), 1

    def combiner(word: str, counts: list[int]):
        yield sum(counts)

    def reducer(word: str, counts: list[int]):
        yield word, sum(counts)

    engine: MapReduce = MapReduce(shards=shards)
    pairs, stats = engine.run(documents, mapper, reducer, combiner=combiner)
    return dict(pairs), stats
