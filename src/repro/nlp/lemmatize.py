"""A small lemmatizer: irregular table plus suffix stripping."""

from __future__ import annotations

from functools import lru_cache

_IRREGULAR = {
    "was": "be", "were": "be", "is": "be", "are": "be", "been": "be",
    "being": "be", "am": "be",
    "has": "have", "had": "have", "having": "have",
    "did": "do", "does": "do", "done": "do",
    "won": "win", "wrote": "write", "written": "write", "led": "lead",
    "held": "hold", "met": "meet", "gave": "give", "given": "give",
    "made": "make", "said": "say", "knew": "know", "known": "know",
    "grew": "grow", "grown": "grow", "broke": "break", "broken": "break",
    "got": "get", "saw": "see", "seen": "see", "lay": "lie", "found": "find",
    "founded": "found", "passed": "pass", "died": "die", "lies": "lie",
    "studied": "study", "studies": "study", "married": "marry",
    "marries": "marry", "cities": "city", "companies": "company",
    "universities": "university", "people": "person", "children": "child",
    "men": "man", "women": "woman", "graduated": "graduate",
    "located": "locate", "created": "create", "compared": "compare",
    "fell": "fall", "bought": "buy", "sold": "sell",
}

#: Words that look plural/inflected but are not.
_NO_STRIP = frozenset(
    {"this", "his", "its", "thus", "less", "yes", "always", "perhaps",
     "news", "series", "species", "analysis", "basis", "bus", "plus",
     "gas", "as", "is", "us", "lens"}
)

_DOUBLED = frozenset("bdgklmnprt")


@lru_cache(maxsize=65536)
def lemma(word: str) -> str:
    """The lemma of a word (lowercased; names pass through unchanged).

    Memoized: a corpus's vocabulary is tiny next to its token stream, and
    the per-sentence pipeline calls this once per token — the cache turns
    repeat lookups into a single dict probe (pure function, so caching
    cannot change results).
    """
    lower = word.lower()
    if lower in _IRREGULAR:
        return _IRREGULAR[lower]
    if lower in _NO_STRIP:
        return lower
    if lower.endswith("ies") and len(lower) > 4:
        return lower[:-3] + "y"
    if lower.endswith(("sses", "shes", "ches", "xes", "zzes")):
        return lower[:-2]
    if lower.endswith("s") and len(lower) > 3 and not lower.endswith("ss"):
        return lower[:-1]
    if lower.endswith("ing") and len(lower) > 5:
        stem = lower[:-3]
        if len(stem) > 2 and stem[-1] == stem[-2] and stem[-1] in _DOUBLED:
            return stem[:-1]
        return stem if _has_vowel(stem) else lower
    if lower.endswith("ed") and len(lower) > 4:
        stem = lower[:-2]
        if len(stem) > 2 and stem[-1] == stem[-2] and stem[-1] in _DOUBLED:
            return stem[:-1]
        if stem.endswith("i"):
            return stem[:-1] + "y"
        # Restore the silent e the suffix swallowed ("praised" -> "praise").
        if stem and stem[-1] in "szcvgu":
            return stem + "e"
        return stem if _has_vowel(stem) else lower
    return lower


def _has_vowel(stem: str) -> bool:
    return any(ch in "aeiouy" for ch in stem)
