"""A rule-based part-of-speech tagger.

Tagging order per token: punctuation/number surface checks, closed-class
lexicon, open-class lexicon, capitalization (mid-sentence capitalized word
-> proper noun), then suffix heuristics, with a NOUN default.  A final
contextual repair pass fixes the classic ambiguities that matter to the
downstream parser (e.g. a lexicon VERB directly after a determiner is a
noun: "the works of...").
"""

from __future__ import annotations

from . import lexicon as lx
from .tokenizer import Token


def tag(tokens: list[Token]) -> list[str]:
    """POS tags, one per token."""
    tags = [_tag_one(token, index) for index, token in enumerate(tokens)]
    _repair(tokens, tags)
    return tags


def _tag_one(token: Token, index: int) -> str:
    text = token.text
    lower = text.lower()
    if not text[0].isalnum():
        return lx.PUNCT
    if token.is_number:
        return lx.NUM
    if lower in lx.AUXILIARIES:
        return lx.AUX
    if lower in lx.DETERMINERS:
        return lx.DET
    if lower in lx.PREPOSITIONS:
        return lx.ADP
    if lower in lx.PRONOUNS:
        return lx.PRON
    if lower in lx.CONJUNCTIONS:
        return lx.CCONJ
    if lower in lx.SUBORDINATORS:
        return lx.SCONJ
    # Mid-sentence capitalization outranks the open-class lexicon: "Falls"
    # in "Jelgrad Falls" is part of a name, not the verb.
    if token.is_capitalized and index > 0:
        return lx.PROPN
    if lower in lx.VERBS:
        return lx.VERB
    if lower in lx.ADJECTIVES:
        return lx.ADJ
    if lower in lx.ADVERBS:
        return lx.ADV
    if lower in lx.NOUNS:
        return lx.NOUN
    if token.is_capitalized and index == 0:
        # Sentence-initial capitalization is uninformative; fall through to
        # suffix rules, and only then guess proper noun.
        guessed = _suffix_guess(lower)
        return guessed if guessed is not None else lx.PROPN
    guessed = _suffix_guess(lower)
    return guessed if guessed is not None else lx.NOUN


def _suffix_guess(lower: str) -> str | None:
    if lower.endswith("ing") and len(lower) > 5:
        return lx.VERB
    if lower.endswith("ed") and len(lower) > 4:
        return lx.VERB
    if lower.endswith("ly") and len(lower) > 4:
        return lx.ADV
    if lower.endswith("ous") or lower.endswith("ful") or lower.endswith("ive"):
        return lx.ADJ
    return None


def _repair(tokens: list[Token], tags: list[str]) -> None:
    """Contextual fixes applied in place."""
    for i, (token, pos) in enumerate(zip(tokens, tags)):
        previous = tags[i - 1] if i > 0 else None
        # "the works of" / "a record" — verb reading impossible after DET.
        if pos == lx.VERB and previous in (lx.DET, lx.ADJ):
            tags[i] = lx.NOUN
        # Capitalized word after sentence start that is followed by another
        # capitalized word is part of a name: "Acumen Labs ..."
        if (
            i == 0
            and pos == lx.NOUN
            and token.is_capitalized
            and i + 1 < len(tokens)
            and tokens[i + 1].is_capitalized
            and token.text.lower() not in lx.DETERMINERS
        ):
            tags[i] = lx.PROPN
