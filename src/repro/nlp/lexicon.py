"""The closed-class and core open-class lexicon of the POS tagger.

The tagset is a simplified universal set: DET, NOUN, PROPN, VERB, AUX, ADP,
NUM, PUNCT, ADJ, ADV, PRON, CCONJ, SCONJ, PART.  The open-class entries
cover the vocabulary of the corpus templates plus common English filler, so
the rule-based tagger is near-perfect on the synthetic corpus — mimicking a
trained tagger's in-domain behaviour.
"""

from __future__ import annotations

DET = "DET"
NOUN = "NOUN"
PROPN = "PROPN"
VERB = "VERB"
AUX = "AUX"
ADP = "ADP"
NUM = "NUM"
PUNCT = "PUNCT"
ADJ = "ADJ"
ADV = "ADV"
PRON = "PRON"
CCONJ = "CCONJ"
SCONJ = "SCONJ"
PART = "PART"

DETERMINERS = frozenset(
    {"a", "an", "the", "this", "that", "these", "those", "some", "any",
     "each", "every", "no", "many", "several", "other", "its", "his", "her",
     "their", "my", "your", "our"}
)

PREPOSITIONS = frozenset(
    {"in", "on", "at", "of", "to", "from", "by", "with", "for", "about",
     "near", "into", "over", "under", "after", "before", "between", "during",
     "through", "since", "until", "as", "per"}
)

PRONOUNS = frozenset(
    {"he", "she", "it", "they", "we", "i", "you", "him", "her", "them",
     "us", "me", "who", "which", "whom", "whose"}
)

CONJUNCTIONS = frozenset({"and", "or", "but", "nor", "yet"})

SUBORDINATORS = frozenset({"that", "because", "although", "while", "when", "where", "if"})

AUXILIARIES = frozenset(
    {"is", "are", "was", "were", "be", "been", "being", "am",
     "has", "have", "had", "having",
     "do", "does", "did",
     "will", "would", "can", "could", "may", "might", "shall", "should", "must"}
)

#: Verbs (all inflections) the corpus and its paraphrases use.
VERBS = frozenset(
    {"born", "founded", "found", "founds", "establish", "established",
     "establishes", "marry", "married", "marries", "work", "works", "worked",
     "working", "join", "joined", "joins", "study", "studied", "studies",
     "graduate", "graduated", "graduates", "earn", "earned", "earns", "win",
     "won", "wins", "receive", "received", "receives", "award", "awarded",
     "awards", "write", "wrote", "written", "writes", "release", "released",
     "releases", "record", "recorded", "records", "lie", "lies", "lay",
     "locate", "located", "base", "based", "headquarter", "headquartered",
     "unveil", "unveiled", "unveils", "launch", "launched", "launches",
     "make", "made", "makes", "lead", "led", "leads", "serve", "serves",
     "served", "die", "died", "dies", "pass", "passed", "passes", "hold",
     "holds", "held", "meet", "met", "meets", "give", "gave", "given",
     "gives", "praise", "praised", "praises", "visit", "visited", "visits",
     "criticize", "criticized", "criticizes", "photograph", "photographed",
     "mention", "mentioned", "mentioning", "attend", "attended", "attends",
     "shape", "shaped", "shapes", "say", "said", "says", "know", "known",
     "knows", "knew", "create", "created", "creates", "upgrade", "upgraded",
     "get", "got", "see", "saw", "seen", "compare", "comparing", "compared",
     "crack", "cracked", "overheat", "overheating", "regret", "regretting",
     "love", "loved", "loves", "hate", "hated", "hates", "break", "broke",
     "fall", "fell", "fallen", "falls", "buy", "bought", "buys", "sell", "sold",
     "last", "lasts", "grow", "grew", "grown", "include", "included",
     "including", "includes"}
)

#: Common nouns appearing in templates, categories, and commonsense text.
NOUNS = frozenset(
    {"city", "cities", "capital", "country", "countries", "birthplace",
     "founder", "founders", "author", "authors", "degree", "album", "albums",
     "headquarters", "conference", "speech", "interview", "essay", "summer",
     "year", "years", "scientist", "scientists", "musician", "musicians",
     "politician", "politicians", "entrepreneur", "entrepreneurs", "athlete",
     "athletes", "writer", "writers", "company", "companies", "university",
     "universities", "smartphone", "smartphones", "book", "books", "prize",
     "prizes", "person", "people", "citizen", "citizens", "citizenship",
     "era", "meeting", "chief", "executive", "ceo", "phone", "phones",
     "camera", "battery", "screen", "update", "store", "display", "ad",
     "rival", "rivals", "mouthpiece", "clarinet", "apple", "apples",
     "wheel", "wheels", "engine", "car", "cars", "bird", "birds", "wing",
     "wings", "history", "economy", "music", "culture", "award", "awards",
     "talk", "products", "product", "birth", "births", "death", "deaths",
     "articles", "cleanup", "noon", "week", "month", "day", "instrument",
     "shape", "part", "parts"}
)

ADJECTIVES = frozenset(
    {"new", "best", "worth", "slow", "fast", "amazing", "red", "green",
     "juicy", "sweet", "sour", "funny", "cylindrical", "round", "loud",
     "soft", "cold", "hot", "active", "famous", "late", "early",
     "best-known", "total", "several", "own", "first", "last", "old",
     "young", "big", "small", "long", "short", "high", "low"}
)

ADVERBS = frozenset(
    {"also", "then", "now", "very", "totally", "finally", "just",
     "repeatedly", "often", "usually", "never", "always", "ever", "forever",
     "together", "well", "too", "yesterday", "today", "tomorrow"}
)

PARTICLES = frozenset({"to", "not", "n't", "'s", "’s"})
