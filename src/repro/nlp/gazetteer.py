"""A token-trie gazetteer for dictionary-based mention matching.

Dictionary matching against a KB's name catalogue is how industrial NED
systems detect candidate mentions.  The trie matches token sequences
(longest match wins, left to right) and returns the payload stored under
each name — typically the set of entities the name may denote.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, Iterable, Optional, TypeVar

from .tokenizer import Token, tokenize

P = TypeVar("P")


@dataclass
class _Node(Generic[P]):
    children: dict[str, "_Node[P]"] = field(default_factory=dict)
    payload: Optional[P] = None
    terminal: bool = False


@dataclass(frozen=True, slots=True)
class GazetteerMatch(Generic[P]):
    """One dictionary hit: a [start, end) token span plus its payload."""

    start: int
    end: int
    text: str
    payload: P


class Gazetteer(Generic[P]):
    """A case-sensitive token-sequence trie."""

    def __init__(self) -> None:
        self._root: _Node[P] = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def add(self, name: str, payload: P) -> None:
        """Register a name (tokenized internally) with its payload."""
        parts = [t.text for t in tokenize(name)]
        if not parts:
            raise ValueError("cannot add an empty name")
        node = self._root
        for part in parts:
            node = node.children.setdefault(part, _Node())
        if not node.terminal:
            self._size += 1
        node.terminal = True
        node.payload = payload

    def add_all(self, entries: Iterable[tuple[str, P]]) -> None:
        """Register many (name, payload) pairs."""
        for name, payload in entries:
            self.add(name, payload)

    def lookup(self, name: str) -> Optional[P]:
        """The payload of an exact name, or None."""
        node = self._root
        for token in tokenize(name):
            node = node.children.get(token.text)
            if node is None:
                return None
        return node.payload if node.terminal else None

    def match(self, tokens: list[Token]) -> list[GazetteerMatch[P]]:
        """Longest non-overlapping dictionary matches, left to right."""
        matches: list[GazetteerMatch[P]] = []
        i = 0
        n = len(tokens)
        while i < n:
            node = self._root
            best_end, best_payload = None, None
            j = i
            while j < n:
                node = node.children.get(tokens[j].text)
                if node is None:
                    break
                j += 1
                if node.terminal:
                    best_end, best_payload = j, node.payload
            if best_end is not None:
                text = _span_text(tokens, i, best_end)
                matches.append(GazetteerMatch(i, best_end, text, best_payload))
                i = best_end
            else:
                i += 1
        return matches


def _span_text(tokens: list[Token], start: int, end: int) -> str:
    covered = tokens[start:end]
    pieces = [covered[0].text]
    for prev, cur in zip(covered, covered[1:]):
        pieces.append(" " if cur.start > prev.end else "")
        pieces.append(cur.text)
    return "".join(pieces)
