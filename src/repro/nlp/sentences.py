"""A rule-based sentence splitter.

Splits on sentence-final punctuation followed by whitespace and an uppercase
letter (or end of text), while protecting common abbreviations and single-
letter initials ("G. Weikum") from triggering a boundary.
"""

from __future__ import annotations

import re

_ABBREVIATIONS = frozenset(
    {"dr", "mr", "mrs", "ms", "prof", "st", "no", "vol", "fig", "vs", "etc",
     "inc", "ltd", "corp", "univ", "dept"}
)

_BOUNDARY_RE = re.compile(r"([.!?])(\s+)(?=[A-Z0-9À-Ü])|([.!?])$")


def split_sentences(text: str) -> list[tuple[int, int]]:
    """Character spans (start, end) of the sentences in ``text``."""
    spans = []
    start = 0
    for match in _BOUNDARY_RE.finditer(text):
        end = match.start() + 1  # include the punctuation mark
        if _is_protected(text, match.start()):
            continue
        if end > start:
            spans.append((start, end))
        start = match.end() if match.group(2) else end
    tail = text[start:].strip()
    if tail:
        tail_start = start + (len(text[start:]) - len(text[start:].lstrip()))
        spans.append((tail_start, tail_start + len(tail)))
    return spans


def _is_protected(text: str, dot_index: int) -> bool:
    """True if the punctuation at ``dot_index`` should not split."""
    if text[dot_index] != ".":
        return False
    word_start = dot_index
    while word_start > 0 and text[word_start - 1].isalpha():
        word_start -= 1
    word = text[word_start:dot_index]
    if len(word) == 1 and word.isupper():
        return True  # an initial like "G."
    return word.lower() in _ABBREVIATIONS


def sentence_texts(text: str) -> list[str]:
    """The sentence substrings of ``text``."""
    return [text[a:b] for a, b in split_sentences(text)]
