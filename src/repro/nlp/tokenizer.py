"""An offset-preserving regex tokenizer.

Every token records its character span in the original text, so mention
spans produced downstream (NER, extraction) can always be mapped back to the
source — a hard requirement for provenance in knowledge harvesting.
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass
from typing import Iterator

#: Word-ish tokens (letters with internal hyphens/apostrophes), numbers
#: (with decimals), or any single non-space symbol.
_TOKEN_RE = re.compile(
    r"""
    [A-Za-zÀ-ɏ]+(?:['’-][A-Za-zÀ-ɏ]+)*  # words
    | \d+(?:[.,]\d+)*                                           # numbers
    | \S                                                        # anything else
    """,
    re.VERBOSE,
)


@dataclass(frozen=True, slots=True)
class Token:
    """One token with its source-text character span."""

    text: str
    start: int
    end: int

    @property
    def is_word(self) -> bool:
        """True if the token starts with a letter."""
        return bool(self.text) and self.text[0].isalpha()

    @property
    def is_number(self) -> bool:
        """True if the token is numeric (possibly with separators)."""
        return bool(self.text) and self.text[0].isdigit()

    @property
    def is_capitalized(self) -> bool:
        """True if the token starts with an uppercase letter."""
        return bool(self.text) and self.text[0].isupper()

    def __str__(self) -> str:
        return self.text


def tokenize(text: str) -> list[Token]:
    """Split text into offset-annotated tokens.

    Token texts are interned: a corpus repeats its vocabulary millions of
    times, and interning makes every downstream dict lookup (lemma
    tables, gazetteer tries, stopword sets) a pointer comparison while
    collapsing duplicate strings to one allocation.
    """
    intern = sys.intern
    return [
        Token(intern(m.group()), m.start(), m.end())
        for m in _TOKEN_RE.finditer(text)
    ]


def iter_token_texts(text: str) -> Iterator[str]:
    """Just the token strings (convenience for hashing/counting)."""
    for match in _TOKEN_RE.finditer(text):
        yield match.group()
