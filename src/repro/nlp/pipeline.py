"""The one-call NLP pipeline: tokenize, tag, lemmatize, chunk, parse, NER."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .chunk import Chunk, noun_phrases, verb_groups
from .dependency import Parse, parse
from .gazetteer import Gazetteer
from .lemmatize import lemma
from .ner import MentionSpan, detect_mentions
from .pos import tag
from .sentences import split_sentences
from .tokenizer import Token, tokenize


@dataclass(slots=True)
class Analysis:
    """Everything the pipeline knows about one sentence."""

    text: str
    tokens: list[Token]
    tags: list[str]
    lemmas: list[str]
    nps: list[Chunk]
    verb_groups: list[Chunk]
    parse: Parse
    mentions: list[MentionSpan] = field(default_factory=list)

    def mention_at_char(self, char_start: int) -> Optional[MentionSpan]:
        """The detected mention starting at a character offset, if any."""
        for mention in self.mentions:
            if mention.char_start == char_start:
                return mention
        return None

    def token_index_at_char(self, offset: int) -> Optional[int]:
        """Index of the token covering a character offset."""
        for i, token in enumerate(self.tokens):
            if token.start <= offset < token.end:
                return i
        return None


def analyze(text: str, gazetteer: Optional[Gazetteer] = None) -> Analysis:
    """Run the full pipeline on one sentence."""
    tokens = tokenize(text)
    tags = tag(tokens)
    analysis = Analysis(
        text=text,
        tokens=tokens,
        tags=tags,
        lemmas=[lemma(t.text) for t in tokens],
        nps=noun_phrases(tokens, tags),
        verb_groups=verb_groups(tokens, tags),
        parse=parse(tokens, tags),
    )
    analysis.mentions = detect_mentions(tokens, tags, gazetteer)
    return analysis


def analyze_document(text: str, gazetteer: Optional[Gazetteer] = None) -> list[Analysis]:
    """Split a document into sentences and analyze each."""
    return [
        analyze(text[a:b], gazetteer) for a, b in split_sentences(text)
    ]
