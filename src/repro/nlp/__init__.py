"""The from-scratch NLP stack: tokenizer through dependency parser."""

from . import lexicon
from .tokenizer import Token, tokenize
from .sentences import sentence_texts, split_sentences
from .pos import tag
from .lemmatize import lemma
from .chunk import Chunk, chunk_of_token, noun_phrases, verb_groups
from .dependency import Parse, parse
from .gazetteer import Gazetteer, GazetteerMatch
from .ner import MentionSpan, detect_mentions
from .pipeline import Analysis, analyze, analyze_document

__all__ = [
    "lexicon",
    "Token",
    "tokenize",
    "sentence_texts",
    "split_sentences",
    "tag",
    "lemma",
    "Chunk",
    "chunk_of_token",
    "noun_phrases",
    "verb_groups",
    "Parse",
    "parse",
    "Gazetteer",
    "GazetteerMatch",
    "MentionSpan",
    "detect_mentions",
    "Analysis",
    "analyze",
    "analyze_document",
]
