"""A deterministic rule-based dependency parser.

The tutorial's fact-harvesting section lists dependency parsing as the
computational-linguistics member of the extraction-method spectrum.  This
parser produces a single-rooted arc set good enough for dependency-*path*
extraction over the corpus grammar: NP-internal arcs (det, amod, compound),
verb groups (aux), subjects (nsubj / nsubjpass with passive detection),
objects (dobj, or attr in copular clauses), prepositional attachment
(prep + pobj, noun-attached when the preposition directly follows a
post-verbal nominal), and NP coordination (cc, conj).

The payoff is :meth:`Parse.path`, the lexicalized shortest-path signature
between two tokens — the feature dependency-path extractors key on, which
keeps working when surface patterns break (passives, inversions).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from . import lexicon as lx
from .chunk import Chunk, noun_phrases, verb_groups
from .lemmatize import lemma
from .tokenizer import Token

ROOT = -1

_PASSIVE_AUX = frozenset({"was", "were", "is", "are", "been", "be", "being", "am"})


@dataclass(slots=True)
class Parse:
    """A dependency parse: one head index and label per token."""

    tokens: list[Token]
    tags: list[str]
    heads: list[int]
    labels: list[str]
    nps: list[Chunk] = field(default_factory=list)

    def children(self, index: int) -> list[int]:
        """Token indexes whose head is ``index``."""
        return [i for i, h in enumerate(self.heads) if h == index]

    def root(self) -> int:
        """The root token index (or -1 for an empty parse)."""
        for i, h in enumerate(self.heads):
            if h == ROOT:
                return i
        return ROOT

    def path(self, start: int, end: int, max_length: int = 6) -> str | None:
        """The lexicalized dependency path between two tokens.

        Rendered as alternating direction+label steps with the lemmas of
        intermediate nodes, e.g. ``^nsubj:found:vdobj`` for "X founded Y".
        Returns None when no path exists within ``max_length`` edges.
        """
        if start == end:
            return ""
        neighbors: dict[int, list[tuple[int, str, str]]] = {}
        for i, (h, label) in enumerate(zip(self.heads, self.labels)):
            if h == ROOT:
                continue
            neighbors.setdefault(i, []).append((h, label, "^"))   # up-arc
            neighbors.setdefault(h, []).append((i, label, "v"))   # down-arc
        queue = deque([(start, [])])
        seen = {start}
        while queue:
            node, steps = queue.popleft()
            if len(steps) > max_length:
                continue
            for neighbor, label, direction in neighbors.get(node, ()):
                if neighbor in seen:
                    continue
                next_steps = steps + [(direction, label, neighbor)]
                if neighbor == end:
                    return self._render_path(next_steps)
                seen.add(neighbor)
                queue.append((neighbor, next_steps))
        return None

    def _render_path(self, steps: list[tuple[str, str, int]]) -> str:
        parts = []
        for i, (direction, label, node) in enumerate(steps):
            parts.append(f"{direction}{label}")
            if i < len(steps) - 1:  # intermediate node: include its lemma
                parts.append(lemma(self.tokens[node].text))
        return ":".join(parts)


def parse(tokens: list[Token], tags: list[str]) -> Parse:
    """Parse one sentence (tokens + POS tags) into a dependency tree."""
    n = len(tokens)
    heads = [ROOT] * n
    labels = ["dep"] * n
    if n == 0:
        return Parse(tokens, tags, heads, labels)

    nps = noun_phrases(tokens, tags)
    vgs = verb_groups(tokens, tags)

    np_heads = _attach_np_internals(tokens, tags, nps, heads, labels)
    verb_head, passive = _attach_verb_group(tokens, tags, vgs, heads, labels)
    main = verb_head if verb_head is not None else (np_heads[0] if np_heads else 0)
    heads[main] = ROOT
    labels[main] = "root"

    copular = verb_head is not None and tags[verb_head] == lx.AUX
    _attach_arguments(
        tokens, tags, nps, np_heads, heads, labels, main, verb_head, passive, copular
    )
    _attach_coordination(tokens, tags, np_heads, heads, labels)
    _attach_leftovers(heads, labels, main)
    return Parse(tokens, tags, heads, labels, nps=nps)


def _attach_np_internals(tokens, tags, nps, heads, labels) -> list[int]:
    """det/amod/compound arcs inside each NP; returns NP head indexes."""
    np_heads = []
    for np in nps:
        head = np.end - 1
        # The head is the last NOUN/PROPN; a trailing NUM modifies it
        # ("Nova 3" keeps 3 as nummod of Nova... unless the NP is all-numeric).
        last_nominal = None
        for j in range(np.start, np.end):
            if tags[j] in (lx.NOUN, lx.PROPN):
                last_nominal = j
        if last_nominal is not None:
            head = last_nominal
            for j in range(np.start, np.end):
                if j == head:
                    continue
                if tags[j] == lx.DET:
                    heads[j], labels[j] = head, "det"
                elif tags[j] == lx.ADJ:
                    heads[j], labels[j] = head, "amod"
                elif tags[j] == lx.NUM:
                    heads[j], labels[j] = head, "nummod"
                else:
                    heads[j], labels[j] = head, "compound"
        np_heads.append(head)
    return np_heads


def _attach_verb_group(tokens, tags, vgs, heads, labels):
    """aux arcs inside the first verb group; returns (head, passive?)."""
    if not vgs:
        return None, False
    group = vgs[0]
    content = None
    for j in range(group.start, group.end):
        if tags[j] == lx.VERB:
            content = j
    head = content if content is not None else group.end - 1
    passive = False
    for j in range(group.start, group.end):
        if j == head:
            continue
        label = "aux"
        if (
            content is not None
            and tags[j] == lx.AUX
            and tokens[j].text.lower() in _PASSIVE_AUX
            and _looks_past_participle(tokens[content].text)
        ):
            label = "auxpass"
            passive = True
        heads[j], labels[j] = head, label
    return head, passive


def _looks_past_participle(word: str) -> bool:
    lower = word.lower()
    return lower.endswith("ed") or lower.endswith("en") or lower in (
        "born", "written", "held", "made", "won", "given", "known", "broken",
    )


def _attach_arguments(
    tokens, tags, nps, np_heads, heads, labels, main, verb_head, passive, copular
) -> None:
    n = len(tokens)
    boundary = verb_head if verb_head is not None else n

    # Pre-verbal prepositional phrases: "The capital of X ...", "In 1955, ...".
    # Attach each ADP to the nominal before it (or the verb) and the NP after
    # it as its pobj, so those nominals stop competing for subject-hood.
    for i in range(boundary):
        if tags[i] != lx.ADP:
            continue
        np = _np_starting_at(nps, i + 1)
        if np is None:
            continue
        pobj_head = _np_head(nps, np_heads, np)
        left_nominal = max(
            (h for h in np_heads if h < i and heads[h] == ROOT), default=None
        )
        heads[i] = left_nominal if left_nominal is not None else main
        labels[i] = "prep"
        if heads[pobj_head] == ROOT and pobj_head != main:
            heads[pobj_head], labels[pobj_head] = i, "pobj"

    # Subject: the unattached NP head nearest before the verb.
    subject = None
    for h in np_heads:
        if h < boundary and heads[h] == ROOT and h != main:
            subject = h
    if subject is not None:
        heads[subject] = main
        labels[subject] = "nsubjpass" if passive else "nsubj"

    # Walk the post-verbal zone: prepositions and NPs.
    object_assigned = False
    last_site = main  # where the next preposition attaches
    pending_prep = None
    i = (verb_head + 1) if verb_head is not None else 0
    while i < n:
        if tags[i] == lx.ADP:
            heads[i] = last_site
            labels[i] = "prep"
            pending_prep = i
            i += 1
            continue
        np = _np_starting_at(nps, i)
        if np is not None:
            head = _np_head(nps, np_heads, np)
            if heads[head] == ROOT and head != main:
                if pending_prep is not None:
                    heads[head], labels[head] = pending_prep, "pobj"
                    pending_prep = None
                elif not object_assigned:
                    heads[head] = main
                    labels[head] = "attr" if copular else "dobj"
                    object_assigned = True
                else:
                    heads[head], labels[head] = main, "nmod"
            # A nominal directly before a preposition becomes the
            # attachment site ("the founder of Y", "a city in X").
            last_site = head
            i = np.end
            continue
        i += 1


def _np_starting_at(nps, index):
    for np in nps:
        if np.start == index:
            return np
    return None


def _np_head(nps, np_heads, np):
    return np_heads[nps.index(np)]


def _attach_coordination(tokens, tags, np_heads, heads, labels) -> None:
    """"X and Y" — conj arc from Y to X, cc arc for the conjunction."""
    for i, tag in enumerate(tags):
        if tag != lx.CCONJ:
            continue
        left = max((h for h in np_heads if h < i), default=None)
        right = min((h for h in np_heads if h > i), default=None)
        if left is None or right is None:
            continue
        if labels[right] == "dep" or heads[right] == ROOT:
            heads[right], labels[right] = left, "conj"
        elif heads[left] == ROOT:
            # The right conjunct claimed the argument slot ("X and Y married"):
            # hang the left one off it so both reach the verb via conj.
            heads[left], labels[left] = right, "conj"
        heads[i], labels[i] = left, "cc"


def _attach_leftovers(heads, labels, main) -> None:
    for i, h in enumerate(heads):
        if h == ROOT and i != main:
            heads[i] = main
