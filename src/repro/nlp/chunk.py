"""Noun-phrase and verb-group chunking over POS tags.

Open information extraction (tutorial section 3) "aggressively taps into
noun phrases as entity candidates and verbal phrases as prototypic patterns
for relations" — this module provides exactly those two chunk types.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import lexicon as lx
from .tokenizer import Token


@dataclass(frozen=True, slots=True)
class Chunk:
    """A [start, end) token-index span with a label ("NP" or "VG")."""

    start: int
    end: int
    label: str

    def tokens(self, tokens: list[Token]) -> list[Token]:
        """The tokens covered by this chunk."""
        return tokens[self.start:self.end]

    def text(self, tokens: list[Token]) -> str:
        """The chunk's surface text reconstructed from token spans."""
        covered = tokens[self.start:self.end]
        if not covered:
            return ""
        pieces = [covered[0].text]
        for prev, cur in zip(covered, covered[1:]):
            pieces.append(" " if cur.start > prev.end else "")
            pieces.append(cur.text)
        return "".join(pieces)

    @property
    def head_index(self) -> int:
        """Token index of the chunk head (the last token)."""
        return self.end - 1


_NP_BODY = frozenset({lx.NOUN, lx.PROPN, lx.NUM, lx.ADJ})
_NP_START = frozenset({lx.DET, lx.NOUN, lx.PROPN, lx.ADJ, lx.NUM})


def noun_phrases(tokens: list[Token], tags: list[str]) -> list[Chunk]:
    """Maximal DET? (ADJ|NOUN|PROPN|NUM)+ chunks ending in a nominal."""
    chunks = []
    i = 0
    n = len(tokens)
    while i < n:
        if tags[i] not in _NP_START:
            i += 1
            continue
        start = i
        if tags[i] == lx.DET:
            i += 1
        body_start = i
        while i < n and tags[i] in _NP_BODY:
            i += 1
        # Must contain at least one nominal; trim trailing adjectives.
        end = i
        while end > body_start and tags[end - 1] == lx.ADJ:
            end -= 1
        has_nominal = any(
            tags[j] in (lx.NOUN, lx.PROPN, lx.NUM) for j in range(body_start, end)
        )
        if has_nominal and end > start:
            chunks.append(Chunk(start, end, "NP"))
            i = end
        else:
            i = start + 1
    return chunks


def verb_groups(tokens: list[Token], tags: list[str]) -> list[Chunk]:
    """Maximal AUX* ADV? VERB+ (or bare AUX) chunks."""
    chunks = []
    i = 0
    n = len(tokens)
    while i < n:
        if tags[i] not in (lx.AUX, lx.VERB):
            i += 1
            continue
        start = i
        while i < n and tags[i] in (lx.AUX, lx.VERB, lx.ADV, lx.PART):
            i += 1
        end = i
        while end > start and tags[end - 1] in (lx.ADV, lx.PART):
            end -= 1
        if end > start:
            chunks.append(Chunk(start, end, "VG"))
        i = max(i, start + 1)
    return chunks


def chunk_of_token(chunks: list[Chunk], token_index: int) -> Chunk | None:
    """The chunk covering a token index, if any."""
    for chunk in chunks:
        if chunk.start <= token_index < chunk.end:
            return chunk
    return None
