"""Mention detection: gazetteer hits plus proper-noun fallback rules.

With text as input, entities are first seen only in surface form (tutorial
section 4); detecting those surface spans is the first stage of NED.  The
detector prefers dictionary (gazetteer) matches — the KB's name catalogue —
and falls back to maximal proper-noun runs (optionally extended by a
trailing number, for product names like "Nova 3").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from . import lexicon as lx
from .gazetteer import Gazetteer
from .tokenizer import Token


@dataclass(frozen=True, slots=True)
class MentionSpan:
    """A detected mention: token span, character span, and surface text."""

    token_start: int
    token_end: int
    char_start: int
    char_end: int
    text: str


def detect_mentions(
    tokens: list[Token],
    tags: list[str],
    gazetteer: Optional[Gazetteer] = None,
) -> list[MentionSpan]:
    """Detect entity mentions in one tagged sentence."""
    taken = [False] * len(tokens)
    mentions: list[MentionSpan] = []
    if gazetteer is not None:
        for match in gazetteer.match(tokens):
            mentions.append(_to_span(tokens, match.start, match.end))
            for i in range(match.start, match.end):
                taken[i] = True
    mentions.extend(_propn_runs(tokens, tags, taken))
    mentions.sort(key=lambda m: m.token_start)
    return mentions


def _propn_runs(tokens, tags, taken) -> list[MentionSpan]:
    runs = []
    i = 0
    n = len(tokens)
    while i < n:
        if tags[i] != lx.PROPN or taken[i]:
            i += 1
            continue
        start = i
        while i < n and tags[i] == lx.PROPN and not taken[i]:
            i += 1
        # A trailing number is part of a product-style name ("Nova 3").
        if i < n and tags[i] == lx.NUM and not taken[i]:
            i += 1
        runs.append(_to_span(tokens, start, i))
    return runs


def _to_span(tokens: list[Token], start: int, end: int) -> MentionSpan:
    covered = tokens[start:end]
    pieces = [covered[0].text]
    for prev, cur in zip(covered, covered[1:]):
        pieces.append(" " if cur.start > prev.end else "")
        pieces.append(cur.text)
    return MentionSpan(
        token_start=start,
        token_end=end,
        char_start=covered[0].start,
        char_end=covered[-1].end,
        text="".join(pieces),
    )
