"""Component decomposition for weighted MaxSat (parallel consistency).

The consistency constraints the reasoner grounds are *local*: functionality
couples facts sharing a ``(subject, relation)``, disjointness couples facts
sharing a ``(subject, object)``, and type clauses are unit.  The resulting
variable-clause graph therefore shatters into many small connected
components, and the global optimum is exactly the union of per-component
optima — so the components can be solved independently, in parallel, with
no loss of quality.

This module finds the components (union-find over variables co-occurring
in a clause) and solves them:

* variables touched only by their own soft unit clause(s) of one polarity
  are decided **closed-form** (assign the satisfying polarity; no search);
* every remaining component becomes its own :class:`~.maxsat.WeightedMaxSat`
  sub-instance with a seed derived via :func:`repro.determinism.stable_hash`
  of the component's canonical key — *not* of its position in any worker's
  batch — and a flip budget scaled to the component size;
* component batches fan out over a :mod:`repro.bigdata.backends` executor
  (serial, thread, or process), and the per-component ``(hard, soft)``
  costs and assignments merge in sorted-canonical-key order.

Because the seed and budget of a component depend only on its content, and
the merge order depends only on the canonical keys, the result is
byte-identical no matter which backend ran the components or how many
workers it used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional, Union

from ..bigdata.backends import ExecutionBackend, chunked, get_backend
from ..determinism.stable import stable_hash, stable_str_key
from ..obs import core as _obs
from .maxsat import MaxSatResult, WeightedMaxSat

#: Flip budget floor per component: even a tiny conflicted component gets
#: enough flips to escape a bad restart basin.
MIN_COMPONENT_FLIPS = 500

#: Flip budget per component clause (the size-scaled part).
FLIPS_PER_CLAUSE = 200


@dataclass(slots=True)
class Component:
    """One connected component of the variable-clause graph."""

    key: str                        # canonical key: smallest variable key
    variables: list[Hashable]       # in canonical (stable_str_key) order
    clause_indexes: list[int]       # ascending indexes into the instance

    def seed(self, base_seed: int) -> int:
        """The component's solver seed: a stable hash of (base seed, key).

        Depends only on the component's content, never on scheduling, so
        every worker count replays the identical search trajectory.
        """
        return stable_hash((base_seed, self.key))

    def flip_budget(self, max_flips: int) -> int:
        """The component's WalkSAT budget, scaled to its clause count."""
        scaled = max(MIN_COMPONENT_FLIPS, FLIPS_PER_CLAUSE * len(self.clause_indexes))
        return min(max_flips, scaled)


@dataclass(slots=True)
class Decomposition:
    """The shattered instance: closed-form variables plus components."""

    trivial: dict[Hashable, bool] = field(default_factory=dict)
    components: list[Component] = field(default_factory=list)

    @property
    def largest_component(self) -> int:
        """Variable count of the largest component (0 when none)."""
        return max((len(c.variables) for c in self.components), default=0)

    def component_sizes(self) -> list[int]:
        """Variable counts per component, descending (for diagnostics)."""
        return sorted((len(c.variables) for c in self.components), reverse=True)


def decompose(problem: WeightedMaxSat) -> Decomposition:
    """Split ``problem`` into closed-form variables and components.

    A variable whose every clause is a soft unit clause on itself with one
    polarity is decided closed-form (the satisfying polarity; zero cost,
    zero search).  Remaining variables are grouped by union-find over
    clause co-occurrence; each clause lands in exactly one component.
    """
    clauses = problem.clauses
    membership: dict[Hashable, list[int]] = {}
    for index, clause in enumerate(clauses):
        for variable, __ in clause.literals:
            membership.setdefault(variable, []).append(index)

    trivial: dict[Hashable, bool] = {}
    for variable, indexes in membership.items():
        polarity: Optional[bool] = None
        closed_form = True
        for index in indexes:
            clause = clauses[index]
            if clause.is_hard or len(clause.literals) != 1:
                closed_form = False
                break
            unit_polarity = clause.literals[0][1]
            if polarity is None:
                polarity = unit_polarity
            elif polarity != unit_polarity:
                closed_form = False
                break
        if closed_form and polarity is not None:
            trivial[variable] = polarity

    # Union-find over the non-trivial variables of each clause.
    parent: dict[Hashable, Hashable] = {}

    def find(variable: Hashable) -> Hashable:
        root = variable
        while parent[root] != root:
            root = parent[root]
        while parent[variable] != root:     # path compression
            parent[variable], variable = root, parent[variable]
        return root

    for clause in clauses:
        live = [v for v, __ in clause.literals if v not in trivial]
        for variable in live:
            parent.setdefault(variable, variable)
        for variable in live[1:]:
            parent[find(variable)] = find(live[0])

    clause_groups: dict[Hashable, list[int]] = {}
    for index, clause in enumerate(clauses):
        anchor = next(
            (v for v, __ in clause.literals if v not in trivial), None
        )
        if anchor is None:
            continue        # a trivial variable's own unit clause
        clause_groups.setdefault(find(anchor), []).append(index)

    variable_groups: dict[Hashable, list[Hashable]] = {}
    for variable in membership:
        if variable not in trivial:
            variable_groups.setdefault(find(variable), []).append(variable)

    components = []
    for root, variables in variable_groups.items():
        variables.sort(key=stable_str_key)
        components.append(
            Component(
                key=stable_str_key(variables[0]),
                variables=variables,
                clause_indexes=clause_groups.get(root, []),
            )
        )
    components.sort(key=lambda component: component.key)
    return Decomposition(trivial=trivial, components=components)


# ------------------------------------------------------- component solving

#: One component's picklable work order: (canonical key, clause payloads,
#: seed, max_flips, restarts, noise).
_ComponentTask = tuple

#: One component's picklable outcome: (key, assignment, soft, hard, flips).
_ComponentOutcome = tuple


def _batch_clause_cost(batch: list[_ComponentTask]) -> int:
    """Estimated cost of one component batch: its total clause count.

    The work-stealing schedule dispatches the heaviest batch first, so
    the one lopsided component (one huge functionality group) starts
    immediately instead of serializing behind a worker's lighter batches.
    """
    return sum(len(clause_payload) for __, clause_payload, *___ in batch)


def _solve_component_batch(batch: list[_ComponentTask]) -> list[_ComponentOutcome]:
    """Solve one batch of components (runs inside a backend worker)."""
    outcomes: list[_ComponentOutcome] = []
    with _obs.span("maxsat.component_batch") as tracing:
        clause_total = 0
        for key, clause_payload, seed, max_flips, restarts, noise in batch:
            sub = WeightedMaxSat()
            for literals, weight in clause_payload:
                sub.add_clause(literals, weight)
            clause_total += len(clause_payload)
            result = sub.solve(
                seed=seed, max_flips=max_flips, restarts=restarts, noise=noise
            )
            outcomes.append(
                (
                    key,
                    dict(result.assignment),
                    result.soft_cost,
                    result.hard_violations,
                    result.flips,
                )
            )
        tracing.add("components", len(batch))
        tracing.add("clauses", clause_total)
    return outcomes


def solve_decomposed(
    problem: WeightedMaxSat,
    seed: int = 0,
    max_flips: int = 20_000,
    restarts: int = 3,
    noise: float = 0.1,
    decomposition: Optional[Decomposition] = None,
    backend: Union[str, ExecutionBackend, None] = "auto",
    workers: int = 0,
    schedule: str = "static",
) -> MaxSatResult:
    """Solve ``problem`` component by component; optionally in parallel.

    Semantically equivalent to :meth:`WeightedMaxSat.solve` — the optimum
    of a disconnected instance is the union of component optima — and
    byte-identical across worker counts, backends, and schedules:
    component seeds and flip budgets derive from component content, and
    costs/assignments merge in sorted-canonical-key order.  Passing a
    resolved :class:`ExecutionBackend` reuses its (persistent) pool; a
    string spec resolves — and closes — a backend per call.
    """
    if decomposition is None:
        with _obs.span("maxsat.decompose"):
            decomposition = decompose(problem)
    components = decomposition.components
    if _obs.ENABLED:
        _obs.count("maxsat.components", len(components))
        _obs.count("maxsat.trivial_vars", len(decomposition.trivial))
        _obs.gauge("maxsat.largest_component", decomposition.largest_component)

    clauses = problem.clauses
    tasks: list[_ComponentTask] = [
        (
            component.key,
            [
                (clauses[index].literals, clauses[index].weight)
                for index in component.clause_indexes
            ],
            component.seed(seed),
            component.flip_budget(max_flips),
            restarts,
            noise,
        )
        for component in components
    ]

    executor = get_backend(backend, workers)
    owns_executor = not isinstance(backend, ExecutionBackend)
    try:
        if executor.workers <= 1 or len(tasks) <= 1:
            batches = [_solve_component_batch(tasks)] if tasks else []
        else:
            batches = executor.map(
                _solve_component_batch,
                chunked(tasks, executor.workers * 4),
                schedule=schedule,
                cost_key=_batch_clause_cost,
            )
    finally:
        if owns_executor:
            executor.close()

    assignment: dict[Hashable, bool] = {}
    soft_cost = 0.0
    hard_violations = 0
    flips = 0
    # Components arrive already in sorted-key order (tasks were built from
    # the sorted component list and backends preserve task order), so this
    # float accumulation order is canonical for every backend.
    for batch in batches:
        for __, component_assignment, soft, hard, component_flips in batch:
            assignment.update(component_assignment)
            soft_cost += soft
            hard_violations += hard
            flips += component_flips
    for variable in sorted(decomposition.trivial, key=stable_str_key):
        assignment[variable] = decomposition.trivial[variable]
    return MaxSatResult(assignment, soft_cost, hard_violations, flips)
