"""Component decomposition for weighted MaxSat (parallel consistency).

The consistency constraints the reasoner grounds are *local*: functionality
couples facts sharing a ``(subject, relation)``, disjointness couples facts
sharing a ``(subject, object)``, and type clauses are unit.  The resulting
variable-clause graph therefore shatters into many small connected
components, and the global optimum is exactly the union of per-component
optima — so the components can be solved independently, in parallel, with
no loss of quality.

This module finds the components (union-find over variables co-occurring
in a clause) and solves them:

* variables touched only by their own soft unit clause(s) of one polarity
  are decided **closed-form** (assign the satisfying polarity; no search);
* every remaining component becomes its own :class:`~.maxsat.WeightedMaxSat`
  sub-instance with a seed derived via :func:`repro.determinism.stable_hash`
  of the component's canonical key — *not* of its position in any worker's
  batch — and a flip budget scaled to the component size;
* component batches fan out over a :mod:`repro.bigdata.backends` executor
  (serial, thread, or process), and the per-component ``(hard, soft)``
  costs and assignments merge in sorted-canonical-key order.

Because the seed and budget of a component depend only on its content, and
the merge order depends only on the canonical keys, the result is
byte-identical no matter which backend ran the components or how many
workers it used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional, Union

from ..bigdata.backends import ExecutionBackend, chunked, get_backend
from ..determinism.stable import stable_hash, stable_str_key
from ..obs import core as _obs
from .maxsat import MaxSatResult, WeightedMaxSat

#: Flip budget floor per component: even a tiny conflicted component gets
#: enough flips to escape a bad restart basin.
MIN_COMPONENT_FLIPS = 500

#: Flip budget per component clause (the size-scaled part).
FLIPS_PER_CLAUSE = 200


@dataclass(slots=True)
class Component:
    """One connected component of the variable-clause graph."""

    key: str                        # canonical key: smallest variable key
    variables: list[Hashable]       # in canonical (stable_str_key) order
    clause_indexes: list[int]       # ascending indexes into the instance

    def seed(self, base_seed: int) -> int:
        """The component's solver seed: a stable hash of (base seed, key).

        Depends only on the component's content, never on scheduling, so
        every worker count replays the identical search trajectory.
        """
        return stable_hash((base_seed, self.key))

    def flip_budget(self, max_flips: int) -> int:
        """The component's WalkSAT budget, scaled to its clause count."""
        scaled = max(MIN_COMPONENT_FLIPS, FLIPS_PER_CLAUSE * len(self.clause_indexes))
        return min(max_flips, scaled)


@dataclass(slots=True)
class Decomposition:
    """The shattered instance: closed-form variables plus components."""

    trivial: dict[Hashable, bool] = field(default_factory=dict)
    components: list[Component] = field(default_factory=list)

    @property
    def largest_component(self) -> int:
        """Variable count of the largest component (0 when none)."""
        return max((len(c.variables) for c in self.components), default=0)

    def component_sizes(self) -> list[int]:
        """Variable counts per component, descending (for diagnostics)."""
        return sorted((len(c.variables) for c in self.components), reverse=True)


def decompose(problem: WeightedMaxSat) -> Decomposition:
    """Split ``problem`` into closed-form variables and components.

    A variable whose every clause is a soft unit clause on itself with one
    polarity is decided closed-form (the satisfying polarity; zero cost,
    zero search).  Remaining variables are grouped by union-find over
    clause co-occurrence; each clause lands in exactly one component.
    """
    clauses = problem.clauses
    membership: dict[Hashable, list[int]] = {}
    for index, clause in enumerate(clauses):
        for variable, __ in clause.literals:
            membership.setdefault(variable, []).append(index)

    trivial: dict[Hashable, bool] = {}
    for variable, indexes in membership.items():
        polarity: Optional[bool] = None
        closed_form = True
        for index in indexes:
            clause = clauses[index]
            if clause.is_hard or len(clause.literals) != 1:
                closed_form = False
                break
            unit_polarity = clause.literals[0][1]
            if polarity is None:
                polarity = unit_polarity
            elif polarity != unit_polarity:
                closed_form = False
                break
        if closed_form and polarity is not None:
            trivial[variable] = polarity

    # Union-find over the non-trivial variables of each clause.
    parent: dict[Hashable, Hashable] = {}

    def find(variable: Hashable) -> Hashable:
        root = variable
        while parent[root] != root:
            root = parent[root]
        while parent[variable] != root:     # path compression
            parent[variable], variable = root, parent[variable]
        return root

    for clause in clauses:
        live = [v for v, __ in clause.literals if v not in trivial]
        for variable in live:
            parent.setdefault(variable, variable)
        for variable in live[1:]:
            parent[find(variable)] = find(live[0])

    clause_groups: dict[Hashable, list[int]] = {}
    for index, clause in enumerate(clauses):
        anchor = next(
            (v for v, __ in clause.literals if v not in trivial), None
        )
        if anchor is None:
            continue        # a trivial variable's own unit clause
        clause_groups.setdefault(find(anchor), []).append(index)

    variable_groups: dict[Hashable, list[Hashable]] = {}
    for variable in membership:
        if variable not in trivial:
            variable_groups.setdefault(find(variable), []).append(variable)

    components = []
    for root, variables in variable_groups.items():
        variables.sort(key=stable_str_key)
        components.append(
            Component(
                key=stable_str_key(variables[0]),
                variables=variables,
                clause_indexes=clause_groups.get(root, []),
            )
        )
    components.sort(key=lambda component: component.key)
    return Decomposition(trivial=trivial, components=components)


# ------------------------------------------------------- component solving


class ComponentCache:
    """A content-addressed cache of per-component solve outcomes.

    Because a component's seed, flip budget, and clause payload derive
    from its *content* only, identical content solves to an identical
    outcome in every process — so an incremental re-reasoning pass can
    skip every component the new candidates did not touch and replay the
    stored outcome bit for bit.  Keys hash the full work order (canonical
    key, clause payload, seed, budget, restarts, noise); values store the
    assignment as a boolean vector aligned with the component's canonical
    variable order plus the exact soft/hard/flips numbers, which makes the
    cache JSON-serializable (floats round-trip exactly through ``repr``).
    """

    __slots__ = ("entries", "hits", "misses")

    def __init__(self, entries: Optional[dict[str, dict]] = None) -> None:
        self.entries = entries if entries is not None else {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def task_key(task: "_ComponentTask") -> str:
        """The content hash of one component work order (hex)."""
        return f"{stable_hash(repr(task)):016x}"

    def lookup(
        self, task: "_ComponentTask", component: Component
    ) -> Optional["_ComponentOutcome"]:
        """The stored outcome for a work order, rebuilt against the
        current component's variables — or None on a miss."""
        entry = self.entries.get(self.task_key(task))
        if entry is None or len(entry["assignment"]) != len(component.variables):
            self.misses += 1
            return None
        self.hits += 1
        return (
            component.key,
            dict(zip(component.variables, entry["assignment"])),
            entry["soft"],
            entry["hard"],
            entry["flips"],
        )

    def store(
        self,
        task: "_ComponentTask",
        component: Component,
        outcome: "_ComponentOutcome",
    ) -> None:
        """Record one solved component's outcome."""
        __, assignment, soft, hard, flips = outcome
        self.entries[self.task_key(task)] = {
            "assignment": [
                bool(assignment[variable]) for variable in component.variables
            ],
            "soft": soft,
            "hard": hard,
            "flips": flips,
        }


#: One component's picklable work order: (canonical key, clause payloads,
#: seed, max_flips, restarts, noise).
_ComponentTask = tuple

#: One component's picklable outcome: (key, assignment, soft, hard, flips).
_ComponentOutcome = tuple


def _batch_clause_cost(batch: list[_ComponentTask]) -> int:
    """Estimated cost of one component batch: its total clause count.

    The work-stealing schedule dispatches the heaviest batch first, so
    the one lopsided component (one huge functionality group) starts
    immediately instead of serializing behind a worker's lighter batches.
    """
    return sum(len(clause_payload) for __, clause_payload, *___ in batch)


def _solve_component_batch(batch: list[_ComponentTask]) -> list[_ComponentOutcome]:
    """Solve one batch of components (runs inside a backend worker)."""
    outcomes: list[_ComponentOutcome] = []
    with _obs.span("maxsat.component_batch") as tracing:
        clause_total = 0
        for key, clause_payload, seed, max_flips, restarts, noise in batch:
            sub = WeightedMaxSat()
            for literals, weight in clause_payload:
                sub.add_clause(literals, weight)
            clause_total += len(clause_payload)
            result = sub.solve(
                seed=seed, max_flips=max_flips, restarts=restarts, noise=noise
            )
            outcomes.append(
                (
                    key,
                    dict(result.assignment),
                    result.soft_cost,
                    result.hard_violations,
                    result.flips,
                )
            )
        tracing.add("components", len(batch))
        tracing.add("clauses", clause_total)
    return outcomes


def solve_decomposed(
    problem: WeightedMaxSat,
    seed: int = 0,
    max_flips: int = 20_000,
    restarts: int = 3,
    noise: float = 0.1,
    decomposition: Optional[Decomposition] = None,
    backend: Union[str, ExecutionBackend, None] = "auto",
    workers: int = 0,
    schedule: str = "static",
    cache: Optional[ComponentCache] = None,
) -> MaxSatResult:
    """Solve ``problem`` component by component; optionally in parallel.

    Semantically equivalent to :meth:`WeightedMaxSat.solve` — the optimum
    of a disconnected instance is the union of component optima — and
    byte-identical across worker counts, backends, and schedules:
    component seeds and flip budgets derive from component content, and
    costs/assignments merge in sorted-canonical-key order.  Passing a
    resolved :class:`ExecutionBackend` reuses its (persistent) pool; a
    string spec resolves — and closes — a backend per call.

    With a :class:`ComponentCache`, components whose content-derived work
    order is already cached replay their stored outcome instead of
    searching (the incremental build's component-scoped re-reasoning);
    freshly solved components are stored back.  Cached or not, outcomes
    merge in the same canonical component order, so the result is
    byte-identical to an uncached solve.
    """
    if decomposition is None:
        with _obs.span("maxsat.decompose"):
            decomposition = decompose(problem)
    components = decomposition.components
    if _obs.ENABLED:
        _obs.count("maxsat.components", len(components))
        _obs.count("maxsat.trivial_vars", len(decomposition.trivial))
        _obs.gauge("maxsat.largest_component", decomposition.largest_component)

    clauses = problem.clauses
    tasks: list[_ComponentTask] = [
        (
            component.key,
            [
                (clauses[index].literals, clauses[index].weight)
                for index in component.clause_indexes
            ],
            component.seed(seed),
            component.flip_budget(max_flips),
            restarts,
            noise,
        )
        for component in components
    ]

    # Split off cache replays: the cached positions are satisfied from the
    # stored outcomes, only the remainder goes to the solver fleet.
    outcome_at: dict[int, _ComponentOutcome] = {}
    pending: list[tuple[int, _ComponentTask]] = []
    if cache is not None:
        for position, task in enumerate(tasks):
            hit = cache.lookup(task, components[position])
            if hit is not None:
                outcome_at[position] = hit
            else:
                pending.append((position, task))
        if _obs.ENABLED:
            _obs.count("maxsat.cache.hits", len(outcome_at))
            _obs.count("maxsat.cache.misses", len(pending))
    else:
        pending = list(enumerate(tasks))

    pending_tasks = [task for __, task in pending]
    executor = get_backend(backend, workers)
    owns_executor = not isinstance(backend, ExecutionBackend)
    try:
        if executor.workers <= 1 or len(pending_tasks) <= 1:
            batches = [_solve_component_batch(pending_tasks)] if pending_tasks else []
        else:
            batches = executor.map(
                _solve_component_batch,
                chunked(pending_tasks, executor.workers * 4),
                schedule=schedule,
                cost_key=_batch_clause_cost,
            )
    finally:
        if owns_executor:
            executor.close()

    solved = [outcome for batch in batches for outcome in batch]
    for (position, task), outcome in zip(pending, solved):
        outcome_at[position] = outcome
        if cache is not None:
            cache.store(task, components[position], outcome)

    assignment: dict[Hashable, bool] = {}
    soft_cost = 0.0
    hard_violations = 0
    flips = 0
    # Outcomes merge in sorted-component-key order (the order the tasks
    # were built in), whether they were freshly solved or replayed from
    # the cache, so this float accumulation order is canonical for every
    # backend and every cache state.
    for position in range(len(components)):
        __, component_assignment, soft, hard, component_flips = outcome_at[position]
        assignment.update(component_assignment)
        soft_cost += soft
        hard_violations += hard
        flips += component_flips
    for variable in sorted(decomposition.trivial, key=stable_str_key):
        assignment[variable] = decomposition.trivial[variable]
    return MaxSatResult(assignment, soft_cost, hard_violations, flips)
