"""AMIE-style rule mining from the knowledge base.

Once a KB exists, its regularities can be *mined* as weighted Horn rules —
``capitalOf(x, y) => locatedIn(x, y)``, ``bornIn(x, z) & locatedIn(z, y)
=> citizenOf(x, y)`` — and the mined rules drive KB completion (AMIE,
Galárraga et al., WWW 2013; same research programme as the tutorial).
This lite version mines three rule shapes:

* **same-pair**:      r1(x, y) => r2(x, y)
* **inverse**:        r1(y, x) => r2(x, y)
* **chain**:          r1(x, z) & r2(z, y) => r3(x, y)

and scores each with *support* (positive instantiations), *standard
confidence* (support / body instantiations), and *PCA confidence*
(support / body instantiations whose subject has *some* head-relation
fact — the partial-completeness reading that made AMIE work on open-world
KBs).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Optional

from ..kb import Entity, Relation, Triple, TripleStore
from .rules import Atom, Rule


@dataclass(frozen=True, slots=True)
class MinedRule:
    """One mined rule with its quality measures."""

    rule: Rule
    shape: str                 # "same-pair" | "inverse" | "chain"
    support: int
    std_confidence: float
    pca_confidence: float

    def describe(self) -> str:
        """A human-readable rendering."""
        body = " & ".join(
            f"{a.relation.local_name}({a.subject},{a.object})" for a in self.rule.body
        )
        head = self.rule.head
        return (
            f"{body} => {head.relation.local_name}({head.subject},{head.object})"
            f"  [supp={self.support}, conf={self.std_confidence:.2f},"
            f" pca={self.pca_confidence:.2f}]"
        )


class RuleMiner:
    """Mine Horn rules from an entity-to-entity fact store."""

    def __init__(
        self,
        min_support: int = 5,
        min_confidence: float = 0.5,
        max_join_size: int = 200_000,
    ) -> None:
        self.min_support = min_support
        self.min_confidence = min_confidence
        self.max_join_size = max_join_size

    # ---------------------------------------------------------------- mining

    def mine(
        self, store: TripleStore, relations: Optional[Iterable[Relation]] = None
    ) -> list[MinedRule]:
        """All rules above the support/confidence thresholds, best first."""
        facts = self._entity_facts(store, relations)
        mined: list[MinedRule] = []
        mined.extend(self._mine_same_pair(facts))
        mined.extend(self._mine_inverse(facts))
        mined.extend(self._mine_chains(facts))
        mined.sort(
            key=lambda m: (-m.pca_confidence, -m.support, m.describe())
        )
        return mined

    def _entity_facts(
        self, store: TripleStore, relations
    ) -> dict[Relation, set[tuple[Entity, Entity]]]:
        wanted = set(relations) if relations is not None else None
        facts: dict[Relation, set[tuple[Entity, Entity]]] = defaultdict(set)
        for triple in store:
            predicate = triple.predicate
            if not isinstance(predicate, Relation):
                continue
            if wanted is not None and predicate not in wanted:
                continue
            if isinstance(triple.subject, Entity) and isinstance(triple.object, Entity):
                facts[predicate].add((triple.subject, triple.object))
        return facts

    def _subjects_of(self, pairs: set[tuple[Entity, Entity]]) -> set[Entity]:
        return {x for x, __ in pairs}

    def _score(
        self,
        body_pairs: Iterable[tuple[Entity, Entity]],
        head_pairs: set[tuple[Entity, Entity]],
        head_subjects: set[Entity],
    ) -> Optional[tuple[int, float, float]]:
        body_list = list(body_pairs)
        if not body_list:
            return None
        support = sum(1 for pair in body_list if pair in head_pairs)
        if support < self.min_support:
            return None
        std_confidence = support / len(body_list)
        pca_body = [pair for pair in body_list if pair[0] in head_subjects]
        pca_confidence = support / len(pca_body) if pca_body else 0.0
        if max(std_confidence, pca_confidence) < self.min_confidence:
            return None
        return support, std_confidence, pca_confidence

    def _mine_same_pair(self, facts) -> list[MinedRule]:
        mined = []
        for r1, body_pairs in facts.items():
            for r2, head_pairs in facts.items():
                if r1 == r2:
                    continue
                head_subjects = self._subjects_of(head_pairs)
                scored = self._score(body_pairs, head_pairs, head_subjects)
                if scored is None:
                    continue
                support, std, pca = scored
                rule = Rule(
                    body=(Atom(r1, "x", "y"),),
                    head=Atom(r2, "x", "y"),
                    weight=pca,
                )
                mined.append(MinedRule(rule, "same-pair", support, std, pca))
        return mined

    def _mine_inverse(self, facts) -> list[MinedRule]:
        mined = []
        for r1, pairs in facts.items():
            inverted = {(y, x) for x, y in pairs}
            for r2, head_pairs in facts.items():
                head_subjects = self._subjects_of(head_pairs)
                scored = self._score(inverted, head_pairs, head_subjects)
                if scored is None:
                    continue
                support, std, pca = scored
                # Skip the trivial "r(y,x) => r(x,y)" unless genuinely
                # symmetric data supports it (it will score well only then).
                rule = Rule(
                    body=(Atom(r1, "y", "x"),),
                    head=Atom(r2, "x", "y"),
                    weight=pca,
                )
                mined.append(MinedRule(rule, "inverse", support, std, pca))
        return mined

    def _mine_chains(self, facts) -> list[MinedRule]:
        mined = []
        by_subject: dict[Relation, dict[Entity, set[Entity]]] = {}
        for relation, pairs in facts.items():
            index: dict[Entity, set[Entity]] = defaultdict(set)
            for x, y in pairs:
                index[x].add(y)
            by_subject[relation] = index
        for r1, pairs1 in facts.items():
            for r2, index2 in by_subject.items():
                # Join r1(x, z) with r2(z, y).
                joined: set[tuple[Entity, Entity]] = set()
                for x, z in pairs1:
                    for y in index2.get(z, ()):
                        if x != y:
                            joined.add((x, y))
                        if len(joined) > self.max_join_size:
                            break
                if not joined:
                    continue
                for r3, head_pairs in facts.items():
                    if r3 in (r1, r2) and r1 == r2:
                        continue
                    head_subjects = self._subjects_of(head_pairs)
                    scored = self._score(joined, head_pairs, head_subjects)
                    if scored is None:
                        continue
                    support, std, pca = scored
                    if r3 == r1 or r3 == r2:
                        continue  # avoid trivial re-derivations
                    rule = Rule(
                        body=(Atom(r1, "x", "z"), Atom(r2, "z", "y")),
                        head=Atom(r3, "x", "y"),
                        weight=pca,
                    )
                    mined.append(MinedRule(rule, "chain", support, std, pca))
        return mined


def complete_kb(
    store: TripleStore,
    mined: list[MinedRule],
    min_pca: float = 0.7,
    min_std: float = 0.6,
    confidence_scale: float = 0.9,
) -> TripleStore:
    """Predict new facts by applying mined rules to the store.

    Rules must clear *both* confidence measures: PCA confidence tolerates
    open-world incompleteness, but alone it overrates inverse rules of
    quasi-functional relations ("locatedIn => capitalOf" scores PCA 1.0
    because only capital cities have any capitalOf fact) — the standard-
    confidence gate filters those.  Returns only the *new* predictions,
    each carrying ``pca-confidence * confidence_scale`` as its confidence.
    """
    from .rules import ground_rule

    predictions = TripleStore()
    for mined_rule in mined:
        if mined_rule.pca_confidence < min_pca:
            continue
        if mined_rule.std_confidence < min_std:
            continue
        for ground in ground_rule(mined_rule.rule, store):
            s, p, o = ground.head
            if store.contains_fact(s, p, o) or predictions.contains_fact(s, p, o):
                continue
            predictions.add(
                Triple(
                    s, p, o,
                    confidence=min(
                        mined_rule.pca_confidence * confidence_scale, 1.0
                    ),
                    source="rule-mining",
                )
            )
    return predictions
