"""Statistical and logical reasoning: factor graphs, MaxSat, rules, MLN."""

from .factorgraph import (
    Factor,
    FactorGraph,
    conjunction_implies,
    equivalent,
    implies,
    is_true,
    not_both,
)
from .decompose import (
    Component,
    ComponentCache,
    Decomposition,
    decompose,
    solve_decomposed,
)
from .maxsat import HARD, Clause, MaxSatResult, WeightedMaxSat
from .rules import Atom, GroundRule, Rule, apply_rules, ground_rule, ground_rules
from .mln import MarkovLogicNetwork, confidence_to_weight
from .pra import KnowledgeGraph, PathRankingModel
from .rulemining import MinedRule, RuleMiner, complete_kb

__all__ = [
    "Factor",
    "FactorGraph",
    "conjunction_implies",
    "equivalent",
    "implies",
    "is_true",
    "not_both",
    "HARD",
    "Clause",
    "Component",
    "ComponentCache",
    "Decomposition",
    "MaxSatResult",
    "WeightedMaxSat",
    "decompose",
    "solve_decomposed",
    "Atom",
    "GroundRule",
    "Rule",
    "apply_rules",
    "ground_rule",
    "ground_rules",
    "MarkovLogicNetwork",
    "confidence_to_weight",
    "KnowledgeGraph",
    "PathRankingModel",
    "MinedRule",
    "RuleMiner",
    "complete_kb",
]
