"""A weighted MaxSat solver: unit propagation plus WalkSAT local search.

The SOFIE line of work phrases knowledge-base consistency reasoning as
weighted MaxSat: candidate facts are soft unit clauses weighted by
extraction confidence, and schema constraints (functionality, type
disjointness, relation exclusion) are hard clauses.  The solver below is
the classic recipe — simplify with unit propagation on hard clauses, then
WalkSAT with random restarts — implemented incrementally (per-flip work is
proportional to the flipped variable's clause membership, not the instance
size), deterministic under a seed, and adequate for the few-thousand-clause
problems the experiments ground.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Hashable, Iterable, Optional

from ..obs import core as _obs

#: A literal: (variable, polarity). (x, True) means x; (x, False) means !x.
Literal = tuple[Hashable, bool]

HARD = float("inf")

#: Internal stand-in weight that makes hard violations dominate soft costs.
_HARD_PENALTY = 1e9


@dataclass(frozen=True, slots=True)
class Clause:
    """A weighted disjunction of literals; weight == HARD means mandatory."""

    literals: tuple[Literal, ...]
    weight: float

    def __post_init__(self) -> None:
        if not self.literals:
            raise ValueError("a clause needs at least one literal")
        if self.weight != HARD and self.weight <= 0:
            raise ValueError("soft clause weights must be positive")

    @property
    def is_hard(self) -> bool:
        return self.weight == HARD

    def satisfied(self, assignment: dict[Hashable, bool]) -> bool:
        """Evaluate under a full assignment."""
        return any(assignment[v] == polarity for v, polarity in self.literals)


@dataclass(slots=True)
class MaxSatResult:
    """Solver output."""

    assignment: dict[Hashable, bool]
    soft_cost: float            # total weight of unsatisfied soft clauses
    hard_violations: int        # 0 unless the hard clauses were not all satisfied
    flips: int = 0

    def true_variables(self) -> set[Hashable]:
        """The variables assigned True."""
        return {v for v, value in self.assignment.items() if value}


class WeightedMaxSat:
    """A weighted MaxSat instance and its local-search solver."""

    def __init__(self) -> None:
        self._clauses: list[Clause] = []
        self._variables: set[Hashable] = set()
        self._sorted_variables: Optional[list[Hashable]] = None

    def add_clause(self, literals: Iterable[Literal], weight: float) -> None:
        """Add a weighted clause (use ``HARD`` for mandatory constraints)."""
        clause = Clause(tuple(literals), weight)
        self._clauses.append(clause)
        for variable, __ in clause.literals:
            if variable not in self._variables:
                self._variables.add(variable)
                self._sorted_variables = None

    def add_hard(self, literals: Iterable[Literal]) -> None:
        """Add a mandatory clause."""
        self.add_clause(literals, HARD)

    def add_soft_unit(self, variable: Hashable, positive: bool, weight: float) -> None:
        """Add a soft unit clause (the MaxSat encoding of a weighted fact)."""
        self.add_clause([(variable, positive)], weight)

    @property
    def clauses(self) -> list[Clause]:
        """The clause list itself (treat as read-only; solve hot path)."""
        return self._clauses

    @property
    def variables(self) -> list[Hashable]:
        """The variables in canonical (repr) order, cached between adds."""
        if self._sorted_variables is None:
            self._sorted_variables = sorted(self._variables, key=repr)
        return self._sorted_variables

    def cost_of(self, assignment: dict[Hashable, bool]) -> tuple[int, float]:
        """(hard violations, soft cost) of a full assignment."""
        hard = 0
        soft = 0.0
        for clause in self._clauses:
            if clause.satisfied(assignment):
                continue
            if clause.is_hard:
                hard += 1
            else:
                soft += clause.weight
        return hard, soft

    # ------------------------------------------------------------- solving

    def solve(
        self,
        seed: int = 0,
        max_flips: int = 20_000,
        restarts: int = 3,
        noise: float = 0.1,
    ) -> MaxSatResult:
        """Solve with unit propagation + incremental WalkSAT."""
        forced = self._unit_propagate()
        rng = random.Random(seed)
        free = [v for v in self.variables if v not in forced]

        best_assignment: Optional[dict] = None
        best_key = (float("inf"), float("inf"))
        total_flips = 0
        for restart in range(max(1, restarts)):
            assignment = dict(forced)
            for v in free:
                # First restart starts all-false: with soft positive units
                # this is the "believe nothing" state, a good basin.
                assignment[v] = False if restart == 0 else rng.random() < 0.5
            state = _SearchState(self._clauses, assignment, forced)
            key, flips = state.search(rng, max_flips, noise)
            total_flips += flips
            if key < best_key:
                best_key = key
                best_assignment = dict(state.best_assignment)
            if best_key == (0, 0.0):
                break
        assert best_assignment is not None
        hard, soft = self.cost_of(best_assignment)
        if _obs.ENABLED:
            _obs.count("maxsat.solve_calls")
            _obs.count("maxsat.variables", len(self._variables))
            _obs.count("maxsat.clauses", len(self._clauses))
            _obs.count("maxsat.flips", total_flips)
        return MaxSatResult(best_assignment, soft, hard, total_flips)

    def solve_exact(self, max_variables: int = 24) -> MaxSatResult:
        """Optimal solution by branch and bound (the ILP-solver alternative).

        The tutorial lists "weighted MaxSat or ILP solvers" for consistency
        reasoning; this is the exact 0-1 optimization route, feasible for
        small instances (bounded by ``max_variables``).  Branching order is
        by clause involvement; the bound prunes branches whose already-lost
        soft weight exceeds the incumbent.
        """
        variables = self.variables
        if len(variables) > max_variables:
            raise ValueError(
                f"exact solving is limited to {max_variables} variables"
            )
        involvement = {v: 0 for v in variables}
        for clause in self._clauses:
            for v, __ in clause.literals:
                involvement[v] += 1
        order = sorted(variables, key=lambda v: (-involvement[v], repr(v)))

        best_assignment: dict[Hashable, bool] = {}
        best_key: tuple[float, float] = (float("inf"), float("inf"))

        def lost_so_far(assignment: dict[Hashable, bool]) -> tuple[int, float]:
            """Cost of clauses already falsified by the partial assignment."""
            hard = 0
            soft = 0.0
            for clause in self._clauses:
                decided_false = all(
                    v in assignment and assignment[v] != polarity
                    for v, polarity in clause.literals
                )
                if decided_false:
                    if clause.is_hard:
                        hard += 1
                    else:
                        soft += clause.weight
            return hard, soft

        def descend(index: int, assignment: dict[Hashable, bool]) -> None:
            nonlocal best_assignment, best_key
            lost = lost_so_far(assignment)
            if lost >= best_key:
                return
            if index == len(order):
                if lost < best_key:
                    best_key = lost
                    best_assignment = dict(assignment)
                return
            variable = order[index]
            for value in (True, False):
                assignment[variable] = value
                descend(index + 1, assignment)
                del assignment[variable]

        descend(0, {})
        hard, soft = best_key
        return MaxSatResult(best_assignment, soft, int(hard), flips=0)

    def _unit_propagate(self) -> dict[Hashable, bool]:
        """Fixpoint of hard unit clauses, queue-driven.

        Instead of rescanning every clause until a full pass changes
        nothing (O(passes x clauses) on grounding-heavy instances), a
        variable->hard-clause index limits re-examination to the clauses
        that contain a newly forced variable.  The fixpoint is the same:
        unit propagation is confluent, and both the initial sweep and the
        queue drain visit clauses in ascending index order.
        """
        forced: dict[Hashable, bool] = {}
        hard_indexes = [
            index for index, clause in enumerate(self._clauses) if clause.is_hard
        ]
        if not hard_indexes:
            return forced
        hard_clauses_of: dict[Hashable, list[int]] = {}
        for index in hard_indexes:
            for variable, __ in self._clauses[index].literals:
                hard_clauses_of.setdefault(variable, []).append(index)
        pending = deque(hard_indexes)
        queued = set(hard_indexes)
        while pending:
            index = pending.popleft()
            queued.discard(index)
            clause = self._clauses[index]
            unit: Optional[Literal] = None
            open_literals = 0
            satisfied = False
            for variable, polarity in clause.literals:
                value = forced.get(variable)
                if value is None:
                    open_literals += 1
                    if open_literals > 1:
                        break
                    unit = (variable, polarity)
                elif value == polarity:
                    satisfied = True
                    break
            if satisfied or open_literals != 1:
                continue
            assert unit is not None
            variable, polarity = unit
            forced[variable] = polarity
            for affected in hard_clauses_of.get(variable, ()):
                if affected != index and affected not in queued:
                    pending.append(affected)
                    queued.add(affected)
        return forced


class _SearchState:
    """Incremental WalkSAT state: satisfied-literal counts per clause."""

    def __init__(self, clauses, assignment, forced) -> None:
        self.clauses = clauses
        self.assignment = assignment
        self.forced = forced
        self.clauses_of: dict[Hashable, list[int]] = {}
        for index, clause in enumerate(clauses):
            for variable, __ in clause.literals:
                self.clauses_of.setdefault(variable, []).append(index)
        self.sat_count = [0] * len(clauses)
        self.unsatisfied: set[int] = set()
        for index, clause in enumerate(clauses):
            count = sum(
                1 for v, polarity in clause.literals if assignment[v] == polarity
            )
            self.sat_count[index] = count
            if count == 0:
                self.unsatisfied.add(index)
        self.best_assignment = dict(assignment)
        self.best_key = self._key()

    def _key(self) -> tuple[float, float]:
        hard = 0
        soft = 0.0
        # Sorted so the float accumulation order (and its rounding) is the
        # same in every process regardless of set history.
        for index in sorted(self.unsatisfied):
            clause = self.clauses[index]
            if clause.is_hard:
                hard += 1
            else:
                soft += clause.weight
        return (hard, soft)

    def _flip(self, variable) -> None:
        new_value = not self.assignment[variable]
        self.assignment[variable] = new_value
        for index in self.clauses_of[variable]:
            clause = self.clauses[index]
            for v, polarity in clause.literals:
                if v != variable:
                    continue
                if polarity == new_value:
                    self.sat_count[index] += 1
                    if self.sat_count[index] == 1:
                        self.unsatisfied.discard(index)
                else:
                    self.sat_count[index] -= 1
                    if self.sat_count[index] == 0:
                        self.unsatisfied.add(index)

    def _break_cost(self, variable) -> float:
        """Weight of clauses that flipping ``variable`` would break."""
        value = self.assignment[variable]
        cost = 0.0
        for index in self.clauses_of[variable]:
            if self.sat_count[index] != 1:
                continue
            clause = self.clauses[index]
            # Breaking happens iff the single satisfied literal is ours.
            for v, polarity in clause.literals:
                if v == variable and polarity == value:
                    cost += _HARD_PENALTY if clause.is_hard else clause.weight
                    break
        return cost

    def search(self, rng: random.Random, max_flips: int, noise: float):
        flips = 0
        # Clauses decided entirely by unit propagation can never be fixed
        # by flipping; they must not be selected (or worse, abort the run).
        dead = {
            index
            for index, clause in enumerate(self.clauses)
            if all(v in self.forced for v, __ in clause.literals)
        }
        while flips < max_flips:
            live = self.unsatisfied - dead
            if not live:
                break
            # Candidate pools are sorted so the rng-indexed pick (and hence
            # the whole search trajectory) never depends on set iteration
            # order; clause indexes sort by (weight desc, index) so heavier
            # clauses are repaired first on equal rng draws.
            hard_unsat = sorted(i for i in live if self.clauses[i].is_hard)
            pool = hard_unsat if hard_unsat else sorted(
                live, key=lambda i: (-self.clauses[i].weight, i)
            )
            clause = self.clauses[pool[rng.randrange(len(pool))]]
            flippable = [v for v, __ in clause.literals if v not in self.forced]
            if not flippable:
                continue
            if rng.random() < noise:
                variable = flippable[rng.randrange(len(flippable))]
            else:
                variable = min(
                    flippable, key=lambda v: (self._break_cost(v), repr(v))
                )
            self._flip(variable)
            flips += 1
            key = self._key()
            if key < self.best_key:
                self.best_key = key
                self.best_assignment = dict(self.assignment)
        return self.best_key, flips
