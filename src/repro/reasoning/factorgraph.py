"""Boolean factor graphs with Gibbs-sampled marginals (DeepDive-style).

DeepDive grounds extraction candidates into a factor graph whose factors
carry real-valued weights, then estimates per-candidate marginal
probabilities by Gibbs sampling.  This module implements that substrate:
boolean variables, weighted factors over small variable tuples, a seeded
Gibbs sampler with burn-in, and exact enumeration for small graphs (used by
tests to validate the sampler).
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from typing import Callable, Hashable, Optional, Sequence

#: A factor's semantics: maps the tuple of its variables' values to True
#: (satisfied: contributes its weight) or False (contributes nothing).
FactorFn = Callable[[tuple[bool, ...]], bool]


def is_true(values: tuple[bool, ...]) -> bool:
    """Unary factor: satisfied when its variable is true."""
    return values[0]


def implies(values: tuple[bool, ...]) -> bool:
    """Binary factor A -> B."""
    return (not values[0]) or values[1]


def equivalent(values: tuple[bool, ...]) -> bool:
    """Binary factor A <-> B."""
    return values[0] == values[1]


def not_both(values: tuple[bool, ...]) -> bool:
    """Binary factor !(A & B) — mutual exclusion."""
    return not (values[0] and values[1])


def conjunction_implies(values: tuple[bool, ...]) -> bool:
    """(A1 & ... & An-1) -> An."""
    return (not all(values[:-1])) or values[-1]


@dataclass(frozen=True, slots=True)
class Factor:
    """A weighted boolean factor over an ordered tuple of variables."""

    variables: tuple[Hashable, ...]
    fn: FactorFn
    weight: float

    def satisfied(self, assignment: dict[Hashable, bool]) -> bool:
        """Evaluate against a full assignment."""
        return self.fn(tuple(assignment[v] for v in self.variables))


class FactorGraph:
    """A collection of boolean variables and weighted factors."""

    def __init__(self) -> None:
        self._variables: dict[Hashable, Optional[bool]] = {}
        self._factors: list[Factor] = []
        self._factors_of: dict[Hashable, list[int]] = {}

    # ------------------------------------------------------------- building

    def add_variable(self, name: Hashable, evidence: Optional[bool] = None) -> None:
        """Declare a variable; ``evidence`` pins it to a fixed value."""
        self._variables[name] = evidence

    def add_factor(
        self, variables: Sequence[Hashable], fn: FactorFn, weight: float
    ) -> None:
        """Attach a weighted factor; unknown variables are auto-declared."""
        variables = tuple(variables)
        if not variables:
            raise ValueError("a factor needs at least one variable")
        for v in variables:
            if v not in self._variables:
                self._variables[v] = None
        index = len(self._factors)
        self._factors.append(Factor(variables, fn, weight))
        for v in variables:
            self._factors_of.setdefault(v, []).append(index)

    def prior(self, name: Hashable, weight: float) -> None:
        """A unary is_true factor (positive weight favours True)."""
        self.add_factor((name,), is_true, weight)

    @property
    def variables(self) -> list[Hashable]:
        """All declared variable names."""
        return list(self._variables)

    @property
    def factors(self) -> list[Factor]:
        """All factors."""
        return list(self._factors)

    def free_variables(self) -> list[Hashable]:
        """Variables not pinned by evidence."""
        return [v for v, e in self._variables.items() if e is None]

    # ------------------------------------------------------------ inference

    def log_score(self, assignment: dict[Hashable, bool]) -> float:
        """Sum of weights of satisfied factors (the unnormalized log-density)."""
        return sum(f.weight for f in self._factors if f.satisfied(assignment))

    def gibbs_marginals(
        self,
        iterations: int = 500,
        burn_in: int = 100,
        seed: int = 0,
    ) -> dict[Hashable, float]:
        """Marginal P(variable = True) estimated by Gibbs sampling.

        ``iterations`` counts full sweeps over the free variables; samples
        before ``burn_in`` sweeps are discarded.
        """
        if iterations <= burn_in:
            raise ValueError("iterations must exceed burn_in")
        rng = random.Random(seed)
        assignment: dict[Hashable, bool] = {}
        for v, evidence in self._variables.items():
            assignment[v] = evidence if evidence is not None else rng.random() < 0.5
        free = self.free_variables()
        counts = {v: 0 for v in free}
        kept = 0
        for sweep in range(iterations):
            for v in free:
                assignment[v] = self._sample_conditional(v, assignment, rng)
            if sweep >= burn_in:
                kept += 1
                for v in free:
                    if assignment[v]:
                        counts[v] += 1
        marginals = {v: counts[v] / kept for v in free}
        for v, evidence in self._variables.items():
            if evidence is not None:
                marginals[v] = 1.0 if evidence else 0.0
        return marginals

    def _sample_conditional(
        self, variable: Hashable, assignment: dict[Hashable, bool], rng: random.Random
    ) -> bool:
        """Sample one variable from its conditional given the rest."""
        score_true = 0.0
        score_false = 0.0
        for index in self._factors_of.get(variable, ()):
            factor = self._factors[index]
            original = assignment[variable]
            assignment[variable] = True
            if factor.satisfied(assignment):
                score_true += factor.weight
            assignment[variable] = False
            if factor.satisfied(assignment):
                score_false += factor.weight
            assignment[variable] = original
        delta = score_true - score_false
        probability_true = 1.0 / (1.0 + math.exp(-delta)) if abs(delta) < 500 else (
            1.0 if delta > 0 else 0.0
        )
        return rng.random() < probability_true

    def exact_marginals(self) -> dict[Hashable, float]:
        """Exact marginals by enumeration (exponential; for small graphs)."""
        free = self.free_variables()
        if len(free) > 20:
            raise ValueError("exact inference is limited to 20 free variables")
        fixed = {v: e for v, e in self._variables.items() if e is not None}
        total_mass = 0.0
        true_mass = {v: 0.0 for v in free}
        for values in itertools.product((False, True), repeat=len(free)):
            assignment = dict(fixed)
            assignment.update(zip(free, values))
            mass = math.exp(self.log_score(assignment))
            total_mass += mass
            for v, value in zip(free, values):
                if value:
                    true_mass[v] += mass
        marginals = {v: true_mass[v] / total_mass for v in free}
        for v, e in fixed.items():
            marginals[v] = 1.0 if e else 0.0
        return marginals

    def map_assignment(self, seed: int = 0, restarts: int = 3, sweeps: int = 50):
        """An approximate MAP assignment by greedy coordinate ascent."""
        rng = random.Random(seed)
        best_assignment: dict[Hashable, bool] = {}
        best_score = -math.inf
        free = self.free_variables()
        fixed = {v: e for v, e in self._variables.items() if e is not None}
        for __ in range(max(1, restarts)):
            assignment = dict(fixed)
            for v in free:
                assignment[v] = rng.random() < 0.5
            for __ in range(sweeps):
                changed = False
                for v in free:
                    current = assignment[v]
                    assignment[v] = True
                    score_true = self._local_score(v, assignment)
                    assignment[v] = False
                    score_false = self._local_score(v, assignment)
                    chosen = score_true > score_false
                    assignment[v] = chosen
                    if chosen != current:
                        changed = True
                if not changed:
                    break
            score = self.log_score(assignment)
            if score > best_score:
                best_score = score
                best_assignment = dict(assignment)
        return best_assignment, best_score

    def _local_score(self, variable, assignment) -> float:
        return sum(
            self._factors[i].weight
            for i in self._factors_of.get(variable, ())
            if self._factors[i].satisfied(assignment)
        )
