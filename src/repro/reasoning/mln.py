"""Markov-logic-lite: weighted rules grounded into a factor graph.

A Markov Logic Network attaches weights to first-order clauses; grounding
produces a Markov network whose variables are ground facts.  This "lite"
version supports the rule shapes knowledge-base construction needs —
weighted Horn implications and mutual-exclusion constraints — and delegates
inference to the Gibbs sampler of :mod:`repro.reasoning.factorgraph`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Optional

from ..kb import TripleStore
from .factorgraph import FactorGraph, conjunction_implies, not_both
from .rules import FactKey, Rule, ground_rules


@dataclass(slots=True)
class MarkovLogicNetwork:
    """A weighted rule set plus exclusion constraints over fact variables."""

    rules: list[Rule] = field(default_factory=list)
    exclusion_weight: float = 4.0

    def add_rule(self, rule: Rule) -> None:
        """Register a weighted implication rule."""
        self.rules.append(rule)

    def ground(
        self,
        evidence: TripleStore,
        priors: Optional[dict[FactKey, float]] = None,
        exclusions: Iterable[tuple[FactKey, FactKey]] = (),
    ) -> FactorGraph:
        """Ground into a factor graph.

        ``evidence`` supplies the candidate facts whose keys become boolean
        variables; ``priors`` maps fact keys to log-odds-style weights (the
        extraction confidences); ``exclusions`` adds weighted not-both
        factors between conflicting facts.
        """
        graph = FactorGraph()
        if priors:
            for key, weight in priors.items():
                graph.prior(key, weight)
        for ground in ground_rules(self.rules, evidence):
            variables = tuple(ground.body) + (ground.head,)
            graph.add_factor(variables, conjunction_implies, ground.weight)
        for a, b in exclusions:
            graph.add_factor((a, b), not_both, self.exclusion_weight)
        return graph

    def marginals(
        self,
        evidence: TripleStore,
        priors: Optional[dict[FactKey, float]] = None,
        exclusions: Iterable[tuple[FactKey, FactKey]] = (),
        iterations: int = 400,
        burn_in: int = 100,
        seed: int = 0,
    ) -> dict[Hashable, float]:
        """Ground and run Gibbs; returns P(fact) per fact variable."""
        graph = self.ground(evidence, priors, exclusions)
        if not graph.variables:
            return {}
        return graph.gibbs_marginals(iterations=iterations, burn_in=burn_in, seed=seed)


def confidence_to_weight(confidence: float, floor: float = 0.05) -> float:
    """Map an extraction confidence in (0, 1) to a log-odds prior weight."""
    import math

    clamped = min(max(confidence, floor), 1.0 - floor)
    return math.log(clamped / (1.0 - clamped))
