"""A small first-order rule language grounded against triple stores.

Rules are weighted Horn-style implications over triple atoms, e.g.::

    Rule(
        body=[Atom(CAPITAL_OF, "x", "y")],
        head=Atom(LOCATED_IN, "x", "y"),
        weight=2.0,
    )

The grounding engine enumerates body matches in a store and yields ground
rule instances over *fact variables* — the (s, p, o) keys — which the MLN
layer turns into factors and the consistency reasoner turns into clauses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from ..kb import Pattern, Query, Relation, Term, TripleStore, Var

#: An atom argument: a variable name (str) or a constant term.
Arg = Union[str, Term]

#: A ground fact key.
FactKey = tuple


@dataclass(frozen=True, slots=True)
class Atom:
    """One triple atom: relation plus subject/object arguments."""

    relation: Relation
    subject: Arg
    object: Arg

    def ground(self, binding: dict[str, Term]) -> FactKey:
        """The (s, p, o) fact key under a variable binding."""
        subject = binding[self.subject] if isinstance(self.subject, str) else self.subject
        obj = binding[self.object] if isinstance(self.object, str) else self.object
        return (subject, self.relation, obj)

    def to_pattern(self) -> Pattern:
        """The query pattern for this atom."""
        subject = Var(self.subject) if isinstance(self.subject, str) else self.subject
        obj = Var(self.object) if isinstance(self.object, str) else self.object
        return Pattern(subject, self.relation, obj)

    def variables(self) -> set[str]:
        """Variable names used by this atom."""
        found = set()
        if isinstance(self.subject, str):
            found.add(self.subject)
        if isinstance(self.object, str):
            found.add(self.object)
        return found


@dataclass(frozen=True, slots=True)
class Rule:
    """body_1 & ... & body_n -> head, with a weight (None = hard)."""

    body: tuple[Atom, ...]
    head: Atom
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.body:
            raise ValueError("a rule needs at least one body atom")
        head_vars = self.head.variables()
        body_vars = set()
        for atom in self.body:
            body_vars |= atom.variables()
        if not head_vars <= body_vars:
            raise ValueError("every head variable must occur in the body")


@dataclass(frozen=True, slots=True)
class GroundRule:
    """One grounding: body fact keys, head fact key, weight."""

    body: tuple[FactKey, ...]
    head: FactKey
    weight: float


def ground_rule(rule: Rule, store: TripleStore) -> Iterator[GroundRule]:
    """All groundings of a rule whose body matches the store."""
    query = Query([atom.to_pattern() for atom in rule.body])
    for binding in query.run(store):
        yield GroundRule(
            body=tuple(atom.ground(binding) for atom in rule.body),
            head=rule.head.ground(binding),
            weight=rule.weight,
        )


def ground_rules(rules: list[Rule], store: TripleStore) -> list[GroundRule]:
    """Ground a rule set against a store."""
    grounded = []
    for rule in rules:
        grounded.extend(ground_rule(rule, store))
    return grounded


def apply_rules(
    rules: list[Rule], store: TripleStore, max_rounds: int = 5
) -> TripleStore:
    """Forward-chain hard rules to a fixpoint (bounded), returning new facts.

    Only useful for deterministic inference (e.g. deriving locatedIn from
    capitalOf); weighted reasoning should go through the MLN/MaxSat layers.
    """
    from ..kb import Triple

    derived = TripleStore()
    working = store.copy()
    for __ in range(max_rounds):
        new_facts = 0
        for ground in ground_rules(rules, working):
            s, p, o = ground.head
            if not working.contains_fact(s, p, o):
                triple = Triple(s, p, o, confidence=0.9, source="rule")
                working.add(triple)
                derived.add(triple)
                new_facts += 1
        if new_facts == 0:
            break
    return derived
