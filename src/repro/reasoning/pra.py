"""PRA-lite: path-ranking link prediction over the knowledge graph.

Knowledge Vault (Dong et al., KDD 2014 — reference [9] of the tutorial)
fuses text extractors with *graph-based priors*: how plausible is a
candidate (s, r, o) given the paths that already connect s and o in the
KB?  The Path Ranking Algorithm's core idea, implemented lite: enumerate
bounded-length relation paths between entity pairs, use the path types as
features, and score a candidate by a per-relation logistic model trained
on known facts vs corrupted negatives.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from ..kb import Entity, Relation, TripleStore
from ..ml.logreg import LogisticRegression

#: A path type: a tuple of (relation id, direction) steps, e.g.
#: (("rel:bornIn", ">"), ("rel:capitalOf", "<")).
PathType = tuple[tuple[str, str], ...]


class KnowledgeGraph:
    """An adjacency view of a triple store for path enumeration."""

    def __init__(self, store: TripleStore) -> None:
        self._forward: dict[Entity, list[tuple[Relation, Entity]]] = defaultdict(list)
        self._backward: dict[Entity, list[tuple[Relation, Entity]]] = defaultdict(list)
        self.entities: set[Entity] = set()
        for triple in store:
            subject, predicate, obj = triple.subject, triple.predicate, triple.object
            if not isinstance(subject, Entity) or not isinstance(obj, Entity):
                continue
            if not isinstance(predicate, Relation):
                continue
            self._forward[subject].append((predicate, obj))
            self._backward[obj].append((predicate, subject))
            self.entities.add(subject)
            self.entities.add(obj)

    def neighbors(self, entity: Entity) -> Iterable[tuple[str, str, Entity]]:
        """(relation id, direction, neighbor) steps leaving an entity."""
        for relation, obj in self._forward.get(entity, ()):
            yield relation.id, ">", obj
        for relation, subject in self._backward.get(entity, ()):
            yield relation.id, "<", subject

    def paths_between(
        self,
        start: Entity,
        end: Entity,
        max_length: int = 3,
        exclude: Optional[tuple[str, Entity, Entity]] = None,
    ) -> list[PathType]:
        """All relation-path types from start to end up to ``max_length``.

        ``exclude`` removes one specific edge (relation id, s, o) — used to
        hide the very fact being scored during training and prediction.
        """
        found: list[PathType] = []
        stack: list[tuple[Entity, PathType, set[Entity]]] = [
            (start, (), {start})
        ]
        while stack:
            node, path, visited = stack.pop()
            if len(path) >= max_length:
                continue
            for relation_id, direction, neighbor in self.neighbors(node):
                if exclude is not None:
                    rel_id, s, o = exclude
                    if relation_id == rel_id and (
                        (direction == ">" and node == s and neighbor == o)
                        or (direction == "<" and node == o and neighbor == s)
                    ):
                        continue
                step = ((relation_id, direction),)
                if neighbor == end:
                    found.append(path + step)
                    continue
                if neighbor in visited:
                    continue
                stack.append((neighbor, path + step, visited | {neighbor}))
        return found


@dataclass
class PathRankingModel:
    """A per-relation link-prediction model over path-type features."""

    relation: Relation
    max_path_length: int = 3
    negatives_per_positive: int = 2
    l2: float = 1e-2
    _feature_index: dict[PathType, int] = field(default_factory=dict, repr=False)
    _model: Optional[LogisticRegression] = field(default=None, repr=False)

    def _vector(self, paths: list[PathType]) -> np.ndarray:
        vector = np.zeros(len(self._feature_index) + 1, dtype=np.float64)
        for path in paths:
            index = self._feature_index.get(path)
            if index is not None:
                vector[index] += 1.0
        vector[-1] = float(len(paths))  # total connectivity
        return vector

    def train(self, graph: KnowledgeGraph, kb: TripleStore, seed: int = 0) -> int:
        """Fit on the relation's known facts vs corrupted negatives.

        Returns the number of training examples used.
        """
        rng = random.Random(seed)
        positives = [
            (t.subject, t.object)
            for t in kb.match(predicate=self.relation)
            if isinstance(t.object, Entity)
        ]
        if len(positives) < 3:
            raise ValueError(
                f"too few facts for {self.relation.id} to train a PRA model"
            )
        objects = sorted({o for __, o in positives}, key=lambda e: e.id)
        examples: list[tuple[Entity, Entity, bool]] = []
        for subject, obj in positives:
            examples.append((subject, obj, True))
            for __ in range(self.negatives_per_positive):
                wrong = rng.choice(objects)
                if wrong != obj and not kb.contains_fact(subject, self.relation, wrong):
                    examples.append((subject, wrong, False))

        # First pass: collect path features (excluding the scored edge).
        path_sets = []
        vocabulary: set[PathType] = set()
        for subject, obj, __ in examples:
            paths = graph.paths_between(
                subject, obj, self.max_path_length,
                exclude=(self.relation.id, subject, obj),
            )
            path_sets.append(paths)
            vocabulary.update(paths)
        self._feature_index = {
            path: i for i, path in enumerate(sorted(vocabulary))
        }
        X = np.vstack([self._vector(paths) for paths in path_sets])
        y = np.array([1.0 if label else 0.0 for __, __, label in examples])
        self._model = LogisticRegression(l2=self.l2).fit(X, y)
        return len(examples)

    def score(self, graph: KnowledgeGraph, subject: Entity, obj: Entity) -> float:
        """P(the fact holds) from the graph context alone."""
        if self._model is None:
            raise RuntimeError("train() the model first")
        paths = graph.paths_between(
            subject, obj, self.max_path_length,
            exclude=(self.relation.id, subject, obj),
        )
        return float(self._model.predict_proba(self._vector(paths)[None, :])[0])

    def top_features(self, k: int = 5) -> list[tuple[PathType, float]]:
        """The highest-weighted path types (for inspection)."""
        if self._model is None or self._model.weights is None:
            return []
        weights = self._model.weights
        ranked = sorted(
            self._feature_index.items(), key=lambda kv: -weights[kv[1]]
        )
        return [(path, float(weights[index])) for path, index in ranked[:k]]
