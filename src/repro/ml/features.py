"""Sparse feature vectors via feature hashing.

Extraction classifiers (distant supervision, entity linkage) work with
string-named features ("word_between=founded", "dep_path=nsubj-found-dobj").
The hashing trick maps those names into a fixed-dimension sparse vector
without keeping a vocabulary, which is the standard approach when the
feature space is unbounded (web-scale text).
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

# Canonical home is the determinism package; re-exported here because the
# feature hasher predates it and callers import it from both places.
from ..determinism.stable import stable_hash

__all__ = ["FeatureHasher", "stable_hash"]


class FeatureHasher:
    """Map string features to indices in a fixed-size vector space.

    The sign trick (half the features contribute negatively) reduces the
    bias introduced by collisions.
    """

    def __init__(self, dimensions: int = 2 ** 16, signed: bool = True) -> None:
        if dimensions <= 0:
            raise ValueError("dimensions must be positive")
        self.dimensions = dimensions
        self.signed = signed

    def index_of(self, feature: str) -> tuple[int, float]:
        """The (index, sign) a feature name maps to."""
        h = stable_hash(feature)
        index = h % self.dimensions
        sign = -1.0 if self.signed and (h >> 32) & 1 else 1.0
        return index, sign

    def transform_one(self, features: Iterable[str] | Mapping[str, float]) -> np.ndarray:
        """A dense vector for one example (iterable of names or name->weight)."""
        vector = np.zeros(self.dimensions, dtype=np.float64)
        if isinstance(features, Mapping):
            items = features.items()
        else:
            items = ((name, 1.0) for name in features)
        for name, weight in items:
            index, sign = self.index_of(name)
            vector[index] += sign * weight
        return vector

    def transform(self, examples: Iterable[Iterable[str] | Mapping[str, float]]) -> np.ndarray:
        """A (n_examples, dimensions) matrix."""
        rows = [self.transform_one(example) for example in examples]
        if not rows:
            return np.zeros((0, self.dimensions), dtype=np.float64)
        return np.vstack(rows)
