"""Binary logistic regression trained by full-batch gradient descent.

Implemented from scratch on numpy (no external ML library): L2-regularized
negative log-likelihood minimized with gradient descent plus a simple
backtracking step size.  This is the workhorse classifier for distant
supervision (tutorial section 3) and the entity-linkage matcher (section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z, dtype=np.float64)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


@dataclass
class LogisticRegression:
    """L2-regularized binary logistic regression.

    Attributes
    ----------
    l2:
        Regularization strength (0 disables it).
    max_iterations:
        Upper bound on gradient steps.
    tolerance:
        Stop when the gradient's infinity norm falls below this.
    """

    l2: float = 1e-3
    max_iterations: int = 500
    tolerance: float = 1e-6
    weights: np.ndarray | None = field(default=None, repr=False)
    bias: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        """Train on a (n, d) matrix and a 0/1 label vector; returns self."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if y.shape != (X.shape[0],):
            raise ValueError("y must have one label per row of X")
        n, d = X.shape
        w = np.zeros(d)
        b = 0.0
        step = 1.0
        previous_loss = self._loss(X, y, w, b)
        for __ in range(self.max_iterations):
            p = sigmoid(X @ w + b)
            error = p - y
            grad_w = X.T @ error / n + self.l2 * w
            grad_b = float(np.mean(error))
            if max(np.max(np.abs(grad_w), initial=0.0), abs(grad_b)) < self.tolerance:
                break
            # Backtracking line search keeps full-batch descent stable
            # without tuning a learning rate per dataset.
            while step > 1e-10:
                w_new = w - step * grad_w
                b_new = b - step * grad_b
                loss = self._loss(X, y, w_new, b_new)
                if loss <= previous_loss:
                    w, b, previous_loss = w_new, b_new, loss
                    step *= 1.1
                    break
                step *= 0.5
            else:
                break
        self.weights = w
        self.bias = b
        return self

    def _loss(self, X: np.ndarray, y: np.ndarray, w: np.ndarray, b: float) -> float:
        z = X @ w + b
        # log(1 + exp(z)) computed stably as max(z, 0) + log1p(exp(-|z|)).
        log_partition = np.maximum(z, 0.0) + np.log1p(np.exp(-np.abs(z)))
        nll = float(np.mean(log_partition - y * z))
        return nll + 0.5 * self.l2 * float(w @ w)

    def _require_fitted(self) -> None:
        if self.weights is None:
            raise RuntimeError("model is not fitted; call fit() first")

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """P(label=1) for each row of X."""
        self._require_fitted()
        X = np.asarray(X, dtype=np.float64)
        return sigmoid(X @ self.weights + self.bias)

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """0/1 predictions at the given probability threshold."""
        return (self.predict_proba(X) >= threshold).astype(np.int64)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw linear scores (log-odds)."""
        self._require_fitted()
        X = np.asarray(X, dtype=np.float64)
        return X @ self.weights + self.bias
