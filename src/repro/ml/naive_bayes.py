"""Multinomial Naive Bayes over string features.

A light-weight text classifier used where logistic regression would be
overkill (e.g. scoring candidate class memberships in set expansion).
Features are plain strings; probabilities use Laplace smoothing.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Hashable, Iterable, Sequence


class MultinomialNaiveBayes:
    """Multinomial NB with Laplace (add-alpha) smoothing."""

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha
        self._class_counts: Counter = Counter()
        self._feature_counts: dict[Hashable, Counter] = defaultdict(Counter)
        self._feature_totals: Counter = Counter()
        self._vocabulary: set[str] = set()

    def fit(
        self, examples: Sequence[Iterable[str]], labels: Sequence[Hashable]
    ) -> "MultinomialNaiveBayes":
        """Train on (feature-bag, label) pairs; returns self."""
        if len(examples) != len(labels):
            raise ValueError("examples and labels must align")
        for features, label in zip(examples, labels):
            self._class_counts[label] += 1
            for feature in features:
                self._feature_counts[label][feature] += 1
                self._feature_totals[label] += 1
                self._vocabulary.add(feature)
        return self

    @property
    def classes(self) -> list[Hashable]:
        """The labels seen during training."""
        return list(self._class_counts)

    def log_scores(self, features: Iterable[str]) -> dict[Hashable, float]:
        """Unnormalized log P(class) + sum log P(feature | class)."""
        if not self._class_counts:
            raise RuntimeError("model is not fitted; call fit() first")
        feature_list = list(features)
        total_examples = sum(self._class_counts.values())
        vocabulary_size = max(len(self._vocabulary), 1)
        scores = {}
        for label, count in self._class_counts.items():
            score = math.log(count / total_examples)
            denominator = self._feature_totals[label] + self.alpha * vocabulary_size
            for feature in feature_list:
                numerator = self._feature_counts[label][feature] + self.alpha
                score += math.log(numerator / denominator)
            scores[label] = score
        return scores

    def predict_proba(self, features: Iterable[str]) -> dict[Hashable, float]:
        """Normalized class posterior for one example."""
        scores = self.log_scores(features)
        peak = max(scores.values())
        exponentials = {label: math.exp(s - peak) for label, s in scores.items()}
        total = sum(exponentials.values())
        return {label: value / total for label, value in exponentials.items()}

    def predict(self, features: Iterable[str]) -> Hashable:
        """The maximum a-posteriori class for one example."""
        scores = self.log_scores(features)
        return max(scores, key=lambda label: (scores[label], str(label)))
