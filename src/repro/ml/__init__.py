"""From-scratch machine learning: hashing, logistic regression, Naive Bayes."""

from .features import FeatureHasher, stable_hash
from .logreg import LogisticRegression, sigmoid
from .naive_bayes import MultinomialNaiveBayes

__all__ = [
    "FeatureHasher",
    "stable_hash",
    "LogisticRegression",
    "sigmoid",
    "MultinomialNaiveBayes",
]
