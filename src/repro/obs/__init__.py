"""Observability for the KB-construction pipeline: spans + metrics.

Production knowledge-base pipelines live or die by curation telemetry —
knowing which extractor produced which fact at what cost (Weikum et al.,
*Machine Knowledge*, 2020).  This subpackage provides exactly that for the
toolkit, in-process and dependency-free:

* **Tracing spans** — ``with span("pipeline.extract.infobox"):`` context
  managers that record wall time, per-span counters, and parent/child
  nesting into a trace tree.
* **Metrics registry** — process-local counters, gauges, and histograms
  (with p50/p95/max) keyed by dotted names.
* **A near-zero-overhead disabled path** — instrumentation is off by
  default; every instrumented call site checks the module-level
  ``core.ENABLED`` flag before allocating anything, so the hot paths
  (``TripleStore.add`` in particular) pay only a module-attribute load.

Usage::

    from repro import obs

    obs.enable()
    with obs.span("pipeline.build"):
        with obs.span("pipeline.extract"):
            obs.annotate("candidates", 17)   # counter on the open span
        obs.count("kb.store.add", 3)         # global counter
        obs.observe("shard.records", 128.0)  # histogram sample
    print(obs.render_trace())
    print(obs.render_metrics())
    payload = obs.report_json()              # machine-readable export
    obs.reset()

Hot-path modules import the state-bearing module directly and gate on the
flag themselves so the disabled cost is a single attribute check::

    from ..obs import core as _obs
    ...
    if _obs.ENABLED:
        _obs.count("kb.store.add", 1)
"""

from __future__ import annotations

from . import core
from .core import (
    Histogram,
    Span,
    annotate,
    count,
    current_span,
    disable,
    enable,
    enabled,
    gauge,
    merge_snapshot,
    observe,
    reset,
    snapshot,
    span,
    take_roots,
    worker_label,
)
from .render import (
    render_metrics,
    render_trace,
    report_json,
    stage_breakdown,
)

__all__ = [
    "core",
    "Histogram",
    "Span",
    "annotate",
    "count",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "merge_snapshot",
    "observe",
    "reset",
    "snapshot",
    "span",
    "take_roots",
    "worker_label",
    "render_metrics",
    "render_trace",
    "report_json",
    "stage_breakdown",
]
