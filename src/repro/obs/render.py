"""Presentation of recorded telemetry: trace trees, tables, JSON export.

Rendering happens once, after the traced work finished, so nothing here is
performance-sensitive.  Sibling spans with the same name (e.g. the per-page
``pipeline.extract.infobox`` spans) are merged into one line with a ``xN``
multiplicity so a 10k-page build still renders as a readable stage tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import core
from .core import Span


# ------------------------------------------------------------- aggregation


@dataclass(slots=True)
class MergedSpan:
    """Same-named sibling spans folded together."""

    name: str
    calls: int = 0
    total: float = 0.0
    counters: dict[str, float] = field(default_factory=dict)
    children: list["MergedSpan"] = field(default_factory=list)


def merge_spans(spans: list[Span]) -> list[MergedSpan]:
    """Fold same-named siblings, recursively, preserving first-seen order."""
    merged: dict[str, MergedSpan] = {}
    order: list[str] = []
    child_groups: dict[str, list[Span]] = {}
    for node in spans:
        if node.name not in merged:
            merged[node.name] = MergedSpan(name=node.name)
            order.append(node.name)
            child_groups[node.name] = []
        bucket = merged[node.name]
        bucket.calls += 1
        bucket.total += node.elapsed
        for key, value in node.counters.items():
            bucket.counters[key] = bucket.counters.get(key, 0) + value
        child_groups[node.name].extend(node.children)
    for name in order:
        merged[name].children = merge_spans(child_groups[name])
    return [merged[name] for name in order]


def _flatten(merged: list[MergedSpan], prefix: str, into: list[dict]) -> None:
    for node in merged:
        path = f"{prefix}{node.name}" if not prefix else f"{prefix}/{node.name}"
        into.append(
            {
                "stage": path,
                "calls": node.calls,
                "total_s": node.total,
                "counters": dict(node.counters),
            }
        )
        _flatten(node.children, path, into)


def stage_breakdown() -> list[dict]:
    """A flat, JSON-ready list of merged stages with calls and total time.

    Stage names are slash-joined span paths (``pipeline.build/
    pipeline.extract/extract.infobox``), one entry per distinct path.
    """
    flat: list[dict] = []
    _flatten(merge_spans(core.take_roots()), "", flat)
    return flat


# --------------------------------------------------------------- rendering


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s "
    return f"{seconds * 1000.0:8.2f}ms"


def _format_count(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.3f}"
    return str(int(value))


def _render_node(
    node: MergedSpan,
    prefix: str,
    connector: str,
    child_prefix: str,
    lines: list[str],
) -> None:
    label = node.name if node.calls == 1 else f"{node.name} x{node.calls}"
    extras = ""
    if node.counters:
        pairs = ", ".join(
            f"{key}={_format_count(value)}"
            for key, value in sorted(node.counters.items())
        )
        extras = f"  [{pairs}]"
    stem = prefix + connector
    lines.append(
        f"{stem}{label:<{max(1, 46 - len(stem))}} "
        f"{_format_seconds(node.total)}{extras}"
    )
    for i, child in enumerate(node.children):
        last = i == len(node.children) - 1
        _render_node(
            child,
            child_prefix,
            "└─ " if last else "├─ ",
            child_prefix + ("   " if last else "│  "),
            lines,
        )


def render_trace() -> str:
    """The merged span tree as an aligned text diagram."""
    roots = merge_spans(core.take_roots())
    if not roots:
        return "(no spans recorded)"
    lines: list[str] = []
    for root in roots:
        _render_node(root, "", "", "", lines)
    return "\n".join(lines)


def render_metrics() -> str:
    """Counters, gauges, and histogram digests as aligned text tables."""
    counters = core.counters()
    gauges = core.gauges()
    histograms = core.histograms()
    if not counters and not gauges and not histograms:
        return "(no metrics recorded)"
    lines: list[str] = []
    if counters:
        width = max(len(name) for name in counters)
        lines.append(f"{'counter':<{width}}  value")
        for name in sorted(counters):
            lines.append(f"{name:<{width}}  {_format_count(counters[name])}")
    if gauges:
        if lines:
            lines.append("")
        width = max(len(name) for name in gauges)
        lines.append(f"{'gauge':<{width}}  value")
        for name in sorted(gauges):
            lines.append(f"{name:<{width}}  {gauges[name]:g}")
    if histograms:
        if lines:
            lines.append("")
        width = max(len(name) for name in histograms)
        lines.append(
            f"{'histogram':<{width}}  count      mean       p50       p95       max"
        )
        for name in sorted(histograms):
            h = histograms[name]
            lines.append(
                f"{name:<{width}}  {h.count:<6}"
                f" {h.mean:>9.3f} {h.p50:>9.3f} {h.p95:>9.3f} {h.max:>9.3f}"
            )
    return "\n".join(lines)


# ------------------------------------------------------------------ export


def report_json() -> dict:
    """Everything recorded since the last reset, as plain JSON-able data.

    Keys: ``spans`` (the raw trace forest), ``stages`` (the merged
    breakdown :func:`stage_breakdown` computes), ``counters``, ``gauges``,
    and ``histograms`` (digests, not raw samples).
    """
    return {
        "spans": [root.to_dict() for root in core.take_roots()],
        "stages": stage_breakdown(),
        "counters": core.counters(),
        "gauges": core.gauges(),
        "histograms": {
            name: histogram.summary()
            for name, histogram in core.histograms().items()
        },
    }
