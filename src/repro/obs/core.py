"""The observability state: the enabled flag, span stack, and registry.

Everything lives at module level so hot call sites can gate on a single
attribute load (``core.ENABLED``) — when the flag is False no span, dict,
or float is ever allocated.  State is process-local and single-threaded by
design, matching the rest of the toolkit (the map-reduce engine is an
in-process simulator).

The span stack is explicit rather than thread-local: ``span()`` pushes on
``__enter__`` and pops on ``__exit__``, attaching each finished span to its
parent (or to the finished-roots list when the stack empties).  Trace
*structure* — names, nesting, counter values — is deterministic for a
deterministic program; only the recorded wall times vary run to run, which
is what the pipeline determinism test relies on.
"""

from __future__ import annotations

import math
import time
from typing import Optional

#: The master switch.  Read directly (``core.ENABLED``) in hot paths;
#: flipped only through :func:`enable` / :func:`disable` so the module
#: attribute stays the single source of truth.
ENABLED: bool = False

# ----------------------------------------------------------------- registry

_counters: dict[str, float] = {}
_gauges: dict[str, float] = {}
_histograms: dict[str, "Histogram"] = {}

# The open-span stack and the finished top-level spans, oldest first.
_stack: list["Span"] = []
_roots: list["Span"] = []


def enable() -> None:
    """Turn instrumentation on (spans and metrics start recording)."""
    global ENABLED
    ENABLED = True


def disable() -> None:
    """Turn instrumentation off; already-recorded data is kept."""
    global ENABLED
    ENABLED = False


def enabled() -> bool:
    """Whether instrumentation is currently recording."""
    return ENABLED


def reset() -> None:
    """Drop all recorded spans and metrics (the flag is left as-is).

    Call between pipeline runs so one run's telemetry does not bleed into
    the next — the CLI does this before ``build --trace`` and the bench
    harness before its instrumented run.
    """
    _counters.clear()
    _gauges.clear()
    _histograms.clear()
    _stack.clear()
    _roots.clear()


# -------------------------------------------------------------------- spans


class Span:
    """One finished or in-flight region of the trace tree."""

    __slots__ = ("name", "elapsed", "counters", "children", "_t0")

    def __init__(self, name: str) -> None:
        self.name = name
        self.elapsed: float = 0.0
        self.counters: dict[str, float] = {}
        self.children: list[Span] = []
        self._t0: float = 0.0

    def add(self, counter: str, n: float = 1) -> None:
        """Increment one of this span's counters."""
        self.counters[counter] = self.counters.get(counter, 0) + n

    def structure(self) -> tuple:
        """The timing-free shape: (name, counters, child structures).

        Two runs of a deterministic program produce equal structures even
        though their wall times differ.
        """
        return (
            self.name,
            tuple(sorted(self.counters.items())),
            tuple(child.structure() for child in self.children),
        )

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, elapsed={self.elapsed:.6f}, "
            f"children={len(self.children)})"
        )


class _SpanHandle:
    """Context manager that opens a :class:`Span` on the global stack."""

    __slots__ = ("_span",)

    def __init__(self, name: str) -> None:
        self._span = Span(name)

    def __enter__(self) -> Span:
        opened = self._span
        _stack.append(opened)
        opened._t0 = time.perf_counter()
        return opened

    def __exit__(self, exc_type, exc, tb) -> bool:
        opened = self._span
        opened.elapsed = time.perf_counter() - opened._t0
        # Tolerate reset() having been called while this span was open.
        if _stack and _stack[-1] is opened:
            _stack.pop()
            if _stack:
                _stack[-1].children.append(opened)
            else:
                _roots.append(opened)
        return False


class _NoopSpan:
    """The shared do-nothing handle returned while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def add(self, counter: str, n: float = 1) -> None:
        pass


#: The singleton returned by :func:`span` on the disabled path — the call
#: allocates nothing.
_NOOP = _NoopSpan()


def span(name: str):
    """A context manager tracing ``name``; a shared no-op when disabled."""
    if not ENABLED:
        return _NOOP
    return _SpanHandle(name)


def current_span() -> Optional[Span]:
    """The innermost open span, or None."""
    return _stack[-1] if _stack else None


def annotate(counter: str, n: float = 1) -> None:
    """Increment a counter on the innermost open span (no-op otherwise)."""
    if not ENABLED or not _stack:
        return
    _stack[-1].add(counter, n)


def take_roots() -> list[Span]:
    """The finished top-level spans recorded since the last reset."""
    return list(_roots)


# ------------------------------------------------------------------ metrics


def count(name: str, n: float = 1) -> None:
    """Increment a named global counter."""
    if not ENABLED:
        return
    _counters[name] = _counters.get(name, 0) + n


def gauge(name: str, value: float) -> None:
    """Set a named gauge to its latest value."""
    if not ENABLED:
        return
    _gauges[name] = value


def observe(name: str, value: float) -> None:
    """Record one sample into a named histogram."""
    if not ENABLED:
        return
    histogram = _histograms.get(name)
    if histogram is None:
        histogram = _histograms[name] = Histogram(name)
    histogram.observe(value)


class Histogram:
    """A sample-keeping histogram with percentile summaries.

    Samples are kept raw (these are per-stage/per-shard series, thousands
    at most, not per-request streams); percentiles are computed on demand
    with the nearest-rank rule.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def percentile(self, p: float) -> float:
        """The nearest-rank p-th percentile (p in [0, 100])."""
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    def summary(self) -> dict:
        """The JSON-ready digest used by exports and rendering."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "max": self.max,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


def counters() -> dict[str, float]:
    """A snapshot of the global counters."""
    return dict(_counters)


def gauges() -> dict[str, float]:
    """A snapshot of the gauges."""
    return dict(_gauges)


def histograms() -> dict[str, Histogram]:
    """A snapshot of the histogram registry (live objects, treat read-only)."""
    return dict(_histograms)
