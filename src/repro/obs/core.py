"""The observability state: the enabled flag, span stack, and registry.

Everything lives at module level so hot call sites can gate on a single
attribute load (``core.ENABLED``) — when the flag is False no span, dict,
or float is ever allocated.  State is process-local and *per-thread*: each
thread records spans and metrics into its own registry, so worker threads
of the parallel execution backends never race on a shared span stack.
Worker telemetry — from pool threads and pool processes alike — is folded
back into the parent explicitly via :func:`snapshot` (captured in-worker)
and :func:`merge_snapshot` (applied in the parent), which is how
``build --trace`` keeps a per-worker breakdown.

The span stack is explicit: ``span()`` pushes on ``__enter__`` and pops on
``__exit__``, attaching each finished span to its parent (or to the
finished-roots list when the stack empties).  Trace *structure* — names,
nesting, counter values — is deterministic for a deterministic program;
only the recorded wall times vary run to run, which is what the pipeline
determinism test relies on.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Optional

#: The master switch.  Read directly (``core.ENABLED``) in hot paths;
#: flipped only through :func:`enable` / :func:`disable` so the module
#: attribute stays the single source of truth.
ENABLED: bool = False

# ----------------------------------------------------------------- registry


class _State:
    """One thread's registry: counters, gauges, histograms, span stack."""

    __slots__ = ("counters", "gauges", "histograms", "stack", "roots")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, "Histogram"] = {}
        # The open-span stack and the finished top-level spans, oldest first.
        self.stack: list["Span"] = []
        self.roots: list["Span"] = []

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.stack.clear()
        self.roots.clear()


#: The main thread's registry — the one ``take_roots``/``counters`` etc.
#: read in ordinary single-threaded use.
_MAIN_STATE = _State()

_TLS = threading.local()


def _state() -> _State:
    """The calling thread's registry (the module singleton on the main
    thread, a thread-local instance on any other)."""
    if threading.current_thread() is threading.main_thread():
        return _MAIN_STATE
    state = getattr(_TLS, "state", None)
    if state is None:
        state = _TLS.state = _State()
    return state


def enable() -> None:
    """Turn instrumentation on (spans and metrics start recording)."""
    global ENABLED
    ENABLED = True


def disable() -> None:
    """Turn instrumentation off; already-recorded data is kept."""
    global ENABLED
    ENABLED = False


def enabled() -> bool:
    """Whether instrumentation is currently recording."""
    return ENABLED


def reset() -> None:
    """Drop the calling thread's recorded spans and metrics (flag kept).

    Call between pipeline runs so one run's telemetry does not bleed into
    the next — the CLI does this before ``build --trace`` and the bench
    harness before its instrumented run.  Worker initializers call it too,
    clearing any state a forked child inherited from its parent.
    """
    _state().clear()


# -------------------------------------------------------------------- spans


class Span:
    """One finished or in-flight region of the trace tree."""

    __slots__ = ("name", "elapsed", "counters", "children", "_t0")

    def __init__(self, name: str) -> None:
        self.name = name
        self.elapsed: float = 0.0
        self.counters: dict[str, float] = {}
        self.children: list[Span] = []
        self._t0: float = 0.0

    def add(self, counter: str, n: float = 1) -> None:
        """Increment one of this span's counters."""
        self.counters[counter] = self.counters.get(counter, 0) + n

    def structure(self) -> tuple:
        """The timing-free shape: (name, counters, child structures).

        Two runs of a deterministic program produce equal structures even
        though their wall times differ.
        """
        return (
            self.name,
            tuple(sorted(self.counters.items())),
            tuple(child.structure() for child in self.children),
        )

    def to_dict(self) -> dict:
        """A picklable/JSON-able export of this span subtree."""
        return {
            "name": self.name,
            "elapsed_s": self.elapsed,
            "counters": dict(self.counters),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        """Rebuild a span subtree exported by :meth:`to_dict`."""
        span = cls(payload["name"])
        span.elapsed = payload["elapsed_s"]
        span.counters = dict(payload["counters"])
        span.children = [cls.from_dict(child) for child in payload["children"]]
        return span

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, elapsed={self.elapsed:.6f}, "
            f"children={len(self.children)})"
        )


class _SpanHandle:
    """Context manager that opens a :class:`Span` on the global stack."""

    __slots__ = ("_span",)

    def __init__(self, name: str) -> None:
        self._span = Span(name)

    def __enter__(self) -> Span:
        opened = self._span
        _state().stack.append(opened)
        opened._t0 = time.perf_counter()
        return opened

    def __exit__(self, exc_type, exc, tb) -> bool:
        opened = self._span
        opened.elapsed = time.perf_counter() - opened._t0
        stack = _state().stack
        # Tolerate reset() having been called while this span was open.
        if stack and stack[-1] is opened:
            stack.pop()
            if stack:
                stack[-1].children.append(opened)
            else:
                _state().roots.append(opened)
        return False


class _NoopSpan:
    """The shared do-nothing handle returned while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def add(self, counter: str, n: float = 1) -> None:
        pass


#: The singleton returned by :func:`span` on the disabled path — the call
#: allocates nothing.
_NOOP = _NoopSpan()


def span(name: str):
    """A context manager tracing ``name``; a shared no-op when disabled."""
    if not ENABLED:
        return _NOOP
    return _SpanHandle(name)


def current_span() -> Optional[Span]:
    """The innermost open span of the calling thread, or None."""
    stack = _state().stack
    return stack[-1] if stack else None


def annotate(counter: str, n: float = 1) -> None:
    """Increment a counter on the innermost open span (no-op otherwise)."""
    if not ENABLED:
        return
    stack = _state().stack
    if stack:
        stack[-1].add(counter, n)


def take_roots() -> list[Span]:
    """The calling thread's finished top-level spans since the last reset."""
    return list(_state().roots)


# ----------------------------------------------------- worker telemetry


def worker_label() -> str:
    """A stable-ish name for the executing worker, for trace grouping.

    Pool processes report their process name (``ForkPoolWorker-1``), pool
    threads their thread name; the parent's main thread reports ``main``.
    """
    import multiprocessing

    process = multiprocessing.current_process()
    if process.name != "MainProcess":
        return process.name
    thread = threading.current_thread()
    if thread is not threading.main_thread():
        return thread.name
    return "main"


def snapshot(reset: bool = False) -> dict:
    """A picklable export of the calling thread's recorded telemetry.

    Execution-backend workers call this after each task (with
    ``reset=True``) and ship the payload back with the task result; the
    parent folds it in with :func:`merge_snapshot`.  Keys: ``worker`` (the
    :func:`worker_label`), ``counters``, ``gauges``, ``histograms`` (raw
    sample lists), and ``spans`` (finished root spans as dicts).
    """
    state = _state()
    payload = {
        "worker": worker_label(),
        "counters": dict(state.counters),
        "gauges": dict(state.gauges),
        "histograms": {
            name: list(histogram.values)
            for name, histogram in state.histograms.items()
        },
        "spans": [span.to_dict() for span in state.roots],
    }
    if reset:
        state.clear()
    return payload


def merge_snapshot(payload: dict, label: Optional[str] = None) -> None:
    """Fold a worker :func:`snapshot` into the calling thread's registry.

    Counters add, gauges last-write-wins, histogram samples extend.  The
    snapshot's spans are re-attached under the currently open span (or as
    new roots), wrapped in a ``label`` span when one is given — the
    per-worker grouping ``build --trace`` renders.
    """
    if not ENABLED:
        return
    state = _state()
    for name, value in payload["counters"].items():
        state.counters[name] = state.counters.get(name, 0) + value
    state.gauges.update(payload["gauges"])
    for name, values in payload["histograms"].items():
        histogram = state.histograms.get(name)
        if histogram is None:
            histogram = state.histograms[name] = Histogram(name)
        histogram.values.extend(values)
    spans = [Span.from_dict(span) for span in payload["spans"]]
    if label is not None and spans:
        wrapper = Span(label)
        wrapper.children = spans
        wrapper.elapsed = sum(span.elapsed for span in spans)
        spans = [wrapper]
    if state.stack:
        state.stack[-1].children.extend(spans)
    else:
        state.roots.extend(spans)


# ------------------------------------------------------------------ metrics


def count(name: str, n: float = 1) -> None:
    """Increment a named counter in the calling thread's registry."""
    if not ENABLED:
        return
    counters = _state().counters
    counters[name] = counters.get(name, 0) + n


def gauge(name: str, value: float) -> None:
    """Set a named gauge to its latest value."""
    if not ENABLED:
        return
    _state().gauges[name] = value


def observe(name: str, value: float) -> None:
    """Record one sample into a named histogram."""
    if not ENABLED:
        return
    histograms = _state().histograms
    histogram = histograms.get(name)
    if histogram is None:
        histogram = histograms[name] = Histogram(name)
    histogram.observe(value)


class Histogram:
    """A sample-keeping histogram with percentile summaries.

    Samples are kept raw (these are per-stage/per-shard series, thousands
    at most, not per-request streams); percentiles are computed on demand
    with the nearest-rank rule.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def percentile(self, p: float) -> float:
        """The nearest-rank p-th percentile (p in [0, 100])."""
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def summary(self) -> dict:
        """The JSON-ready digest used by exports and rendering."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


def counters() -> dict[str, float]:
    """A snapshot of the calling thread's counters."""
    return dict(_state().counters)


def gauges() -> dict[str, float]:
    """A snapshot of the calling thread's gauges."""
    return dict(_state().gauges)


def histograms() -> dict[str, Histogram]:
    """A snapshot of the histogram registry (live objects, treat read-only)."""
    return dict(_state().histograms)
