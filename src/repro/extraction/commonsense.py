"""Commonsense knowledge acquisition (properties, parts, shapes).

Beyond facts about named entities, the tutorial calls out the orthogonal
dimension of commonsense: relations between concepts (mouthpiece partOf
clarinet), properties every child knows (apples can be red, green, juicy —
but not fast or funny), and plausibility filtering.  This module is
self-contained: a gold concept model, a seeded sentence generator that
renders it into text with occasional implausible noise, and the
acquisition method — pattern harvesting with support counting and a
property-plausibility filter — that E-commonsense-style evaluations score.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from ..kb import Entity, Relation, Triple, TripleStore

HAS_PROPERTY = Relation("cs:hasProperty")
PART_OF = Relation("cs:partOf")
HAS_SHAPE = Relation("cs:hasShape")


def concept(name: str) -> Entity:
    """A concept entity in the ``concept:`` namespace."""
    return Entity(f"concept:{name}")


#: The gold commonsense model: concept -> plausible property adjectives.
GOLD_PROPERTIES: dict[str, tuple[str, ...]] = {
    "apple": ("red", "green", "juicy", "sweet", "sour"),
    "lemon": ("yellow", "sour", "juicy"),
    "snow": ("white", "cold", "soft"),
    "fire": ("hot", "bright", "dangerous"),
    "car": ("fast", "loud", "expensive"),
    "clarinet": ("loud", "wooden"),
}

#: Properties that are *implausible* for each concept (the noise pool).
IMPLAUSIBLE_PROPERTIES: dict[str, tuple[str, ...]] = {
    "apple": ("fast", "funny", "loud"),
    "lemon": ("funny", "wooden"),
    "snow": ("juicy", "funny"),
    "fire": ("sweet", "sour"),
    "car": ("juicy", "sweet"),
    "clarinet": ("juicy", "funny"),
}

#: The gold part-whole model: part -> whole.
GOLD_PARTS: dict[str, str] = {
    "mouthpiece": "clarinet",
    "wheel": "car",
    "engine": "car",
    "wing": "bird",
    "screen": "smartphone",
    "battery": "smartphone",
}

#: The gold shape model.
GOLD_SHAPES: dict[str, str] = {
    "clarinet": "cylindrical",
    "wheel": "round",
    "apple": "round",
}

_PROPERTY_TEMPLATES = (
    "{c}s are often {p}.",
    "{c}s can be {p}.",
    "Most {c}s are {p}.",
    "A {c} is usually {p}.",
)
_PART_TEMPLATES = (
    "The {part} is part of a {whole}.",
    "Every {whole} has a {part}.",
    "A {whole} contains a {part}.",
)
_SHAPE_TEMPLATES = (
    "A {c} is {s} in shape.",
    "The {c} has a {s} shape.",
)


def gold_store() -> TripleStore:
    """The gold commonsense triples (plausible statements only)."""
    store = TripleStore()
    for name, properties in GOLD_PROPERTIES.items():
        for prop in properties:
            store.add(Triple(concept(name), HAS_PROPERTY, concept(prop)))
    for part, whole in GOLD_PARTS.items():
        store.add(Triple(concept(part), PART_OF, concept(whole)))
    for name, shape in GOLD_SHAPES.items():
        store.add(Triple(concept(name), HAS_SHAPE, concept(shape)))
    return store


def generate_sentences(
    seed: int = 5,
    repetitions: int = 4,
    noise_rate: float = 0.15,
) -> list[str]:
    """Render the gold model into sentences, with implausible noise mixed in.

    Each gold statement appears ``repetitions`` times (spread over template
    variants); implausible statements appear once each with probability
    proportional to ``noise_rate`` — low support, which is exactly what the
    acquisition filter exploits.
    """
    rng = random.Random(seed)
    sentences: list[str] = []
    for name, properties in GOLD_PROPERTIES.items():
        for prop in properties:
            for __ in range(repetitions):
                template = rng.choice(_PROPERTY_TEMPLATES)
                sentences.append(template.format(c=name, p=prop))
    for part, whole in GOLD_PARTS.items():
        for __ in range(repetitions):
            template = rng.choice(_PART_TEMPLATES)
            sentences.append(template.format(part=part, whole=whole))
    for name, shape in GOLD_SHAPES.items():
        for __ in range(repetitions):
            template = rng.choice(_SHAPE_TEMPLATES)
            sentences.append(template.format(c=name, s=shape))
    for name, properties in IMPLAUSIBLE_PROPERTIES.items():
        for prop in properties:
            if rng.random() < noise_rate * 4:
                template = rng.choice(_PROPERTY_TEMPLATES)
                sentences.append(template.format(c=name, p=prop))
    rng.shuffle(sentences)
    return sentences


# --------------------------------------------------------------- acquisition

import re

_PROPERTY_RE = re.compile(
    r"^(?:Most )?(?:A )?([a-z]+?)s? (?:is usually|are often|can be|are) ([a-z]+)\.$",
    re.IGNORECASE,
)
_PART_RE = re.compile(
    r"^(?:The ([a-z]+) is part of a ([a-z]+)|Every ([a-z]+) has a ([a-z]+)|A ([a-z]+) contains a ([a-z]+))\.$",
    re.IGNORECASE,
)
_SHAPE_RE = re.compile(
    r"^(?:A ([a-z]+) is ([a-z]+) in shape|The ([a-z]+) has a ([a-z]+) shape)\.$",
    re.IGNORECASE,
)


@dataclass(slots=True)
class AcquisitionReport:
    """Support statistics of one harvesting run."""

    statements: int = 0
    kept: int = 0
    filtered_low_support: int = 0


def acquire(
    sentences: Iterable[str],
    min_support: int = 2,
) -> tuple[TripleStore, AcquisitionReport]:
    """Harvest commonsense triples by pattern matching + support filtering.

    Statements seen fewer than ``min_support`` times are rejected — the
    plausibility filter that drops the rare implausible noise while keeping
    oft-repeated truths.
    """
    counts: Counter = Counter()
    report = AcquisitionReport()
    for sentence in sentences:
        triple_key = _parse_statement(sentence)
        if triple_key is not None:
            counts[triple_key] += 1
            report.statements += 1
    store = TripleStore()
    for (subject, relation, obj), support in counts.items():
        if support < min_support:
            report.filtered_low_support += 1
            continue
        confidence = min(0.5 + 0.1 * support, 0.99)
        store.add(Triple(subject, relation, obj, confidence=confidence))
        report.kept += 1
    return store, report


def _parse_statement(sentence: str):
    match = _SHAPE_RE.match(sentence)
    if match:
        groups = [g for g in match.groups() if g]
        name, shape = groups[0].lower(), groups[1].lower()
        return (concept(name), HAS_SHAPE, concept(shape))
    match = _PART_RE.match(sentence)
    if match:
        groups = [g for g in match.groups() if g]
        first, second = groups[0].lower(), groups[1].lower()
        if sentence.lower().startswith(("every", "a ")):
            # "Every whole has a part" / "A whole contains a part".
            return (concept(second), PART_OF, concept(first))
        return (concept(first), PART_OF, concept(second))
    match = _PROPERTY_RE.match(sentence)
    if match:
        name, prop = match.group(1).lower(), match.group(2).lower()
        return (concept(name), HAS_PROPERTY, concept(prop))
    return None
