"""The shared data model of all fact extractors.

Every extractor — surface patterns, Snowball, dependency paths, distant
supervision, infobox harvesting — emits :class:`Candidate` facts: entity-
resolved (s, p, o) triples with a confidence, the extractor's name, and the
evidence sentence.  Candidates from different extractors about the same
fact are merged by noisy-or, which is how ensemble confidence is usually
combined before reasoning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..kb import Entity, Relation, Term, TimeSpan, Triple, TripleStore
from ..obs import core as _obs


@dataclass(frozen=True, slots=True)
class Candidate:
    """One extracted fact candidate with provenance."""

    subject: Entity
    relation: Relation
    object: Term
    confidence: float
    extractor: str
    evidence: str = ""
    scope: Optional[TimeSpan] = None

    def key(self) -> tuple[Entity, Relation, Term]:
        """The (s, p, o) identity of the underlying fact."""
        return (self.subject, self.relation, self.object)

    def to_triple(self) -> Triple:
        """A KB triple carrying the confidence and extractor provenance."""
        return Triple(
            self.subject,
            self.relation,
            self.object,
            confidence=min(max(self.confidence, 0.0), 1.0),
            source=self.extractor,
            scope=self.scope,
        )


def merge_candidates(candidates: Iterable[Candidate]) -> dict[tuple, float]:
    """Noisy-or combination of candidate confidences per fact key."""
    combined: dict[tuple, float] = {}
    for candidate in candidates:
        key = candidate.key()
        previous = combined.get(key, 0.0)
        combined[key] = 1.0 - (1.0 - previous) * (1.0 - candidate.confidence)
    return combined


def candidates_to_store(
    candidates: Iterable[Candidate], min_confidence: float = 0.0
) -> TripleStore:
    """A store of noisy-or-merged candidates above a confidence threshold.

    Multiple witnesses of the same fact (several sentences, several
    extractors) raise the merged confidence; the first witness supplies the
    provenance string.
    """
    store = TripleStore()
    first_witness: dict[tuple, Candidate] = {}
    scope_of: dict[tuple, TimeSpan] = {}
    all_candidates = list(candidates)
    with _obs.span("extract.merge") as merging:
        for candidate in all_candidates:
            first_witness.setdefault(candidate.key(), candidate)
            if candidate.scope is not None and candidate.key() not in scope_of:
                scope_of[candidate.key()] = candidate.scope
        dropped = 0
        for key, confidence in merge_candidates(all_candidates).items():
            if confidence < min_confidence:
                dropped += 1
                continue
            subject, relation, obj = key
            store.add(
                Triple(
                    subject,
                    relation,
                    obj,
                    confidence=min(confidence, 1.0),
                    source=first_witness[key].extractor,
                    scope=scope_of.get(key),
                )
            )
        if _obs.ENABLED:
            merging.add("candidates", len(all_candidates))
            merging.add("facts", len(store))
            merging.add("below_threshold", dropped)
            _obs.count("extract.candidates", len(all_candidates))
            _obs.count("extract.merged_facts", len(store))
            for extractor_name, witnesses in _witness_counts(all_candidates).items():
                _obs.count(f"extract.candidates.{extractor_name}", witnesses)
    return store


def _witness_counts(candidates: list[Candidate]) -> dict[str, int]:
    """How many candidates each extractor contributed."""
    by_extractor: dict[str, int] = {}
    for candidate in candidates:
        by_extractor[candidate.extractor] = (
            by_extractor.get(candidate.extractor, 0) + 1
        )
    return by_extractor
