"""The shared data model of all fact extractors.

Every extractor — surface patterns, Snowball, dependency paths, distant
supervision, infobox harvesting — emits :class:`Candidate` facts: entity-
resolved (s, p, o) triples with a confidence, the extractor's name, and the
evidence sentence.  Candidates from different extractors about the same
fact are merged by noisy-or, which is how ensemble confidence is usually
combined before reasoning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..kb import Entity, Relation, Term, TimeSpan, Triple, TripleStore
from ..obs import core as _obs


@dataclass(frozen=True, slots=True)
class Candidate:
    """One extracted fact candidate with provenance."""

    subject: Entity
    relation: Relation
    object: Term
    confidence: float
    extractor: str
    evidence: str = ""
    scope: Optional[TimeSpan] = None

    def key(self) -> tuple[Entity, Relation, Term]:
        """The (s, p, o) identity of the underlying fact."""
        return (self.subject, self.relation, self.object)

    def to_triple(self) -> Triple:
        """A KB triple carrying the confidence and extractor provenance."""
        return Triple(
            self.subject,
            self.relation,
            self.object,
            confidence=min(max(self.confidence, 0.0), 1.0),
            source=self.extractor,
            scope=self.scope,
        )


def merge_candidates(candidates: Iterable[Candidate]) -> dict[tuple, float]:
    """Noisy-or combination of candidate confidences per fact key.

    The per-key confidences are folded in sorted order, so every permutation
    of the same candidate multiset yields bit-identical floats — float
    multiplication is commutative but not associative, and serial, sharded,
    and worker-pool extraction deliver candidates in different orders.
    """
    grouped: dict[tuple, list[float]] = {}
    for candidate in candidates:
        grouped.setdefault(candidate.key(), []).append(candidate.confidence)
    combined: dict[tuple, float] = {}
    for key, confidences in grouped.items():
        miss = 1.0
        for confidence in sorted(confidences):
            miss *= 1.0 - confidence
        combined[key] = 1.0 - miss
    return combined


def _witness_rank(candidate: Candidate) -> tuple:
    """Sort key electing a fact's provenance witness: highest confidence
    first, ties broken by (extractor, evidence) lexicographically."""
    return (-candidate.confidence, candidate.extractor, candidate.evidence)


def _scope_rank(candidate: Candidate) -> tuple:
    """Like :func:`_witness_rank`, with the scope as a last tie-breaker so
    equal-provenance witnesses with different scopes still elect one."""
    return _witness_rank(candidate) + (str(candidate.scope),)


def candidates_to_store(
    candidates: Iterable[Candidate], min_confidence: float = 0.0
) -> TripleStore:
    """A store of noisy-or-merged candidates above a confidence threshold.

    Multiple witnesses of the same fact (several sentences, several
    extractors) raise the merged confidence.  Provenance and temporal scope
    are elected deterministically and order-independently — the
    highest-confidence witness wins, ties broken by (extractor, evidence)
    lexicographically — and triples are added in canonical key order, so
    serial, sharded, and worker-pool builds produce byte-identical stores
    regardless of candidate arrival order.
    """
    from ..determinism.stable import stable_str_key

    store = TripleStore()
    witness_of: dict[tuple, Candidate] = {}
    scope_of: dict[tuple, Candidate] = {}
    all_candidates = list(candidates)
    with _obs.span("extract.merge") as merging:
        for candidate in all_candidates:
            key = candidate.key()
            best = witness_of.get(key)
            if best is None or _witness_rank(candidate) < _witness_rank(best):
                witness_of[key] = candidate
            if candidate.scope is not None:
                scoped = scope_of.get(key)
                if scoped is None or _scope_rank(candidate) < _scope_rank(scoped):
                    scope_of[key] = candidate
        dropped = 0
        merged = merge_candidates(all_candidates)
        for key in sorted(merged, key=stable_str_key):
            confidence = merged[key]
            if confidence < min_confidence:
                dropped += 1
                continue
            subject, relation, obj = key
            scoped = scope_of.get(key)
            store.add(
                Triple(
                    subject,
                    relation,
                    obj,
                    confidence=min(confidence, 1.0),
                    source=witness_of[key].extractor,
                    scope=scoped.scope if scoped is not None else None,
                )
            )
        if _obs.ENABLED:
            merging.add("candidates", len(all_candidates))
            merging.add("facts", len(store))
            merging.add("below_threshold", dropped)
            _obs.count("extract.candidates", len(all_candidates))
            _obs.count("extract.merged_facts", len(store))
            for extractor_name, witnesses in _witness_counts(all_candidates).items():
                _obs.count(f"extract.candidates.{extractor_name}", witnesses)
    return store


def _witness_counts(candidates: list[Candidate]) -> dict[str, int]:
    """How many candidates each extractor contributed."""
    by_extractor: dict[str, int] = {}
    for candidate in candidates:
        by_extractor[candidate.extractor] = (
            by_extractor.get(candidate.extractor, 0) + 1
        )
    return by_extractor
