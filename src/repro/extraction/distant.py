"""Distant supervision (the statistical-learning family).

Align a seed knowledge base with text: every occurrence whose entity pair
is a known fact becomes a positive training example for that relation;
pairs of seed entities with no known relation become NONE examples.  A
multinomial Naive Bayes classifier over context features (middle tokens,
dependency path, flanking words) then labels *every* occurrence — including
phrasings never seen with seeds, which is where the recall beyond
Snowball-style bootstrapping comes from (E3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..kb import Entity, Relation, TripleStore
from ..ml.naive_bayes import MultinomialNaiveBayes
from .base import Candidate
from .occurrences import Occurrence

#: The "no relation between this pair" label.
NONE_LABEL = "NONE"


def occurrence_features(occurrence: Occurrence, inverse: bool) -> list[str]:
    """The feature bag of one (occurrence, direction) example."""
    features = [f"dir={'inv' if inverse else 'fwd'}"]
    middle = occurrence.middle
    features.extend(f"mid={token}" for token in middle)
    if middle:
        features.append("midseq=" + "_".join(middle))
    path = occurrence.path(inverse)
    if path:
        features.append(f"path={path}")
    if occurrence.left:
        features.append(f"left={occurrence.left}")
    if occurrence.right:
        features.append(f"right={occurrence.right}")
    features.append(f"gap={min(len(middle), 6)}")
    return features


@dataclass(slots=True)
class TrainingSummary:
    """How the distant alignment labeled the training occurrences."""

    positives: int = 0
    negatives: int = 0
    skipped: int = 0


class DistantSupervisionExtractor:
    """A seed-KB-supervised relation classifier over occurrences."""

    name = "distant-supervision"

    def __init__(
        self,
        seed_kb: TripleStore,
        relations: Iterable[Relation],
        min_posterior: float = 0.6,
        negative_cap: int = 4000,
    ) -> None:
        self.seed_kb = seed_kb
        self.relations = list(relations)
        self.min_posterior = min_posterior
        self.negative_cap = negative_cap
        self._model = MultinomialNaiveBayes(alpha=0.2)
        self.summary = TrainingSummary()
        self._trained = False

    def train(self, occurrences: list[Occurrence]) -> TrainingSummary:
        """Label occurrences by seed-KB alignment and fit the classifier."""
        seed_entities = {
            e for r in self.relations for t in self.seed_kb.match(predicate=r)
            for e in (t.subject, t.object) if isinstance(e, Entity)
        }
        examples: list[list[str]] = []
        labels: list[str] = []
        negatives = 0
        for occurrence in occurrences:
            labeled = False
            for inverse in (False, True):
                subject, obj = occurrence.pair(inverse)
                for relation in self.relations:
                    if self.seed_kb.contains_fact(subject, relation, obj):
                        examples.append(occurrence_features(occurrence, inverse))
                        labels.append(f"{relation.id}|{'inv' if inverse else 'fwd'}")
                        self.summary.positives += 1
                        labeled = True
            if labeled:
                continue
            both_known = (
                occurrence.first in seed_entities
                and occurrence.second in seed_entities
            )
            if both_known and negatives < self.negative_cap:
                examples.append(occurrence_features(occurrence, inverse=False))
                labels.append(NONE_LABEL)
                negatives += 1
                self.summary.negatives += 1
            else:
                self.summary.skipped += 1
        if not examples:
            raise ValueError("distant alignment produced no training examples")
        self._model.fit(examples, labels)
        self._trained = True
        return self.summary

    def extract(self, occurrences: list[Occurrence]) -> list[Candidate]:
        """Classify every occurrence; keep confident non-NONE predictions."""
        if not self._trained:
            raise RuntimeError("call train() before extract()")
        candidates = []
        for occurrence in occurrences:
            posterior = self._model.predict_proba(
                occurrence_features(occurrence, inverse=False)
            )
            label = max(posterior, key=lambda l: (posterior[l], str(l)))
            probability = posterior[label]
            if label == NONE_LABEL or probability < self.min_posterior:
                # Try the inverse reading before giving up ("Y ... by X").
                posterior = self._model.predict_proba(
                    occurrence_features(occurrence, inverse=True)
                )
                label = max(posterior, key=lambda l: (posterior[l], str(l)))
                probability = posterior[label]
                if label == NONE_LABEL or probability < self.min_posterior:
                    continue
            relation_id, __, direction = label.partition("|")
            subject, obj = occurrence.pair(inverse=direction == "inv")
            candidates.append(
                Candidate(
                    subject=subject,
                    relation=Relation(relation_id),
                    object=obj,
                    confidence=probability,
                    extractor=self.name,
                    evidence=occurrence.sentence,
                )
            )
        return candidates
