"""NELL-style never-ending, coupled bootstrap learning.

NELL (Carlson et al., AAAI 2010 — reference [5] of the tutorial) runs
extraction as an endless loop: induce patterns from the current KB,
extract candidates, promote the most confident ones into the KB, repeat —
with the crucial twist of *coupling*: candidate facts must respect the
ontology (type signatures, functionality, relation mutual exclusion)
before promotion.  Coupling is what keeps the loop from *semantic drift* —
the gradual poisoning of the KB by plausible-looking noise that then
generates worse patterns.

E13 reproduces the canonical NELL plot: cumulative precision of the
promoted KB per iteration, with coupling on vs off, on a corpus with
injected false statements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..kb import Entity, Relation, Taxonomy, Triple, TripleStore
from .occurrences import Occurrence
from .snowball import SnowballExtractor


@dataclass(slots=True)
class IterationRecord:
    """What one never-ending-learning iteration did."""

    iteration: int
    promoted: int
    rejected_by_type: int = 0
    rejected_by_functionality: int = 0
    rejected_by_exclusion: int = 0


class NeverEndingLearner:
    """The coupled bootstrap loop over a fixed occurrence corpus."""

    def __init__(
        self,
        relations: Iterable[Relation],
        seed_kb: TripleStore,
        taxonomy: Taxonomy,
        use_coupling: bool = True,
        promote_per_relation: int = 8,
        min_pattern_support: int = 2,
        min_confidence: float = 0.6,
    ) -> None:
        self.relations = list(relations)
        self.kb = seed_kb.copy()
        self.taxonomy = taxonomy
        self.use_coupling = use_coupling
        self.promote_per_relation = promote_per_relation
        self.min_pattern_support = min_pattern_support
        self.min_confidence = min_confidence
        self.history: list[IterationRecord] = []
        self.promoted: TripleStore = TripleStore()

    # ---------------------------------------------------------------- loop

    def run(self, occurrences: list[Occurrence], iterations: int = 5) -> TripleStore:
        """Run the loop; returns the facts promoted beyond the seeds."""
        for iteration in range(1, iterations + 1):
            record = IterationRecord(iteration=iteration, promoted=0)
            for relation in self.relations:
                self._iterate_relation(relation, occurrences, record)
            self.history.append(record)
            if record.promoted == 0:
                break
        return self.promoted

    def _iterate_relation(
        self, relation: Relation, occurrences: list[Occurrence], record: IterationRecord
    ) -> None:
        seeds = [
            (t.subject, t.object)
            for t in self.kb.match(predicate=relation)
            if isinstance(t.object, Entity)
        ]
        if len(seeds) < 2:
            return
        learner = SnowballExtractor(
            relation,
            seeds,
            functional=self.taxonomy.is_functional(relation),
            min_support=self.min_pattern_support,
            min_confidence=self.min_confidence,
            max_iterations=1,
        )
        candidates = learner.run(occurrences)
        ranked = sorted(
            candidates, key=lambda c: (-c.confidence, c.subject.id, str(c.object))
        )
        promoted_now = 0
        for candidate in ranked:
            if promoted_now >= self.promote_per_relation:
                break
            if self.kb.contains_fact(candidate.subject, relation, candidate.object):
                continue
            if self.use_coupling and not self._coupled_ok(candidate, record):
                continue
            triple = Triple(
                candidate.subject,
                relation,
                candidate.object,
                confidence=candidate.confidence,
                source=f"nell-iter-{record.iteration}",
            )
            self.kb.add(triple)
            self.promoted.add(triple)
            promoted_now += 1
            record.promoted += 1

    # ------------------------------------------------------------- coupling

    def _coupled_ok(self, candidate, record: IterationRecord) -> bool:
        relation = candidate.relation
        subject, obj = candidate.subject, candidate.object
        # Type signature coupling.
        if not self._type_compatible(subject, self.taxonomy.domain_of(relation)):
            record.rejected_by_type += 1
            return False
        if isinstance(obj, Entity) and not self._type_compatible(
            obj, self.taxonomy.range_of(relation)
        ):
            record.rejected_by_type += 1
            return False
        # Functionality coupling: one object per subject.
        if self.taxonomy.is_functional(relation):
            existing = self.kb.objects(subject, relation)
            if existing and obj not in existing:
                record.rejected_by_functionality += 1
                return False
        # Relation mutual exclusion on the same pair.
        for other in self.relations:
            if other == relation:
                continue
            if self.taxonomy.are_disjoint_relations(relation, other) and (
                self.kb.contains_fact(subject, other, obj)
            ):
                record.rejected_by_exclusion += 1
                return False
        return True

    def _type_compatible(self, entity: Entity, expected: Optional[Entity]) -> bool:
        if expected is None:
            return True
        types = self.taxonomy.types_of(entity)
        if not types:
            return True  # open world: unknown entities pass
        if self.taxonomy.is_instance_of(entity, expected):
            return True
        return not any(
            self.taxonomy.are_disjoint_classes(t, expected) for t in types
        )


def cumulative_precision(promoted: TripleStore, truth: TripleStore) -> float:
    """Fraction of promoted facts that are true in the reference KB."""
    triples = list(promoted)
    if not triples:
        return 1.0
    correct = sum(
        1 for t in triples if truth.contains_fact(t.subject, t.predicate, t.object)
    )
    return correct / len(triples)
