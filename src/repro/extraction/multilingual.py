"""Multilingual knowledge: label harvesting and cross-lingual alignment.

Entity names in different languages (tutorial section 3) come from two
sources: *interlanguage links* between language editions (high precision,
incomplete) and *transliteration similarity* between titles (noisy, full
coverage).  E8 measures the three strategies — links only, strings only,
combined — on the synthetic encyclopedia, whose interlanguage links have a
controlled dropout rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kb import Triple, TripleStore, ns, string_literal
from ..corpus.wiki import Wiki
from ..linkage.strsim import edit_similarity, strip_language_suffix


def harvest_labels(wiki: Wiki) -> TripleStore:
    """rdfs:label triples (all languages) from pages and their links."""
    store = TripleStore()
    for page in wiki.pages.values():
        store.add(
            Triple(page.entity, ns.LABEL, string_literal(page.title, "en"),
                   confidence=1.0, source=page.title)
        )
        for lang, title in page.interlanguage.items():
            store.add(
                Triple(page.entity, ns.LABEL, string_literal(title, lang),
                       confidence=0.95, source=page.title)
            )
    return store


@dataclass(frozen=True, slots=True)
class Alignment:
    """One proposed cross-lingual title match."""

    english: str
    foreign: str
    method: str       # "link" | "string"
    score: float


def align_by_links(wiki: Wiki, lang: str) -> list[Alignment]:
    """Alignments read directly off the interlanguage links."""
    alignments = []
    for page in wiki.pages.values():
        foreign = page.interlanguage.get(lang)
        if foreign is not None:
            alignments.append(Alignment(page.title, foreign, "link", 1.0))
    return alignments


def align_by_strings(
    english_titles: list[str],
    foreign_titles: list[str],
    min_similarity: float = 0.55,
) -> list[Alignment]:
    """Greedy one-to-one alignment by transliteration similarity.

    Similarity is edit similarity after stripping the language-typical
    suffix; each title is used at most once, best pairs first.
    """
    scored = []
    for english in english_titles:
        for foreign in foreign_titles:
            score = edit_similarity(
                english.lower(), strip_language_suffix(foreign.lower())
            )
            if score >= min_similarity:
                scored.append((score, english, foreign))
    scored.sort(key=lambda item: (-item[0], item[1], item[2]))
    used_english: set[str] = set()
    used_foreign: set[str] = set()
    alignments = []
    for score, english, foreign in scored:
        if english in used_english or foreign in used_foreign:
            continue
        used_english.add(english)
        used_foreign.add(foreign)
        alignments.append(Alignment(english, foreign, "string", score))
    return alignments


def align_combined(
    wiki: Wiki,
    lang: str,
    foreign_titles: list[str],
    min_similarity: float = 0.55,
) -> list[Alignment]:
    """Links where available; string alignment for the uncovered remainder."""
    link_alignments = align_by_links(wiki, lang)
    covered_english = {a.english for a in link_alignments}
    covered_foreign = {a.foreign for a in link_alignments}
    remaining_english = [t for t in wiki.pages if t not in covered_english]
    remaining_foreign = [t for t in foreign_titles if t not in covered_foreign]
    return link_alignments + align_by_strings(
        remaining_english, remaining_foreign, min_similarity
    )


def merge_alignments_into_labels(
    wiki: Wiki, alignments: list[Alignment], lang: str
) -> TripleStore:
    """Turn title alignments into label triples for the KB."""
    store = TripleStore()
    for alignment in alignments:
        page = wiki.pages.get(alignment.english)
        if page is None:
            continue
        store.add(
            Triple(
                page.entity,
                ns.LABEL,
                string_literal(alignment.foreign, lang),
                confidence=alignment.score,
                source=alignment.method,
            )
        )
    return store
