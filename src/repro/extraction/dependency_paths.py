"""Dependency-path fact extraction (the computational-linguistics family).

Instead of flat token sequences, this extractor keys on the lexicalized
shortest path between the two mention heads in the dependency parse.  Paths
abstract over word order, so passives and inversions ("Y was founded by X",
"the capital of Y is X") map to stable signatures that surface patterns
miss — the recall advantage E3 demonstrates.

Paths are *learned* from a seed knowledge base (distant alignment): every
occurrence whose pair is a known fact votes for (path -> relation,
direction); paths also accumulate negative votes from pairs known to
participate in no relation, giving a precision estimate per path.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

from ..kb import Relation, TripleStore
from .base import Candidate
from .occurrences import Occurrence


@dataclass(frozen=True, slots=True)
class PathRule:
    """A learned path -> relation mapping."""

    path: str
    relation: Relation
    inverse: bool
    confidence: float
    support: int


class DependencyPathExtractor:
    """Learn path rules from a seed KB, then extract with them."""

    name = "dependency-paths"

    def __init__(
        self,
        seed_kb: TripleStore,
        relations: Iterable[Relation],
        min_support: int = 2,
        min_confidence: float = 0.6,
    ) -> None:
        self.seed_kb = seed_kb
        self.relations = list(relations)
        self.min_support = min_support
        self.min_confidence = min_confidence
        self.rules: list[PathRule] = []

    def learn(self, occurrences: list[Occurrence]) -> list[PathRule]:
        """Induce path rules by aligning occurrences with the seed KB.

        A (path, relation, direction) vote is *positive* when the pair is a
        known fact, and *negative* when the seed KB knows the subject under
        that relation with only different objects (the Snowball-style
        conflict reading — unseeded true pairs are simply uninformative,
        not negatives).
        """
        positive: dict[tuple[str, Relation, bool], int] = defaultdict(int)
        negative: dict[tuple[str, Relation, bool], int] = defaultdict(int)
        for occurrence in occurrences:
            for inverse in (False, True):
                path = occurrence.path(inverse)
                if not path:
                    continue
                subject, obj = occurrence.pair(inverse)
                for relation in self.relations:
                    key = (path, relation, inverse)
                    if self.seed_kb.contains_fact(subject, relation, obj):
                        positive[key] += 1
                    else:
                        known_objects = self.seed_kb.objects(subject, relation)
                        if known_objects and obj not in known_objects:
                            negative[key] += 1
        rules = []
        for key, support in positive.items():
            if support < self.min_support:
                continue
            path, relation, inverse = key
            confidence = support / (support + negative[key])
            if confidence >= self.min_confidence:
                rules.append(PathRule(path, relation, inverse, confidence, support))
        rules.sort(key=lambda r: (-r.confidence, -r.support, r.path))
        self.rules = rules
        return rules

    def extract(self, occurrences: list[Occurrence]) -> list[Candidate]:
        """Apply the learned path rules."""
        by_path: dict[tuple[str, bool], list[PathRule]] = defaultdict(list)
        for rule in self.rules:
            by_path[(rule.path, rule.inverse)].append(rule)
        candidates = []
        for occurrence in occurrences:
            for inverse in (False, True):
                path = occurrence.path(inverse)
                if not path:
                    continue
                for rule in by_path.get((path, inverse), ()):
                    subject, obj = occurrence.pair(inverse)
                    candidates.append(
                        Candidate(
                            subject=subject,
                            relation=rule.relation,
                            object=obj,
                            confidence=rule.confidence,
                            extractor=self.name,
                            evidence=occurrence.sentence,
                        )
                    )
        return candidates
