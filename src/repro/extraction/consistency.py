"""Consistency reasoning over noisy extractions (SOFIE-style MaxSat).

The logical end of the tutorial's extraction spectrum: take the candidate
facts (soft, weighted by extraction confidence) and the schema's integrity
constraints (hard), and find the most plausible consistent subset via
weighted MaxSat.  Constraint families, individually toggleable for the E4
ablation:

* **functionality** — a functional relation admits one object per subject;
* **type signatures** — subject/object must be instances of the declared
  domain/range (checked against a type oracle, typically the harvested
  taxonomy);
* **relation disjointness** — declared mutually-exclusive relation pairs
  cannot share an (s, o) pair.

Solving is component-decomposed (:mod:`repro.reasoning.decompose`): the
clause graph shatters along the constraint locality into many small
independent components, which ``workers``/``backend`` fan out over the
execution backends — the cleaned KB is byte-identical for every worker
count because component seeds and the merge order derive from component
content only.  The reasoner resolves its backend once at construction, so
repeated ``clean()`` calls reuse one persistent worker pool (release it
with :meth:`ConsistencyReasoner.close` or the context manager), and
``schedule="steal"`` dispatches the heaviest component batches first.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Union

from ..bigdata.backends import ExecutionBackend, get_backend
from ..kb import Entity, Relation, Taxonomy, Triple, TripleStore
from ..obs import core as _obs
from ..reasoning.decompose import ComponentCache, decompose, solve_decomposed
from ..reasoning.maxsat import WeightedMaxSat

#: A fact variable: the (s, p, o) key.
FactKey = tuple


@dataclass(slots=True)
class ConsistencyReport:
    """What the reasoner did."""

    candidates: int = 0
    accepted: int = 0
    rejected: int = 0
    functional_clauses: int = 0
    type_clauses: int = 0
    disjoint_clauses: int = 0
    soft_cost: float = 0.0
    hard_violations: int = 0
    components: int = 0
    largest_component: int = 0
    trivial_vars: int = 0
    #: Components replayed from a ComponentCache instead of re-solved
    #: (the incremental build's component-scoped re-reasoning; 0 when no
    #: cache was supplied).
    cached_components: int = 0


class ConsistencyReasoner:
    """Clean a candidate store against a schema with weighted MaxSat."""

    def __init__(
        self,
        taxonomy: Taxonomy,
        use_functionality: bool = True,
        use_types: bool = True,
        use_disjointness: bool = True,
        min_confidence_weight: float = 0.05,
        workers: int = 0,
        backend: Union[str, ExecutionBackend, None] = "auto",
        schedule: str = "static",
        component_cache: "ComponentCache | None" = None,
    ) -> None:
        self.taxonomy = taxonomy
        self.use_functionality = use_functionality
        self.use_types = use_types
        self.use_disjointness = use_disjointness
        self.min_confidence_weight = min_confidence_weight
        self.workers = workers
        self.schedule = schedule
        # Optional content-addressed solve cache: identical components
        # replay their stored outcome instead of searching again, which is
        # what lets an incremental build re-solve only the components its
        # delta touched.  Results are byte-identical either way.
        self.component_cache = component_cache
        # Resolve the backend once: every clean() call of this reasoner
        # reuses the same (lazily created, persistent) worker pool instead
        # of spinning one up per call.  A caller-supplied instance stays
        # caller-owned; a string spec is owned — and closed — by us.
        self.backend = get_backend(backend, workers)
        self._owns_backend = not isinstance(backend, ExecutionBackend)

    def close(self) -> None:
        """Release the reasoner's worker pool (if it owns one)."""
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "ConsistencyReasoner":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def ground(
        self, candidates: TripleStore
    ) -> tuple[WeightedMaxSat, dict[FactKey, Triple], ConsistencyReport]:
        """Ground ``candidates`` into a weighted MaxSat instance.

        Returns the instance, the canonical key -> triple map, and a
        report carrying the per-family clause counts.  Grounding happens
        in canonical (s, p, o) order so clause indexes — and therefore the
        WalkSAT trajectory — are the same no matter how the candidate
        store was assembled.
        """
        report = ConsistencyReport(candidates=len(candidates))
        problem = WeightedMaxSat()
        triples: dict[FactKey, Triple] = {
            triple.spo(): triple for triple in candidates
        }
        triples = {key: triples[key] for key in sorted(triples, key=repr)}
        for key, triple in triples.items():
            weight = max(triple.confidence, self.min_confidence_weight)
            problem.add_soft_unit(key, True, weight)

        with _obs.span("consistency.ground"):
            if self.use_functionality:
                report.functional_clauses = self._add_functionality(
                    problem, triples
                )
            if self.use_types:
                report.type_clauses = self._add_types(problem, triples)
            if self.use_disjointness:
                report.disjoint_clauses = self._add_disjointness(
                    problem, triples
                )
        return problem, triples, report

    def clean(
        self, candidates: TripleStore, seed: int = 0
    ) -> tuple[TripleStore, ConsistencyReport]:
        """Return the accepted subset of ``candidates`` plus a report."""
        with _obs.span("consistency.clean") as cleaning:
            problem, triples, report = self.ground(candidates)

            with _obs.span("consistency.solve") as solving:
                with _obs.span("maxsat.decompose"):
                    decomposition = decompose(problem)
                report.components = len(decomposition.components)
                report.largest_component = decomposition.largest_component
                report.trivial_vars = len(decomposition.trivial)
                hits_before = (
                    self.component_cache.hits if self.component_cache else 0
                )
                result = solve_decomposed(
                    problem,
                    seed=seed,
                    decomposition=decomposition,
                    backend=self.backend,
                    workers=self.workers,
                    schedule=self.schedule,
                    cache=self.component_cache,
                )
                if self.component_cache is not None:
                    report.cached_components = (
                        self.component_cache.hits - hits_before
                    )
                solving.add("components", report.components)
                solving.add("largest_component", report.largest_component)
                solving.add("trivial_vars", report.trivial_vars)
            report.soft_cost = result.soft_cost
            report.hard_violations = result.hard_violations
            accepted = TripleStore()
            for key, triple in triples.items():
                if result.assignment.get(key, False):
                    accepted.add(triple)
                    report.accepted += 1
                else:
                    report.rejected += 1
            if _obs.ENABLED:
                cleaning.add("candidates", report.candidates)
                cleaning.add("accepted", report.accepted)
                cleaning.add("rejected", report.rejected)
                cleaning.add("clauses.functional", report.functional_clauses)
                cleaning.add("clauses.type", report.type_clauses)
                cleaning.add("clauses.disjoint", report.disjoint_clauses)
                _obs.count(
                    "consistency.clauses.functional", report.functional_clauses
                )
                _obs.count("consistency.clauses.type", report.type_clauses)
                _obs.count(
                    "consistency.clauses.disjoint", report.disjoint_clauses
                )
                _obs.count("consistency.rejected", report.rejected)
        return accepted, report

    # --------------------------------------------------------- constraints

    def _add_functionality(self, problem: WeightedMaxSat, triples) -> int:
        """!(x & y) for same-subject facts of a functional relation."""
        clauses = 0
        by_subject_relation: dict[tuple, list[FactKey]] = defaultdict(list)
        for key in triples:
            subject, relation, __ = key
            if isinstance(relation, Relation) and self.taxonomy.is_functional(relation):
                by_subject_relation[(subject, relation)].append(key)
        for group in by_subject_relation.values():
            group.sort(key=repr)
            for i in range(len(group)):
                for j in range(i + 1, len(group)):
                    problem.add_hard([(group[i], False), (group[j], False)])
                    clauses += 1
        return clauses

    def _add_types(self, problem: WeightedMaxSat, triples) -> int:
        """!x for facts whose arguments violate the relation signature."""
        clauses = 0
        for key in triples:
            subject, relation, obj = key
            if not isinstance(relation, Relation):
                continue
            if self._violates_signature(subject, relation, obj):
                problem.add_hard([(key, False)])
                clauses += 1
        return clauses

    def _violates_signature(self, subject, relation, obj) -> bool:
        domain = self.taxonomy.domain_of(relation)
        if (
            domain is not None
            and isinstance(subject, Entity)
            and not self._compatible(subject, domain)
        ):
            return True
        rng = self.taxonomy.range_of(relation)
        if (
            rng is not None
            and isinstance(obj, Entity)
            and not self._compatible(obj, rng)
        ):
            return True
        return False

    def _compatible(self, entity: Entity, cls: Entity) -> bool:
        """Open-world check: only *known conflicting* types violate."""
        types = self.taxonomy.types_of(entity)
        if not types:
            return True  # untyped entities are given the benefit of the doubt
        if self.taxonomy.is_instance_of(entity, cls):
            return True
        # The entity has types, none of which is (a subclass of) the target:
        # violation only when some known type is declared disjoint with it.
        return not any(
            self.taxonomy.are_disjoint_classes(t, cls) for t in types
        )

    def _add_disjointness(self, problem: WeightedMaxSat, triples) -> int:
        """!(x & y) for declared-disjoint relations on the same (s, o).

        Only facts whose relation appears in some declared-disjoint pair
        can ever yield a clause, so groups are restricted to those
        relations up front instead of expanding O(n^2) candidate pairs per
        (s, o) group and discarding almost all of them.
        """
        eligible = self.taxonomy.relations_with_disjointness()
        if not eligible:
            return 0
        clauses = 0
        by_pair: dict[tuple, list[FactKey]] = defaultdict(list)
        for key in triples:
            subject, relation, obj = key
            if isinstance(relation, Relation) and relation in eligible:
                by_pair[(subject, obj)].append(key)
        for group in by_pair.values():
            if len(group) < 2:
                continue
            group.sort(key=repr)
            for i in range(len(group)):
                for j in range(i + 1, len(group)):
                    r1, r2 = group[i][1], group[j][1]
                    if self.taxonomy.are_disjoint_relations(r1, r2):
                        problem.add_hard([(group[i], False), (group[j], False)])
                        clauses += 1
        return clauses
