"""Surface-pattern fact extraction (the pattern-matching family).

The simplest point on the tutorial's extraction spectrum: hand-written
token patterns between two entity mentions ("X *was born in* Y").  High
precision on canonical phrasings, blind to paraphrase — which is exactly
the profile E3 measures against the learned extractors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..kb import Relation
from ..world import schema as ws
from .base import Candidate
from .occurrences import Occurrence


@dataclass(frozen=True, slots=True)
class SurfacePattern:
    """A token-sequence pattern between two mentions.

    ``inverse`` marks patterns whose textual-second mention is the subject
    ("{o} was founded by {s}").
    """

    relation: Relation
    middle: tuple[str, ...]
    inverse: bool = False
    confidence: float = 0.9

    def __post_init__(self) -> None:
        if not self.middle:
            raise ValueError("a surface pattern needs at least one middle token")


#: Hand-written seed patterns: one or two canonical phrasings per relation.
SEED_PATTERNS: tuple[SurfacePattern, ...] = (
    SurfacePattern(ws.BORN_IN, ("was", "born", "in")),
    SurfacePattern(ws.DIED_IN, ("died", "in")),
    SurfacePattern(ws.FOUNDED, ("founded",)),
    SurfacePattern(ws.CEO_OF, ("is", "the", "ceo", "of")),
    SurfacePattern(ws.WORKS_AT, ("works", "at")),
    SurfacePattern(ws.STUDIED_AT, ("studied", "at")),
    SurfacePattern(ws.STUDIED_AT, ("graduated", "from")),
    SurfacePattern(ws.MARRIED_TO, ("married",)),
    SurfacePattern(ws.WON_PRIZE, ("won", "the")),
    SurfacePattern(ws.WROTE, ("wrote",)),
    SurfacePattern(ws.RELEASED, ("released", "the", "album")),
    SurfacePattern(ws.LOCATED_IN, ("is", "a", "city", "in")),
    SurfacePattern(ws.LOCATED_IN, ("is", "located", "in")),
    SurfacePattern(ws.CAPITAL_OF, ("is", "the", "capital", "of")),
    SurfacePattern(ws.HEADQUARTERED_IN, ("is", "headquartered", "in")),
    SurfacePattern(ws.HEADQUARTERED_IN, ("is", "based", "in")),
    SurfacePattern(ws.CREATED_PRODUCT, ("released", "the")),
    SurfacePattern(ws.CREATED_PRODUCT, ("launched", "the")),
    SurfacePattern(ws.CITIZEN_OF, ("is", "a", "citizen", "of")),
)


class PatternExtractor:
    """Match a pattern inventory against entity-pair occurrences."""

    name = "surface-patterns"

    def __init__(self, patterns: Iterable[SurfacePattern] = SEED_PATTERNS) -> None:
        self._by_middle: dict[tuple[str, ...], list[SurfacePattern]] = {}
        for pattern in patterns:
            self._by_middle.setdefault(pattern.middle, []).append(pattern)

    @property
    def patterns(self) -> list[SurfacePattern]:
        """The pattern inventory."""
        return [p for group in self._by_middle.values() for p in group]

    def extract(self, occurrences: Iterable[Occurrence]) -> list[Candidate]:
        """All candidates produced by exact middle-sequence matches."""
        candidates = []
        for occurrence in occurrences:
            for pattern in self._by_middle.get(occurrence.middle, ()):
                subject, obj = occurrence.pair(inverse=pattern.inverse)
                candidates.append(
                    Candidate(
                        subject=subject,
                        relation=pattern.relation,
                        object=obj,
                        confidence=pattern.confidence,
                        extractor=self.name,
                        evidence=occurrence.sentence,
                    )
                )
        return candidates
