"""Infobox harvesting (the DBpedia recipe).

DBpedia's core extractor maps infobox attribute names to ontology relations
via community-maintained mappings, parses the attribute values (entity
names, years, numbers), and emits high-confidence triples.  This module
applies the same recipe to the synthetic encyclopedia; the attribute
mapping below plays the role of DBpedia's mapping wiki.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..kb import Literal, Relation
from ..corpus.wiki import Wiki, WikiPage
from ..world import schema as ws
from .base import Candidate
from .resolution import NameResolver

#: attribute name -> (relation, value kind). "entity" values are resolved
#: through the name dictionary; "year"/"integer" are parsed as literals.
ATTRIBUTE_MAPPING: dict[str, tuple[Relation, str]] = {
    "born": (ws.BORN_IN, "entity"),
    "birth_date": (ws.BIRTH_YEAR, "year"),
    "death_date": (ws.DEATH_YEAR, "year"),
    "spouse": (ws.MARRIED_TO, "entity"),
    "alma_mater": (ws.STUDIED_AT, "entity"),
    "employer": (ws.WORKS_AT, "entity"),
    "awards": (ws.WON_PRIZE, "entity"),
    "headquarters": (ws.HEADQUARTERED_IN, "entity"),
    "founded": (ws.FOUNDING_YEAR, "year"),
    "products": (ws.CREATED_PRODUCT, "entity"),
    "country": (ws.LOCATED_IN, "entity"),
    "population": (ws.POPULATION, "integer"),
    "release_year": (ws.RELEASE_YEAR, "year"),
    "predecessor": (ws.SUCCESSOR_OF, "entity"),
}


@dataclass(slots=True)
class InfoboxReport:
    """Coverage statistics of one harvesting run."""

    pages: int = 0
    attributes_seen: int = 0
    attributes_mapped: int = 0
    values_resolved: int = 0
    values_unresolved: int = 0


class InfoboxExtractor:
    """Harvest candidates from every page's infobox."""

    name = "infobox"

    def __init__(self, resolver: NameResolver, confidence: float = 0.95) -> None:
        self.resolver = resolver
        self.confidence = confidence

    def extract_page(self, page: WikiPage, report: Optional[InfoboxReport] = None) -> list[Candidate]:
        """Candidates from one page's infobox."""
        candidates = []
        for attribute, value in page.infobox.items():
            if report is not None:
                report.attributes_seen += 1
            mapping = ATTRIBUTE_MAPPING.get(attribute)
            if mapping is None:
                continue
            if report is not None:
                report.attributes_mapped += 1
            relation, kind = mapping
            obj = self._parse_value(value, kind)
            if obj is None:
                if report is not None:
                    report.values_unresolved += 1
                continue
            if report is not None:
                report.values_resolved += 1
            candidates.append(
                Candidate(
                    subject=page.entity,
                    relation=relation,
                    object=obj,
                    confidence=self.confidence,
                    extractor=self.name,
                    evidence=f"{page.title}|{attribute}={value}",
                )
            )
        return candidates

    def extract_wiki(self, wiki: Wiki) -> tuple[list[Candidate], InfoboxReport]:
        """Candidates from every page, plus the coverage report."""
        report = InfoboxReport()
        candidates = []
        for title in sorted(wiki.pages):
            report.pages += 1
            candidates.extend(self.extract_page(wiki.pages[title], report))
        return candidates, report

    def _parse_value(self, value: str, kind: str):
        if kind == "year":
            return Literal(value, "year") if value.lstrip("-").isdigit() else None
        if kind == "integer":
            return Literal(value, "integer") if value.lstrip("-").isdigit() else None
        return self.resolver.resolve(value)
