"""Temporal knowledge harvesting: expressions, scopes, year attributes.

Properly interpreting facts often requires their temporal scope (tutorial
section 3): *when* someone led a company, married, or won a prize.  This
module provides

* a temporal-expression tagger (years, "from Y1 to Y2", "since Y",
  "in Y"),
* fact scoping — attaching the tagged expression of the evidence sentence
  to an extracted fact as a :class:`~repro.kb.triple.TimeSpan`,
* year-attribute extraction (birth/founding/release years) from the same
  expressions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Iterable, Optional

from ..kb import Entity, Relation, TimeSpan, Triple, TripleStore
from ..world import schema as ws
from .base import Candidate

_YEAR = r"(1[6-9]\d{2}|20\d{2})"
_SPAN_RE = re.compile(rf"\bfrom {_YEAR} (?:to|until) {_YEAR}\b")
_SINCE_RE = re.compile(rf"\bsince {_YEAR}\b")
_UNTIL_RE = re.compile(rf"\buntil {_YEAR}\b")
_IN_RE = re.compile(rf"\bin {_YEAR}\b")
_BARE_RE = re.compile(rf"\b{_YEAR}\b")


@dataclass(frozen=True, slots=True)
class TemporalTag:
    """One tagged temporal expression."""

    start: int
    end: int
    text: str
    span: TimeSpan
    kind: str  # "span" | "since" | "until" | "point"


@lru_cache(maxsize=16384)
def _tag_temporal(text: str) -> tuple[TemporalTag, ...]:
    """The memoized tagger core (see :func:`tag_temporal`).

    Hot path: scoping calls this once per *candidate*, year-attribute
    extraction once per sentence — the same evidence text over and over.
    Tags are frozen dataclasses, so the cached tuple is safely shared.
    """
    # Every pattern requires a year literal; one scan rejects the common
    # case (no year anywhere) before the five-pattern pass.
    if _BARE_RE.search(text) is None:
        return ()
    tags: list[TemporalTag] = []
    taken: list[tuple[int, int]] = []

    def add(match: re.Match, span: TimeSpan, kind: str) -> None:
        if any(not (match.end() <= s or match.start() >= e) for s, e in taken):
            return
        taken.append((match.start(), match.end()))
        tags.append(TemporalTag(match.start(), match.end(), match.group(), span, kind))

    for match in _SPAN_RE.finditer(text):
        begin, end = int(match.group(1)), int(match.group(2))
        if begin <= end:
            add(match, TimeSpan(begin, end), "span")
    for match in _SINCE_RE.finditer(text):
        add(match, TimeSpan(int(match.group(1)), None), "since")
    for match in _UNTIL_RE.finditer(text):
        add(match, TimeSpan(None, int(match.group(1))), "until")
    for match in _IN_RE.finditer(text):
        year = int(match.group(1))
        add(match, TimeSpan(year, year), "point")
    for match in _BARE_RE.finditer(text):
        year = int(match.group(1))
        add(match, TimeSpan(year, year), "point")
    tags.sort(key=lambda t: t.start)
    return tuple(tags)


def tag_temporal(text: str) -> list[TemporalTag]:
    """All temporal expressions of a sentence, most specific first."""
    return list(_tag_temporal(text))


@lru_cache(maxsize=16384)
def sentence_scope(text: str) -> Optional[TimeSpan]:
    """The most informative temporal scope expressed by a sentence.

    Preference order: explicit spans > since/until (half-open) > points.
    Memoized (pure function of the text): many candidates share one
    evidence sentence, and scoping used to re-tag it per candidate.
    """
    tags = _tag_temporal(text)
    if not tags:
        return None
    for kind in ("span", "since", "until", "point"):
        for tag in tags:
            if tag.kind == kind:
                return tag.span
    return None


#: Relations whose facts carry temporal scopes in this world.
SCOPED_RELATIONS = frozenset(
    {ws.WORKS_AT, ws.MARRIED_TO, ws.CEO_OF, ws.WON_PRIZE, ws.LIVES_IN}
)


def attach_scopes(candidates: Iterable[Candidate]) -> list[Candidate]:
    """Scope each candidate of a temporal relation from its evidence text."""
    scoped = []
    for candidate in candidates:
        if candidate.relation in SCOPED_RELATIONS and candidate.evidence:
            span = sentence_scope(candidate.evidence)
            if span is not None:
                scoped.append(replace(candidate, scope=span))
                continue
        scoped.append(candidate)
    return scoped


def scope_store(store: TripleStore) -> TripleStore:
    """A copy of a store with scopes inferred from each triple's evidence.

    Works on stores whose triples have their evidence sentence in
    ``source`` — used by the end-to-end pipeline, which records evidence
    there before scoping.
    """
    result = TripleStore()
    for triple in store:
        if triple.predicate in SCOPED_RELATIONS and triple.source:
            span = sentence_scope(triple.source)
            if span is not None:
                result.add(triple.with_scope(span))
                continue
        result.add(triple)
    return result


def scope_candidate(candidate: Candidate) -> Optional[TimeSpan]:
    """The scope a candidate's evidence sentence supports, if any."""
    if not candidate.evidence:
        return None
    return sentence_scope(candidate.evidence)


def infer_scope_bounds(
    store: TripleStore, adulthood_age: int = 14
) -> TripleStore:
    """Infer coarse timespans for unscoped facts from lifespan knowledge.

    The tutorial calls for "inferring the timepoints of events and
    timespans during which certain facts hold" beyond explicit statements:
    a person's employment, marriage, or prize cannot precede adulthood or
    outlive them.  For every unscoped fact of a scoped relation whose
    subject has a known birth year, this attaches the widest consistent
    span — ``[birth + adulthood_age, death]`` — as an *inferred* scope
    (source ``temporal-inference``); facts that already carry a scope pass
    through unchanged.
    """
    result = TripleStore()
    for triple in store:
        if (
            triple.predicate not in SCOPED_RELATIONS
            or triple.scope is not None
            or not isinstance(triple.subject, Entity)
        ):
            result.add(triple)
            continue
        birth = store.one_object(triple.subject, ws.BIRTH_YEAR)
        if birth is None:
            result.add(triple)
            continue
        begin = int(birth.value) + adulthood_age
        death = store.one_object(triple.subject, ws.DEATH_YEAR)
        end = int(death.value) if death is not None else None
        if end is not None and end < begin:
            begin = end
        inferred = replace(
            triple, scope=TimeSpan(begin, end), source="temporal-inference"
        )
        result.add(inferred)
    return result


def lifespan_violations(store: TripleStore, adulthood_age: int = 0) -> list[Triple]:
    """Scoped facts inconsistent with their subject's lifespan.

    A diagnostic for harvested KBs: returns facts whose scope starts
    before ``birth + adulthood_age`` or ends after the death year.
    """
    violations = []
    for triple in store:
        if triple.scope is None or not isinstance(triple.subject, Entity):
            continue
        if triple.predicate not in SCOPED_RELATIONS:
            continue
        birth = store.one_object(triple.subject, ws.BIRTH_YEAR)
        death = store.one_object(triple.subject, ws.DEATH_YEAR)
        if (
            birth is not None
            and triple.scope.begin is not None
            and triple.scope.begin < int(birth.value) + adulthood_age
        ):
            violations.append(triple)
            continue
        if (
            death is not None
            and triple.scope.end is not None
            and triple.scope.end > int(death.value)
        ):
            violations.append(triple)
    return violations


#: Evidence keywords that select which year-attribute a sentence expresses.
_YEAR_ATTRIBUTE_CUES: tuple[tuple[re.Pattern, Relation], ...] = (
    (re.compile(r"\bborn\b", re.IGNORECASE), ws.BIRTH_YEAR),
    (re.compile(r"\b(died|passed away)\b", re.IGNORECASE), ws.DEATH_YEAR),
    (re.compile(r"\b(founded|established)\b", re.IGNORECASE), ws.FOUNDING_YEAR),
    (re.compile(r"\b(launched|released)\b", re.IGNORECASE), ws.RELEASE_YEAR),
)


def extract_year_attributes(
    subject: Entity, sentence: str, subject_class: Optional[Entity] = None
) -> list[Triple]:
    """Year-attribute facts a sentence supports about its subject.

    ``subject_class`` (when known) filters out mismatched cues, e.g. a
    "founded" cue with a person subject yields the company's founding year,
    not an attribute of the founder — so person subjects only take
    born/died cues, organizations only founded, products only released.
    """
    from ..kb import year_literal

    tags = _tag_temporal(sentence)
    points = [t for t in tags if t.kind == "point"]
    if not points:
        return []
    year = points[-1].span.begin
    triples = []
    for cue, relation in _YEAR_ATTRIBUTE_CUES:
        if not cue.search(sentence):
            continue
        if subject_class is not None and not _cue_matches_class(relation, subject_class):
            continue
        triples.append(
            Triple(subject, relation, year_literal(year), confidence=0.8,
                   source=sentence)
        )
    return triples


def _cue_matches_class(relation: Relation, subject_class: Entity) -> bool:
    if relation in (ws.BIRTH_YEAR, ws.DEATH_YEAR):
        return subject_class == ws.PERSON or subject_class in ws.OCCUPATIONS
    if relation == ws.FOUNDING_YEAR:
        return subject_class in (ws.COMPANY, ws.ORGANIZATION, ws.UNIVERSITY)
    if relation == ws.RELEASE_YEAR:
        return subject_class in (ws.PRODUCT, ws.SMARTPHONE)
    return True
