"""DeepDive-style statistical inference over extraction candidates.

Candidates from any mix of extractors are grounded into a factor graph:
each distinct fact is a boolean variable with a log-odds prior from its
(noisy-or merged) extraction confidence; weighted rules add implication
factors (e.g. a capital is located in its country); functional relations
add mutual-exclusion factors.  Gibbs sampling then yields a calibrated
marginal probability per fact — the tutorial's "statistical learning
(factor graphs and MLN's)" family, measured in E5.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Optional

from ..kb import Relation, Taxonomy, Triple, TripleStore
from ..reasoning.mln import MarkovLogicNetwork, confidence_to_weight
from ..reasoning.rules import Atom, Rule
from ..world import schema as ws
from .base import Candidate, merge_candidates


def default_rules() -> list[Rule]:
    """The weighted implication rules used by the default pipeline."""
    return [
        Rule(
            body=(Atom(ws.CAPITAL_OF, "x", "y"),),
            head=Atom(ws.LOCATED_IN, "x", "y"),
            weight=2.0,
        ),
        Rule(
            body=(Atom(ws.MARRIED_TO, "x", "y"),),
            head=Atom(ws.MARRIED_TO, "y", "x"),
            weight=2.0,
        ),
        Rule(
            body=(Atom(ws.CEO_OF, "x", "y"),),
            head=Atom(ws.WORKS_AT, "x", "y"),
            weight=1.0,
        ),
    ]


@dataclass(slots=True)
class InferenceStats:
    """Size and outcome of one grounding + inference run."""

    variables: int = 0
    prior_factors: int = 0
    rule_factors: int = 0
    exclusion_factors: int = 0
    accepted: int = 0


class DeepDivePipeline:
    """Ground candidates into an MLN factor graph and run Gibbs."""

    def __init__(
        self,
        taxonomy: Taxonomy,
        rules: Optional[list[Rule]] = None,
        exclusion_weight: float = 4.0,
    ) -> None:
        self.taxonomy = taxonomy
        self.mln = MarkovLogicNetwork(
            rules=rules if rules is not None else default_rules(),
            exclusion_weight=exclusion_weight,
        )

    def infer(
        self,
        candidates: Iterable[Candidate],
        iterations: int = 300,
        burn_in: int = 60,
        seed: int = 0,
        acceptance: float = 0.5,
    ) -> tuple[TripleStore, dict, InferenceStats]:
        """Return (accepted facts with marginal confidences, marginals, stats)."""
        candidate_list = list(candidates)
        merged = merge_candidates(candidate_list)
        evidence = TripleStore(
            Triple(s, p, o, confidence=c) for (s, p, o), c in merged.items()
        )
        priors = {
            key: confidence_to_weight(confidence)
            for key, confidence in merged.items()
        }
        exclusions = list(self._functional_exclusions(merged))
        graph = self.mln.ground(evidence, priors=priors, exclusions=exclusions)
        stats = InferenceStats(
            variables=len(graph.variables),
            prior_factors=len(priors),
            rule_factors=len(graph.factors) - len(priors) - len(exclusions),
            exclusion_factors=len(exclusions),
        )
        if not graph.variables:
            return TripleStore(), {}, stats
        marginals = graph.gibbs_marginals(
            iterations=iterations, burn_in=burn_in, seed=seed
        )
        accepted = TripleStore()
        for key, probability in marginals.items():
            if probability < acceptance or key not in merged:
                continue
            subject, relation, obj = key
            accepted.add(
                Triple(subject, relation, obj, confidence=probability, source="deepdive")
            )
        stats.accepted = len(accepted)
        return accepted, marginals, stats

    def _functional_exclusions(self, merged: dict):
        """not-both pairs for functional relations sharing a subject."""
        by_subject_relation: dict[tuple, list] = defaultdict(list)
        for key in merged:
            subject, relation, __ = key
            if isinstance(relation, Relation) and self.taxonomy.is_functional(relation):
                by_subject_relation[(subject, relation)].append(key)
        for group in by_subject_relation.values():
            group.sort(key=repr)
            for i in range(len(group)):
                for j in range(i + 1, len(group)):
                    yield (group[i], group[j])
