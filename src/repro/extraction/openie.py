"""ReVerb-style open information extraction.

Open IE harvests arbitrary SPO triples with no pre-specified relation
inventory: noun phrases are argument candidates, verbal phrases are
prototypic relation patterns (tutorial section 3).  Following ReVerb
(Fader et al., EMNLP 2011) the relation phrase must match

    V | V P | V W* P

(a verb group, optionally followed by non-verb words ending in a
preposition), must sit *between* its two arguments (syntactic constraint),
and must occur with at least ``min_distinct_pairs`` distinct argument pairs
corpus-wide (lexical constraint), which removes overly specific,
incoherent phrases.  A deterministic confidence function scores each
extraction from the classic indicator features.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Optional

from ..nlp import lexicon as lx
from ..nlp.chunk import Chunk
from ..nlp.lemmatize import lemma
from ..nlp.pipeline import Analysis, analyze


@dataclass(frozen=True, slots=True)
class OpenTriple:
    """One open-IE extraction: surface arguments and relation phrase."""

    arg1: str
    relation: str             # the surface relation phrase
    arg2: str
    normalized: str           # lemmatized, aux/adverb-stripped phrase
    confidence: float
    sentence: str


@dataclass(frozen=True, slots=True)
class _RelationSpan:
    start: int
    end: int


class ReVerbExtractor:
    """The V | V P | V W* P open extractor with ReVerb's constraints."""

    name = "reverb"

    def __init__(
        self,
        min_distinct_pairs: int = 2,
        max_intervening: int = 4,
        apply_lexical_constraint: bool = True,
    ) -> None:
        self.min_distinct_pairs = min_distinct_pairs
        self.max_intervening = max_intervening
        self.apply_lexical_constraint = apply_lexical_constraint

    # -------------------------------------------------------- per sentence

    def extract_sentence(self, analysis: Analysis) -> list[OpenTriple]:
        """All extractions from one analyzed sentence (no lexical filter)."""
        triples = []
        for span in self._relation_spans(analysis):
            arg1 = self._argument_left(analysis, span)
            arg2 = self._argument_right(analysis, span)
            if arg1 is None or arg2 is None:
                continue
            phrase = _span_text(analysis, span.start, span.end)
            normalized = self._normalize(analysis, span)
            if not normalized:
                continue
            confidence = self._confidence(analysis, span, arg1, arg2)
            triples.append(
                OpenTriple(
                    arg1=arg1.text(analysis.tokens),
                    relation=phrase,
                    arg2=arg2.text(analysis.tokens),
                    normalized=normalized,
                    confidence=confidence,
                    sentence=analysis.text,
                )
            )
        return triples

    def extract_corpus(self, sentences: Iterable[str]) -> list[OpenTriple]:
        """Extract from raw sentences, then apply the lexical constraint."""
        raw: list[OpenTriple] = []
        for sentence in sentences:
            raw.extend(self.extract_sentence(analyze(sentence)))
        if not self.apply_lexical_constraint:
            return raw
        pairs_of: dict[str, set[tuple[str, str]]] = defaultdict(set)
        for triple in raw:
            pairs_of[triple.normalized].add((triple.arg1, triple.arg2))
        return [
            t for t in raw
            if len(pairs_of[t.normalized]) >= self.min_distinct_pairs
        ]

    # ----------------------------------------------------------- internals

    def _relation_spans(self, analysis: Analysis) -> list[_RelationSpan]:
        """Maximal V | V P | V W* P spans starting at each verb group."""
        spans = []
        n = len(analysis.tokens)
        for group in analysis.verb_groups:
            end = group.end
            # Greedy extension: W* (no verbs, no punctuation) then a final P.
            probe = end
            intervening = 0
            best_end = end
            while probe < n and intervening <= self.max_intervening:
                tag = analysis.tags[probe]
                if tag == lx.ADP:
                    best_end = probe + 1
                    break
                if tag in (lx.NOUN, lx.ADJ, lx.ADV, lx.DET, lx.PART):
                    probe += 1
                    intervening += 1
                    continue
                break
            spans.append(_RelationSpan(group.start, best_end))
        return spans

    def _argument_left(self, analysis: Analysis, span: _RelationSpan) -> Optional[Chunk]:
        best = None
        for np in analysis.nps:
            if np.end <= span.start:
                best = np
        return best

    def _argument_right(self, analysis: Analysis, span: _RelationSpan) -> Optional[Chunk]:
        for np in analysis.nps:
            if np.start >= span.end:
                return np
        return None

    def _normalize(self, analysis: Analysis, span: _RelationSpan) -> str:
        """Lemmatize and drop auxiliaries/adverbs/determiners."""
        kept = []
        has_content = False
        for i in range(span.start, span.end):
            tag = analysis.tags[i]
            if tag in (lx.ADV, lx.DET, lx.PART):
                continue
            if tag == lx.AUX:
                # Keep a bare copula ("is the capital of"), drop aspect aux.
                if any(
                    analysis.tags[j] == lx.VERB for j in range(span.start, span.end)
                ):
                    continue
                kept.append("be")
                has_content = True
                continue
            if tag in (lx.VERB, lx.NOUN, lx.ADJ):
                kept.append(lemma(analysis.tokens[i].text))
                has_content = True
                continue
            if tag == lx.ADP:
                kept.append(analysis.tokens[i].text.lower())
        return " ".join(kept) if has_content else ""

    def _confidence(self, analysis, span, arg1: Chunk, arg2: Chunk) -> float:
        """ReVerb's feature-based confidence, as a deterministic score."""
        score = 0.4
        if analysis.tags[arg1.head_index] == lx.PROPN:
            score += 0.15
        if analysis.tags[arg2.head_index] in (lx.PROPN, lx.NUM):
            score += 0.15
        if analysis.tags[span.end - 1] == lx.ADP:
            score += 0.1
        if span.start - arg1.end == 0:
            score += 0.1  # relation phrase adjacent to arg1
        if arg2.start - span.end == 0:
            score += 0.1  # and to arg2
        length = span.end - span.start
        if length > 4:
            score -= 0.1 * (length - 4)
        return max(0.05, min(score, 0.99))


def cluster_relation_phrases(
    triples: Iterable[OpenTriple], min_shared_pairs: int = 2
) -> list[set[str]]:
    """Group synonymous relation phrases by shared argument pairs.

    Phrases that connect at least ``min_shared_pairs`` identical (arg1,
    arg2) pairs are clustered together (union-find over the co-occurrence
    graph) — the classic path to relation synonym discovery in open IE.
    """
    from ..kb.sameas import UnionFind

    pairs_of: dict[str, set[tuple[str, str]]] = defaultdict(set)
    for triple in triples:
        pairs_of[triple.normalized].add((triple.arg1, triple.arg2))
    phrases = sorted(pairs_of)
    uf = UnionFind()
    for phrase in phrases:
        uf.union(phrase, phrase)
    for i, a in enumerate(phrases):
        for b in phrases[i + 1:]:
            if len(pairs_of[a] & pairs_of[b]) >= min_shared_pairs:
                uf.union(a, b)
    clusters: dict[str, set[str]] = defaultdict(set)
    for phrase in phrases:
        clusters[uf.find(phrase)].add(phrase)
    return sorted(clusters.values(), key=lambda c: (-len(c), sorted(c)[0]))


def _span_text(analysis: Analysis, start: int, end: int) -> str:
    tokens = analysis.tokens[start:end]
    if not tokens:
        return ""
    pieces = [tokens[0].text]
    for prev, cur in zip(tokens, tokens[1:]):
        pieces.append(" " if cur.start > prev.end else "")
        pieces.append(cur.text)
    return "".join(pieces)
