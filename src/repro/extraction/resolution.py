"""Mapping surface forms to KB entities during extraction.

Fact extractors see names, not entities.  The resolver is the name
dictionary a real system would derive from its KB (page titles, redirects,
aliases) with per-name popularity priors.  Resolution here is deliberately
*local*: an unambiguous name resolves to its entity; an ambiguous one
resolves to the most popular candidate only if its prior clears a margin,
else it is dropped.  (Context-sensitive disambiguation is NED's job —
package :mod:`repro.ned`.)
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Optional

from ..kb import Entity
from ..nlp.gazetteer import Gazetteer


@dataclass(frozen=True, slots=True)
class NameEntry:
    """The candidates a name may denote, with popularity counts."""

    candidates: tuple[tuple[Entity, int], ...]  # (entity, count), sorted desc

    def best(self) -> Entity:
        return self.candidates[0][0]

    @property
    def ambiguous(self) -> bool:
        return len(self.candidates) > 1


class NameResolver:
    """A name -> entity dictionary with popularity-based tie breaking."""

    def __init__(self, dominance: float = 0.8) -> None:
        """``dominance``: minimum share of the top candidate's popularity
        among all candidates for an ambiguous name to resolve at all."""
        if not 0.0 < dominance <= 1.0:
            raise ValueError("dominance must be in (0, 1]")
        self.dominance = dominance
        self._names: dict[str, Counter] = {}
        # Ranked-entry memo: resolvers are built once, then hit with the
        # same names once per mention for the rest of the build — the
        # sort in :meth:`entry` used to rerun per call.  Invalidated
        # per-name on registration.
        self._entries: dict[str, Optional[NameEntry]] = {}

    def add(self, name: str, entity: Entity, count: int = 1) -> None:
        """Register that ``name`` refers to ``entity`` (count = popularity)."""
        self._names.setdefault(name, Counter())[entity] += count
        self._entries.pop(name, None)

    def add_aliases(self, entity: Entity, names: Iterable[str], primary_boost: int = 5) -> None:
        """Register an entity's names; the first gets a popularity boost."""
        for index, name in enumerate(names):
            self.add(name, entity, primary_boost if index == 0 else 1)

    def entry(self, name: str) -> Optional[NameEntry]:
        """All candidates of a name, most popular first (memoized)."""
        if name in self._entries:
            return self._entries[name]
        counter = self._names.get(name)
        if not counter:
            entry = None
        else:
            ranked = sorted(counter.items(), key=lambda kv: (-kv[1], kv[0].id))
            entry = NameEntry(tuple(ranked))
        self._entries[name] = entry
        return entry

    def resolve(self, name: str) -> Optional[Entity]:
        """The entity a name denotes, or None when too ambiguous."""
        entry = self.entry(name)
        if entry is None:
            return None
        if not entry.ambiguous:
            return entry.best()
        total = sum(count for __, count in entry.candidates)
        top = entry.candidates[0][1]
        if total and top / total >= self.dominance:
            return entry.best()
        return None

    def candidates(self, name: str) -> list[tuple[Entity, float]]:
        """(entity, prior) pairs for a name — the NED candidate interface."""
        entry = self.entry(name)
        if entry is None:
            return []
        total = sum(count for __, count in entry.candidates)
        return [(entity, count / total) for entity, count in entry.candidates]

    def names(self) -> list[str]:
        """Every registered name."""
        return list(self._names)

    def to_gazetteer(self) -> Gazetteer:
        """A token-trie over all registered names (payload: the name)."""
        gazetteer: Gazetteer = Gazetteer()
        for name in self._names:
            gazetteer.add(name, name)
        return gazetteer


def resolver_from_aliases(
    aliases: dict[Entity, list[str]], dominance: float = 0.8
) -> NameResolver:
    """Build a resolver from an entity -> surface forms mapping."""
    resolver = NameResolver(dominance=dominance)
    for entity, names in aliases.items():
        resolver.add_aliases(entity, names)
    return resolver
