"""Snowball/DIPRE-style bootstrapped pattern induction.

Start from a few seed *facts*, find their co-occurrences in text, promote
the recurring middle contexts to patterns, score each pattern by how often
it confirms vs contradicts the seed knowledge, extract new facts with the
confident patterns, promote the best new facts into the seed set, repeat.
The pattern confidence is the classic Snowball ratio

    positive / (positive + negative)

where a match is *negative* when the pattern pairs a known subject with a
conflicting object of a functional relation.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from ..kb import Entity, Relation
from .base import Candidate
from .occurrences import Occurrence


@dataclass(frozen=True, slots=True)
class LearnedPattern:
    """A bootstrapped pattern with its confidence and direction."""

    middle: tuple[str, ...]
    inverse: bool
    confidence: float
    support: int


@dataclass(slots=True)
class SnowballReport:
    """What each bootstrapping iteration did."""

    iterations: int = 0
    patterns_per_iteration: list[int] = field(default_factory=list)
    facts_per_iteration: list[int] = field(default_factory=list)


class SnowballExtractor:
    """Bootstrapped extraction for a single relation."""

    name = "snowball"

    def __init__(
        self,
        relation: Relation,
        seeds: Iterable[tuple[Entity, Entity]],
        functional: bool = True,
        min_support: int = 2,
        min_confidence: float = 0.7,
        promote_threshold: float = 0.85,
        max_iterations: int = 3,
        max_middle_length: int = 6,
    ) -> None:
        self.relation = relation
        self.seeds: set[tuple[Entity, Entity]] = set(seeds)
        if not self.seeds:
            raise ValueError("Snowball needs at least one seed pair")
        self.functional = functional
        self.min_support = min_support
        self.min_confidence = min_confidence
        self.promote_threshold = promote_threshold
        self.max_iterations = max_iterations
        self.max_middle_length = max_middle_length
        self.patterns: list[LearnedPattern] = []
        self.report = SnowballReport()

    def run(self, occurrences: list[Occurrence]) -> list[Candidate]:
        """Bootstrap over a fixed occurrence list; return final candidates."""
        known: set[tuple[Entity, Entity]] = set(self.seeds)
        candidates: dict[tuple[Entity, Entity], Candidate] = {}
        for iteration in range(self.max_iterations):
            self.report.iterations = iteration + 1
            self.patterns = self._induce_patterns(occurrences, known)
            self.report.patterns_per_iteration.append(len(self.patterns))
            new_candidates = self._apply_patterns(occurrences)
            fresh = 0
            for candidate in new_candidates:
                pair = (candidate.subject, candidate.object)
                previous = candidates.get(pair)
                if previous is None or candidate.confidence > previous.confidence:
                    candidates[pair] = candidate
                if (
                    candidate.confidence >= self.promote_threshold
                    and pair not in known
                ):
                    known.add(pair)
                    fresh += 1
            self.report.facts_per_iteration.append(fresh)
            if fresh == 0:
                break
        return list(candidates.values())

    # ----------------------------------------------------------- internals

    def _induce_patterns(
        self, occurrences: list[Occurrence], known: set[tuple[Entity, Entity]]
    ) -> list[LearnedPattern]:
        """Score every (middle, direction) context against the known pairs."""
        known_objects: dict[Entity, set[Entity]] = defaultdict(set)
        for subject, obj in sorted(known, key=repr):
            known_objects[subject].add(obj)
        stats: dict[tuple[tuple[str, ...], bool], list[int]] = defaultdict(lambda: [0, 0])
        for occurrence in occurrences:
            if len(occurrence.middle) > self.max_middle_length:
                continue
            for inverse in (False, True):
                subject, obj = occurrence.pair(inverse)
                if subject not in known_objects:
                    continue
                key = (occurrence.middle, inverse)
                if obj in known_objects[subject]:
                    stats[key][0] += 1
                elif self.functional:
                    # The subject is known with a *different* object: under
                    # functionality this match contradicts the seeds.
                    stats[key][1] += 1
        patterns = []
        for (middle, inverse), (positive, negative) in stats.items():
            if not middle or positive < self.min_support:
                continue
            confidence = positive / (positive + negative)
            if confidence >= self.min_confidence:
                patterns.append(
                    LearnedPattern(middle, inverse, confidence, positive)
                )
        patterns.sort(key=lambda p: (-p.confidence, -p.support, p.middle))
        return patterns

    def _apply_patterns(self, occurrences: list[Occurrence]) -> list[Candidate]:
        by_key = {(p.middle, p.inverse): p for p in self.patterns}
        results = []
        for occurrence in occurrences:
            for inverse in (False, True):
                pattern = by_key.get((occurrence.middle, inverse))
                if pattern is None:
                    continue
                subject, obj = occurrence.pair(inverse)
                results.append(
                    Candidate(
                        subject=subject,
                        relation=self.relation,
                        object=obj,
                        confidence=pattern.confidence,
                        extractor=self.name,
                        evidence=occurrence.sentence,
                    )
                )
        return results
