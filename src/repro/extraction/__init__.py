"""Harvesting facts at Web scale (tutorial section 3)."""

from .base import Candidate, candidates_to_store, merge_candidates
from .resolution import NameEntry, NameResolver, resolver_from_aliases
from .occurrences import Occurrence, corpus_occurrences, sentence_occurrences
from .patterns import SEED_PATTERNS, PatternExtractor, SurfacePattern
from .snowball import LearnedPattern, SnowballExtractor, SnowballReport
from .dependency_paths import DependencyPathExtractor, PathRule
from .distant import (
    NONE_LABEL,
    DistantSupervisionExtractor,
    TrainingSummary,
    occurrence_features,
)
from .deepdive import DeepDivePipeline, InferenceStats, default_rules
from .consistency import ConsistencyReasoner, ConsistencyReport
from .openie import OpenTriple, ReVerbExtractor, cluster_relation_phrases
from .temporal import (
    SCOPED_RELATIONS,
    TemporalTag,
    attach_scopes,
    extract_year_attributes,
    infer_scope_bounds,
    lifespan_violations,
    scope_candidate,
    scope_store,
    sentence_scope,
    tag_temporal,
)
from .multilingual import (
    Alignment,
    align_by_links,
    align_by_strings,
    align_combined,
    harvest_labels,
    merge_alignments_into_labels,
)
from .commonsense import (
    GOLD_PARTS,
    GOLD_PROPERTIES,
    GOLD_SHAPES,
    HAS_PROPERTY,
    HAS_SHAPE,
    PART_OF,
    AcquisitionReport,
    acquire,
    concept,
    generate_sentences,
    gold_store,
)
from .infobox import ATTRIBUTE_MAPPING, InfoboxExtractor, InfoboxReport
from .fusion import FusedFact, KnowledgeFusion
from .nell import IterationRecord, NeverEndingLearner, cumulative_precision

__all__ = [
    "Candidate",
    "candidates_to_store",
    "merge_candidates",
    "NameEntry",
    "NameResolver",
    "resolver_from_aliases",
    "Occurrence",
    "corpus_occurrences",
    "sentence_occurrences",
    "SEED_PATTERNS",
    "PatternExtractor",
    "SurfacePattern",
    "LearnedPattern",
    "SnowballExtractor",
    "SnowballReport",
    "DependencyPathExtractor",
    "PathRule",
    "NONE_LABEL",
    "DistantSupervisionExtractor",
    "TrainingSummary",
    "occurrence_features",
    "DeepDivePipeline",
    "InferenceStats",
    "default_rules",
    "ConsistencyReasoner",
    "ConsistencyReport",
    "OpenTriple",
    "ReVerbExtractor",
    "cluster_relation_phrases",
    "SCOPED_RELATIONS",
    "TemporalTag",
    "attach_scopes",
    "extract_year_attributes",
    "infer_scope_bounds",
    "lifespan_violations",
    "scope_candidate",
    "scope_store",
    "sentence_scope",
    "tag_temporal",
    "Alignment",
    "align_by_links",
    "align_by_strings",
    "align_combined",
    "harvest_labels",
    "merge_alignments_into_labels",
    "GOLD_PARTS",
    "GOLD_PROPERTIES",
    "GOLD_SHAPES",
    "HAS_PROPERTY",
    "HAS_SHAPE",
    "PART_OF",
    "AcquisitionReport",
    "acquire",
    "concept",
    "generate_sentences",
    "gold_store",
    "ATTRIBUTE_MAPPING",
    "InfoboxExtractor",
    "InfoboxReport",
    "FusedFact",
    "KnowledgeFusion",
    "IterationRecord",
    "NeverEndingLearner",
    "cumulative_precision",
]
