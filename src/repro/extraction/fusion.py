"""Knowledge-Vault-style fusion of extractors with a graph prior.

Knowledge Vault (Dong et al., KDD 2014 — reference [9] of the tutorial)
produces calibrated fact probabilities by fusing, per candidate fact,
(a) the confidence signals of multiple independent extractors and (b) a
graph-based prior computed from the existing KB (here: PRA-lite path
ranking).  The fusion layer is a logistic regression over those signals,
trained on candidates whose truth is known (the seed KB), and its output
probability is what downstream consumers threshold.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from ..kb import Entity, Relation, TripleStore, Triple
from ..ml.logreg import LogisticRegression
from ..reasoning.pra import KnowledgeGraph, PathRankingModel
from .base import Candidate

FactKey = tuple


@dataclass(slots=True)
class FusedFact:
    """One fused candidate with its calibrated probability."""

    subject: Entity
    relation: Relation
    object: object
    probability: float
    extractor_count: int


class KnowledgeFusion:
    """Fuse per-extractor confidences with a PRA graph prior."""

    def __init__(
        self,
        extractor_names: Iterable[str],
        prior_kb: TripleStore,
        use_graph_prior: bool = True,
        max_path_length: int = 3,
    ) -> None:
        self.extractor_names = sorted(extractor_names)
        self.prior_kb = prior_kb
        self.use_graph_prior = use_graph_prior
        self._graph = KnowledgeGraph(prior_kb) if use_graph_prior else None
        self._pra_models: dict[Relation, PathRankingModel] = {}
        self._max_path_length = max_path_length
        self._model: Optional[LogisticRegression] = None

    # -------------------------------------------------------------- features

    def _group(self, candidates: Iterable[Candidate]) -> dict[FactKey, list[Candidate]]:
        groups: dict[FactKey, list[Candidate]] = defaultdict(list)
        for candidate in candidates:
            groups[candidate.key()].append(candidate)
        return groups

    def _graph_prior(self, key: FactKey) -> float:
        if self._graph is None:
            return 0.5
        subject, relation, obj = key
        if not isinstance(obj, Entity):
            return 0.5
        model = self._pra_models.get(relation)
        if model is None:
            model = PathRankingModel(relation, max_path_length=self._max_path_length)
            try:
                model.train(self._graph, self.prior_kb)
            except ValueError:
                model = None
            self._pra_models[relation] = model
        if model is None:
            return 0.5
        return model.score(self._graph, subject, obj)

    def _features(self, key: FactKey, witnesses: list[Candidate]) -> list[float]:
        by_extractor = {
            name: max(
                (c.confidence for c in witnesses if c.extractor == name),
                default=0.0,
            )
            for name in self.extractor_names
        }
        features = [by_extractor[name] for name in self.extractor_names]
        features.append(float(len(witnesses)))                 # evidence count
        features.append(max(c.confidence for c in witnesses))  # strongest signal
        features.append(self._graph_prior(key))                # KB prior
        return features

    # -------------------------------------------------------------- training

    def train(
        self,
        candidates: Iterable[Candidate],
        truth: TripleStore,
        seed: int = 0,
    ) -> int:
        """Fit the fusion layer on candidates with known truth labels."""
        groups = self._group(candidates)
        if not groups:
            raise ValueError("no candidates to train on")
        rng = random.Random(seed)
        keys = sorted(groups, key=repr)
        rng.shuffle(keys)
        X = np.asarray([self._features(k, groups[k]) for k in keys])
        y = np.asarray(
            [1.0 if truth.contains_fact(*k) else 0.0 for k in keys]
        )
        if y.min() == y.max():
            raise ValueError("training candidates must include both labels")
        self._model = LogisticRegression(l2=1e-3).fit(X, y)
        return len(keys)

    # ------------------------------------------------------------- inference

    def fuse(self, candidates: Iterable[Candidate]) -> list[FusedFact]:
        """Calibrated probability per distinct candidate fact."""
        if self._model is None:
            raise RuntimeError("train() the fusion layer first")
        groups = self._group(candidates)
        keys = sorted(groups, key=repr)
        if not keys:
            return []
        X = np.asarray([self._features(k, groups[k]) for k in keys])
        probabilities = self._model.predict_proba(X)
        fused = []
        for key, probability in zip(keys, probabilities):
            subject, relation, obj = key
            fused.append(
                FusedFact(
                    subject=subject,
                    relation=relation,
                    object=obj,
                    probability=float(probability),
                    extractor_count=len({c.extractor for c in groups[key]}),
                )
            )
        fused.sort(key=lambda f: (-f.probability, repr((f.subject, f.relation))))
        return fused

    def to_store(self, fused: list[FusedFact], threshold: float = 0.5) -> TripleStore:
        """Accepted facts above a probability threshold."""
        store = TripleStore()
        for fact in fused:
            if fact.probability < threshold:
                continue
            store.add(
                Triple(
                    fact.subject,
                    fact.relation,
                    fact.object,
                    confidence=min(fact.probability, 1.0),
                    source="fusion",
                )
            )
        return store
