"""Entity-pair occurrences: the shared input of all sentence extractors.

An *occurrence* is one ordered-by-text pair of resolved entity mentions in
one sentence, together with every signal the extractor families key on:
the token sequence between the mentions (surface patterns, Snowball), the
lexicalized dependency paths in both directions (dependency-path
extraction), and the words just outside the pair (distant-supervision
features).  Extractors that posit the *second* mention as the subject
("Y was founded by X") say so with a direction flag; the occurrence itself
always keeps textual order.

Computing the occurrences once and feeding every extractor from the same
list keeps the E3 comparison honest — all methods see exactly the same
sentences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from ..kb import Entity
from ..nlp.gazetteer import Gazetteer
from ..nlp.pipeline import Analysis, analyze
from .resolution import NameResolver


@dataclass(frozen=True, slots=True)
class Occurrence:
    """One textual-order resolved mention pair in one sentence."""

    first: Entity
    second: Entity
    middle: tuple[str, ...]            # lowercased tokens between the mentions
    path_forward: Optional[str]        # dependency path first -> second
    path_backward: Optional[str]       # dependency path second -> first
    left: str                          # word before the first mention
    right: str                         # word after the second mention
    sentence: str
    first_text: str
    second_text: str

    def pair(self, inverse: bool = False) -> tuple[Entity, Entity]:
        """(subject, object) under a direction: forward unless ``inverse``."""
        return (self.second, self.first) if inverse else (self.first, self.second)

    def path(self, inverse: bool = False) -> Optional[str]:
        """The subject-to-object dependency path under a direction."""
        return self.path_backward if inverse else self.path_forward

    def middle_text(self) -> str:
        """The middle tokens joined for display."""
        return " ".join(self.middle)


def sentence_occurrences(
    analysis: Analysis,
    resolver: NameResolver,
    max_gap: int = 8,
) -> Iterator[Occurrence]:
    """All textual-order resolved mention pairs of one analyzed sentence."""
    resolved = []
    for mention in analysis.mentions:
        entity = resolver.resolve(mention.text)
        if entity is not None:
            resolved.append((mention, entity))
    for i, (m1, e1) in enumerate(resolved):
        for m2, e2 in resolved[i + 1:]:
            if e1 == e2:
                continue
            gap = m2.token_start - m1.token_end
            if gap < 0 or gap > max_gap:
                continue
            middle = tuple(
                t.text.lower()
                for t in analysis.tokens[m1.token_end:m2.token_start]
            )
            left = (
                analysis.tokens[m1.token_start - 1].text.lower()
                if m1.token_start > 0
                else ""
            )
            right = (
                analysis.tokens[m2.token_end].text.lower()
                if m2.token_end < len(analysis.tokens)
                else ""
            )
            head1, head2 = m1.token_end - 1, m2.token_end - 1
            yield Occurrence(
                first=e1,
                second=e2,
                middle=middle,
                path_forward=analysis.parse.path(head1, head2),
                path_backward=analysis.parse.path(head2, head1),
                left=left,
                right=right,
                sentence=analysis.text,
                first_text=m1.text,
                second_text=m2.text,
            )


def corpus_occurrences(
    sentences: Iterable[str],
    resolver: NameResolver,
    gazetteer: Optional[Gazetteer] = None,
    max_gap: int = 8,
) -> list[Occurrence]:
    """Analyze raw sentences and collect every occurrence."""
    if gazetteer is None:
        gazetteer = resolver.to_gazetteer()
    occurrences: list[Occurrence] = []
    for sentence in sentences:
        analysis = analyze(sentence, gazetteer)
        occurrences.extend(sentence_occurrences(analysis, resolver, max_gap))
    return occurrences
