"""The mention-entity candidate dictionary with popularity priors.

NED systems derive their name dictionary from the KB: page titles,
redirects, and anchor texts, with a popularity prior per (name, entity)
pair.  Here the dictionary is built from the encyclopedia: every page
title and registered alias becomes a name; the prior of an entity under a
name is proportional to the page's in-link count (a link-based popularity
estimate, as in AIDA/Wikipedia-anchor systems).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Optional

from ..kb import Entity
from ..corpus.wiki import Wiki
from ..nlp.gazetteer import Gazetteer


@dataclass(frozen=True, slots=True)
class EntityCandidate:
    """One candidate reading of a mention surface."""

    entity: Entity
    prior: float


class CandidateDictionary:
    """name -> ranked entity candidates with priors."""

    def __init__(self, smoothing: float = 0.5) -> None:
        self.smoothing = smoothing
        self._popularity: dict[Entity, float] = defaultdict(float)
        self._names: dict[str, set[Entity]] = defaultdict(set)
        # Ranked-candidate memo: dictionaries are built once and then
        # queried with the same surfaces once per mention — the mass
        # normalization and sort in :meth:`candidates` used to rerun on
        # every call.  Mutations invalidate (per-name for add_name; fully
        # for set_popularity, whose entity may sit under many names).
        self._ranked: dict[str, list[EntityCandidate]] = {}

    def add_name(self, name: str, entity: Entity) -> None:
        """Register a surface form for an entity."""
        self._names[name].add(entity)
        self._ranked.pop(name, None)

    def set_popularity(self, entity: Entity, value: float) -> None:
        """Set the global popularity mass of an entity."""
        self._popularity[entity] = max(value, 0.0)
        self._ranked.clear()

    def candidates(self, name: str) -> list[EntityCandidate]:
        """Candidates for a surface form, highest prior first (memoized)."""
        ranked = self._ranked.get(name)
        if ranked is not None:
            return ranked
        entities = self._names.get(name)
        if not entities:
            self._ranked[name] = []
            return self._ranked[name]
        masses = {
            e: self._popularity.get(e, 0.0) + self.smoothing for e in entities
        }
        total = sum(masses.values())
        order = sorted(entities, key=lambda e: (-masses[e], e.id))
        ranked = [EntityCandidate(e, masses[e] / total) for e in order]
        self._ranked[name] = ranked
        return ranked

    def best(self, name: str) -> Optional[Entity]:
        """The highest-prior candidate (the prior-only baseline)."""
        ranked = self.candidates(name)
        return ranked[0].entity if ranked else None

    def ambiguity(self, name: str) -> int:
        """Number of candidate entities a name has."""
        return len(self._names.get(name, ()))

    def names(self) -> list[str]:
        """Every registered surface form."""
        return list(self._names)

    def to_gazetteer(self) -> Gazetteer:
        """A token trie over all names (payload: the name string)."""
        gazetteer: Gazetteer = Gazetteer()
        for name in self._names:
            gazetteer.add(name, name)
        return gazetteer


def dictionary_from_wiki(
    wiki: Wiki,
    aliases: Optional[dict[Entity, list[str]]] = None,
    smoothing: float = 0.5,
) -> CandidateDictionary:
    """Build the dictionary from page titles, aliases, and in-link counts."""
    dictionary = CandidateDictionary(smoothing=smoothing)
    inlinks: dict[str, int] = defaultdict(int)
    for page in wiki.pages.values():
        for target in page.links:
            inlinks[target] += 1
    for title, page in wiki.pages.items():
        dictionary.add_name(title, page.entity)
        dictionary.set_popularity(page.entity, float(inlinks[title]))
    if aliases:
        for entity, forms in aliases.items():
            if wiki.by_entity.get(entity) is None:
                continue
            for form in forms:
                dictionary.add_name(form, entity)
    return dictionary
