"""Keyphrase-based context similarity between mentions and entities.

AIDA's local signal: each entity carries a profile of salient phrases and
words (harvested from its page text and the titles it links to); a mention
is scored by the weighted overlap between its surrounding words and the
candidate's profile.  Implemented as TF-IDF cosine over bags of lowercased
word tokens.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable

from ..kb import Entity
from ..corpus.wiki import Wiki
from ..nlp.tokenizer import iter_token_texts

#: Words too common to carry signal (tiny stop list; profiles are tf-idf
#: weighted anyway).
_STOP = frozenset(
    {"the", "a", "an", "of", "in", "is", "was", "and", "to", "by", "at",
     "on", "for", "from", "with", "its", "his", "her"}
)


def _words(text: str) -> list[str]:
    return [
        t.lower() for t in iter_token_texts(text)
        if t[0].isalnum() and t.lower() not in _STOP
    ]


class EntityContextIndex:
    """TF-IDF profiles of every entity, built from the encyclopedia."""

    def __init__(self, wiki: Wiki) -> None:
        self._profiles: dict[Entity, Counter] = {}
        self._document_frequency: Counter = Counter()
        self._documents = 0
        for page in wiki.pages.values():
            bag: Counter = Counter()
            bag.update(_words(page.document.text))
            for linked_title in page.links:
                bag.update(_words(linked_title))
            for value in page.infobox.values():
                bag.update(_words(value))
            self._profiles[page.entity] = bag
            self._documents += 1
            for word in set(bag):  # det: allow-unordered -- counter increments commute
                self._document_frequency[word] += 1

    def _idf(self, word: str) -> float:
        df = self._document_frequency.get(word, 0)
        return math.log((self._documents + 1) / (df + 1)) + 1.0

    def _vector(self, bag: Counter) -> dict[str, float]:
        return {word: count * self._idf(word) for word, count in bag.items()}

    def similarity(self, entity: Entity, context_words: Iterable[str]) -> float:
        """Cosine between an entity profile and a mention context bag."""
        profile = self._profiles.get(entity)
        if not profile:
            return 0.0
        context_bag = Counter(w for w in context_words if w not in _STOP)
        if not context_bag:
            return 0.0
        profile_vector = self._vector(profile)
        context_vector = self._vector(context_bag)
        dot = sum(
            weight * profile_vector.get(word, 0.0)
            for word, weight in context_vector.items()
        )
        norm_p = math.sqrt(sum(w * w for w in profile_vector.values()))
        norm_c = math.sqrt(sum(w * w for w in context_vector.values()))
        if norm_p == 0.0 or norm_c == 0.0:
            return 0.0
        return dot / (norm_p * norm_c)

    def context_of(self, text: str) -> list[str]:
        """The context bag of a raw document text."""
        return _words(text)
