"""Named entity disambiguation (tutorial section 4)."""

from .candidates import CandidateDictionary, EntityCandidate, dictionary_from_wiki
from .context import EntityContextIndex
from .coherence import CoherenceIndex
from .graph import DisambiguationGraph, MentionNode
from .pipeline import (
    METHODS,
    MentionTask,
    NEDConfig,
    NEDSystem,
    evaluate_document,
)

__all__ = [
    "CandidateDictionary",
    "EntityCandidate",
    "dictionary_from_wiki",
    "EntityContextIndex",
    "CoherenceIndex",
    "DisambiguationGraph",
    "MentionNode",
    "METHODS",
    "MentionTask",
    "NEDConfig",
    "NEDSystem",
    "evaluate_document",
]
